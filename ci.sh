#!/usr/bin/env bash
# Tier-1 entry point: lint gate first (fail fast, report uploaded to
# results/lint_report.json), then offline build and the full test
# suite (which re-runs the gate in-process via tests/lint_gate.rs).
# `./ci.sh --lint-only` stops after the gate — the editing loop's
# fast path.
set -euo pipefail
cd "$(dirname "$0")"

if cargo fmt --version >/dev/null 2>&1; then
    echo "== fmt =="
    cargo fmt --check
fi

echo "== lint gate =="
# Debug build: the analyzer itself is cheap, the release compile is
# not. The JSON report is written even when findings fail the gate.
mkdir -p results
lint_status=0
cargo run -q -p palu-lint -- --json >results/lint_report.json || lint_status=$?
if [ "$lint_status" != 0 ]; then
    echo "ci: lint gate failed (report in results/lint_report.json):" >&2
    cargo run -q -p palu-lint || true
    exit "$lint_status"
fi
echo "lint gate: clean (report in results/lint_report.json)"
if [ "${1:-}" = "--lint-only" ]; then
    echo "ci: lint-only run, stopping after the gate"
    exit 0
fi

echo "== build (release, offline) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== pipeline determinism (1, 2, 8 threads) =="
# The sharded pipeline's hard contract, run explicitly so CI logs show
# it even when the quiet test harness truncates: bit-identical pooled
# results at 1, 2, and 8 threads on a 64-window workload.
cargo test -q -p palu-suite --test parallel_pipeline \
    parallel_pipeline_is_bit_identical_to_serial_at_1_2_8_threads
# Same contract end-to-end through the bench binary, which also emits
# results/BENCH_pipeline.json with per-stage timings and packets/sec.
# --gate additionally enforces the parallel-scaling floor: 8-thread
# speedup ≥ 0.75 × min(threads, effective cores) — 6× on an 8-core
# box, and on a single-core runner it still catches the historical
# parallel-slower-than-serial inversion (exit 1 on regression).
cargo run -q --release -p palu-bench --bin pipeline -- --gate
test -s results/BENCH_pipeline.json

echo "== fault-injection smoke matrix (0%, 5%, 50%) =="
# The quarantine policy must complete at every injection rate, with a
# clean report at 0% and a non-empty quarantine set at 50%.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
for rate in 0 0.05 0.5; do
    inject_args=()
    if [ "$rate" != 0 ]; then
        inject_args=(--inject-faults "$rate")
    fi
    cargo run -q --release -p palu-cli -- simulate \
        --core 0.5 --leaves 0.2 --lambda 2.0 --alpha 2.0 \
        --nodes 20000 --nv 5000 --windows 16 --seed 42 \
        --fail-policy quarantine --max-retries 0 \
        "${inject_args[@]}" \
        --metrics "$smoke_dir/fault_$rate.json" \
        --out "$smoke_dir/fault_$rate.txt" 2>/dev/null
    quarantined=$(grep -A 10 '"fault_report"' "$smoke_dir/fault_$rate.json" \
        | grep '"quarantined"' | head -1 | tr -dc '0-9')
    echo "rate $rate: quarantined $quarantined window(s)"
    if [ "$rate" = 0 ] && [ "$quarantined" != 0 ]; then
        echo "ci: unexpected quarantine with injection disabled" >&2
        exit 1
    fi
    if [ "$rate" = 0.5 ] && [ "$quarantined" = 0 ]; then
        echo "ci: 50% injection should quarantine at least one window" >&2
        exit 1
    fi
done

echo "== crash-recovery smoke (SIGKILL mid-capture + resume) =="
# A durable capture killed with SIGKILL must resume from its journal
# and finish with output bit-identical to an uninterrupted run
# (DESIGN.md §4f). Same workload, three runs: reference, killed,
# resumed.
jr_dir="$smoke_dir/journal"
mkdir -p "$jr_dir"
sim_args=(simulate
    --core 0.5 --leaves 0.2 --lambda 2.0 --alpha 2.0
    --nodes 20000 --nv 150000 --windows 64 --seed 7
    --fail-policy quarantine --max-retries 1)

cargo run -q --release -p palu-cli -- "${sim_args[@]}" \
    --out "$jr_dir/ref.txt" --metrics "$jr_dir/ref.json" 2>/dev/null

cargo run -q --release -p palu-cli -- "${sim_args[@]}" \
    --journal "$jr_dir/capture.journal" \
    --out "$jr_dir/killed.txt" --metrics "$jr_dir/killed.json" 2>/dev/null &
sim_pid=$!
# Let the journal accumulate a prefix of window records, then kill -9.
for _ in $(seq 1 400); do
    jr_size=$(stat -c %s "$jr_dir/capture.journal" 2>/dev/null || echo 0)
    [ "$jr_size" -gt 5000 ] && break
    sleep 0.02
done
kill -9 "$sim_pid" 2>/dev/null || true
wait "$sim_pid" 2>/dev/null || true

cargo run -q --release -p palu-cli -- "${sim_args[@]}" \
    --journal "$jr_dir/capture.journal" --resume \
    --out "$jr_dir/resumed.txt" --metrics "$jr_dir/resumed.json" \
    2>"$jr_dir/resume.log"

cmp "$jr_dir/ref.txt" "$jr_dir/resumed.txt"
# The fault-report section must match the uninterrupted run exactly
# (the journal counters that differ by construction precede it).
sed -n '/"fault_report"/,$p' "$jr_dir/ref.json" >"$jr_dir/ref_report.json"
sed -n '/"fault_report"/,$p' "$jr_dir/resumed.json" >"$jr_dir/resumed_report.json"
diff "$jr_dir/ref_report.json" "$jr_dir/resumed_report.json"
recovered=$(grep '"windows_recovered"' "$jr_dir/resumed.json" | head -1 | tr -dc '0-9')
echo "crash recovery: resume replayed ${recovered:-0} journaled window(s), output bit-identical"
if [ "${recovered:-0}" = 0 ]; then
    echo "ci: resume should replay at least one journaled window" >&2
    exit 1
fi

# A corrupted journal must be refused with a typed fault — no panic,
# no silent partial resume — and the refusal must carry the dedicated
# JOURNAL_CORRUPT exit code (4). Flip one payload byte in the middle
# of the file (well past the header record, inside a window record).
jr_size=$(stat -c %s "$jr_dir/capture.journal")
flip_at=$((jr_size / 2))
cur=$(dd if="$jr_dir/capture.journal" bs=1 skip="$flip_at" count=1 status=none | od -An -tu1 | tr -d '[:space:]')
printf "$(printf '\\x%02x' $(((cur + 1) % 256)))" \
    | dd of="$jr_dir/capture.journal" bs=1 seek="$flip_at" conv=notrunc status=none
corrupt_status=0
cargo run -q --release -p palu-cli -- "${sim_args[@]}" \
    --journal "$jr_dir/capture.journal" --resume \
    --out "$jr_dir/corrupt.txt" 2>"$jr_dir/corrupt.log" || corrupt_status=$?
if [ "$corrupt_status" != 4 ]; then
    echo "ci: corrupted journal must refuse with exit 4, got $corrupt_status" >&2
    cat "$jr_dir/corrupt.log" >&2
    exit 1
fi
grep -qiE "checksum|malformed" "$jr_dir/corrupt.log" || {
    echo "ci: corruption refusal should name a typed journal fault:" >&2
    cat "$jr_dir/corrupt.log" >&2
    exit 1
}
echo "crash recovery: corrupted journal refused with a typed fault (exit 4)"

echo "== federated shard-kill smoke (SIGKILL one shard + resume + merge) =="
# Federation contract (DESIGN.md §4j): shard the capture three ways,
# SIGKILL one shard mid-journal, resume only that shard, merge the
# journals hierarchically — and the pooled output must be byte-
# identical to the single-process run. A merge missing a whole shard
# at the default coverage threshold must refuse with exit 6.
fed_dir="$smoke_dir/federation"
mkdir -p "$fed_dir"
fed_args=(
    --core 0.5 --leaves 0.2 --lambda 2.0 --alpha 2.0
    --nodes 20000 --nv 150000 --windows 12 --seed 7
    --fail-policy quarantine --max-retries 1)

cargo run -q --release -p palu-cli -- simulate "${fed_args[@]}" \
    --out "$fed_dir/ref.txt" 2>/dev/null

for shard in 0 2; do
    cargo run -q --release -p palu-cli -- shard "${fed_args[@]}" \
        --shard-index "$shard" --shards 3 \
        --journal "$fed_dir/shard$shard.journal" \
        --out "$fed_dir/shard$shard.txt" 2>/dev/null
done

# Shard 1 gets killed mid-capture once its journal holds a prefix…
cargo run -q --release -p palu-cli -- shard "${fed_args[@]}" \
    --shard-index 1 --shards 3 \
    --journal "$fed_dir/shard1.journal" \
    --out "$fed_dir/shard1.txt" 2>/dev/null &
shard_pid=$!
for _ in $(seq 1 400); do
    fed_size=$(stat -c %s "$fed_dir/shard1.journal" 2>/dev/null || echo 0)
    [ "$fed_size" -gt 5000 ] && break
    sleep 0.02
done
kill -9 "$shard_pid" 2>/dev/null || true
wait "$shard_pid" 2>/dev/null || true

# …a merge without it must refuse at the default coverage of 1.0
# with the dedicated COVERAGE exit code (6)…
coverage_status=0
cargo run -q --release -p palu-cli -- pool "${fed_args[@]}" \
    --merge "$fed_dir/shard0.journal" "$fed_dir/shard2.journal" \
    --out "$fed_dir/refused.txt" 2>"$fed_dir/refused.log" || coverage_status=$?
if [ "$coverage_status" != 6 ]; then
    echo "ci: merge below coverage must refuse with exit 6, got $coverage_status" >&2
    cat "$fed_dir/refused.log" >&2
    exit 1
fi
grep -q "coverage below threshold" "$fed_dir/refused.log" || {
    echo "ci: coverage refusal should name the threshold:" >&2
    cat "$fed_dir/refused.log" >&2
    exit 1
}

# …then the killed shard resumes from its torn journal and the full
# merge reproduces the single-process bytes.
cargo run -q --release -p palu-cli -- shard "${fed_args[@]}" \
    --shard-index 1 --shards 3 \
    --journal "$fed_dir/shard1.journal" --resume \
    --out "$fed_dir/shard1.txt" 2>/dev/null

cargo run -q --release -p palu-cli -- pool "${fed_args[@]}" \
    --merge "$fed_dir/shard0.journal" "$fed_dir/shard1.journal" "$fed_dir/shard2.journal" \
    --metrics "$fed_dir/merge.json" \
    --out "$fed_dir/merged.txt" 2>/dev/null
cmp "$fed_dir/ref.txt" "$fed_dir/merged.txt"
covered=$(grep -m 1 '"covered"' "$fed_dir/merge.json" | tr -dc '0-9')
if [ "${covered:-0}" != 12 ]; then
    echo "ci: healed federation should cover all 12 windows, got ${covered:-0}" >&2
    exit 1
fi
echo "federation: shard killed, resumed, merged — output bit-identical; coverage refusal exits 6"

echo "== federation service smoke (serve + submit, kills on both sides) =="
# Service contract (DESIGN.md §4k): the same three shard journals
# submitted over TCP must serve a fit byte-identical to the single-
# process output. Along the way: a below-coverage fit refuses with
# exit 6, a client whose every frame tears mid-write exhausts its
# retry deadline with exit 8 without corrupting the server, a
# SIGKILL'd server rebuilds coverage from its journal directory on
# restart, and `submit --shutdown` drains gracefully.
# The server is exec'd directly (not via cargo run) so kill -9 hits
# the serving process itself.
palu_bin=./target/release/palu-cli
srv_dir="$smoke_dir/service"
mkdir -p "$srv_dir/journals"

"$palu_bin" serve "${fed_args[@]}" \
    --shards 3 --journal-dir "$srv_dir/journals" \
    --addr-file "$srv_dir/addr1" 2>"$srv_dir/serve1.log" &
serve_pid=$!
for _ in $(seq 1 200); do
    [ -s "$srv_dir/addr1" ] && break
    sleep 0.02
done
addr=$(cat "$srv_dir/addr1")

# Two shards submit concurrently from separate client processes…
"$palu_bin" submit "${fed_args[@]}" --server "$addr" \
    --journal "$fed_dir/shard0.journal" --shard-index 0 --shards 3 \
    2>/dev/null &
sub0_pid=$!
"$palu_bin" submit "${fed_args[@]}" --server "$addr" \
    --journal "$fed_dir/shard2.journal" --shard-index 2 --shards 3 \
    2>/dev/null
wait "$sub0_pid"

# …a fit at 2/3 coverage refuses with the dedicated COVERAGE code…
fit_status=0
"$palu_bin" fit --server "$addr" \
    --out "$srv_dir/partial.txt" 2>"$srv_dir/partial.log" || fit_status=$?
if [ "$fit_status" != 6 ]; then
    echo "ci: partial service fit must refuse with exit 6, got $fit_status" >&2
    cat "$srv_dir/partial.log" >&2
    exit 1
fi
grep -q "coverage" "$srv_dir/partial.log" || {
    echo "ci: partial-fit refusal should name coverage:" >&2
    cat "$srv_dir/partial.log" >&2
    exit 1
}

# …shard 1's first client dies mid-frame on every attempt (the seeded
# injector tears each frame half-written) and must give up with the
# SERVICE_UNAVAILABLE code, leaving the server healthy…
torn_status=0
"$palu_bin" submit "${fed_args[@]}" --server "$addr" \
    --journal "$fed_dir/shard1.journal" --shard-index 1 --shards 3 \
    --wire-faults truncate=1.0 \
    --retry-deadline-ms 400 --backoff-base-ms 5 --backoff-cap-ms 20 \
    2>"$srv_dir/torn.log" || torn_status=$?
if [ "$torn_status" != 8 ]; then
    echo "ci: a client torn on every frame must exit 8, got $torn_status" >&2
    cat "$srv_dir/torn.log" >&2
    exit 1
fi

# …then the server itself is SIGKILL'd and restarted on the same
# journal directory: coverage rebuilds from disk…
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
"$palu_bin" serve "${fed_args[@]}" \
    --shards 3 --journal-dir "$srv_dir/journals" \
    --addr-file "$srv_dir/addr2" --metrics "$srv_dir/serve2.json" \
    2>"$srv_dir/serve2.log" &
serve2_pid=$!
for _ in $(seq 1 200); do
    [ -s "$srv_dir/addr2" ] && break
    sleep 0.02
done
addr2=$(cat "$srv_dir/addr2")
grep -q "recovered" "$srv_dir/serve2.log" || {
    echo "ci: restarted server should report recovered windows:" >&2
    cat "$srv_dir/serve2.log" >&2
    exit 1
}

# …the killed shard's client retries cleanly and resumes…
"$palu_bin" submit "${fed_args[@]}" --server "$addr2" \
    --journal "$fed_dir/shard1.journal" --shard-index 1 --shards 3 \
    2>/dev/null

# …and the served fit is byte-identical to the single-process output.
"$palu_bin" fit --server "$addr2" --out "$srv_dir/fit.txt" 2>/dev/null
cmp "$fed_dir/ref.txt" "$srv_dir/fit.txt"

"$palu_bin" submit --server "$addr2" --shutdown 2>/dev/null
wait "$serve2_pid"
srv_covered=$(grep -m 1 '"covered"' "$srv_dir/serve2.json" | tr -dc '0-9')
if [ "${srv_covered:-0}" != 12 ]; then
    echo "ci: drained service should cover all 12 windows, got ${srv_covered:-0}" >&2
    exit 1
fi
echo "service: client torn mid-frame exits 8, server SIGKILL'd and recovered, fit byte-identical; partial fit exits 6"

echo "== dispatcher smoke (lease supervision, kills on both sides, zombie fenced) =="
# Dispatcher contract (DESIGN.md §4l): workers that only ever talk to
# the dispatcher produce a merged fit byte-identical to the single-
# process run — under a worker killed mid-capture AND a dispatcher
# SIGKILL + restart — and a zombie worker resuming a pre-kill lease is
# refused with the dedicated DISPATCH_FENCED code (9) without being
# able to change coverage.
dsp_dir="$smoke_dir/dispatch"
mkdir -p "$dsp_dir/journals" "$dsp_dir/work"

"$palu_bin" dispatch "${fed_args[@]}" --shards 4 \
    --journal-dir "$dsp_dir/journals" \
    --lease-ms 1500 --heartbeat-ms 300 \
    --addr-file "$dsp_dir/addr1" 2>"$dsp_dir/dispatch1.log" &
dsp_pid=$!
for _ in $(seq 1 200); do
    [ -s "$dsp_dir/addr1" ] && break
    sleep 0.02
done
dsp_addr=$(cat "$dsp_dir/addr1")

# Worker 100 takes a lease and dies mid-capture (--chaos-kill leaves
# the exact on-disk state of a SIGKILL at that phase: a partial local
# journal plus the lease-state file, and nothing submitted)…
"$palu_bin" work "${fed_args[@]}" --server "$dsp_addr" --worker 100 \
    --work-dir "$dsp_dir/work" --chaos-kill mid-capture 2>"$dsp_dir/work100.log"
test -s "$dsp_dir/work/worker-100.lease"

# …then the dispatcher itself is SIGKILL'd with that lease still
# outstanding, and restarted over the same journal directory
# (--linger keeps the fit queryable after the plan completes)…
kill -9 "$dsp_pid" 2>/dev/null || true
wait "$dsp_pid" 2>/dev/null || true
"$palu_bin" dispatch "${fed_args[@]}" --shards 4 \
    --journal-dir "$dsp_dir/journals" \
    --lease-ms 1500 --heartbeat-ms 300 --linger \
    --addr-file "$dsp_dir/addr2" --metrics "$dsp_dir/dispatch2.json" \
    2>"$dsp_dir/dispatch2.log" &
dsp2_pid=$!
for _ in $(seq 1 200); do
    [ -s "$dsp_dir/addr2" ] && break
    sleep 0.02
done
dsp_addr2=$(cat "$dsp_dir/addr2")

# …three fresh workers complete the plan between them…
"$palu_bin" work "${fed_args[@]}" --server "$dsp_addr2" --worker 0 \
    --work-dir "$dsp_dir/work" 2>"$dsp_dir/work0.log" &
w0_pid=$!
"$palu_bin" work "${fed_args[@]}" --server "$dsp_addr2" --worker 1 \
    --work-dir "$dsp_dir/work" 2>"$dsp_dir/work1.log" &
w1_pid=$!
"$palu_bin" work "${fed_args[@]}" --server "$dsp_addr2" --worker 2 \
    --work-dir "$dsp_dir/work" 2>"$dsp_dir/work2.log"
wait "$w0_pid"
wait "$w1_pid"

# …and the dispatched fit is byte-identical to the single-process run.
"$palu_bin" fit --server "$dsp_addr2" --out "$dsp_dir/fit.txt" 2>/dev/null
cmp "$fed_dir/ref.txt" "$dsp_dir/fit.txt"

# The killed worker wakes up as a zombie holding its pre-kill lease:
# resubmission is byte-idempotent (coverage cannot change) and the
# stale fence is refused with the dedicated code.
fence_status=0
"$palu_bin" work "${fed_args[@]}" --server "$dsp_addr2" --worker 100 \
    --work-dir "$dsp_dir/work" --resume-lease 2>"$dsp_dir/zombie.log" || fence_status=$?
if [ "$fence_status" != 9 ]; then
    echo "ci: a fenced zombie must exit 9, got $fence_status" >&2
    cat "$dsp_dir/zombie.log" >&2
    exit 1
fi
grep -qi "fenced" "$dsp_dir/zombie.log" || {
    echo "ci: the zombie refusal should say fenced:" >&2
    cat "$dsp_dir/zombie.log" >&2
    exit 1
}
"$palu_bin" fit --server "$dsp_addr2" --out "$dsp_dir/fit2.txt" 2>/dev/null
cmp "$fed_dir/ref.txt" "$dsp_dir/fit2.txt"

"$palu_bin" submit --server "$dsp_addr2" --shutdown 2>/dev/null
wait "$dsp2_pid"
dsp_covered=$(grep -m 1 '"covered"' "$dsp_dir/dispatch2.json" | tr -dc '0-9')
if [ "${dsp_covered:-0}" != 12 ]; then
    echo "ci: dispatched capture should cover all 12 windows, got ${dsp_covered:-0}" >&2
    exit 1
fi
echo "dispatcher: worker killed mid-capture, dispatcher SIGKILL'd and restarted, fit byte-identical; zombie fenced (exit 9), coverage untouched"

echo "== stall watchdog smoke =="
# A window exceeding --window-deadline-ms is classified Stalled and
# flows through quarantine into the fault report.
cargo run -q --release -p palu-cli -- simulate \
    --core 0.5 --leaves 0.2 --lambda 2.0 --alpha 2.0 \
    --nodes 20000 --nv 5000 --windows 2 --seed 9 \
    --inject-faults stall=1.0 --window-deadline-ms 40 \
    --fail-policy quarantine --max-retries 0 \
    --metrics "$jr_dir/stall.json" --out "$jr_dir/stall.txt" 2>/dev/null
grep -q '"stalled"' "$jr_dir/stall.json" || {
    echo "ci: stalled windows must be visible in the fault report" >&2
    exit 1
}
echo "stall watchdog: Stalled verdicts present in fault report"

echo "== memory-budget governor smoke =="
# A tight-but-feasible budget must complete with degradation rungs
# recorded in the metrics JSON and pooled output bit-identical to the
# unbudgeted run; a budget below the degraded floor must be refused at
# admission with exit 1 and the typed message (DESIGN.md §4g). The
# 1 600 000 B limit sits between this workload's floor (~760 KB) and
# its undegraded peak (~2.8 MB) — rung engagement is deterministic.
bud_dir="$smoke_dir/budget"
mkdir -p "$bud_dir"
bud_args=(simulate
    --core 0.5 --leaves 0.2 --lambda 2.0 --alpha 2.0
    --nodes 20000 --nv 10000 --windows 6 --seed 9 --threads 4)

cargo run -q --release -p palu-cli -- "${bud_args[@]}" \
    --out "$bud_dir/ref.txt" 2>/dev/null
cargo run -q --release -p palu-cli -- "${bud_args[@]}" \
    --memory-budget 1600000 \
    --metrics "$bud_dir/tight.json" --out "$bud_dir/tight.txt" 2>/dev/null
cmp "$bud_dir/ref.txt" "$bud_dir/tight.txt"
degradations=$(grep -m 1 '"degradations"' "$bud_dir/tight.json" | tr -dc '0-9')
echo "tight budget: ${degradations:-0} degradation rung(s), output bit-identical"
if [ "${degradations:-0}" = 0 ]; then
    echo "ci: a tight budget should engage the degradation ladder" >&2
    exit 1
fi

admission_status=0
cargo run -q --release -p palu-cli -- "${bud_args[@]}" \
    --memory-budget 64k \
    --out "$bud_dir/refused.txt" 2>"$bud_dir/refused.log" || admission_status=$?
if [ "$admission_status" != 3 ]; then
    echo "ci: an impossible budget must be refused with exit 3, got $admission_status" >&2
    cat "$bud_dir/refused.log" >&2
    exit 1
fi
grep -q "admission refused" "$bud_dir/refused.log" || {
    echo "ci: budget refusal should cite admission:" >&2
    cat "$bud_dir/refused.log" >&2
    exit 1
}
echo "impossible budget: refused at admission with a typed fault (exit 3)"

echo "ci: all green"
