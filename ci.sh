#!/usr/bin/env bash
# Tier-1 entry point: offline build, full test suite (which includes
# the palu-lint gate via tests/lint_gate.rs), and an explicit lint run
# so CI logs show the findings even when the test harness truncates.
set -euo pipefail
cd "$(dirname "$0")"

if cargo fmt --version >/dev/null 2>&1; then
    echo "== fmt =="
    cargo fmt --check
fi

echo "== build (release, offline) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== lint gate =="
cargo run -q --release -p palu-lint

echo "ci: all green"
