#!/usr/bin/env bash
# Tier-1 entry point: offline build, full test suite (which includes
# the palu-lint gate via tests/lint_gate.rs), and an explicit lint run
# so CI logs show the findings even when the test harness truncates.
set -euo pipefail
cd "$(dirname "$0")"

if cargo fmt --version >/dev/null 2>&1; then
    echo "== fmt =="
    cargo fmt --check
fi

echo "== build (release, offline) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== lint gate =="
cargo run -q --release -p palu-lint

echo "== pipeline determinism (1, 2, 8 threads) =="
# The sharded pipeline's hard contract, run explicitly so CI logs show
# it even when the quiet test harness truncates: bit-identical pooled
# results at 1, 2, and 8 threads on a 64-window workload.
cargo test -q -p palu-suite --test parallel_pipeline \
    parallel_pipeline_is_bit_identical_to_serial_at_1_2_8_threads
# Same contract end-to-end through the bench binary, which also emits
# results/BENCH_pipeline.json with the per-stage metrics timings.
cargo run -q --release -p palu-bench --bin pipeline
test -s results/BENCH_pipeline.json

echo "ci: all green"
