#!/usr/bin/env bash
# Tier-1 entry point: offline build, full test suite (which includes
# the palu-lint gate via tests/lint_gate.rs), and an explicit lint run
# so CI logs show the findings even when the test harness truncates.
set -euo pipefail
cd "$(dirname "$0")"

if cargo fmt --version >/dev/null 2>&1; then
    echo "== fmt =="
    cargo fmt --check
fi

echo "== build (release, offline) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== lint gate =="
cargo run -q --release -p palu-lint

echo "== pipeline determinism (1, 2, 8 threads) =="
# The sharded pipeline's hard contract, run explicitly so CI logs show
# it even when the quiet test harness truncates: bit-identical pooled
# results at 1, 2, and 8 threads on a 64-window workload.
cargo test -q -p palu-suite --test parallel_pipeline \
    parallel_pipeline_is_bit_identical_to_serial_at_1_2_8_threads
# Same contract end-to-end through the bench binary, which also emits
# results/BENCH_pipeline.json with the per-stage metrics timings.
cargo run -q --release -p palu-bench --bin pipeline
test -s results/BENCH_pipeline.json

echo "== fault-injection smoke matrix (0%, 5%, 50%) =="
# The quarantine policy must complete at every injection rate, with a
# clean report at 0% and a non-empty quarantine set at 50%.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
for rate in 0 0.05 0.5; do
    inject_args=()
    if [ "$rate" != 0 ]; then
        inject_args=(--inject-faults "$rate")
    fi
    cargo run -q --release -p palu-cli -- simulate \
        --core 0.5 --leaves 0.2 --lambda 2.0 --alpha 2.0 \
        --nodes 20000 --nv 5000 --windows 16 --seed 42 \
        --fail-policy quarantine --max-retries 0 \
        "${inject_args[@]}" \
        --metrics "$smoke_dir/fault_$rate.json" \
        --out "$smoke_dir/fault_$rate.txt" 2>/dev/null
    quarantined=$(grep -A 10 '"fault_report"' "$smoke_dir/fault_$rate.json" \
        | grep '"quarantined"' | head -1 | tr -dc '0-9')
    echo "rate $rate: quarantined $quarantined window(s)"
    if [ "$rate" = 0 ] && [ "$quarantined" != 0 ]; then
        echo "ci: unexpected quarantine with injection disabled" >&2
        exit 1
    fi
    if [ "$rate" = 0.5 ] && [ "$quarantined" = 0 ]; then
        echo "ci: 50% injection should quarantine at least one window" >&2
        exit 1
    fi
done

echo "ci: all green"
