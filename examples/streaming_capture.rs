//! Constant-memory streaming capture.
//!
//! Real observatories process unbounded packet streams; this example
//! runs the full Section II pipeline — window segmentation, sparse
//! aggregation, logarithmic pooling, per-bin mean/σ — over a long
//! synthesized stream without ever holding more than one window in
//! memory, then fits the modified Zipf–Mandelbrot model to the pooled
//! result.
//!
//! ```text
//! cargo run --release --example streaming_capture
//! ```

use palu_stats::rng::Xoshiro256pp;
use palu_suite::prelude::*;
use palu_traffic::packets::{EdgeIntensity, PacketSynthesizer};
use palu_traffic::pipeline::Measurement;
use palu_traffic::stream::StreamStats;

fn main() {
    // The underlying network and its conversation synthesizer.
    let params =
        PaluParams::from_core_leaf_fractions(0.5, 0.2, 2.5, 2.0, 0.5).expect("valid parameters");
    let net = params
        .generator(100_000)
        .expect("valid generator")
        .generate(&mut Xoshiro256pp::seed_from_u64(1));
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    let synthesizer = PacketSynthesizer::new(&net.graph, EdgeIntensity::Uniform, &mut rng);

    // A 2-million-packet stream, produced lazily: at no point does the
    // program hold more than one 100k-packet window.
    let total_packets = 2_000_000usize;
    let n_v = 100_000usize;
    println!(
        "streaming {total_packets} packets through {}-packet windows ({} windows)…",
        n_v,
        total_packets / n_v
    );
    let mut packet_rng = Xoshiro256pp::seed_from_u64(3);
    let stream = (0..total_packets).map(move |_| {
        synthesizer
            .draw(&mut packet_rng)
            .expect("synthesizer built from a non-empty network")
    });

    let pooled = StreamStats::new(Measurement::UndirectedDegree).consume(stream, n_v);
    println!(
        "pooled {} windows; d_max = {}; D(1) = {:.4}",
        pooled.windows,
        pooled.d_max,
        pooled.mean.value(0)
    );

    // Weighted fit using the streaming σ estimates.
    let fit = ZmFitter::with_objective(FitObjective::WeightedLeastSquares)
        .fit(&pooled.mean, Some(&pooled.weights(1.0)))
        .expect("fit succeeds");
    // Report plain pooled L2 so the number is comparable across runs
    // (the weighted objective's scale depends on the σ estimates).
    let l2 = fit
        .model()
        .expect("valid fitted model")
        .pooled()
        .l2_distance_sq(&pooled.mean)
        .sqrt();
    println!(
        "weighted ZM fit over the stream: α = {:.3}, δ = {:+.3} (pooled L2 {:.5})",
        fit.alpha, fit.delta, l2
    );
    assert!(pooled.windows == (total_packets / n_v) as u64);
    println!("constant-memory pipeline complete.");
}
