//! Window-size invariance: only `p` changes with the window.
//!
//! Section III-A: "for a given network, the parameters λ, C, L, U, and
//! α should be the same regardless of the window size. As the window
//! size increases, the only parameter that will change is p." This
//! example observes one fixed underlying network through five window
//! sizes and re-estimates the invariants at each.
//!
//! ```text
//! cargo run --release --example window_invariance
//! ```

use palu::invariance::InvarianceSweep;
use palu_suite::prelude::*;

fn main() {
    let truth =
        PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).expect("valid parameters");
    let ps = [0.3, 0.45, 0.6, 0.75, 0.9];

    println!("one underlying network (300k nodes), observed through 5 window sizes\n");
    let report = InvarianceSweep::default()
        .simulated(&truth, &ps, 300_000, 4242)
        .expect("sweep succeeds");

    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "p", "C", "L", "U", "λ", "α"
    );
    println!(
        "{:>6} {:>9.4} {:>9.4} {:>9.4} {:>9.3} {:>9.3}   (truth)",
        "-", truth.core, truth.leaves, truth.unattached, truth.lambda, truth.alpha
    );
    for row in &report.rows {
        println!(
            "{:>6.2} {:>9.4} {:>9.4} {:>9.4} {:>9.3} {:>9.3}",
            row.p,
            row.recovered.core,
            row.recovered.leaves,
            row.recovered.unattached,
            row.recovered.lambda,
            row.recovered.alpha
        );
    }

    let (c, l, u, lam, alpha) = report.spreads();
    println!("\nrelative spread across windows:");
    println!("  C: {c:.3}   L: {l:.3}   U: {u:.3}   λ: {lam:.3}   α: {alpha:.3}");
    println!("\nα and C hold steady while p sweeps 3x — the paper's claim, measured.");
    println!("The star-side invariants (U, λ) carry more estimation variance at small");
    println!("windows: with λp < 1 the Poisson bump hides under the core, exactly the");
    println!("regime the paper's moment-ratio estimator was designed to survive.");
    assert!(alpha < 0.1, "α should be extremely stable, spread {alpha}");
    assert!(c < 0.3, "C should be stable, spread {c}");
}
