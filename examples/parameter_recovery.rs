//! Section IV-B parameter estimation on synthetic data.
//!
//! Walks the estimation pipeline step by step — tail regression for
//! `(α, c)`, the moment-ratio solve for `Λ`, the residual sum for `u`,
//! and the `d = 1` equation for `l` — and then inverts the simplified
//! constants back to the window-invariant `(C, L, U, λ)`.
//!
//! ```text
//! cargo run --release --example parameter_recovery
//! ```

use palu::estimate::{EstimateOptions, LambdaMethod};
use palu_stats::rng::Xoshiro256pp;
use palu_suite::prelude::*;

fn main() {
    let truth =
        PaluParams::from_core_leaf_fractions(0.45, 0.25, 4.0, 2.0, 0.6).expect("valid parameters");
    println!(
        "ground truth: C = {:.3}, L = {:.3}, U = {:.4}, λ = {}, α = {}, p = {}",
        truth.core, truth.leaves, truth.unattached, truth.lambda, truth.alpha, truth.p
    );

    // Simulate the observation.
    let net = truth
        .generator(300_000)
        .expect("valid generator")
        .generate(&mut Xoshiro256pp::seed_from_u64(7));
    let observed = sample_edges(&net.graph, truth.p, &mut Xoshiro256pp::seed_from_u64(8));
    let histogram = observed.degree_histogram();
    println!(
        "observed degree histogram: {} visible nodes, f(1) = {:.3}, d_max = {}",
        histogram.total(),
        histogram.fraction_degree_one(),
        histogram.d_max().unwrap_or(0)
    );

    // The paper's pipeline (its formulas end-to-end).
    let estimator = PaluEstimator::default();
    let paper = estimator.estimate(&histogram).expect("paper pipeline");
    println!("\npaper pipeline (Section IV-B as published):");
    println!(
        "  tail regression: α = {:.3}, c = {:.4} (R² = {:.4}, {} points)",
        paper.simplified.alpha, paper.simplified.c, paper.tail_r_squared, paper.tail_points
    );
    println!(
        "  moment ratio:    Λ = {:.3}  (λp = {:.3})",
        paper.simplified.capital_lambda,
        paper.simplified.lambda_p()
    );
    println!(
        "  star amplitude:  u = {:.4} (residual mass {:.4})",
        paper.simplified.u, paper.residual_mass
    );
    println!("  leaf mass:       l = {:.4}", paper.simplified.l);

    // The exact-thinning pipeline (recommended for sampled data).
    let (exact, recovered) = estimator
        .estimate_exact(&histogram, truth.p)
        .expect("exact pipeline");
    println!("\nexact-thinning pipeline:");
    println!(
        "  λp = {:.3}  u = {:.4}  l = {:.4}",
        exact.simplified.lambda_p(),
        exact.simplified.u,
        exact.simplified.l
    );
    println!("\nrecovered underlying parameters (truth in parentheses):");
    println!("  C = {:.3} ({:.3})", recovered.core, truth.core);
    println!("  L = {:.3} ({:.3})", recovered.leaves, truth.leaves);
    println!(
        "  U = {:.4} ({:.4})",
        recovered.unattached, truth.unattached
    );
    println!("  λ = {:.2} ({:.2})", recovered.lambda, truth.lambda);
    println!("  α = {:.2} ({:.2})", recovered.alpha, truth.alpha);

    // Ablation: the point-wise Λ estimator the paper warns about.
    let pointwise = PaluEstimator::new(EstimateOptions {
        lambda_method: LambdaMethod::Pointwise,
        ..Default::default()
    })
    .estimate(&histogram)
    .expect("pointwise pipeline");
    println!(
        "\nablation — Λ estimators on the same data: ratio → λp = {:.3}, point-wise → λp = {:.3}",
        paper.simplified.lambda_p(),
        pointwise.simplified.lambda_p()
    );
    println!(
        "(true λp = {:.3}; the ratio estimator is the robust one, as the paper argues)",
        truth.lambda * truth.p
    );
}
