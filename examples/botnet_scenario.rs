//! Botnet-heavy traffic: where the plain Zipf–Mandelbrot fit breaks
//! and the hybrid PALU model explains the data.
//!
//! The paper (Section I) suspects "many of these leaves and unattached
//! links are formed by bot traffic". This example builds two
//! observatories — one dominated by normal PA-core traffic, one
//! flooded with unattached bot stars — and compares how well the
//! 2-parameter ZM model and the full PALU law fit each.
//!
//! ```text
//! cargo run --release --example botnet_scenario
//! ```

use palu_stats::logbin::DifferentialCumulative;
use palu_stats::rng::Xoshiro256pp;
use palu_suite::prelude::*;

/// Observe a parameter set and return (pooled distribution, ZM
/// residual, PALU residual).
fn analyze(params: &PaluParams, seed: u64) -> (f64, f64) {
    let net = params
        .generator(200_000)
        .expect("valid generator")
        .generate(&mut Xoshiro256pp::seed_from_u64(seed));
    let observed = sample_edges(
        &net.graph,
        params.p,
        &mut Xoshiro256pp::seed_from_u64(seed + 1),
    );
    let h = observed.degree_histogram();
    let pooled = DifferentialCumulative::from_histogram(&h);

    // Zipf–Mandelbrot fit (Section II-B).
    let zm = ZmFitter::default().fit(&pooled, None).expect("zm fit");
    let zm_residual = zm.objective.sqrt();

    // Full PALU fit: estimate the simplified constants, rebuild the
    // model degree law, pool, compare.
    let est = PaluEstimator::default().estimate(&h).expect("palu fit");
    let s = est.simplified;
    let d_max = h.d_max().unwrap_or(1);
    let raw = |d: u64| {
        if d == 1 {
            s.degree_one_fraction()
        } else {
            s.degree_fraction_poisson(d)
        }
    };
    let z: f64 = (1..=d_max).map(raw).sum();
    let model = DifferentialCumulative::from_pmf(|d| raw(d) / z, d_max);
    let palu_residual = model.l2_distance_sq(&pooled).sqrt();
    (zm_residual, palu_residual)
}

fn main() {
    // Normal traffic: strong core, modest leaves, few stars.
    let normal =
        PaluParams::from_core_leaf_fractions(0.6, 0.2, 1.5, 2.0, 0.5).expect("valid parameters");
    // Botnet surge: small core, swarm of unattached stars with larger
    // mean size (bots talking to a handful of peers each).
    let botnet =
        PaluParams::from_core_leaf_fractions(0.1, 0.05, 6.0, 2.5, 0.5).expect("valid parameters");

    println!("scenario comparison: pooled-distribution fit residuals (lower = better)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>14}",
        "traffic", "ZM resid", "PALU resid", "PALU advantage"
    );

    let (zm_n, palu_n) = analyze(&normal, 100);
    println!(
        "{:<16} {:>12.4} {:>12.4} {:>13.1}x",
        "normal",
        zm_n,
        palu_n,
        zm_n / palu_n
    );

    let (zm_b, palu_b) = analyze(&botnet, 200);
    println!(
        "{:<16} {:>12.4} {:>12.4} {:>13.1}x",
        "botnet-heavy",
        zm_b,
        palu_b,
        zm_b / palu_b
    );

    println!();
    println!(
        "ZM handles normal traffic well but degrades {}x on the botnet surge;",
        (zm_b / zm_n).round()
    );
    println!("the PALU model's explicit unattached-star population absorbs the deviation —");
    println!("the paper's Figure 3 upper-right panel, reproduced.");

    assert!(zm_b > 2.0 * zm_n, "botnet traffic should strain the ZM fit");
    assert!(palu_b < zm_b, "PALU should explain the botnet deviation");
}
