//! A synthetic trunk-line observatory, end to end.
//!
//! Stands in for a MAWI/CAIDA vantage point: synthesizes packet
//! streams from a PALU underlying network, cuts them into windows of
//! exactly `N_V` valid packets, aggregates each window into a sparse
//! matrix, computes the five Figure 1 quantities, and pools
//! `D(d_i) ± σ(d_i)` across consecutive windows — the full Section II
//! measurement methodology.
//!
//! ```text
//! cargo run --release --example traffic_observatory
//! ```

use palu_sparse::quantities::NetworkQuantity;
use palu_suite::prelude::*;
use palu_traffic::observatory::ObservatoryConfig;
use palu_traffic::packets::EdgeIntensity;
use palu_traffic::pipeline::Measurement;

fn main() {
    let params =
        PaluParams::from_core_leaf_fractions(0.55, 0.2, 2.0, 2.0, 0.5).expect("valid parameters");
    let generator = params.generator(120_000).expect("valid generator");

    let mut observatory = Observatory::new(
        ObservatoryConfig {
            name: "Synthetic-Tokyo".into(),
            date: "2026-07-06".into(),
            n_v: 200_000,
        },
        &generator,
        EdgeIntensity::Pareto { shape: 1.5 },
        42,
    );
    println!(
        "observatory '{}': N_V = {} packets/window, effective p ≈ {:.3}",
        observatory.config().name,
        observatory.config().n_v,
        observatory.effective_p()
    );

    // Capture 12 consecutive windows.
    let windows = observatory.windows(12);

    // Per-window Table I aggregates for the first few windows.
    println!("\nper-window aggregates (Table I):");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10}",
        "t", "N_V", "links", "sources", "dests"
    );
    for w in windows.iter().take(4) {
        let a = w.aggregates();
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>10}",
            w.t(),
            a.valid_packets,
            a.unique_links,
            a.unique_sources,
            a.unique_destinations
        );
    }

    // Pool every Figure 1 quantity (plus the undirected degree) over
    // all windows, concurrently.
    let measurements = [
        Measurement::UndirectedDegree,
        Measurement::NodeVolume,
        Measurement::Quantity(NetworkQuantity::SourcePackets),
        Measurement::Quantity(NetworkQuantity::SourceFanOut),
        Measurement::Quantity(NetworkQuantity::LinkPackets),
        Measurement::Quantity(NetworkQuantity::DestinationFanIn),
        Measurement::Quantity(NetworkQuantity::DestinationPackets),
    ];
    let pooled = Pipeline::pool_many(&measurements, &windows);

    println!("\npooled D(d_i) ± σ over {} windows:", windows.len());
    for (m, dist) in measurements.iter().zip(&pooled) {
        let name = match m {
            Measurement::UndirectedDegree => "undirected degree",
            Measurement::NodeVolume => "node volume (weighted)",
            Measurement::Quantity(q) => q.name(),
        };
        let d1 = dist.mean.value(0);
        let fit = ZmFitter::default()
            .fit(&dist.mean, Some(&dist.weights(1.0)))
            .expect("fit succeeds");
        println!(
            "  {name:<22} D(1) = {d1:.3}  d_max = {:<8} ZM fit: α = {:.2}, δ = {:+.2}",
            dist.d_max, fit.alpha, fit.delta
        );
    }

    println!(
        "\nevery quantity shows the paper's signature: dominant d = 1 mass with a power-law tail."
    );
}
