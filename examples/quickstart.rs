//! Quickstart: generate a PALU network, observe it through a window,
//! and fit the modified Zipf–Mandelbrot model — the paper's whole
//! pipeline in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use palu_stats::rng::Xoshiro256pp;
use palu_suite::prelude::*;

fn main() {
    // 1. Pick model parameters: half the nodes in the PA core
    //    (α = 2), a fifth as leaves, the rest unattached stars with
    //    mean size λ = 4, observed through a window retaining 50% of
    //    underlying edges.
    let params =
        PaluParams::from_core_leaf_fractions(0.5, 0.2, 4.0, 2.0, 0.5).expect("valid parameters");
    println!("PALU parameters: {params:#?}");

    // 2. Generate the underlying network (100k visible nodes).
    let net = params
        .generator(100_000)
        .expect("valid generator")
        .generate(&mut Xoshiro256pp::seed_from_u64(1));
    println!(
        "underlying network: {} nodes, {} edges, {} invisible isolated star centers",
        net.graph.n_nodes(),
        net.graph.n_edges(),
        net.isolated_star_centers.len()
    );

    // 3. Observe it: keep each edge independently with probability p.
    let observed = sample_edges(&net.graph, params.p, &mut Xoshiro256pp::seed_from_u64(2));
    let histogram = observed.degree_histogram();
    println!(
        "observed network: {} visible nodes, supernode degree {}",
        histogram.total(),
        histogram.d_max().unwrap_or(0)
    );

    // 4. Pool into the differential cumulative representation and fit
    //    the modified Zipf–Mandelbrot model (Section II-B).
    let pooled = DifferentialCumulative::from_histogram(&histogram);
    let fit = ZmFitter::default()
        .fit(&pooled, None)
        .expect("fit succeeds");
    println!(
        "best-fit modified Zipf–Mandelbrot: α = {:.3}, δ = {:.3} (residual {:.5})",
        fit.alpha,
        fit.delta,
        fit.objective.sqrt()
    );

    // 5. Recover the underlying parameters from the observation alone
    //    (Section IV-B pipeline, exact-thinning variant).
    let (_, recovered) = PaluEstimator::default()
        .estimate_exact(&histogram, params.p)
        .expect("estimation succeeds");
    println!(
        "recovered invariants: C = {:.3} (true {:.3}), L = {:.3} (true {:.3}), λ = {:.2} (true {:.2})",
        recovered.core, params.core, recovered.leaves, params.leaves, recovered.lambda, params.lambda
    );
}
