//! Randomized-input fallback for the gated proptest suite
//! (`tests/proptest_palu.rs`): the same invariants, driven by the
//! in-repo deterministic RNG so they run in the offline build.

use palu::analytic::ObservedPrediction;
use palu::params::PaluParams;
use palu::simplified::{AmplitudeConvention, SimplifiedParams};
use palu::zm::ZipfMandelbrot;
use palu::zm_connection::PaluCurve;
use palu_stats::rng::{Rng, Xoshiro256pp};

const CASES: usize = 120;

fn uniform(rng: &mut Xoshiro256pp, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

/// Draw a valid PALU parameter set (C + L < 1, paper ranges),
/// rejecting draws the constructor refuses.
fn valid_params(rng: &mut Xoshiro256pp) -> PaluParams {
    loop {
        let c = uniform(rng, 0.05, 0.8);
        let l = uniform(rng, 0.0, 0.5);
        if c + l >= 0.999 {
            continue;
        }
        let lam = uniform(rng, 0.1, 10.0);
        let a = uniform(rng, 1.5, 3.0);
        let p = uniform(rng, 0.05, 1.0);
        if let Ok(params) = PaluParams::from_core_leaf_fractions(c, l, lam, a, p) {
            return params;
        }
    }
}

#[test]
fn constraint_always_holds() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x8001);
    for _ in 0..CASES {
        let params = valid_params(&mut rng);
        let cv = PaluParams::constraint_value(
            params.core,
            params.leaves,
            params.unattached,
            params.lambda,
        );
        assert!((cv - 1.0).abs() < 1e-9);
        assert!(params.unattached >= 0.0);
        assert!(params.isolated_fraction() <= params.unattached);
    }
}

#[test]
fn with_p_preserves_invariants() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x8002);
    for _ in 0..CASES {
        let params = valid_params(&mut rng);
        let p2 = uniform(&mut rng, 0.05, 1.0);
        let moved = params.with_p(p2).unwrap();
        assert_eq!(moved.core, params.core);
        assert_eq!(moved.leaves, params.leaves);
        assert_eq!(moved.unattached, params.unattached);
        assert_eq!(moved.lambda, params.lambda);
        assert_eq!(moved.alpha, params.alpha);
        assert_eq!(moved.p, p2);
    }
}

#[test]
fn role_fractions_partition_and_law_decreases() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x8003);
    for _ in 0..CASES {
        let params = valid_params(&mut rng);
        let pred = ObservedPrediction::new(&params).unwrap();
        let total = pred.core_fraction + pred.leaf_fraction + pred.unattached_fraction;
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pred.core_fraction >= 0.0);
        assert!(pred.unattached_link_fraction <= pred.unattached_fraction + 1e-12);
        assert!(pred.degree_one_fraction > 0.0);
        assert!(pred.visible_fraction > 0.0);
        // Beyond max(λp, 2) + a margin the law is strictly decreasing.
        let start = (params.lambda * params.p).ceil() as u64 + 3;
        let mut prev = pred.degree_fraction(start);
        for d in (start + 1)..(start + 40) {
            let cur = pred.degree_fraction(d);
            assert!(cur <= prev * (1.0 + 1e-12), "d={d}");
            prev = cur;
        }
    }
}

#[test]
fn simplified_round_trip_both_conventions() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x8004);
    for _ in 0..CASES {
        let params = valid_params(&mut rng);
        let s = SimplifiedParams::from_params(&params).unwrap();
        let back = s
            .to_underlying_with(params.p, AmplitudeConvention::Paper)
            .unwrap();
        assert!((back.core - params.core).abs() < 1e-6);
        assert!((back.leaves - params.leaves).abs() < 1e-6);
        assert!((back.lambda - params.lambda).abs() < 1e-6);
        let thinned = s
            .to_underlying_with(params.p, AmplitudeConvention::Thinned)
            .unwrap();
        let cv = PaluParams::constraint_value(
            thinned.core,
            thinned.leaves,
            thinned.unattached,
            thinned.lambda,
        );
        assert!((cv - 1.0).abs() < 1e-9);
        assert!(thinned.core <= back.core + 1e-9);
    }
}

#[test]
fn zm_pmf_is_normalized_and_gradient_matches() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x8005);
    for _ in 0..CASES {
        let alpha = uniform(&mut rng, 0.5, 4.0);
        let delta = uniform(&mut rng, -0.9, 10.0);
        let d_max = 1u64 << rng.gen_range(4u32..12);
        let zm = ZipfMandelbrot::new(alpha, delta, d_max).unwrap();
        let total: f64 = (1..=d_max).map(|d| zm.pmf(d)).sum();
        assert!((total - 1.0).abs() < 1e-8);
        let mut prev = zm.pmf(1);
        for d in 2..20.min(d_max) {
            let cur = zm.pmf(d);
            assert!(cur <= prev);
            prev = cur;
        }
        assert!((zm.pooled().total_mass() - 1.0).abs() < 1e-8);

        // ∂_δ ρ = −α·ρ(α+1) against the definition.
        let alpha = uniform(&mut rng, 1.2, 3.5);
        let delta = uniform(&mut rng, -0.5, 5.0);
        let d = rng.gen_range(1u64..100);
        let zm = ZipfMandelbrot::new(alpha, delta, 1024).unwrap();
        let expected = -alpha * (d as f64 + delta).powf(-(alpha + 1.0));
        assert!((zm.rho_gradient_delta(d) - expected).abs() < 1e-12 * expected.abs().max(1e-300));
    }
}

#[test]
fn palu_curve_amplitude_and_delta_identities() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x8006);
    for _ in 0..CASES {
        let alpha = uniform(&mut rng, 1.2, 3.5);
        let delta = uniform(&mut rng, -0.9, 5.0);
        let r = uniform(&mut rng, 1.01, 50.0);
        let c = PaluCurve::new(alpha, delta, r, 512).unwrap();
        assert!((c.value(1) - (1.0 + c.amplitude())).abs() < 1e-12);
        let delta_back = (c.amplitude() + 1.0).powf(-1.0 / alpha) - 1.0;
        assert!((delta_back - delta).abs() < 1e-9);

        // δ from the model is nonpositive and round-trips.
        let u_over_c = uniform(&mut rng, 0.0, 5.0);
        let lambda = uniform(&mut rng, 0.1, 10.0);
        let p = uniform(&mut rng, 0.05, 1.0);
        let alpha = uniform(&mut rng, 1.5, 3.0);
        let delta = PaluCurve::delta_from_model(u_over_c, lambda, p, alpha).unwrap();
        assert!(delta <= 1e-12, "δ = {delta}");
        assert!(delta > -1.0);
        let zeta_alpha = palu_stats::special::riemann_zeta(alpha).unwrap();
        let rhs = u_over_c * (-(lambda * p)).exp() * zeta_alpha * p.powf(-alpha) + 1.0;
        assert!(((1.0 + delta).powf(-alpha) - rhs).abs() < 1e-9 * rhs);
    }
}

#[test]
fn node_counts_sum_close_to_budget() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x8007);
    for _ in 0..CASES {
        let params = valid_params(&mut rng);
        let n = rng.gen_range(1000u64..1_000_000);
        let (c, l, u) = params.node_counts(n);
        let star_factor = 1.0 + params.lambda - (-params.lambda).exp();
        let total = c as f64 + l as f64 + u as f64 * star_factor;
        assert!((total - n as f64).abs() < 0.01 * n as f64 + 16.0);
    }
}
