//! Property-based tests for the PALU model layer: parameter algebra,
//! model identities, and fit/inversion round trips over randomly drawn
//! parameter sets.
// Gated: `proptest` is declared as an empty feature so the offline
// build never resolves the external crate. To run these tests, add
// `proptest = "1"` under [dev-dependencies] (requires network) and
// build with `--features proptest`. The in-repo fallback coverage
// lives in each crate's tests/random_inputs.rs.
#![cfg(feature = "proptest")]

use palu::analytic::ObservedPrediction;
use palu::params::PaluParams;
use palu::simplified::{AmplitudeConvention, SimplifiedParams};
use palu::zm::ZipfMandelbrot;
use palu::zm_connection::PaluCurve;
use proptest::prelude::*;

/// Strategy over valid PALU parameter sets (C + L < 1, paper ranges).
fn valid_params() -> impl Strategy<Value = PaluParams> {
    (
        0.05f64..0.8, // core
        0.0f64..0.5,  // leaves (bounded so C + L < 1 usually)
        0.1f64..10.0, // lambda
        1.5f64..3.0,  // alpha
        0.05f64..1.0, // p
    )
        .prop_filter_map("C+L must leave room", |(c, l, lam, a, p)| {
            if c + l >= 0.999 {
                return None;
            }
            PaluParams::from_core_leaf_fractions(c, l, lam, a, p).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn constraint_always_holds(params in valid_params()) {
        let cv = PaluParams::constraint_value(
            params.core,
            params.leaves,
            params.unattached,
            params.lambda,
        );
        prop_assert!((cv - 1.0).abs() < 1e-9);
        prop_assert!(params.unattached >= 0.0);
        prop_assert!(params.isolated_fraction() <= params.unattached);
    }

    #[test]
    fn with_p_preserves_invariants(params in valid_params(), p2 in 0.05f64..1.0) {
        let moved = params.with_p(p2).unwrap();
        prop_assert_eq!(moved.core, params.core);
        prop_assert_eq!(moved.leaves, params.leaves);
        prop_assert_eq!(moved.unattached, params.unattached);
        prop_assert_eq!(moved.lambda, params.lambda);
        prop_assert_eq!(moved.alpha, params.alpha);
        prop_assert_eq!(moved.p, p2);
    }

    #[test]
    fn role_fractions_partition(params in valid_params()) {
        let pred = ObservedPrediction::new(&params).unwrap();
        let total = pred.core_fraction + pred.leaf_fraction + pred.unattached_fraction;
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(pred.core_fraction >= 0.0);
        prop_assert!(pred.unattached_link_fraction <= pred.unattached_fraction + 1e-12);
        prop_assert!(pred.degree_one_fraction > 0.0);
        prop_assert!(pred.visible_fraction > 0.0);
    }

    #[test]
    fn degree_law_decreases_beyond_the_bump(params in valid_params()) {
        let pred = ObservedPrediction::new(&params).unwrap();
        // Beyond max(λp, 2)+ a margin, the law is strictly decreasing.
        let start = (params.lambda * params.p).ceil() as u64 + 3;
        let mut prev = pred.degree_fraction(start);
        for d in (start + 1)..(start + 40) {
            let cur = pred.degree_fraction(d);
            prop_assert!(cur <= prev * (1.0 + 1e-12), "d={d}");
            prev = cur;
        }
    }

    #[test]
    fn simplified_round_trip_both_conventions(params in valid_params()) {
        let s = SimplifiedParams::from_params(&params).unwrap();
        // Paper convention round-trips exactly (matching construction).
        let back = s.to_underlying_with(params.p, AmplitudeConvention::Paper).unwrap();
        prop_assert!((back.core - params.core).abs() < 1e-6);
        prop_assert!((back.leaves - params.leaves).abs() < 1e-6);
        prop_assert!((back.lambda - params.lambda).abs() < 1e-6);
        // Thinned convention divides the amplitude by p^{α−1} instead
        // of p^α — a smaller correction, so the recovered core
        // proportion is LOWER (the Paper convention over-attributes
        // tail mass to the core on thinned data). Still a valid set.
        let thinned = s.to_underlying_with(params.p, AmplitudeConvention::Thinned).unwrap();
        let cv = PaluParams::constraint_value(
            thinned.core,
            thinned.leaves,
            thinned.unattached,
            thinned.lambda,
        );
        prop_assert!((cv - 1.0).abs() < 1e-9);
        prop_assert!(thinned.core <= back.core + 1e-9);
    }

    #[test]
    fn moment_ratio_is_increasing_and_above_two(x in 1e-4f64..40.0, dx in 1e-3f64..5.0) {
        let r1 = SimplifiedParams::moment_ratio(x);
        let r2 = SimplifiedParams::moment_ratio(x + dx);
        prop_assert!(r1 > 2.0);
        prop_assert!(r2 > r1);
    }

    #[test]
    fn zm_pmf_is_normalized_and_ordered(alpha in 0.5f64..4.0, delta in -0.9f64..10.0,
                                        dmax_exp in 4u32..12) {
        let d_max = 1u64 << dmax_exp;
        let zm = ZipfMandelbrot::new(alpha, delta, d_max).unwrap();
        let total: f64 = (1..=d_max).map(|d| zm.pmf(d)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        // pmf decreasing in d.
        let mut prev = zm.pmf(1);
        for d in 2..20.min(d_max) {
            let cur = zm.pmf(d);
            prop_assert!(cur <= prev);
            prev = cur;
        }
        // Pooled distribution conserves mass.
        prop_assert!((zm.pooled().total_mass() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn zm_gradient_identity(alpha in 1.2f64..3.5, delta in -0.5f64..5.0, d in 1u64..100) {
        let zm = ZipfMandelbrot::new(alpha, delta, 1024).unwrap();
        // ∂_δ ρ = −α·ρ(α+1): check against the definition.
        let expected = -alpha * (d as f64 + delta).powf(-(alpha + 1.0));
        prop_assert!((zm.rho_gradient_delta(d) - expected).abs() < 1e-12 * expected.abs().max(1e-300));
    }

    #[test]
    fn palu_curve_amplitude_identity(alpha in 1.2f64..3.5, delta in -0.9f64..5.0,
                                     r in 1.01f64..50.0) {
        let c = PaluCurve::new(alpha, delta, r, 512).unwrap();
        // PALU(1) = 1 + amplitude, exactly (both terms at d = 1).
        prop_assert!((c.value(1) - (1.0 + c.amplitude())).abs() < 1e-12);
        // u/c = (1+δ)^{−α} − 1 inverts to δ.
        let delta_back = (c.amplitude() + 1.0).powf(-1.0 / alpha) - 1.0;
        prop_assert!((delta_back - delta).abs() < 1e-9);
    }

    #[test]
    fn delta_from_model_is_nonpositive_and_invertible(
        u_over_c in 0.0f64..5.0,
        lambda in 0.1f64..10.0,
        p in 0.05f64..1.0,
        alpha in 1.5f64..3.0,
    ) {
        let delta = PaluCurve::delta_from_model(u_over_c, lambda, p, alpha).unwrap();
        prop_assert!(delta <= 1e-12, "δ = {delta}");
        prop_assert!(delta > -1.0);
        // Round trip through the defining identity.
        let zeta_alpha = palu_stats::special::riemann_zeta(alpha).unwrap();
        let rhs = u_over_c * (-(lambda * p)).exp() * zeta_alpha * p.powf(-alpha) + 1.0;
        prop_assert!(((1.0 + delta).powf(-alpha) - rhs).abs() < 1e-9 * rhs);
    }

    #[test]
    fn node_counts_sum_close_to_budget(params in valid_params(), n in 1000u64..1_000_000) {
        let (c, l, u) = params.node_counts(n);
        // The three sections' *visible-equivalent* total approximates
        // the budget: C + L + U(1 + λ − e^{−λ}) = 1.
        let star_factor = 1.0 + params.lambda - (-params.lambda).exp();
        let total = c as f64 + l as f64 + u as f64 * star_factor;
        prop_assert!((total - n as f64).abs() < 0.01 * n as f64 + 16.0);
    }
}
