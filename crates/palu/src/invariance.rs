//! Window-size invariance (Section III-A, point 4).
//!
//! "Importantly, for a given network, the parameters λ, C, L, U, and α
//! should be the same regardless of the window size. As the window
//! size increases, the only parameter that will change is p."
//!
//! [`InvarianceSweep`] runs the estimation pipeline over a sweep of
//! window sizes against the *same* underlying network (analytically or
//! by simulation) and reports how stable the recovered invariants are.
//! Experiment E-A3 regenerates the paper-level claim from this module.

use crate::analytic::ObservedPrediction;
use crate::estimate::PaluEstimator;
use crate::params::PaluParams;
use palu_stats::error::StatsError;
use palu_stats::histogram::DegreeHistogram;

/// One row of a sweep: the window `p` and the parameters recovered at
/// that window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvarianceRow {
    /// Window parameter used.
    pub p: f64,
    /// Recovered underlying parameters at this window.
    pub recovered: PaluParams,
}

/// Result of an invariance sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct InvarianceReport {
    /// The ground-truth parameters the sweep was generated from.
    pub truth: PaluParams,
    /// Per-window recoveries.
    pub rows: Vec<InvarianceRow>,
}

/// Relative spread (max − min) / mean of a sequence; 0 for constants.
fn relative_spread(values: impl Iterator<Item = f64> + Clone) -> f64 {
    let (mut min, mut max, mut sum, mut n) = (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0usize);
    for v in values {
        min = min.min(v);
        max = max.max(v);
        sum += v;
        n += 1;
    }
    if n == 0 || sum == 0.0 {
        return 0.0;
    }
    (max - min) / (sum / n as f64)
}

impl InvarianceReport {
    /// Relative spread of each invariant across the sweep:
    /// `(C, L, U, λ, α)`.
    pub fn spreads(&self) -> (f64, f64, f64, f64, f64) {
        (
            relative_spread(self.rows.iter().map(|r| r.recovered.core)),
            relative_spread(self.rows.iter().map(|r| r.recovered.leaves)),
            relative_spread(self.rows.iter().map(|r| r.recovered.unattached)),
            relative_spread(self.rows.iter().map(|r| r.recovered.lambda)),
            relative_spread(self.rows.iter().map(|r| r.recovered.alpha)),
        )
    }

    /// Worst relative spread across all five invariants.
    pub fn worst_spread(&self) -> f64 {
        let (a, b, c, d, e) = self.spreads();
        a.max(b).max(c).max(d).max(e)
    }
}

/// Sweep driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct InvarianceSweep {
    /// Estimator used at each window.
    pub estimator: PaluEstimator,
}

impl InvarianceSweep {
    /// Analytic sweep: at each `p`, build the model-predicted degree
    /// histogram (scaled to `n` nodes) and run the estimator on it.
    /// Measures the pipeline's intrinsic (noise-free) invariance.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (e.g. a `p` so small the tail
    /// vanishes).
    pub fn analytic(
        &self,
        truth: &PaluParams,
        ps: &[f64],
        n: u64,
        d_max: u64,
    ) -> Result<InvarianceReport, StatsError> {
        let mut rows = Vec::with_capacity(ps.len());
        for &p in ps {
            let at_p = truth.with_p(p)?;
            let pred = ObservedPrediction::new(&at_p)?;
            let mut h = DegreeHistogram::new();
            for d in 1..=d_max {
                let count = (pred.degree_fraction(d) * n as f64).round() as u64;
                if count > 0 {
                    h.increment(d, count);
                }
            }
            let (_, recovered) = self.estimator.estimate_underlying(&h, p)?;
            rows.push(InvarianceRow { p, recovered });
        }
        Ok(InvarianceReport {
            truth: *truth,
            rows,
        })
    }

    /// Simulated sweep: generate one underlying network, observe it at
    /// each `p` (fresh sampling randomness per window), estimate.
    ///
    /// # Errors
    ///
    /// Propagates generation and estimation errors.
    pub fn simulated(
        &self,
        truth: &PaluParams,
        ps: &[f64],
        n: u64,
        seed: u64,
    ) -> Result<InvarianceReport, StatsError> {
        use palu_graph::sample::ObservedNetwork;
        use palu_stats::rng::SeedSequence;
        let seq = SeedSequence::new(seed);
        let net = truth
            .generator(n)?
            .generate(&mut seq.rng(palu_stats::rng::streams::CORE));
        let mut rows = Vec::with_capacity(ps.len());
        for (i, &p) in ps.iter().enumerate() {
            let mut rng = seq.rng(palu_stats::rng::streams::SAMPLING + 100 * i as u64);
            let obs = ObservedNetwork::observe(&net, p, &mut rng);
            // Simulated data is genuinely edge-thinned, so the exact
            // pipeline applies (the paper-formula pipeline drifts with
            // p — see EXPERIMENTS.md E-A3).
            let (_, recovered) = self.estimator.estimate_exact(&obs.degree_histogram(), p)?;
            rows.push(InvarianceRow { p, recovered });
        }
        Ok(InvarianceReport {
            truth: *truth,
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> PaluParams {
        PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap()
    }

    #[test]
    fn analytic_sweep_is_tightly_invariant() {
        let report = InvarianceSweep::default()
            .analytic(&truth(), &[0.3, 0.5, 0.7, 0.9], 100_000_000, 1 << 14)
            .unwrap();
        assert_eq!(report.rows.len(), 4);
        // Each recovered row should be near the truth.
        for row in &report.rows {
            assert!(
                (row.recovered.core - 0.5).abs() < 0.08,
                "p={}: C={}",
                row.p,
                row.recovered.core
            );
            assert!(
                (row.recovered.lambda - 3.0).abs() < 0.5,
                "p={}: λ={}",
                row.p,
                row.recovered.lambda
            );
        }
        // And the spread across windows is small.
        assert!(
            report.worst_spread() < 0.25,
            "worst spread {}",
            report.worst_spread()
        );
    }

    #[test]
    fn simulated_sweep_recovers_invariants() {
        // The star-side parameters are identifiable when the observed
        // Poisson bump clears the core, λp ≳ 1.5 (see the adaptive
        // residual window in `estimate`); sweep within that envelope.
        let report = InvarianceSweep::default()
            .simulated(&truth(), &[0.6, 0.75, 0.9], 200_000, 99)
            .unwrap();
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(
                (row.recovered.lambda - 3.0).abs() < 1.0,
                "p={}: λ={}",
                row.p,
                row.recovered.lambda
            );
            assert!(
                (row.recovered.alpha - 2.0).abs() < 0.15,
                "p={}: α={}",
                row.p,
                row.recovered.alpha
            );
            assert!(
                (row.recovered.core - 0.5).abs() < 0.12,
                "p={}: C={}",
                row.p,
                row.recovered.core
            );
        }
    }

    #[test]
    fn small_window_reports_stars_absent_not_garbage() {
        // Below the identifiability envelope (λp ≈ 1.2 at p = 0.4 for
        // λ = 3) the estimator must degrade to "no star population"
        // with the mass absorbed by leaves — never to absurd values.
        let report = InvarianceSweep::default()
            .simulated(&truth(), &[0.4], 200_000, 7)
            .unwrap();
        let rec = report.rows[0].recovered;
        assert!(
            rec.lambda == 0.0 || (rec.lambda - 3.0).abs() < 1.5,
            "λ {}",
            rec.lambda
        );
        assert!(rec.unattached < 0.5, "U {}", rec.unattached);
        assert!((rec.alpha - 2.0).abs() < 0.15, "α {}", rec.alpha);
    }

    #[test]
    fn relative_spread_behaviour() {
        assert_eq!(relative_spread([2.0, 2.0, 2.0].into_iter()), 0.0);
        let s = relative_spread([1.0, 2.0, 3.0].into_iter());
        assert!((s - 1.0).abs() < 1e-12); // (3−1)/2
        assert_eq!(relative_spread(std::iter::empty()), 0.0);
    }

    #[test]
    fn spreads_report_all_five_invariants() {
        let report = InvarianceSweep::default()
            .analytic(&truth(), &[0.4, 0.8], 100_000_000, 1 << 14)
            .unwrap();
        let (c, l, u, lam, alpha) = report.spreads();
        for (name, v) in [("C", c), ("L", l), ("U", u), ("λ", lam), ("α", alpha)] {
            assert!((0.0..0.5).contains(&v), "{name} spread {v}");
        }
    }
}
