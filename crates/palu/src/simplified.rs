//! The Section IV-B simplified degree distributions.
//!
//! The paper compresses the observed degree law into four constants
//! that "do not depend on d":
//!
//! ```text
//! c = C·p^α / (ζ(α)·V)      l = L·p / V
//! u = U·e^{−λp} / V         Λ = e·λ·p
//! ```
//!
//! with the simplified laws (Equations 2–4):
//!
//! ```text
//! d = 1 :  f(1) ≈ c + l + u·(…)        (leaf + unattached mass)
//! d ≥ 2 :  f(d) ≈ c·d^{−α} + u·(Λ/d)^d
//! d ≥ 10:  f(d) ≈ c·d^{−α}
//! ```
//!
//! The `(Λ/d)^d` term is the Stirling-collapsed Poisson
//! `(λp)^d/d! ≈ (eλp/d)^d / √(2πd)`; this module provides both the
//! paper's `(Λ/d)^d` form and the exact Poisson form, and the tests
//! quantify the gap. The inverse map [`SimplifiedParams::to_underlying`]
//! recovers `(C, L, U, λ)` from `(c, l, u, Λ)` given `p` — the final
//! step of the estimation pipeline.

use crate::params::PaluParams;
use crate::ObservedPrediction;
use palu_stats::error::StatsError;
use palu_stats::special::{ln_factorial, riemann_zeta};

/// Which amplitude law relates the fitted tail constant `c` to the
/// underlying core proportion `C`.
///
/// The paper's Section IV degree law uses `c = C·p^α/(ζ(α)·V)`, but the
/// exact Binomial-thinning computation
/// ([`crate::analytic::thinned_core_pmf`]) — and simulation (E-A1) —
/// give a tail amplitude of `C·p^{α−1}/(ζ(α)·V)`: each observed degree
/// `d` collects the underlying degrees in a bucket of width `1/p`
/// around `d/p`. The paper's own visible-core term in `V` integrates
/// to the `p^{α−1}` form, so we read the `p^α` as an internal
/// inconsistency of the paper and default data-facing inversions to
/// [`AmplitudeConvention::Thinned`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmplitudeConvention {
    /// `c = C·p^α/(ζ(α)·V)` — the formula as published.
    Paper,
    /// `c = C·p^{α−1}/(ζ(α)·V)` — exact-thinning asymptotics.
    Thinned,
}

impl AmplitudeConvention {
    /// The exponent on `p` in the amplitude law.
    pub fn p_exponent(&self, alpha: f64) -> f64 {
        match self {
            AmplitudeConvention::Paper => alpha,
            AmplitudeConvention::Thinned => alpha - 1.0,
        }
    }
}

/// The window-dependent constants `(c, l, u, Λ, α)` of Section IV-B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplifiedParams {
    /// Core amplitude `c = C·p^α/(ζ(α)·V)`.
    pub c: f64,
    /// Leaf mass `l = L·p/V`.
    pub l: f64,
    /// Star-center amplitude `u = U·e^{−λp}/V`.
    pub u: f64,
    /// Poisson scale `Λ = e·λ·p`.
    pub capital_lambda: f64,
    /// Core exponent `α` (unchanged from the underlying model).
    pub alpha: f64,
}

impl SimplifiedParams {
    /// Compute the simplified constants from full parameters.
    ///
    /// # Errors
    ///
    /// Propagates the `V` computation's domain error for `p = 0`.
    pub fn from_params(params: &PaluParams) -> Result<Self, StatsError> {
        let pred = ObservedPrediction::new(params)?;
        let v = pred.visible_fraction;
        let zeta_alpha = riemann_zeta(params.alpha)?;
        let lp = params.lambda * params.p;
        Ok(SimplifiedParams {
            c: params.core * params.p.powf(params.alpha) / (zeta_alpha * v),
            l: params.leaves * params.p / v,
            u: params.unattached * (-lp).exp() / v,
            capital_lambda: std::f64::consts::E * lp,
            alpha: params.alpha,
        })
    }

    /// Construct directly (estimation-pipeline output).
    pub fn from_raw(c: f64, l: f64, u: f64, capital_lambda: f64, alpha: f64) -> Self {
        SimplifiedParams {
            c,
            l,
            u,
            capital_lambda,
            alpha,
        }
    }

    /// The underlying Poisson mean `λp = Λ/e`.
    pub fn lambda_p(&self) -> f64 {
        self.capital_lambda / std::f64::consts::E
    }

    /// Equation (3) with the paper's `(Λ/d)^d` Stirling form, valid
    /// for `d ≥ 2`.
    pub fn degree_fraction_stirling(&self, d: u64) -> f64 {
        debug_assert!(d >= 2);
        self.c * (d as f64).powf(-self.alpha)
            + self.u * (self.capital_lambda / d as f64).powf(d as f64)
    }

    /// Equation (3) with the exact Poisson term `u·(λp)^d/d!·e^{λp}`…
    /// — i.e. the unattached-center contribution
    /// `(U/V)·e^{−λp}·(λp)^d/d!`, which in simplified constants is
    /// `u·(λp)^d/d!`. Valid for `d ≥ 2`.
    pub fn degree_fraction_poisson(&self, d: u64) -> f64 {
        debug_assert!(d >= 2);
        let lp = self.lambda_p();
        let star = if lp > 0.0 {
            self.u * (d as f64 * lp.ln() - ln_factorial(d)).exp()
        } else {
            0.0
        };
        self.c * (d as f64).powf(-self.alpha) + star
    }

    /// Equation (4): the pure power-law tail `c·d^{−α}` (`d ≥ 10`).
    pub fn degree_fraction_tail(&self, d: u64) -> f64 {
        self.c * (d as f64).powf(-self.alpha)
    }

    /// Equation (2): the degree-1 fraction `c + l + (unattached d=1
    /// mass)`. With exact Poisson accounting the unattached part is
    /// `u·λp·(1 + e^{λp})` (observed star leaves `= (U/V)·λp =
    /// u·λp·e^{λp}`, plus centers with exactly one observed leaf
    /// `= u·λp`).
    pub fn degree_one_fraction(&self) -> f64 {
        let lp = self.lambda_p();
        self.c + self.l + self.u * lp * (1.0 + lp.exp())
    }

    /// The moment ratio of the star residuals the estimation pipeline
    /// inverts (Section IV-B):
    ///
    /// ```text
    /// R(x) = Σ_{d≥2} d·r(d) / Σ_{d≥2} r(d) = x + x²/(eˣ − x − 1)
    /// ```
    ///
    /// with `x = λp` and `r(d) = u·x^d/d!` the Poisson residual. (The
    /// paper writes the ratio in terms of `Λ`; with the exact Poisson
    /// residual the natural variable is `x = Λ/e`. The Taylor limit
    /// `R(0⁺) = 2` matches the paper's small-`Λ` expansion `2 + Λ/3`
    /// under `Λ → x`.)
    pub fn moment_ratio(x: f64) -> f64 {
        debug_assert!(x > 0.0);
        if x < 1e-3 {
            // Taylor: R(x) = 2 + x/3 + x²/18 + O(x³). The direct
            // formula suffers catastrophic cancellation in eˣ − x − 1
            // for small x; below 1e-3 the series is the accurate
            // branch (error < 1e-10).
            2.0 + x / 3.0 + x * x / 18.0
        } else {
            x + x * x / (x.exp() - x - 1.0)
        }
    }

    /// Recover the window-invariant underlying parameters
    /// `(C, L, U, λ)` from the simplified constants, given the window
    /// `p` that produced them.
    ///
    /// Inversion: `λ = Λ/(e·p)`; then `C/V = c·ζ(α)/p^α`,
    /// `L/V = l/p`, `U/V = u·e^{λp}`, and `V` follows from the
    /// Section III constraint
    /// `C + L + U(1 + λ − e^{−λ}) = 1`.
    ///
    /// # Errors
    ///
    /// [`StatsError::Domain`] if `p ≤ 0` or the recovered proportions
    /// fall outside the model's ranges (signals a bad fit upstream).
    pub fn to_underlying(&self, p: f64) -> Result<PaluParams, StatsError> {
        self.to_underlying_with(p, AmplitudeConvention::Paper)
    }

    /// [`SimplifiedParams::to_underlying`] with an explicit amplitude
    /// convention for the `c → C` inversion (see
    /// [`AmplitudeConvention`] for why data-facing pipelines should
    /// prefer `Thinned`).
    ///
    /// # Errors
    ///
    /// As [`SimplifiedParams::to_underlying`].
    pub fn to_underlying_with(
        &self,
        p: f64,
        convention: AmplitudeConvention,
    ) -> Result<PaluParams, StatsError> {
        if p <= 0.0 {
            return Err(StatsError::domain(
                "SimplifiedParams::to_underlying",
                "p must be positive",
            ));
        }
        let lambda = self.capital_lambda / (std::f64::consts::E * p);
        let zeta_alpha = riemann_zeta(self.alpha)?;
        let c_over_v = self.c * zeta_alpha / p.powf(convention.p_exponent(self.alpha));
        let l_over_v = self.l / p;
        let u_over_v = self.u * (lambda * p).exp();
        // Constraint: (C + L + U(1+λ−e^{−λ})) = 1 ⇒ V · (the same
        // combination of the /V quantities) = 1.
        let combo = c_over_v + l_over_v + u_over_v * (1.0 + lambda - (-lambda).exp());
        if combo <= 0.0 {
            return Err(StatsError::domain(
                "SimplifiedParams::to_underlying",
                "degenerate recovered parameters",
            ));
        }
        let v = 1.0 / combo;
        PaluParams::new(
            c_over_v * v,
            l_over_v * v,
            u_over_v * v,
            lambda,
            self.alpha,
            p,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PaluParams;

    fn params() -> PaluParams {
        PaluParams::from_core_leaf_fractions(0.5, 0.2, 1.5, 2.0, 0.3).unwrap()
    }

    #[test]
    fn constants_match_definitions() {
        let pr = params();
        let s = SimplifiedParams::from_params(&pr).unwrap();
        let pred = ObservedPrediction::new(&pr).unwrap();
        let v = pred.visible_fraction;
        let z = riemann_zeta(2.0).unwrap();
        assert!((s.c - 0.5 * 0.3f64.powi(2) / (z * v)).abs() < 1e-12);
        assert!((s.l - 0.2 * 0.3 / v).abs() < 1e-12);
        let lp: f64 = 1.5 * 0.3;
        assert!((s.u - pr.unattached * (-lp).exp() / v).abs() < 1e-12);
        assert!((s.capital_lambda - std::f64::consts::E * lp).abs() < 1e-12);
        assert!((s.lambda_p() - lp).abs() < 1e-12);
    }

    #[test]
    fn poisson_form_matches_analytic_prediction() {
        // degree_fraction_poisson must agree with the analytic
        // module's exact degree_fraction for d ≥ 2.
        let pr = params();
        let s = SimplifiedParams::from_params(&pr).unwrap();
        let pred = ObservedPrediction::new(&pr).unwrap();
        for d in 2..50u64 {
            let a = s.degree_fraction_poisson(d);
            let b = pred.degree_fraction(d);
            assert!(
                ((a - b) / b).abs() < 1e-10,
                "d={d}: simplified {a}, analytic {b}"
            );
        }
        // And the degree-1 laws agree.
        assert!(
            ((s.degree_one_fraction() - pred.degree_one_fraction) / pred.degree_one_fraction).abs()
                < 1e-10
        );
    }

    #[test]
    fn stirling_form_tracks_poisson_form() {
        // The paper's (Λ/d)^d form is the Poisson term without the
        // √(2πd) Stirling correction — it *overestimates* by that
        // factor, which the paper deems acceptable. Verify the ratio
        // is exactly √(2πd)-ish (within Stirling's 1/(12d) series).
        let pr = PaluParams::from_core_leaf_fractions(0.1, 0.1, 10.0, 2.0, 0.8).unwrap();
        let s = SimplifiedParams::from_params(&pr).unwrap();
        for d in [4u64, 8, 16] {
            let star_stirling = s.u * (s.capital_lambda / d as f64).powf(d as f64);
            let lp = s.lambda_p();
            let star_poisson = s.u * (d as f64 * lp.ln() - ln_factorial(d)).exp();
            let ratio = star_stirling / star_poisson;
            let stirling_factor = (2.0 * std::f64::consts::PI * d as f64).sqrt();
            assert!(
                (ratio / stirling_factor - 1.0).abs() < 0.05,
                "d={d}: ratio {ratio} vs √(2πd) = {stirling_factor}"
            );
        }
    }

    #[test]
    fn tail_form_converges_to_full_form() {
        let s = SimplifiedParams::from_params(&params()).unwrap();
        for d in [10u64, 20, 100] {
            let full = s.degree_fraction_poisson(d);
            let tail = s.degree_fraction_tail(d);
            assert!(
                ((full - tail) / full).abs() < 1e-3,
                "d={d}: full {full}, tail {tail}"
            );
        }
    }

    #[test]
    fn moment_ratio_properties() {
        // R(x) = x + x²/(eˣ−x−1): R(0⁺) = 2, strictly increasing,
        // R(x) → x + small as x → ∞.
        assert!((SimplifiedParams::moment_ratio(1e-9) - 2.0).abs() < 1e-6);
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let r = SimplifiedParams::moment_ratio(x);
            assert!(r > prev, "not increasing at x={x}");
            prev = r;
        }
        // Known value: x = 2 ⇒ R = 2 + 4/(e²−3).
        let expected = 2.0 + 4.0 / (2f64.exp() - 3.0);
        assert!((SimplifiedParams::moment_ratio(2.0) - expected).abs() < 1e-12);
        // Taylor branch continuity at the 1e-3 switch.
        let below = SimplifiedParams::moment_ratio(0.9999e-3);
        let above = SimplifiedParams::moment_ratio(1.0001e-3);
        assert!(
            (below - above).abs() < 1e-6,
            "gap {}",
            (below - above).abs()
        );
    }

    #[test]
    fn moment_ratio_matches_brute_force_poisson_sums() {
        // Verify R(x) against direct Σ d·x^d/d! / Σ x^d/d! over d ≥ 2.
        for &x in &[0.3f64, 1.0, 2.5, 6.0] {
            let mut s0 = 0.0;
            let mut s1 = 0.0;
            let mut term = x; // x^1/1!
            for d in 2..200u64 {
                term *= x / d as f64; // now x^d/d!
                s0 += term;
                s1 += d as f64 * term;
            }
            let brute = s1 / s0;
            let formula = SimplifiedParams::moment_ratio(x);
            assert!(
                (brute - formula).abs() < 1e-9,
                "x={x}: brute {brute}, formula {formula}"
            );
        }
    }

    #[test]
    fn to_underlying_round_trips() {
        // params → simplified → params must be the identity.
        for &(c0, l0, lam, alpha, p) in &[
            (0.5, 0.2, 1.5, 2.0, 0.3),
            (0.7, 0.1, 3.0, 2.5, 0.8),
            (0.2, 0.1, 8.0, 1.7, 0.1),
        ] {
            let pr = PaluParams::from_core_leaf_fractions(c0, l0, lam, alpha, p).unwrap();
            let s = SimplifiedParams::from_params(&pr).unwrap();
            let back = s.to_underlying(p).unwrap();
            assert!((back.core - pr.core).abs() < 1e-9, "C: {back:?}");
            assert!((back.leaves - pr.leaves).abs() < 1e-9);
            assert!((back.unattached - pr.unattached).abs() < 1e-9);
            assert!((back.lambda - pr.lambda).abs() < 1e-9);
            assert_eq!(back.alpha, pr.alpha);
        }
    }

    #[test]
    fn to_underlying_validates() {
        let s = SimplifiedParams::from_raw(0.1, 0.1, 0.05, 2.0, 2.0);
        assert!(s.to_underlying(0.0).is_err());
        assert!(s.to_underlying(-0.5).is_err());
        assert!(s.to_underlying(0.5).is_ok());
    }
}
