//! The PALU model parameters.
//!
//! Section III-A defines the model by:
//!
//! 1. `λ ∈ [0, 20]` — mean degree of the unattached stars;
//! 2. proportions `C, L, U` of core, leaf, and unattached(-star)
//!    populations, constrained by `C + L + U(1 + λ − e^{−λ}) = 1`
//!    (the `U`-section contributes `1 + λ` expected nodes per star,
//!    minus the `e^{−λ}` invisible isolated centers);
//! 3. `α ∈ [1.5, 3]` — core power-law exponent;
//! 4. `p ∈ [0, 1]` — edge-retention (window size) probability.
//!
//! "Importantly, for a given network, the parameters λ, C, L, U, and α
//! should be the same regardless of the window size. As the window size
//! increases, the only parameter that will change is p."

use palu_graph::palu_gen::PaluGenerator;
use palu_stats::error::StatsError;

/// Tolerance for the Section III constraint check.
pub const CONSTRAINT_TOL: f64 = 1e-9;

/// Paper range for the core exponent.
pub const ALPHA_RANGE: (f64, f64) = (1.5, 3.0);

/// Paper range for the star rate.
pub const LAMBDA_RANGE: (f64, f64) = (0.0, 20.0);

/// The full PALU parameter set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaluParams {
    /// Core proportion `C`.
    pub core: f64,
    /// Leaf proportion `L`.
    pub leaves: f64,
    /// Unattached star proportion `U` (star *centers* per node).
    pub unattached: f64,
    /// Mean star size `λ`.
    pub lambda: f64,
    /// Core power-law exponent `α`.
    pub alpha: f64,
    /// Window (edge-retention) probability `p`.
    pub p: f64,
}

impl PaluParams {
    /// The constraint combination `C + L + U(1 + λ − e^{−λ})`; valid
    /// parameters make this 1.
    pub fn constraint_value(core: f64, leaves: f64, unattached: f64, lambda: f64) -> f64 {
        core + leaves + unattached * (1.0 + lambda - (-lambda).exp())
    }

    /// Create a parameter set, validating ranges and the Section III
    /// constraint.
    ///
    /// # Errors
    ///
    /// [`StatsError::Domain`] when any proportion is negative, `α` or
    /// `λ` leave the paper's ranges, `p ∉ [0, 1]`, or the constraint
    /// is violated beyond [`CONSTRAINT_TOL`].
    pub fn new(
        core: f64,
        leaves: f64,
        unattached: f64,
        lambda: f64,
        alpha: f64,
        p: f64,
    ) -> Result<Self, StatsError> {
        if core < 0.0 || leaves < 0.0 || unattached < 0.0 {
            return Err(StatsError::domain(
                "PaluParams::new",
                format!("proportions must be non-negative: C={core}, L={leaves}, U={unattached}"),
            ));
        }
        if !(LAMBDA_RANGE.0..=LAMBDA_RANGE.1).contains(&lambda) {
            return Err(StatsError::domain(
                "PaluParams::new",
                format!(
                    "lambda must be in [{}, {}], got {lambda}",
                    LAMBDA_RANGE.0, LAMBDA_RANGE.1
                ),
            ));
        }
        if !(ALPHA_RANGE.0..=ALPHA_RANGE.1).contains(&alpha) {
            return Err(StatsError::domain(
                "PaluParams::new",
                format!(
                    "alpha must be in [{}, {}], got {alpha}",
                    ALPHA_RANGE.0, ALPHA_RANGE.1
                ),
            ));
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::domain(
                "PaluParams::new",
                format!("p must be in [0, 1], got {p}"),
            ));
        }
        let cv = Self::constraint_value(core, leaves, unattached, lambda);
        // NaN-safe check: `!(… <= tol)` rejects NaN constraint values
        // (e.g. an infinite U multiplied by a zero star coefficient).
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !((cv - 1.0).abs() <= CONSTRAINT_TOL) {
            return Err(StatsError::domain(
                "PaluParams::new",
                format!("constraint C + L + U(1 + λ − e^-λ) = 1 violated: got {cv}"),
            ));
        }
        Ok(PaluParams {
            core,
            leaves,
            unattached,
            lambda,
            alpha,
            p,
        })
    }

    /// Create from free choices of `C` and `L`, solving the constraint
    /// for `U = (1 − C − L) / (1 + λ − e^{−λ})`.
    ///
    /// # Errors
    ///
    /// [`StatsError::Domain`] if `C + L > 1` (no room for the
    /// unattached section) or any other range check fails.
    pub fn from_core_leaf_fractions(
        core: f64,
        leaves: f64,
        lambda: f64,
        alpha: f64,
        p: f64,
    ) -> Result<Self, StatsError> {
        let remainder = 1.0 - core - leaves;
        if remainder < -CONSTRAINT_TOL {
            return Err(StatsError::domain(
                "PaluParams::from_core_leaf_fractions",
                format!("C + L = {} exceeds 1", core + leaves),
            ));
        }
        let denom = 1.0 + lambda - (-lambda).exp();
        // Snap FP dust to an exact zero, and reject the degenerate
        // λ = 0 case with leftover mass: zero-size stars contribute no
        // visible nodes, so no finite U can absorb the remainder.
        let unattached = if remainder <= CONSTRAINT_TOL {
            0.0
        } else if denom <= CONSTRAINT_TOL {
            return Err(StatsError::domain(
                "PaluParams::from_core_leaf_fractions",
                format!("lambda = {lambda} gives stars no visible nodes; C + L must equal 1"),
            ));
        } else {
            remainder / denom
        };
        // When U was snapped to 0, re-normalize C so the constraint
        // holds exactly.
        let core = if unattached == 0.0 {
            1.0 - leaves
        } else {
            core
        };
        Self::new(core, leaves, unattached, lambda, alpha, p)
    }

    /// The same network observed through a different window size.
    ///
    /// # Errors
    ///
    /// [`StatsError::Domain`] if `p ∉ [0, 1]`.
    pub fn with_p(&self, p: f64) -> Result<Self, StatsError> {
        Self::new(
            self.core,
            self.leaves,
            self.unattached,
            self.lambda,
            self.alpha,
            p,
        )
    }

    /// Expected *isolated* (invisible) fraction of the underlying
    /// population: `U·e^{−λ}`.
    pub fn isolated_fraction(&self) -> f64 {
        self.unattached * (-self.lambda).exp()
    }

    /// Split a visible-node budget `n` into generator counts
    /// `(n_core, n_leaves, n_star_centers)`.
    ///
    /// The constraint normalizes *expected visible* nodes to 1, so the
    /// counts below reproduce the proportions in expectation. Star
    /// centers are counted whole (`U·n`), their Poisson leaves arrive
    /// at generation time.
    pub fn node_counts(&self, n: u64) -> (u32, u32, u32) {
        let n_core = (self.core * n as f64).round() as u32;
        let n_leaves = (self.leaves * n as f64).round() as u32;
        let n_centers = (self.unattached * n as f64).round() as u32;
        (n_core.max(2), n_leaves, n_centers)
    }

    /// Build the matching underlying-network generator for a
    /// visible-node budget `n`.
    ///
    /// # Errors
    ///
    /// Propagates generator validation (e.g. a core too small for the
    /// requested budget).
    pub fn generator(&self, n: u64) -> Result<PaluGenerator, StatsError> {
        let (n_core, n_leaves, n_centers) = self.node_counts(n);
        PaluGenerator::new(n_core, n_leaves, n_centers, self.alpha, self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_is_enforced() {
        // Valid: C + L + U(1 + λ − e^-λ) = 1.
        let lambda = 2.0f64;
        let denom = 1.0 + lambda - (-lambda).exp();
        let u = 0.3 / denom;
        assert!(PaluParams::new(0.5, 0.2, u, lambda, 2.0, 0.5).is_ok());
        // Violated: plain C + L + U = 1 is *not* the constraint.
        assert!(PaluParams::new(0.5, 0.2, 0.3, lambda, 2.0, 0.5).is_err());
    }

    #[test]
    fn from_core_leaf_solves_u() {
        let p = PaluParams::from_core_leaf_fractions(0.6, 0.25, 1.0, 2.5, 0.4).unwrap();
        let cv = PaluParams::constraint_value(p.core, p.leaves, p.unattached, p.lambda);
        assert!((cv - 1.0).abs() < 1e-12);
        assert!(p.unattached > 0.0);
        // C + L = 1 → U = 0.
        let p = PaluParams::from_core_leaf_fractions(0.7, 0.3, 1.0, 2.0, 0.5).unwrap();
        assert_eq!(p.unattached, 0.0);
        // C + L > 1 → error.
        assert!(PaluParams::from_core_leaf_fractions(0.8, 0.3, 1.0, 2.0, 0.5).is_err());
    }

    #[test]
    fn range_validation() {
        let mk = |lambda: f64, alpha: f64, p: f64| {
            PaluParams::from_core_leaf_fractions(0.5, 0.2, lambda, alpha, p)
        };
        assert!(mk(-0.1, 2.0, 0.5).is_err());
        assert!(mk(21.0, 2.0, 0.5).is_err());
        assert!(mk(1.0, 1.4, 0.5).is_err());
        assert!(mk(1.0, 3.1, 0.5).is_err());
        assert!(mk(1.0, 2.0, -0.1).is_err());
        assert!(mk(1.0, 2.0, 1.1).is_err());
        // Boundary values are allowed (λ = 0 needs C + L = 1).
        assert!(PaluParams::from_core_leaf_fractions(0.8, 0.2, 0.0, 1.5, 0.0).is_ok());
        assert!(mk(20.0, 3.0, 1.0).is_ok());
        // Negative proportions rejected.
        assert!(PaluParams::new(-0.1, 0.5, 0.2, 1.0, 2.0, 0.5).is_err());
    }

    #[test]
    fn with_p_changes_only_p() {
        let a = PaluParams::from_core_leaf_fractions(0.5, 0.2, 1.5, 2.0, 0.3).unwrap();
        let b = a.with_p(0.9).unwrap();
        assert_eq!(a.core, b.core);
        assert_eq!(a.leaves, b.leaves);
        assert_eq!(a.unattached, b.unattached);
        assert_eq!(a.lambda, b.lambda);
        assert_eq!(a.alpha, b.alpha);
        assert_eq!(b.p, 0.9);
        assert!(a.with_p(2.0).is_err());
    }

    #[test]
    fn isolated_fraction() {
        let p = PaluParams::from_core_leaf_fractions(0.5, 0.2, 2.0, 2.0, 0.5).unwrap();
        let expected = p.unattached * (-2.0f64).exp();
        assert!((p.isolated_fraction() - expected).abs() < 1e-15);
        // λ = 0 with leftover mass is degenerate: no finite U absorbs
        // it, since zero-size stars are invisible.
        assert!(PaluParams::from_core_leaf_fractions(0.5, 0.2, 0.0, 2.0, 0.5).is_err());
        // λ = 0 with C + L = 1 is fine; U (and the isolated fraction)
        // must come out zero.
        let p0 = PaluParams::from_core_leaf_fractions(0.8, 0.2, 0.0, 2.0, 0.5).unwrap();
        assert_eq!(p0.unattached, 0.0);
        assert_eq!(p0.isolated_fraction(), 0.0);
    }

    #[test]
    fn node_counts_scale_with_budget() {
        let p = PaluParams::from_core_leaf_fractions(0.5, 0.2, 1.5, 2.0, 0.3).unwrap();
        let (c, l, u) = p.node_counts(100_000);
        assert_eq!(c, 50_000);
        assert_eq!(l, 20_000);
        assert!((u as f64 - p.unattached * 100_000.0).abs() < 1.0);
        // Tiny budgets still produce a viable core.
        let (c, _, _) = p.node_counts(1);
        assert!(c >= 2);
    }

    #[test]
    fn generator_round_trip() {
        let p = PaluParams::from_core_leaf_fractions(0.5, 0.2, 1.5, 2.0, 0.3).unwrap();
        let gen = p.generator(10_000).unwrap();
        assert_eq!(gen.alpha, 2.0);
        assert_eq!(gen.lambda, 1.5);
        assert_eq!(gen.n_core, 5_000);
        assert_eq!(gen.n_leaves, 2_000);
    }

    #[test]
    fn copy_and_eq_semantics() {
        let p = PaluParams::from_core_leaf_fractions(0.5, 0.2, 1.5, 2.0, 0.3).unwrap();
        let q = p; // Copy
        assert_eq!(p, q);
        assert_ne!(p, p.with_p(0.31).unwrap());
    }
}
