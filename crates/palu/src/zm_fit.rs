//! Fitting the modified Zipf–Mandelbrot model to pooled observations.
//!
//! The paper selects `(α, δ)` by "minimizing the differences between
//! the observed differential cumulative distributions" — a least-
//! squares match in the pooled `D(d_i)` representation. The fitter
//! runs a coarse global grid over `(α, δ)` followed by Nelder–Mead
//! refinement with an infinity barrier outside the valid region.
//! Ablation objectives (weighted, log-space, pooled-KS) quantify how
//! much the objective choice matters (design-choice #3 in DESIGN.md).

use crate::zm::ZipfMandelbrot;
use palu_stats::error::StatsError;
use palu_stats::logbin::DifferentialCumulative;
use palu_stats::optimize::{grid_search_2d, nelder_mead, NelderMeadOptions};
use palu_stats::rng::Rng;

/// Objective used to compare model and observation in pooled space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitObjective {
    /// Sum of squared per-bin differences (the paper's choice).
    LeastSquares,
    /// Squared differences weighted per-bin (e.g. inverse variance of
    /// the multi-window `σ(d_i)`).
    WeightedLeastSquares,
    /// Squared differences of log-bin-values (emphasizes the tail the
    /// way a log-log plot does).
    LogSpace,
    /// Maximum absolute per-bin difference.
    PooledKs,
}

/// A completed Zipf–Mandelbrot fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZmFit {
    /// Fitted exponent.
    pub alpha: f64,
    /// Fitted offset.
    pub delta: f64,
    /// Final objective value.
    pub objective: f64,
    /// Support bound used for normalization.
    pub d_max: u64,
    /// Objective evaluations consumed.
    pub evals: usize,
}

impl ZmFit {
    /// Instantiate the fitted model.
    ///
    /// # Errors
    ///
    /// Propagates [`ZipfMandelbrot::new`] validation (cannot fail for
    /// values produced by the fitter).
    pub fn model(&self) -> Result<ZipfMandelbrot, StatsError> {
        ZipfMandelbrot::new(self.alpha, self.delta, self.d_max)
    }
}

/// Configuration for the fitter.
#[derive(Debug, Clone, Copy)]
pub struct ZmFitter {
    /// Objective to minimize.
    pub objective: FitObjective,
    /// Search box for `α`.
    pub alpha_range: (f64, f64),
    /// Search box for `δ`.
    pub delta_range: (f64, f64),
    /// Grid resolution per axis for the global stage.
    pub grid: usize,
    /// Nelder–Mead budget for the refinement stage.
    pub nm_options: NelderMeadOptions,
}

impl Default for ZmFitter {
    fn default() -> Self {
        ZmFitter {
            objective: FitObjective::LeastSquares,
            alpha_range: (1.05, 6.0),
            delta_range: (-0.95, 20.0),
            grid: 25,
            nm_options: NelderMeadOptions {
                max_evals: 1500,
                ..Default::default()
            },
        }
    }
}

impl ZmFitter {
    /// A fitter minimizing the given objective with default ranges.
    pub fn with_objective(objective: FitObjective) -> Self {
        ZmFitter {
            objective,
            ..Default::default()
        }
    }

    fn evaluate(
        &self,
        observed: &DifferentialCumulative,
        weights: Option<&[f64]>,
        d_max: u64,
        alpha: f64,
        delta: f64,
    ) -> f64 {
        let Ok(model) = ZipfMandelbrot::new(alpha, delta, d_max) else {
            return f64::INFINITY;
        };
        let pooled = model.pooled();
        match self.objective {
            FitObjective::LeastSquares => observed.l2_distance_sq(&pooled),
            FitObjective::WeightedLeastSquares => match weights {
                Some(w) => observed.weighted_distance_sq(&pooled, w),
                // `fit` refuses this combination with a typed Domain
                // error at entry; soft-fail like an invalid model.
                None => f64::INFINITY,
            },
            FitObjective::LogSpace => observed.log_distance_sq(&pooled),
            FitObjective::PooledKs => observed.linf_distance(&pooled),
        }
    }

    /// Fit `(α, δ)` to a pooled observation.
    ///
    /// `d_max` is taken from the observation's last nonzero bin
    /// (`2^i`), per the paper's Equation (1).
    ///
    /// # Examples
    ///
    /// ```
    /// use palu::zm::ZipfMandelbrot;
    /// use palu::zm_fit::ZmFitter;
    /// // Fit the pooled form of a known model: parameters recovered.
    /// let truth = ZipfMandelbrot::new(2.2, 0.5, 1 << 12).unwrap();
    /// let fit = ZmFitter::default().fit(&truth.pooled(), None).unwrap();
    /// assert!((fit.alpha - 2.2).abs() < 0.05);
    /// assert!((fit.delta - 0.5).abs() < 0.2);
    /// ```
    ///
    /// # Errors
    ///
    /// * [`StatsError::EmptyInput`] for an empty observation.
    /// * [`StatsError::Domain`] if the weighted objective is selected
    ///   without weights.
    pub fn fit(
        &self,
        observed: &DifferentialCumulative,
        weights: Option<&[f64]>,
    ) -> Result<ZmFit, StatsError> {
        let Some(last_bin) = observed.last_nonzero_bin() else {
            return Err(StatsError::EmptyInput {
                routine: "ZmFitter::fit",
            });
        };
        if self.objective == FitObjective::WeightedLeastSquares && weights.is_none() {
            return Err(StatsError::domain(
                "ZmFitter::fit",
                "WeightedLeastSquares requires per-bin weights",
            ));
        }
        let d_max = palu_stats::logbin::LogBins::upper_bound(last_bin as u32);

        // Global stage: coarse grid.
        let (a0, d0, _) = grid_search_2d(
            |a, d| self.evaluate(observed, weights, d_max, a, d),
            self.alpha_range,
            self.delta_range,
            self.grid,
            self.grid,
        );

        // Local stage: Nelder–Mead with barrier.
        let (alo, ahi) = self.alpha_range;
        let (dlo, dhi) = self.delta_range;
        let result = nelder_mead(
            |v| {
                let (a, d) = (v[0], v[1]);
                if a < alo || a > ahi || d < dlo || d > dhi {
                    return f64::INFINITY;
                }
                self.evaluate(observed, weights, d_max, a, d)
            },
            &[a0, d0],
            &self.nm_options,
        )?;

        Ok(ZmFit {
            alpha: result.x[0],
            delta: result.x[1],
            objective: result.f,
            d_max,
            evals: result.evals + self.grid * self.grid,
        })
    }
}

/// Bootstrap confidence intervals for a Zipf–Mandelbrot fit.
///
/// The paper reports point estimates only; for a production fitting
/// tool the sampling variability of `(α, δ)` matters (the Figure 3
/// error bars are per-bin, not per-parameter). This resamples the
/// observed histogram multinomially, refits each replicate, and
/// returns percentile intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct ZmBootstrap {
    /// Point fit on the original data.
    pub point: ZmFit,
    /// `(lo, hi)` percentile interval for `α`.
    pub alpha_ci: (f64, f64),
    /// `(lo, hi)` percentile interval for `δ`.
    pub delta_ci: (f64, f64),
    /// All replicate fits (sorted by α), for diagnostics.
    pub replicates: Vec<ZmFit>,
}

impl ZmFitter {
    /// Fit with `n_boot` multinomial bootstrap replicates and return
    /// `level`-percentile confidence intervals (e.g. `level = 0.95`).
    ///
    /// # Errors
    ///
    /// * Propagates [`ZmFitter::fit`] errors on the original data.
    /// * [`StatsError::Domain`] for an invalid confidence level or
    ///   `n_boot < 10`.
    pub fn fit_bootstrap<R: Rng + ?Sized>(
        &self,
        h: &palu_stats::histogram::DegreeHistogram,
        n_boot: usize,
        level: f64,
        rng: &mut R,
    ) -> Result<ZmBootstrap, StatsError> {
        if !(0.5..1.0).contains(&level) {
            return Err(StatsError::domain(
                "ZmFitter::fit_bootstrap",
                format!("confidence level must be in [0.5, 1), got {level}"),
            ));
        }
        if n_boot < 10 {
            return Err(StatsError::domain(
                "ZmFitter::fit_bootstrap",
                "need at least 10 bootstrap replicates",
            ));
        }
        let observed = DifferentialCumulative::from_histogram(h);
        let point = self.fit(&observed, None)?;

        let mut replicates = Vec::with_capacity(n_boot);
        for _ in 0..n_boot {
            let boot = h.resample(rng);
            let pooled = DifferentialCumulative::from_histogram(&boot);
            if let Ok(fit) = self.fit(&pooled, None) {
                replicates.push(fit);
            }
        }
        if replicates.len() < n_boot / 2 {
            return Err(StatsError::NoConvergence {
                routine: "ZmFitter::fit_bootstrap",
                iterations: n_boot,
                residual: replicates.len() as f64,
            });
        }

        let percentile = |sorted: &[f64], q: f64| -> f64 {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        };
        let tail = (1.0 - level) / 2.0;
        let mut alphas: Vec<f64> = replicates.iter().map(|f| f.alpha).collect();
        alphas.sort_by(f64::total_cmp);
        let mut deltas: Vec<f64> = replicates.iter().map(|f| f.delta).collect();
        deltas.sort_by(f64::total_cmp);
        let alpha_ci = (percentile(&alphas, tail), percentile(&alphas, 1.0 - tail));
        let delta_ci = (percentile(&deltas, tail), percentile(&deltas, 1.0 - tail));
        replicates.sort_by(|a, b| a.alpha.total_cmp(&b.alpha));
        Ok(ZmBootstrap {
            point,
            alpha_ci,
            delta_ci,
            replicates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palu_stats::histogram::DegreeHistogram;
    use palu_stats::rng::Xoshiro256pp;

    /// Fit the pooled form of a known ZM model: must recover (α, δ).
    #[test]
    fn recovers_exact_model() {
        for &(alpha, delta) in &[(2.0, 0.5), (1.8, 3.0), (2.6, -0.5)] {
            let truth = ZipfMandelbrot::new(alpha, delta, 1 << 14).unwrap();
            let observed = truth.pooled();
            let fit = ZmFitter::default().fit(&observed, None).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.02,
                "α: fitted {} vs {alpha}",
                fit.alpha
            );
            assert!(
                (fit.delta - delta).abs() < 0.1,
                "δ: fitted {} vs {delta}",
                fit.delta
            );
            assert!(fit.objective < 1e-8);
        }
    }

    #[test]
    fn recovers_from_sampled_data() {
        let truth = ZipfMandelbrot::new(2.2, 1.0, 1 << 12).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let h: DegreeHistogram = truth.sample_many(&mut rng, 300_000).into_iter().collect();
        let observed = DifferentialCumulative::from_histogram(&h);
        let fit = ZmFitter::default().fit(&observed, None).unwrap();
        assert!((fit.alpha - 2.2).abs() < 0.15, "α {}", fit.alpha);
        assert!((fit.delta - 1.0).abs() < 0.5, "δ {}", fit.delta);
    }

    #[test]
    fn empty_observation_errors() {
        let empty = DifferentialCumulative::default();
        assert!(ZmFitter::default().fit(&empty, None).is_err());
    }

    #[test]
    fn weighted_requires_weights() {
        let truth = ZipfMandelbrot::new(2.0, 1.0, 256).unwrap();
        let fitter = ZmFitter::with_objective(FitObjective::WeightedLeastSquares);
        assert!(fitter.fit(&truth.pooled(), None).is_err());
        let w = vec![1.0; truth.pooled().n_bins()];
        assert!(fitter.fit(&truth.pooled(), Some(&w)).is_ok());
    }

    #[test]
    fn all_objectives_recover_clean_data() {
        let truth = ZipfMandelbrot::new(2.0, 0.8, 1 << 12).unwrap();
        let observed = truth.pooled();
        let w = vec![1.0; observed.n_bins()];
        for obj in [
            FitObjective::LeastSquares,
            FitObjective::WeightedLeastSquares,
            FitObjective::LogSpace,
            FitObjective::PooledKs,
        ] {
            let fitter = ZmFitter::with_objective(obj);
            let weights = if obj == FitObjective::WeightedLeastSquares {
                Some(w.as_slice())
            } else {
                None
            };
            let fit = fitter.fit(&observed, weights).unwrap();
            assert!((fit.alpha - 2.0).abs() < 0.1, "{obj:?}: α {}", fit.alpha);
        }
    }

    #[test]
    fn log_space_objective_prioritizes_tail() {
        // Perturb the head (bin 0) of a clean ZM pooled distribution;
        // the L2 fit chases the head, the log-space fit preserves the
        // tail exponent better.
        let truth = ZipfMandelbrot::new(2.0, 0.2, 1 << 14).unwrap();
        let mut values = truth.pooled().values().to_vec();
        values[0] *= 1.6; // corrupt d=1 mass
        let corrupted = DifferentialCumulative::from_values(values);
        let l2 = ZmFitter::default().fit(&corrupted, None).unwrap();
        let log = ZmFitter::with_objective(FitObjective::LogSpace)
            .fit(&corrupted, None)
            .unwrap();
        let tail_err = |fit: &ZmFit| {
            let m = fit.model().unwrap().pooled();
            let t = truth.pooled();
            ((m.value(12).ln() - t.value(12).ln()).powi(2)
                + (m.value(13).ln() - t.value(13).ln()).powi(2))
            .sqrt()
        };
        assert!(
            tail_err(&log) <= tail_err(&l2) + 1e-9,
            "log fit should track the tail at least as well"
        );
    }

    #[test]
    fn bootstrap_ci_covers_truth_and_shrinks_point() {
        let truth = ZipfMandelbrot::new(2.2, 0.5, 1 << 10).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let h: DegreeHistogram = truth.sample_many(&mut rng, 60_000).into_iter().collect();
        let boot = ZmFitter::default()
            .fit_bootstrap(&h, 20, 0.9, &mut rng)
            .unwrap();
        // The interval brackets the point estimate; the truth is
        // within the interval up to the pooled-fit discretization
        // bias (the percentile bootstrap quantifies *variance*, not
        // that small bias).
        assert!(boot.alpha_ci.0 <= boot.point.alpha && boot.point.alpha <= boot.alpha_ci.1);
        assert!(
            boot.alpha_ci.0 - 0.05 <= 2.2 && 2.2 <= boot.alpha_ci.1 + 0.05,
            "α CI {:?} misses truth by more than the known bias",
            boot.alpha_ci
        );
        assert!(boot.alpha_ci.1 - boot.alpha_ci.0 < 0.5, "CI too wide");
        assert!(boot.delta_ci.0 <= boot.delta_ci.1);
        assert!(boot.replicates.len() >= 10);
    }

    #[test]
    fn bootstrap_validates_inputs() {
        let truth = ZipfMandelbrot::new(2.0, 0.0, 256).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let h: DegreeHistogram = truth.sample_many(&mut rng, 5_000).into_iter().collect();
        let fitter = ZmFitter::default();
        assert!(fitter.fit_bootstrap(&h, 5, 0.9, &mut rng).is_err());
        assert!(fitter.fit_bootstrap(&h, 20, 0.3, &mut rng).is_err());
        assert!(fitter.fit_bootstrap(&h, 20, 1.0, &mut rng).is_err());
    }

    #[test]
    fn fit_reports_d_max_from_observation() {
        let truth = ZipfMandelbrot::new(2.0, 0.0, 700).unwrap();
        let fit = ZmFitter::default().fit(&truth.pooled(), None).unwrap();
        // 700 lies in bin 10 (513..1024) → d_max reported as 1024.
        assert_eq!(fit.d_max, 1024);
    }
}
