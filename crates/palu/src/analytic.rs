//! Section IV closed-form predictions for the observed network.
//!
//! Given a window size `p`, the model predicts the visible-node
//! fraction
//!
//! ```text
//! V = C·p^{α−1}/((α−1)·ζ(α)) + L·p + U·(1 + λp − e^{−λp})
//! ```
//!
//! and, relative to the total visible nodes, the fractions of core
//! nodes, leaves, unattached nodes, unattached links, degree-1 nodes,
//! and degree-`d` nodes. Experiment E-A1 validates all of these
//! against simulation.
//!
//! Derivation notes (Section V): a degree-`d` core node survives
//! observation with probability ≈ 1 at these scales and its observed
//! degree is `Bin(d, p) ≈ dp`; the observed core degree law is
//! `p^α/ζ(α) · d^{−α}` after summing the thinning kernel against the
//! `d^{−α}` underlying law and keeping leading order. Leaves survive
//! w.p. `p`. Each star center's observed leaf count is
//! `Bin(Po(λ), p) = Po(λp)`, so a center is visible w.p.
//! `1 − e^{−λp}` and each expected `λ` star leaf is visible w.p. `p`.

use crate::params::PaluParams;
use palu_stats::error::StatsError;
use palu_stats::logbin::{DifferentialCumulative, LogBins};
use palu_stats::special::{ln_factorial, riemann_zeta};

/// Exact observed-degree pmf of a preferential-attachment core node
/// under Binomial edge thinning:
///
/// ```text
/// f(d) = Σ_{k ≥ d} k^{−α}/ζ(α) · C(k, d)·p^d·(1−p)^{k−d}
/// ```
///
/// This is the quantity the paper approximates by `p^α·d^{−α}/ζ(α)`
/// (Section IV). The *exact* sum behaves as `p^{α−1}·d^{−α}/ζ(α)` for
/// large `d` (one underlying degree bucket of width `1/p` maps onto
/// each observed degree), which is also what integrating the paper's
/// own visible-core term back out implies — see EXPERIMENTS.md E-A1
/// for the simulation evidence. Both conventions are supported
/// downstream ([`crate::simplified::AmplitudeConvention`]).
///
/// `d = 0` gives the invisibility probability of a random core node.
///
/// # Errors
///
/// [`StatsError::Domain`] if `α ≤ 1` or `p ∉ (0, 1]`.
pub fn thinned_core_pmf(alpha: f64, p: f64, d: u64) -> Result<f64, StatsError> {
    if !(0.0 < p && p <= 1.0) {
        return Err(StatsError::domain(
            "thinned_core_pmf",
            format!("p must be in (0, 1], got {p}"),
        ));
    }
    let zeta_alpha = riemann_zeta(alpha)?; // validates alpha
    if p == 1.0 {
        // No thinning: the zeta pmf itself (0 at d = 0).
        return Ok(if d == 0 {
            0.0
        } else {
            (d as f64).powf(-alpha) / zeta_alpha
        });
    }
    let ln_p = p.ln();
    let ln_q = (1.0 - p).ln();
    let k_start = d.max(1);
    // Terms decay geometrically (ratio → 1−p) beyond the binomial
    // bulk at k ≈ d/p; sum until both past the bulk and negligible.
    let bulk_end = (d as f64 / p + 10.0 * (d as f64 + 1.0).sqrt() / p) as u64 + 16;
    let mut acc = 0.0f64;
    let mut k = k_start;
    loop {
        let ln_term = ln_factorial(k) - ln_factorial(d) - ln_factorial(k - d)
            + d as f64 * ln_p
            + (k - d) as f64 * ln_q
            - alpha * (k as f64).ln();
        let term = ln_term.exp();
        acc += term;
        if k > bulk_end && term < acc * 1e-14 {
            break;
        }
        if k > bulk_end.saturating_mul(64) {
            break; // safety cap; the tail past here is below 1e-300
        }
        k += 1;
    }
    Ok(acc / zeta_alpha)
}

/// Size distribution of *observed star components* (the "large
/// clusters of small disconnected components" the paper's future-work
/// section points at).
///
/// A star with `Po(λ)` leaves observed through edge retention `p`
/// keeps `k ~ Po(λp)` leaves; it is visible as a component iff
/// `k ≥ 1`, with size `k + 1`. Hence for component size `s ≥ 2`:
///
/// ```text
/// P(size = s) = e^{−λp}·(λp)^{s−1}/(s−1)! / (1 − e^{−λp})
/// ```
///
/// # Errors
///
/// [`StatsError::Domain`] if `λp ≤ 0` (no visible stars exist).
pub fn star_component_size_pmf(lambda: f64, p: f64, size: u64) -> Result<f64, StatsError> {
    let lp = lambda * p;
    // NaN-safe domain guard: `!(x > 0)` also rejects NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(lp > 0.0) {
        return Err(StatsError::domain(
            "star_component_size_pmf",
            format!("λp must be positive, got {lp}"),
        ));
    }
    if size < 2 {
        return Ok(0.0);
    }
    let k = size - 1;
    let log_pois = k as f64 * lp.ln() - lp - ln_factorial(k);
    Ok(log_pois.exp() / (1.0 - (-lp).exp()))
}

/// All Section IV predictions for one `(parameters, p)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedPrediction {
    params: PaluParams,
    zeta_alpha: f64,
    /// Visible-node fraction `V` (relative to the underlying
    /// normalization of the constraint).
    pub visible_fraction: f64,
    /// Observed core nodes / total observed nodes.
    pub core_fraction: f64,
    /// Observed leaves / total observed nodes.
    pub leaf_fraction: f64,
    /// Observed unattached-section nodes / total observed nodes.
    pub unattached_fraction: f64,
    /// Observed unattached *links* (single-edge star remnants) / total
    /// observed nodes.
    pub unattached_link_fraction: f64,
    /// Observed degree-1 nodes / total observed nodes.
    pub degree_one_fraction: f64,
}

impl ObservedPrediction {
    /// Evaluate the Section IV formulas for `params`.
    ///
    /// # Errors
    ///
    /// [`StatsError::Domain`] if `p = 0` (nothing is observed; every
    /// ratio is 0/0).
    pub fn new(params: &PaluParams) -> Result<Self, StatsError> {
        let (c_frac, l_frac, u_frac) = (params.core, params.leaves, params.unattached);
        let (alpha, lambda, p) = (params.alpha, params.lambda, params.p);
        if p <= 0.0 {
            return Err(StatsError::domain(
                "ObservedPrediction::new",
                "p must be positive; an empty window observes nothing",
            ));
        }
        let zeta_alpha = riemann_zeta(alpha)?;
        let lp = lambda * p;

        let core_term = c_frac * p.powf(alpha - 1.0) / ((alpha - 1.0) * zeta_alpha);
        let leaf_term = l_frac * p;
        let unattached_term = u_frac * (1.0 + lp - (-lp).exp());
        let v = core_term + leaf_term + unattached_term;

        let unattached_link = u_frac * lp * (-lp).exp();

        // Degree-1 nodes (Section IV):
        //   core:        C·p^α/ζ(α)   (the d^{-α} law at d = 1)
        //   leaves:      L·p
        //   unattached:  U·λp·(1 + e^{−λp})
        //     = observed star leaves (U·λp) + centers with exactly one
        //       observed leaf (U·λp·e^{−λp}).
        let degree_one =
            c_frac * p.powf(alpha) / zeta_alpha + l_frac * p + u_frac * lp * (1.0 + (-lp).exp());

        Ok(ObservedPrediction {
            params: *params,
            zeta_alpha,
            visible_fraction: v,
            core_fraction: core_term / v,
            leaf_fraction: leaf_term / v,
            unattached_fraction: unattached_term / v,
            unattached_link_fraction: unattached_link / v,
            degree_one_fraction: degree_one / v,
        })
    }

    /// The parameters these predictions were computed for.
    pub fn params(&self) -> &PaluParams {
        &self.params
    }

    /// Predicted fraction of observed nodes with degree exactly `d`
    /// (Section IV's degree-`d` estimate; exact Poisson term, no
    /// Stirling approximation):
    ///
    /// ```text
    /// d = 1:  degree_one_fraction
    /// d ≥ 2:  [ C·p^α/ζ(α) · d^{−α} + U·e^{−λp}·(λp)^d/d! ] / V
    /// ```
    pub fn degree_fraction(&self, d: u64) -> f64 {
        if d == 0 {
            return 0.0;
        }
        if d == 1 {
            return self.degree_one_fraction;
        }
        let p = self.params.p;
        let lp = self.params.lambda * p;
        let core = self.params.core * p.powf(self.params.alpha) / self.zeta_alpha
            * (d as f64).powf(-self.params.alpha);
        let star = if lp > 0.0 {
            self.params.unattached * (d as f64 * lp.ln() - lp - ln_factorial(d)).exp()
        } else {
            0.0
        };
        (core + star) / self.visible_fraction
    }

    /// The pure-tail approximation (Section IV, "very good when
    /// log(d) > 1"): `C·p^α/ζ(α)·d^{−α} / V`.
    pub fn degree_fraction_tail(&self, d: u64) -> f64 {
        let p = self.params.p;
        self.params.core * p.powf(self.params.alpha) / self.zeta_alpha
            * (d as f64).powf(-self.params.alpha)
            / self.visible_fraction
    }

    /// Pool the predicted degree law into the binary-log differential
    /// cumulative representation (Section IV-A), over degrees
    /// `1..=d_max`.
    pub fn pooled(&self, d_max: u64) -> DifferentialCumulative {
        DifferentialCumulative::from_pmf(|d| self.degree_fraction(d), d_max)
    }

    /// The Section IV-A log-binned tail slope: for large bins the
    /// pooled distribution satisfies
    /// `log D(2^i) ≈ (1 − α)·log(2^i) + γ` — slope `1 − α`, not `−α`.
    pub fn pooled_tail_slope(&self) -> f64 {
        1.0 - self.params.alpha
    }

    /// Predicted mass in pooled bin `i` using the integral
    /// approximation of Section IV-A (valid for `i > 3`):
    ///
    /// ```text
    /// Σ_{d∈bin i} c·d^{−α} ≈ ∫ x^{−α} dx
    ///   = c · (1 − 2^{1−α})/(α−1) · (lower bound)^{1−α}
    /// ```
    ///
    /// Bin `i` covers `(2^{i−1}, 2^i]`, so the integral's lower bound
    /// is `2^{i−1}`. (The paper writes the sum from `2^i` to `2^{i+1}`
    /// — the same expression shifted by one bin index; what matters,
    /// and what the tests pin down, is that the binned log-log slope
    /// is `1 − α`, not `−α`.)
    pub fn pooled_bin_tail_approx(&self, i: u32) -> f64 {
        let alpha = self.params.alpha;
        let p = self.params.p;
        let lead = self.params.core * p.powf(alpha) / (self.zeta_alpha * self.visible_fraction);
        let shape = (1.0 - 2f64.powf(1.0 - alpha)) / (alpha - 1.0);
        let lower = LogBins::lower_bound_exclusive(i).max(1);
        lead * shape * (lower as f64).powf(1.0 - alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PaluParams;

    fn params() -> PaluParams {
        PaluParams::from_core_leaf_fractions(0.5, 0.2, 1.5, 2.0, 0.3).unwrap()
    }

    #[test]
    fn thinned_core_pmf_is_a_distribution() {
        // Σ_{d≥0} f(d) = 1 (every underlying node maps somewhere).
        for &(alpha, p) in &[(2.0, 0.5), (1.7, 0.3), (2.5, 0.8)] {
            let total: f64 = (0..3000u64)
                .map(|d| thinned_core_pmf(alpha, p, d).unwrap())
                .sum();
            // The un-summed tail beyond d = 3000 carries
            // ~p^{α−1}·3000^{1−α}/((α−1)ζ(α)) ≈ 1e-4 of mass.
            let tail_bound = p.powf(alpha - 1.0) * 3000f64.powf(1.0 - alpha)
                / ((alpha - 1.0) * riemann_zeta(alpha).unwrap());
            assert!(
                (total - 1.0).abs() < 1.1 * tail_bound + 1e-8,
                "α={alpha}, p={p}: total {total} (tail bound {tail_bound:.2e})"
            );
        }
    }

    #[test]
    fn thinned_core_pmf_no_thinning_is_zeta() {
        let z2 = std::f64::consts::PI.powi(2) / 6.0;
        assert_eq!(thinned_core_pmf(2.0, 1.0, 0).unwrap(), 0.0);
        assert!((thinned_core_pmf(2.0, 1.0, 1).unwrap() - 1.0 / z2).abs() < 1e-12);
        assert!((thinned_core_pmf(2.0, 1.0, 3).unwrap() - 1.0 / 9.0 / z2).abs() < 1e-12);
    }

    #[test]
    fn thinned_core_pmf_d0_matches_direct_sum() {
        // P(invisible) = Σ_k k^{−α}(1−p)^k / ζ(α).
        let (alpha, p): (f64, f64) = (2.0, 0.4);
        let z = riemann_zeta(alpha).unwrap();
        let direct: f64 = (1..500u64)
            .map(|k| (k as f64).powf(-alpha) * (1.0 - p).powi(k as i32))
            .sum::<f64>()
            / z;
        let pmf0 = thinned_core_pmf(alpha, p, 0).unwrap();
        assert!((pmf0 - direct).abs() < 1e-10, "{pmf0} vs {direct}");
        // Equivalently via the polylog: Li_α(1−p)/ζ(α).
        let via_polylog = palu_stats::special::polylog(alpha, 1.0 - p).unwrap() / z;
        assert!((pmf0 - via_polylog).abs() < 1e-10);
    }

    #[test]
    fn thinned_core_tail_scales_as_p_to_alpha_minus_one() {
        // The exact tail amplitude is p^{α−1}/ζ(α), NOT the paper's
        // p^α/ζ(α): check f(d)·d^α·ζ(α) ≈ p^{α−1} at large d.
        for &(alpha, p) in &[(2.0f64, 0.5f64), (2.5, 0.3)] {
            let z = riemann_zeta(alpha).unwrap();
            for d in [50u64, 100, 200] {
                let f = thinned_core_pmf(alpha, p, d).unwrap();
                let amp = f * (d as f64).powf(alpha) * z;
                let expected = p.powf(alpha - 1.0);
                assert!(
                    ((amp - expected) / expected).abs() < 0.05,
                    "α={alpha}, p={p}, d={d}: amplitude {amp} vs p^(α−1) = {expected}"
                );
            }
        }
    }

    #[test]
    fn star_component_sizes_normalize_and_peak() {
        let (lambda, p) = (4.0, 0.5); // λp = 2
        let total: f64 = (2..100u64)
            .map(|s| star_component_size_pmf(lambda, p, s).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-10, "total {total}");
        assert_eq!(star_component_size_pmf(lambda, p, 0).unwrap(), 0.0);
        assert_eq!(star_component_size_pmf(lambda, p, 1).unwrap(), 0.0);
        // Mode near 1 + λp = 3.
        let p2 = star_component_size_pmf(lambda, p, 2).unwrap();
        let p3 = star_component_size_pmf(lambda, p, 3).unwrap();
        let p10 = star_component_size_pmf(lambda, p, 10).unwrap();
        assert!(p3 >= p2 * 0.9);
        assert!(p10 < p3 / 10.0);
        // Degenerate λp rejected.
        assert!(star_component_size_pmf(0.0, 0.5, 2).is_err());
        assert!(star_component_size_pmf(2.0, 0.0, 2).is_err());
    }

    #[test]
    fn thinned_core_pmf_validates() {
        assert!(thinned_core_pmf(1.0, 0.5, 1).is_err());
        assert!(thinned_core_pmf(2.0, 0.0, 1).is_err());
        assert!(thinned_core_pmf(2.0, 1.5, 1).is_err());
    }

    #[test]
    fn p_zero_is_rejected() {
        let p = params().with_p(0.0).unwrap();
        assert!(ObservedPrediction::new(&p).is_err());
    }

    #[test]
    fn fractions_are_a_partition() {
        let pred = ObservedPrediction::new(&params()).unwrap();
        let total = pred.core_fraction + pred.leaf_fraction + pred.unattached_fraction;
        assert!(
            (total - 1.0).abs() < 1e-12,
            "role fractions must sum to 1, got {total}"
        );
        assert!(pred.core_fraction > 0.0);
        assert!(pred.leaf_fraction > 0.0);
        assert!(pred.unattached_fraction > 0.0);
        // Unattached links are a subset of the unattached section.
        assert!(pred.unattached_link_fraction < pred.unattached_fraction);
    }

    #[test]
    fn full_observation_recovers_underlying_composition() {
        // At p = 1 with α = 2: core term = C/ζ(2), leaf term = L,
        // star term = U(1 + λ − e^{−λ}).
        let p = params().with_p(1.0).unwrap();
        let pred = ObservedPrediction::new(&p).unwrap();
        let z2 = std::f64::consts::PI.powi(2) / 6.0;
        let core_term = 0.5 / z2;
        let leaf_term = 0.2;
        let star_term = p.unattached * (1.0 + 1.5 - (-1.5f64).exp());
        let v = core_term + leaf_term + star_term;
        assert!((pred.visible_fraction - v).abs() < 1e-12);
        assert!((pred.core_fraction - core_term / v).abs() < 1e-12);
    }

    #[test]
    fn degree_law_is_approximately_normalized() {
        // Σ_d degree_fraction(d) would be exactly 1 if the paper's
        // Section IV expressions were self-consistent. They are
        // leading-order approximations whose core pieces disagree at
        // O(1) factors: the visible-core term in V uses
        // `p^{α−1}/((α−1)ζ(α))` while the degree law uses
        // `p^α·d^{−α}/ζ(α)`, and these do not integrate to the same
        // mass. We reproduce the formulas as published and pin the
        // slack here so any further drift is caught.
        let pred = ObservedPrediction::new(&params()).unwrap();
        let total: f64 = (1..200_000u64).map(|d| pred.degree_fraction(d)).sum();
        assert!(
            (0.6..=1.2).contains(&total),
            "degree law total {total} drifted outside the paper's known slack"
        );
        // Leaf and star sub-populations ARE exactly normalized: with
        // the core switched off the law sums to 1.
        let pr = PaluParams::from_core_leaf_fractions(0.0, 0.3, 2.0, 2.0, 0.5).unwrap();
        let pred = ObservedPrediction::new(&pr).unwrap();
        let total: f64 = (1..500u64).map(|d| pred.degree_fraction(d)).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "leaf+star law total {total} must be exact"
        );
    }

    #[test]
    fn degree_one_dominates() {
        let pred = ObservedPrediction::new(&params()).unwrap();
        for d in 2..100 {
            assert!(pred.degree_one_fraction > pred.degree_fraction(d), "d={d}");
        }
        assert_eq!(pred.degree_fraction(0), 0.0);
    }

    #[test]
    fn tail_matches_exact_for_large_d() {
        let pred = ObservedPrediction::new(&params()).unwrap();
        // Beyond the Poisson bump the star term is negligible.
        for d in [20u64, 50, 100, 1000] {
            let exact = pred.degree_fraction(d);
            let tail = pred.degree_fraction_tail(d);
            assert!(
                ((exact - tail) / exact).abs() < 1e-6,
                "d={d}: exact {exact}, tail {tail}"
            );
        }
        // Near the bump they differ.
        let d = 2;
        assert!(pred.degree_fraction(d) > 1.01 * pred.degree_fraction_tail(d));
    }

    #[test]
    fn star_bump_visible_at_high_lambda() {
        // λp large ⇒ the Poisson term peaks near d = λp and exceeds
        // the power-law there.
        let p = PaluParams::from_core_leaf_fractions(0.05, 0.05, 16.0, 2.5, 0.9).unwrap();
        let pred = ObservedPrediction::new(&p).unwrap();
        let peak_d = (16.0 * 0.9) as u64; // ≈ 14
        assert!(
            pred.degree_fraction(peak_d) > 2.0 * pred.degree_fraction_tail(peak_d),
            "no star bump at d = {peak_d}"
        );
    }

    #[test]
    fn pooled_conserves_mass() {
        let pred = ObservedPrediction::new(&params()).unwrap();
        let pooled = pred.pooled(1 << 17);
        let direct: f64 = (1..=(1u64 << 17)).map(|d| pred.degree_fraction(d)).sum();
        assert!((pooled.total_mass() - direct).abs() < 1e-9);
        // d=1 bin is exactly the degree-one fraction.
        assert!((pooled.value(0) - pred.degree_one_fraction).abs() < 1e-12);
    }

    #[test]
    fn pooled_tail_follows_one_minus_alpha_slope() {
        // Adjacent pooled bins in the tail must have ratio 2^{1−α}.
        let pred = ObservedPrediction::new(&params()).unwrap();
        let pooled = pred.pooled(1 << 18);
        let expected_ratio = 2f64.powf(pred.pooled_tail_slope());
        for i in 8..14 {
            let ratio = pooled.value(i + 1) / pooled.value(i);
            assert!(
                (ratio - expected_ratio).abs() < 0.02,
                "bin {i}: ratio {ratio} vs {expected_ratio}"
            );
        }
    }

    #[test]
    fn pooled_bin_tail_approx_matches_exact_sum() {
        let pred = ObservedPrediction::new(&params()).unwrap();
        let pooled = pred.pooled(1 << 18);
        // Section IV-A integral approximation: good for i > 3.
        for i in 6..12u32 {
            let approx = pred.pooled_bin_tail_approx(i);
            let exact = pooled.value(i as usize);
            assert!(
                ((approx - exact) / exact).abs() < 0.05,
                "bin {i}: approx {approx}, exact {exact}"
            );
        }
    }

    #[test]
    fn larger_windows_see_more_core() {
        // As p → 1 the core's share of visible nodes grows relative to
        // small p (webcrawl-vs-trunk intuition: tiny windows
        // overrepresent the one-shot populations).
        let small = ObservedPrediction::new(&params().with_p(0.05).unwrap()).unwrap();
        let large = ObservedPrediction::new(&params().with_p(0.95).unwrap()).unwrap();
        assert!(large.core_fraction > small.core_fraction);
    }

    #[test]
    fn visible_fraction_monotone_in_p() {
        let base = params();
        let mut prev = 0.0;
        for k in 1..=10 {
            let p = base.with_p(k as f64 / 10.0).unwrap();
            let v = ObservedPrediction::new(&p).unwrap().visible_fraction;
            assert!(v > prev, "V not monotone at p = {}", k as f64 / 10.0);
            prev = v;
        }
        // V(1) ≤ 1 + slack (it is a fraction of the underlying
        // normalization, which counts some populations at rate < 1).
        assert!(prev <= 1.0 + 1e-9);
    }
}
