//! The modified Zipf–Mandelbrot model (Section II-B).
//!
//! The classical Zipf–Mandelbrot law ranks items; the paper's
//! modification treats `d` as a *measured network quantity* instead of
//! a rank:
//!
//! ```text
//! ρ(d; α, δ) = 1/(d + δ)^α            (unnormalized)
//! p(d; α, δ) = ρ(d)/Σ_{d=1}^{d_max} ρ(d)
//! ```
//!
//! The offset `δ` lets the model bend at small `d` — "in particular at
//! d = 1, which has the highest observed probability in these streaming
//! data" — while `α` still controls the tail.

use palu_stats::error::StatsError;
use palu_stats::logbin::DifferentialCumulative;
use palu_stats::rng::Rng;
use palu_stats::special::zm_normalizer;

/// A fully specified modified Zipf–Mandelbrot distribution over
/// `{1, …, d_max}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfMandelbrot {
    alpha: f64,
    delta: f64,
    d_max: u64,
    normalizer: f64,
}

impl ZipfMandelbrot {
    /// Create with exponent `α > 0`, offset `δ > −1`, and support
    /// bound `d_max ≥ 1`.
    ///
    /// `δ` may be negative (the PALU connection of Section VI produces
    /// negative offsets for leaf-heavy traffic) as long as `1 + δ > 0`
    /// keeps every term finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use palu::zm::ZipfMandelbrot;
    /// // A leaf-heavy traffic fit: α = 2, δ = −0.3.
    /// let zm = ZipfMandelbrot::new(2.0, -0.3, 4096).unwrap();
    /// // Negative δ sharpens the head: p(1)/p(2) exceeds the pure
    /// // power law's 4×.
    /// assert!(zm.pmf(1) / zm.pmf(2) > 4.0);
    /// // The pmf is a proper distribution over 1..=d_max.
    /// let total: f64 = (1..=4096).map(|d| zm.pmf(d)).sum();
    /// assert!((total - 1.0).abs() < 1e-9);
    /// ```
    ///
    /// # Errors
    ///
    /// [`StatsError::Domain`] on violated ranges.
    pub fn new(alpha: f64, delta: f64, d_max: u64) -> Result<Self, StatsError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(StatsError::domain(
                "ZipfMandelbrot::new",
                format!("alpha must be positive, got {alpha}"),
            ));
        }
        if !delta.is_finite() || delta <= -1.0 {
            return Err(StatsError::domain(
                "ZipfMandelbrot::new",
                format!("delta must exceed -1, got {delta}"),
            ));
        }
        if d_max == 0 {
            return Err(StatsError::domain(
                "ZipfMandelbrot::new",
                "d_max must be >= 1",
            ));
        }
        Ok(ZipfMandelbrot {
            alpha,
            delta,
            d_max,
            normalizer: zm_normalizer(d_max, alpha, delta),
        })
    }

    /// Model exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Model offset `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Support bound `d_max`.
    pub fn d_max(&self) -> u64 {
        self.d_max
    }

    /// Unnormalized density `ρ(d; α, δ) = (d + δ)^{−α}`.
    pub fn rho(&self, d: u64) -> f64 {
        (d as f64 + self.delta).powf(-self.alpha)
    }

    /// The paper's gradient identity:
    /// `∂_δ ρ(d; α, δ) = −α·ρ(d; α+1, δ)`.
    pub fn rho_gradient_delta(&self, d: u64) -> f64 {
        -self.alpha * (d as f64 + self.delta).powf(-(self.alpha + 1.0))
    }

    /// Normalized pmf `p(d; α, δ)`; 0 off support.
    pub fn pmf(&self, d: u64) -> f64 {
        if d == 0 || d > self.d_max {
            return 0.0;
        }
        self.rho(d) / self.normalizer
    }

    /// Cumulative model probability `P(d; α, δ)`.
    pub fn cdf(&self, d: u64) -> f64 {
        if d == 0 {
            return 0.0;
        }
        let d = d.min(self.d_max);
        zm_normalizer(d, self.alpha, self.delta) / self.normalizer
    }

    /// The pooled differential cumulative model distribution
    /// `D(d_i; α, δ)` over binary-log bins.
    pub fn pooled(&self) -> DifferentialCumulative {
        DifferentialCumulative::from_pmf(|d| self.pmf(d), self.d_max)
    }

    /// Draw one sample by inverse-CDF bisection over the support
    /// (`O(log d_max)` normalizer evaluations).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let target = rng.gen::<f64>() * self.normalizer;
        // Find smallest d with partial_normalizer(d) >= target.
        let (mut lo, mut hi) = (1u64, self.d_max);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if zm_normalizer(mid, self.alpha, self.delta) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Draw `n` samples.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palu_stats::rng::Xoshiro256pp;

    #[test]
    fn construction_validates() {
        assert!(ZipfMandelbrot::new(0.0, 1.0, 100).is_err());
        assert!(ZipfMandelbrot::new(-1.0, 1.0, 100).is_err());
        assert!(ZipfMandelbrot::new(2.0, -1.0, 100).is_err());
        assert!(ZipfMandelbrot::new(2.0, -1.5, 100).is_err());
        assert!(ZipfMandelbrot::new(2.0, 1.0, 0).is_err());
        assert!(ZipfMandelbrot::new(2.0, f64::NAN, 100).is_err());
        assert!(ZipfMandelbrot::new(2.0, -0.5, 100).is_ok());
    }

    #[test]
    fn pmf_normalizes() {
        for &(alpha, delta, d_max) in &[(2.0, 0.0, 100u64), (1.8, 5.0, 10_000), (2.6, -0.7, 1_000)]
        {
            let zm = ZipfMandelbrot::new(alpha, delta, d_max).unwrap();
            let total: f64 = (1..=d_max).map(|d| zm.pmf(d)).sum();
            assert!((total - 1.0).abs() < 1e-10, "α={alpha}, δ={delta}");
            assert_eq!(zm.pmf(0), 0.0);
            assert_eq!(zm.pmf(d_max + 1), 0.0);
        }
    }

    #[test]
    fn delta_zero_is_pure_power_law() {
        let zm = ZipfMandelbrot::new(2.0, 0.0, 1000).unwrap();
        // pmf(d)/pmf(1) = d^{-2}.
        for d in [2u64, 5, 10, 100] {
            let ratio = zm.pmf(d) / zm.pmf(1);
            assert!((ratio - (d as f64).powf(-2.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn positive_delta_flattens_head_negative_sharpens() {
        // Relative mass at d=1 vs d=2: (2+δ)^α/(1+δ)^α grows as δ
        // decreases toward −1.
        let flat = ZipfMandelbrot::new(2.0, 5.0, 1000).unwrap();
        let base = ZipfMandelbrot::new(2.0, 0.0, 1000).unwrap();
        let sharp = ZipfMandelbrot::new(2.0, -0.8, 1000).unwrap();
        let head_ratio = |zm: &ZipfMandelbrot| zm.pmf(1) / zm.pmf(2);
        assert!(head_ratio(&flat) < head_ratio(&base));
        assert!(head_ratio(&base) < head_ratio(&sharp));
        // The sharpened head is what streaming data shows at d = 1.
        assert!(head_ratio(&sharp) > 20.0);
    }

    #[test]
    fn cdf_is_a_distribution() {
        let zm = ZipfMandelbrot::new(2.2, 1.5, 500).unwrap();
        assert_eq!(zm.cdf(0), 0.0);
        let mut prev = 0.0;
        for d in 1..=500 {
            let c = zm.cdf(d);
            assert!(c >= prev - 1e-15);
            prev = c;
        }
        assert!((zm.cdf(500) - 1.0).abs() < 1e-12);
        assert!((zm.cdf(9999) - 1.0).abs() < 1e-12);
        // CDF equals pmf partial sums.
        let direct: f64 = (1..=37u64).map(|d| zm.pmf(d)).sum();
        assert!((zm.cdf(37) - direct).abs() < 1e-12);
    }

    #[test]
    fn gradient_identity_matches_finite_difference() {
        let alpha = 2.3;
        let delta = 1.1;
        let zm = ZipfMandelbrot::new(alpha, delta, 100).unwrap();
        let eps = 1e-6;
        for d in [1u64, 3, 10, 50] {
            let up = ZipfMandelbrot::new(alpha, delta + eps, 100).unwrap().rho(d);
            let dn = ZipfMandelbrot::new(alpha, delta - eps, 100).unwrap().rho(d);
            let fd = (up - dn) / (2.0 * eps);
            let analytic = zm.rho_gradient_delta(d);
            assert!(
                ((fd - analytic) / analytic).abs() < 1e-6,
                "d={d}: fd {fd}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn pooled_mass_is_one() {
        let zm = ZipfMandelbrot::new(2.0, 0.5, 1 << 12).unwrap();
        let pooled = zm.pooled();
        assert!((pooled.total_mass() - 1.0).abs() < 1e-10);
        assert!((pooled.value(0) - zm.pmf(1)).abs() < 1e-12);
    }

    #[test]
    fn sampler_matches_pmf() {
        let zm = ZipfMandelbrot::new(2.0, 1.0, 1 << 10).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let n = 200_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let x = zm.sample(&mut rng);
            assert!((1..=(1 << 10)).contains(&x));
            *counts.entry(x).or_insert(0u64) += 1;
        }
        for d in 1..=8u64 {
            let p = zm.pmf(d);
            let expected = p * n as f64;
            let se = (n as f64 * p * (1.0 - p)).sqrt();
            let obs = *counts.get(&d).unwrap_or(&0) as f64;
            assert!(
                (obs - expected).abs() < 5.0 * se,
                "d={d}: obs {obs}, expected {expected}"
            );
        }
    }
}
