//! The Section IV-B parameter-estimation pipeline.
//!
//! From an observed degree distribution the paper fits the simplified
//! constants in four steps:
//!
//! (a) **Tail regression** — Equation (4): a log-log plot of the
//!     degree frequencies at large `d` is linear with slope `−α` and
//!     intercept `log c`.
//! (b) **Poisson scale** — subtract `c·d^{−α}` and form the moment
//!     ratio of the residuals; numerically solve
//!     `R = x + x²/(eˣ − x − 1)` for `x = λp` (the paper's more
//!     robust alternative to point-wise estimates).
//! (c) **Star amplitude** — the residual sum equals
//!     `u·(eˣ − 1 − x)`.
//! (d) **Leaf mass** — solve Equation (2) at `d = 1` exactly.
//!
//! With the window `p` known, [`SimplifiedParams::to_underlying`]
//! completes the recovery of the window-invariant `(C, L, U, λ, α)`.

use crate::simplified::SimplifiedParams;
use palu_stats::error::StatsError;
use palu_stats::histogram::DegreeHistogram;
use palu_stats::regression::weighted_ols;
use palu_stats::rng::Rng;
use palu_stats::solve::brent;

/// How step (b) estimates the Poisson scale `x = λp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LambdaMethod {
    /// The paper's recommended moment-ratio estimator (lower
    /// variance).
    Ratio,
    /// Point-wise estimates from consecutive residual ratios
    /// `x ≈ (d+1)·r(d+1)/r(d)`, averaged (the paper's strawman).
    Pointwise,
}

/// Options for the estimator.
#[derive(Debug, Clone, Copy)]
pub struct EstimateOptions {
    /// Smallest degree included in the tail regression (paper: the
    /// `d ≥ 10` regime of Equation 4).
    pub tail_min_degree: u64,
    /// Largest degree included in the tail regression (degrees beyond
    /// this are supernode territory with count ~1 and huge variance).
    pub tail_max_degree: u64,
    /// Minimum observation count for a log bin to enter the tail
    /// regression (bins with fewer carry too much log-variance).
    pub min_count: u64,
    /// Largest degree included in the residual (Poisson) sums.
    pub residual_max_degree: u64,
    /// Step (b) estimator.
    pub lambda_method: LambdaMethod,
    /// Residual mass below which the star population is declared
    /// absent (absorbs histogram-rounding noise on pure power laws).
    pub min_residual_mass: f64,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        EstimateOptions {
            tail_min_degree: 10,
            tail_max_degree: 4096,
            min_count: 3,
            residual_max_degree: 64,
            lambda_method: LambdaMethod::Ratio,
            min_residual_mass: 1e-6,
        }
    }
}

/// Result of the estimation pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamEstimate {
    /// The fitted simplified constants.
    pub simplified: SimplifiedParams,
    /// `R²` of the tail regression (step a).
    pub tail_r_squared: f64,
    /// Number of degree points used in the tail regression.
    pub tail_points: usize,
    /// Total residual mass attributed to the star population (step c
    /// numerator).
    pub residual_mass: f64,
}

/// The Section IV-B estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaluEstimator {
    /// Tuning options.
    pub options: EstimateOptions,
}

impl PaluEstimator {
    /// Estimator with explicit options.
    pub fn new(options: EstimateOptions) -> Self {
        PaluEstimator { options }
    }

    /// Run the pipeline on an observed degree histogram.
    ///
    /// # Examples
    ///
    /// ```
    /// use palu::estimate::PaluEstimator;
    /// use palu::params::PaluParams;
    /// use palu::analytic::ObservedPrediction;
    /// use palu_stats::histogram::DegreeHistogram;
    /// // Noise-free data straight from the model's degree law.
    /// let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap();
    /// let pred = ObservedPrediction::new(&params).unwrap();
    /// let mut h = DegreeHistogram::new();
    /// for d in 1..=(1u64 << 13) {
    ///     let count = (pred.degree_fraction(d) * 1e8).round() as u64;
    ///     h.increment(d, count);
    /// }
    /// let est = PaluEstimator::default().estimate(&h).unwrap();
    /// assert!((est.simplified.alpha - 2.0).abs() < 0.1);
    /// assert!((est.simplified.lambda_p() - 1.5).abs() < 0.2); // λp = 3·0.5
    /// ```
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if the histogram has no usable tail
    /// (fewer than 3 regression points).
    pub fn estimate(&self, h: &DegreeHistogram) -> Result<ParamEstimate, StatsError> {
        let total = h.total() as f64;
        if h.is_empty() {
            return Err(StatsError::EmptyInput {
                routine: "PaluEstimator::estimate",
            });
        }
        let o = &self.options;

        // The tail regression and the star-residual extraction are
        // mutually coupled: Poisson mass leaking into the lower tail
        // biases (α, c), and a biased (α, c) distorts the residuals.
        // Three alternating passes decouple them — pass 1 fits the raw
        // tail, later passes refit after subtracting the current star
        // estimate.
        const REFINEMENT_PASSES: usize = 3;
        let mut alpha = 0.0f64;
        let mut c = 0.0f64;
        let mut x = 0.0f64;
        let mut u = 0.0f64;
        let mut reg_r_squared = 0.0f64;
        let mut tail_points = 0usize;
        let mut s0 = 0.0f64;

        for _pass in 0..REFINEMENT_PASSES {
            // ---- (a) tail regression: log f'(d) = −α log d + log c,
            // where f' subtracts the current star-term estimate ----
            let star = |d: u64| -> f64 {
                if u > 0.0 && x > 0.0 {
                    // x > 0.0 by the branch guard above. lint:allow(R3)
                    u * (d as f64 * x.ln() - palu_stats::special::ln_factorial(d)).exp()
                } else {
                    0.0
                }
            };
            // Regress on LOG-BINNED tail densities rather than
            // per-degree frequencies. Per-degree points need a
            // min-count filter (count-1 far-tail degrees carry huge
            // log-variance), but any such filter selects
            // upward-fluctuated bins and flattens the fitted slope —
            // an effect that compounds catastrophically under
            // bootstrap resampling. Binary log bins are fixed in
            // advance, aggregate hundreds of observations each, and
            // estimate the density c·d^{−α} at the bin's geometric
            // midpoint without any data-dependent selection.
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            let mut ws = Vec::new();
            let first_bin = palu_stats::logbin::LogBins::bin_index(o.tail_min_degree);
            let last_bin = palu_stats::logbin::LogBins::bin_index(o.tail_max_degree);
            for i in first_bin..=last_bin {
                let lo = palu_stats::logbin::LogBins::lower_bound_exclusive(i) + 1;
                let hi = palu_stats::logbin::LogBins::upper_bound(i);
                // Trim the bin to the configured tail window.
                let lo = lo.max(o.tail_min_degree);
                let hi = hi.min(o.tail_max_degree);
                if lo > hi {
                    continue;
                }
                let mut count = 0u64;
                let mut star_mass = 0.0f64;
                for (d, c) in h.iter() {
                    if d < lo || d > hi {
                        continue;
                    }
                    count += c;
                    star_mass += star(d);
                }
                if count < o.min_count {
                    continue;
                }
                let width = (hi - lo + 1) as f64;
                let density = (count as f64 / total - star_mass) / width;
                if density <= 0.0 {
                    continue;
                }
                // The bin-average density of c·d^{−α} equals the
                // density at the *effective* abscissa
                // m = (Σ d^{−α}/width)^{−1/α}, not at the geometric
                // midpoint (Jensen bias ≈ 2% per octave bin, which
                // shifts the fitted c systematically). Pass 1 has no
                // α yet and uses the geometric midpoint; later passes
                // use the current α.
                let midpoint = if alpha > 1.0 {
                    let hsum: f64 = (lo..=hi).map(|d| (d as f64).powf(-alpha)).sum();
                    (hsum / width).powf(-1.0 / alpha)
                } else {
                    // Bin edges are degrees, lo >= 1. lint:allow(R3)
                    ((lo as f64) * (hi as f64)).sqrt()
                };
                // Midpoint is a mean of degrees >= 1; density > 0 for
                // occupied bins (zero-count bins were skipped). lint:allow(R3)
                xs.push(midpoint.ln());
                ys.push(density.ln()); // see above. lint:allow(R3)
                ws.push(count as f64);
            }
            if xs.len() < 3 {
                return Err(StatsError::EmptyInput {
                    routine: "PaluEstimator::estimate (tail)",
                });
            }
            let reg = weighted_ols(&xs, &ys, &ws)?;
            alpha = -reg.slope;
            c = reg.intercept.exp();
            reg_r_squared = reg.r_squared;
            tail_points = xs.len();

            // ---- (b) Poisson scale from residual moments ----
            s0 = 0.0;
            let mut s1 = 0.0f64;
            let mut residuals: Vec<(u64, f64)> = Vec::new();
            // Adaptive residual window: once a Poisson scale estimate
            // exists, sum only over the bump's support
            // (x + 5√x + 3 covers it to ~1e-6); degrees beyond carry
            // no star signal, only core-misfit leakage and noise.
            let res_max = if x > 0.0 {
                o.residual_max_degree
                    // x > 0.0 by the branch guard above. lint:allow(R3)
                    .min(((x + 5.0 * x.sqrt() + 3.0).ceil() as u64).max(8))
            } else {
                o.residual_max_degree
            };
            for (d, cnt) in h.iter() {
                if d < 2 || d > res_max {
                    continue;
                }
                let f = cnt as f64 / total;
                // UNCLAMPED residuals: rectifying per-degree noise with
                // .max(0) would bias the d-weighted moment upward
                // (positive-only fluctuations at large d carry large
                // weight); signed residuals let the noise cancel.
                let r = f - c * (d as f64).powf(-alpha);
                s0 += r;
                s1 += d as f64 * r;
                if r > 0.0 {
                    residuals.push((d, r));
                }
            }

            if s0 <= o.min_residual_mass || residuals.len() < 2 {
                // No detectable star population; nothing to refine.
                x = 0.0;
                u = 0.0;
                break;
            }
            x = match o.lambda_method {
                LambdaMethod::Ratio => {
                    let ratio = s1 / s0;
                    // R(x) ∈ (2, ∞); ratio ≤ 2 means x → 0 within noise.
                    if ratio <= 2.0 + 1e-9 {
                        0.0
                    } else {
                        brent(
                            |x| SimplifiedParams::moment_ratio(x) - ratio,
                            1e-6,
                            60.0,
                            1e-10,
                            300,
                        )?
                    }
                }
                LambdaMethod::Pointwise => {
                    // x ≈ (d+1)·r(d+1)/r(d) for consecutive residuals.
                    // Pairs where either residual is within noise of
                    // zero produce wild ratios — keep only pairs well
                    // above the floor (this is exactly the fragility
                    // the paper's ratio estimator was designed to
                    // avoid).
                    let floor = residuals.iter().map(|&(_, r)| r).fold(0.0f64, f64::max) * 1e-3;
                    let mut estimates = Vec::new();
                    for w in residuals.windows(2) {
                        let (d0, r0) = w[0];
                        let (d1, r1) = w[1];
                        if d1 == d0 + 1 && r0 > floor && r1 > floor {
                            estimates.push(d1 as f64 * r1 / r0);
                        }
                    }
                    if estimates.is_empty() {
                        0.0
                    } else {
                        estimates.iter().sum::<f64>() / estimates.len() as f64
                    }
                }
            };
            // A near-zero x means the bump is indistinguishable from
            // core-misfit leakage: u = s0/(eˣ−1−x) diverges as x → 0,
            // so report "no detectable star population" instead of an
            // absurd amplitude.
            if x < 0.05 {
                x = 0.0;
            }
            u = if x > 0.0 {
                s0 / (x.exp() - 1.0 - x)
            } else {
                0.0
            };
        }

        // ---- (d) leaf mass from Equation (2) ----
        let f1 = h.probability(1);
        let unattached_d1 = u * x * (1.0 + x.exp());
        let l = (f1 - c - unattached_d1).max(0.0);

        Ok(ParamEstimate {
            simplified: SimplifiedParams::from_raw(c, l, u, std::f64::consts::E * x, alpha),
            tail_r_squared: reg_r_squared,
            tail_points,
            residual_mass: s0,
        })
    }

    /// Run the pipeline and, knowing the window `p`, recover the
    /// window-invariant underlying parameters.
    ///
    /// Uses the paper's formulas end-to-end (amplitude convention
    /// `Paper`). For data produced by *actual* edge sampling — real
    /// traffic or simulation — prefer
    /// [`PaluEstimator::estimate_exact`], which replaces the paper's
    /// leading-order core terms with the exact Binomial-thinning pmf.
    ///
    /// # Errors
    ///
    /// Propagates [`PaluEstimator::estimate`] and
    /// [`SimplifiedParams::to_underlying`] errors — the latter fires
    /// when the fitted constants leave the model's valid region (a
    /// diagnostic that the data is not PALU-like).
    pub fn estimate_underlying(
        &self,
        h: &DegreeHistogram,
        p: f64,
    ) -> Result<(ParamEstimate, crate::params::PaluParams), StatsError> {
        let est = self.estimate(h)?;
        let underlying = est.simplified.to_underlying(p)?;
        Ok((est, underlying))
    }

    /// Exact-thinning variant of the pipeline for simulated or real
    /// edge-sampled data with known window `p`.
    ///
    /// Differences from the paper pipeline:
    ///
    /// 1. the tail amplitude is inverted with the `Thinned` convention
    ///    `c = (C/V)·p^{α−1}/ζ(α)` (see
    ///    [`crate::simplified::AmplitudeConvention`]);
    /// 2. the core contribution subtracted from the small-`d`
    ///    residuals — and from the `d = 1` equation — is the exact
    ///    [`crate::analytic::thinned_core_pmf`], not `c·d^{−α}`;
    ///    thinning piles substantial extra core mass onto small
    ///    degrees, which the paper's form misattributes to leaves.
    ///
    /// # Errors
    ///
    /// As [`PaluEstimator::estimate_underlying`].
    pub fn estimate_exact(
        &self,
        h: &DegreeHistogram,
        p: f64,
    ) -> Result<(ParamEstimate, crate::params::PaluParams), StatsError> {
        use crate::analytic::thinned_core_pmf;
        use crate::simplified::AmplitudeConvention;
        use palu_stats::special::riemann_zeta;

        if !(0.0 < p && p <= 1.0) {
            return Err(StatsError::domain(
                "PaluEstimator::estimate_exact",
                format!("p must be in (0, 1], got {p}"),
            ));
        }
        // Stage 1: the paper pipeline supplies (α, c) from the tail
        // (the tail is where its form is asymptotically exact).
        let est = self.estimate(h)?;
        let alpha = est.simplified.alpha;
        let c = est.simplified.c;
        let zeta_alpha = riemann_zeta(alpha)?;
        // Thinned inversion of the amplitude.
        let c_over_v = c * zeta_alpha / p.powf(alpha - 1.0);

        // Stage 2: redo the residual extraction with the exact core.
        // Two passes: the first uses the configured window; the second
        // narrows to the detected Poisson bump's support (see the
        // matching comment in `estimate`).
        let total = h.total() as f64;
        let o = &self.options;
        let mut x = 0.0f64;
        let mut u = 0.0f64;
        let mut s0 = 0.0f64;
        for _pass in 0..2 {
            let res_max = if x > 0.0 {
                // Floor of 16 so an underestimated first-pass x cannot
                // trap the window below the true bump's support.
                o.residual_max_degree
                    // x > 0.0 by the branch guard above. lint:allow(R3)
                    .min(((x + 5.0 * x.sqrt() + 3.0).ceil() as u64).max(16))
            } else {
                // First pass: short window (see `estimate`).
                o.residual_max_degree.min(16)
            };
            s0 = 0.0;
            let mut s1 = 0.0f64;
            for (d, cnt) in h.iter() {
                if d < 2 || d > res_max {
                    continue;
                }
                let f = cnt as f64 / total;
                let core = c_over_v * thinned_core_pmf(alpha, p, d)?;
                // Signed residuals — clamping would rectify tail noise
                // into a large upward bias on the moment ratio.
                s0 += f - core;
                s1 += d as f64 * (f - core);
            }
            if s0 <= o.min_residual_mass {
                x = 0.0;
                u = 0.0;
                break;
            }
            let ratio = s1 / s0;
            x = if ratio <= 2.0 + 1e-9 {
                0.0
            } else {
                brent(
                    |x| SimplifiedParams::moment_ratio(x) - ratio,
                    1e-6,
                    60.0,
                    1e-10,
                    300,
                )?
            };
            // A near-zero x means the bump is indistinguishable from
            // core-misfit leakage: u = s0/(eˣ−1−x) diverges as x → 0,
            // so report "no detectable star population" instead of an
            // absurd amplitude.
            if x < 0.05 {
                x = 0.0;
            }
            u = if x > 0.0 {
                s0 / (x.exp() - 1.0 - x)
            } else {
                0.0
            };
        }

        // Stage 3: exact d = 1 equation.
        let f1 = h.probability(1);
        let core_d1 = c_over_v * thinned_core_pmf(alpha, p, 1)?;
        let unattached_d1 = u * x * (1.0 + x.exp());
        let l = (f1 - core_d1 - unattached_d1).max(0.0);

        let simplified = SimplifiedParams::from_raw(c, l, u, std::f64::consts::E * x, alpha);
        let underlying = simplified.to_underlying_with(p, AmplitudeConvention::Thinned)?;
        Ok((
            ParamEstimate {
                simplified,
                residual_mass: s0,
                ..est
            },
            underlying,
        ))
    }
}

/// Percentile bootstrap confidence intervals for the Section IV-B
/// estimates: the sampling variability of `(α, λp, c, u, l)` under
/// multinomial resampling of the observed histogram. The paper reports
/// point estimates only; a production tool needs to say how firm they
/// are (the star-side parameters carry substantially more variance
/// than α — see E-A3).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateBootstrap {
    /// Point estimate on the original data.
    pub point: ParamEstimate,
    /// `(lo, hi)` percentile interval for `α`.
    pub alpha_ci: (f64, f64),
    /// `(lo, hi)` percentile interval for `λp`.
    pub lambda_p_ci: (f64, f64),
    /// `(lo, hi)` percentile interval for the leaf mass `l`.
    pub l_ci: (f64, f64),
    /// Number of successfully refit replicates.
    pub replicates: usize,
}

impl PaluEstimator {
    /// Bootstrap the pipeline: `n_boot` multinomial resamples, refit
    /// each, percentile intervals at confidence `level` (e.g. 0.9).
    ///
    /// # Errors
    ///
    /// Propagates the point estimate's errors; [`StatsError::Domain`]
    /// for an invalid level or `n_boot < 10`;
    /// [`StatsError::NoConvergence`] if more than half the replicates
    /// fail to fit.
    pub fn estimate_bootstrap<R: Rng + ?Sized>(
        &self,
        h: &DegreeHistogram,
        n_boot: usize,
        level: f64,
        rng: &mut R,
    ) -> Result<EstimateBootstrap, StatsError> {
        if !(0.5..1.0).contains(&level) {
            return Err(StatsError::domain(
                "PaluEstimator::estimate_bootstrap",
                format!("confidence level must be in [0.5, 1), got {level}"),
            ));
        }
        if n_boot < 10 {
            return Err(StatsError::domain(
                "PaluEstimator::estimate_bootstrap",
                "need at least 10 bootstrap replicates",
            ));
        }
        let point = self.estimate(h)?;
        let mut alphas = Vec::with_capacity(n_boot);
        let mut lambda_ps = Vec::with_capacity(n_boot);
        let mut ls = Vec::with_capacity(n_boot);
        for _ in 0..n_boot {
            let boot = h.resample(rng);
            if let Ok(est) = self.estimate(&boot) {
                alphas.push(est.simplified.alpha);
                lambda_ps.push(est.simplified.lambda_p());
                ls.push(est.simplified.l);
            }
        }
        if alphas.len() < n_boot / 2 {
            return Err(StatsError::NoConvergence {
                routine: "PaluEstimator::estimate_bootstrap",
                iterations: n_boot,
                residual: alphas.len() as f64,
            });
        }
        let tail = (1.0 - level) / 2.0;
        let ci = |values: &mut Vec<f64>| {
            values.sort_by(f64::total_cmp);
            let q = |p: f64| values[((values.len() - 1) as f64 * p).round() as usize];
            (q(tail), q(1.0 - tail))
        };
        Ok(EstimateBootstrap {
            point,
            alpha_ci: ci(&mut alphas),
            lambda_p_ci: ci(&mut lambda_ps),
            l_ci: ci(&mut ls),
            replicates: lambda_ps.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::ObservedPrediction;
    use crate::params::PaluParams;
    use palu_stats::rng::Xoshiro256pp;

    /// Build a synthetic "observed histogram" directly from the
    /// analytic model (noise-free): the estimator must recover the
    /// constants almost exactly.
    fn analytic_histogram(params: &PaluParams, n: u64, d_max: u64) -> DegreeHistogram {
        let pred = ObservedPrediction::new(params).unwrap();
        let mut h = DegreeHistogram::new();
        for d in 1..=d_max {
            let count = (pred.degree_fraction(d) * n as f64).round() as u64;
            if count > 0 {
                h.increment(d, count);
            }
        }
        h
    }

    fn test_params() -> PaluParams {
        PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap()
    }

    #[test]
    fn recovers_constants_from_noise_free_data() {
        let params = test_params();
        let h = analytic_histogram(&params, 100_000_000, 1 << 14);
        let truth = SimplifiedParams::from_params(&params).unwrap();
        let est = PaluEstimator::default().estimate(&h).unwrap();
        let s = est.simplified;
        assert!(
            (s.alpha - truth.alpha).abs() < 0.05,
            "α: {} vs {}",
            s.alpha,
            truth.alpha
        );
        assert!(
            ((s.c - truth.c) / truth.c).abs() < 0.1,
            "c: {} vs {}",
            s.c,
            truth.c
        );
        assert!(
            ((s.lambda_p() - truth.lambda_p()) / truth.lambda_p()).abs() < 0.1,
            "λp: {} vs {}",
            s.lambda_p(),
            truth.lambda_p()
        );
        assert!(
            ((s.u - truth.u) / truth.u).abs() < 0.25,
            "u: {} vs {}",
            s.u,
            truth.u
        );
        assert!(
            ((s.l - truth.l) / truth.l).abs() < 0.15,
            "l: {} vs {}",
            s.l,
            truth.l
        );
        assert!(est.tail_r_squared > 0.999);
        assert!(est.tail_points >= 6, "bins used: {}", est.tail_points);
    }

    #[test]
    fn recovers_underlying_parameters() {
        let params = test_params();
        let h = analytic_histogram(&params, 100_000_000, 1 << 14);
        let (_, rec) = PaluEstimator::default()
            .estimate_underlying(&h, params.p)
            .unwrap();
        assert!((rec.core - params.core).abs() < 0.05, "C {}", rec.core);
        assert!(
            (rec.leaves - params.leaves).abs() < 0.05,
            "L {}",
            rec.leaves
        );
        assert!(
            (rec.unattached - params.unattached).abs() < 0.05,
            "U {}",
            rec.unattached
        );
        assert!((rec.lambda - params.lambda).abs() < 0.4, "λ {}", rec.lambda);
    }

    #[test]
    fn pointwise_method_works_but_ratio_is_preferred() {
        let params = test_params();
        let h = analytic_histogram(&params, 100_000_000, 1 << 14);
        let truth_x = params.lambda * params.p;
        let ratio = PaluEstimator::default().estimate(&h).unwrap();
        let pointwise = PaluEstimator::new(EstimateOptions {
            lambda_method: LambdaMethod::Pointwise,
            ..Default::default()
        })
        .estimate(&h)
        .unwrap();
        // Both land near the truth on clean data.
        assert!((ratio.simplified.lambda_p() - truth_x).abs() < 0.2);
        assert!((pointwise.simplified.lambda_p() - truth_x).abs() < 0.5);
    }

    #[test]
    fn pure_power_law_yields_zero_star_mass() {
        // A histogram with no Poisson bump: u and Λ must come out 0.
        let mut h = DegreeHistogram::new();
        let alpha = 2.0f64;
        for d in 1..=5000u64 {
            let count = (1e8 * (d as f64).powf(-alpha)).round() as u64;
            if count > 0 {
                h.increment(d, count);
            }
        }
        let est = PaluEstimator::default().estimate(&h).unwrap();
        assert!((est.simplified.alpha - alpha).abs() < 0.05);
        assert!(est.simplified.u < 1e-6, "u = {}", est.simplified.u);
        // Rounding noise may produce a meaningless Λ, but the star
        // *mass* it explains must be negligible.
        assert!(
            est.residual_mass < 1e-4,
            "residual mass {}",
            est.residual_mass
        );
        // And l absorbs nothing (f(1) ≈ c).
        assert!(est.simplified.l < 0.05);
    }

    #[test]
    fn empty_and_thin_histograms_error() {
        assert!(PaluEstimator::default()
            .estimate(&DegreeHistogram::new())
            .is_err());
        // Only two tail points: not enough.
        let h = DegreeHistogram::from_counts([(10, 100), (20, 25), (1, 1000)]);
        assert!(PaluEstimator::default().estimate(&h).is_err());
    }

    #[test]
    fn estimate_from_simulated_network() {
        // End-to-end: generate a PALU network, observe it, estimate.
        use palu_graph::sample::ObservedNetwork;
        use palu_stats::rng::Xoshiro256pp;
        let params = PaluParams::from_core_leaf_fractions(0.55, 0.15, 4.0, 2.0, 0.6).unwrap();
        let gen = params.generator(300_000).unwrap();
        let net = gen.generate(&mut Xoshiro256pp::seed_from_u64(7));
        let obs = ObservedNetwork::observe(&net, params.p, &mut Xoshiro256pp::seed_from_u64(8));
        let h = obs.degree_histogram();
        let est = PaluEstimator::default().estimate(&h).unwrap();
        // The realized (erased-configuration) core steepens α a bit;
        // accept a generous band and check λp more tightly, since the
        // star section is generated exactly.
        assert!(
            (est.simplified.alpha - 2.0).abs() < 0.35,
            "α {}",
            est.simplified.alpha
        );
        let truth_x = params.lambda * params.p;
        assert!(
            (est.simplified.lambda_p() - truth_x).abs() < 0.7,
            "λp {} vs {truth_x}",
            est.simplified.lambda_p()
        );
    }

    #[test]
    fn exact_pipeline_recovers_simulated_invariants() {
        // The exact-thinning pipeline must recover the underlying
        // parameters from a genuinely edge-sampled network — including
        // the leaf proportion the paper pipeline misattributes.
        use palu_graph::sample::ObservedNetwork;
        use palu_stats::rng::Xoshiro256pp;
        let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.6).unwrap();
        let gen = params.generator(400_000).unwrap();
        let net = gen.generate(&mut Xoshiro256pp::seed_from_u64(17));
        let obs = ObservedNetwork::observe(&net, params.p, &mut Xoshiro256pp::seed_from_u64(18));
        let h = obs.degree_histogram();
        let (_, rec) = PaluEstimator::default()
            .estimate_exact(&h, params.p)
            .unwrap();
        assert!((rec.lambda - 3.0).abs() < 0.6, "λ {}", rec.lambda);
        assert!((rec.alpha - 2.0).abs() < 0.3, "α {}", rec.alpha);
        assert!((rec.core - 0.5).abs() < 0.15, "C {}", rec.core);
        assert!((rec.leaves - 0.2).abs() < 0.1, "L {}", rec.leaves);
        assert!(
            (rec.unattached - params.unattached).abs() < 0.05,
            "U {} vs {}",
            rec.unattached,
            params.unattached
        );
    }

    #[test]
    fn bootstrap_intervals_cover_and_order() {
        use palu_graph::sample::ObservedNetwork;
        use palu_stats::rng::Xoshiro256pp;
        let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 3.0, 2.0, 0.5).unwrap();
        let net = params
            .generator(150_000)
            .unwrap()
            .generate(&mut Xoshiro256pp::seed_from_u64(3));
        let obs = ObservedNetwork::observe(&net, params.p, &mut Xoshiro256pp::seed_from_u64(4));
        let h = obs.degree_histogram();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let boot = PaluEstimator::default()
            .estimate_bootstrap(&h, 20, 0.9, &mut rng)
            .unwrap();
        // Intervals are ordered and sit near the point estimate. (A
        // percentile bootstrap need not *contain* the point estimate:
        // resampling Poisson-thins borderline tail bins out of the
        // min_count filter, which shifts the replicate fits slightly.)
        assert!(boot.alpha_ci.0 <= boot.alpha_ci.1);
        assert!(
            boot.alpha_ci.0 - 0.15 <= boot.point.simplified.alpha
                && boot.point.simplified.alpha <= boot.alpha_ci.1 + 0.15,
            "α CI {:?} far from point {}",
            boot.alpha_ci,
            boot.point.simplified.alpha
        );
        assert!(boot.lambda_p_ci.0 <= boot.lambda_p_ci.1);
        assert!(boot.l_ci.0 <= boot.l_ci.1);
        assert!(boot.replicates >= 10);
        // λp variance dominates α variance, relatively (the E-A3
        // observation).
        let rel = |ci: (f64, f64), v: f64| (ci.1 - ci.0) / v.max(1e-9);
        assert!(
            rel(boot.lambda_p_ci, boot.point.simplified.lambda_p())
                > rel(boot.alpha_ci, boot.point.simplified.alpha)
        );
    }

    #[test]
    fn bootstrap_validates_inputs() {
        let h = DegreeHistogram::from_counts([(1, 100), (10, 30), (20, 10), (40, 3)]);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert!(PaluEstimator::default()
            .estimate_bootstrap(&h, 5, 0.9, &mut rng)
            .is_err());
        assert!(PaluEstimator::default()
            .estimate_bootstrap(&h, 20, 0.2, &mut rng)
            .is_err());
    }

    #[test]
    fn estimate_exact_validates_p() {
        let h = DegreeHistogram::from_counts([(1, 100), (10, 30), (20, 10), (40, 3)]);
        assert!(PaluEstimator::default().estimate_exact(&h, 0.0).is_err());
        assert!(PaluEstimator::default().estimate_exact(&h, 1.5).is_err());
    }
}
