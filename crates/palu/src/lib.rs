//! # PALU: Preferential Attachment + Leaves + Unattached links
//!
//! A from-scratch implementation of the hybrid power-law network-traffic
//! model of Devlin, Kepner, Luo & Meger, *Hybrid Power-Law Models of
//! Network Traffic* (2021).
//!
//! The paper's thesis: streaming Internet traffic is not a pure
//! preferential-attachment (PA) network. Trunk-line observatories see
//! large populations of **leaves** (degree-1 nodes hanging off the PA
//! core) and **unattached links** (tiny star components disconnected
//! from the core) that webcrawl-sampled datasets miss. The PALU model
//! adds those populations to PA explicitly and observes the result
//! through Erdős–Rényi edge sampling with retention probability `p`
//! (the *window size* parameter).
//!
//! ## Crate map
//!
//! * [`params`] — the five model parameters `(λ, C, L, U, α)` plus the
//!   window parameter `p`, under the Section III constraint
//!   `C + L + U(1 + λ − e^{−λ}) = 1`.
//! * [`analytic`] — the Section IV closed-form predictions for the
//!   observed network (visible fraction `V`, role fractions, degree
//!   distribution).
//! * [`simplified`] — the Section IV-B constants `(c, l, u, Λ)` and the
//!   simplified degree laws (Equations 2–4).
//! * [`estimate`] — the Section IV-B parameter-estimation pipeline:
//!   tail regression → moment-ratio `Λ` solve → `u` → `l`.
//! * [`zm`] — the modified Zipf–Mandelbrot model
//!   `p(d; α, δ) ∝ 1/(d + δ)^α` of Section II-B.
//! * [`zm_fit`] — fitting `(α, δ)` to pooled differential cumulative
//!   distributions (the paper's objective), with KS and log-space
//!   ablation objectives.
//! * [`zm_connection`] — the Section VI bridge: the one-parameter
//!   `PALU(d) ∝ d^{−α} + r^{1−d}((1+δ)^{−α} − 1)` family (Equation 5)
//!   and the `δ ↔ (U/C, λ, p)` correspondence.
//! * [`invariance`] — the Section III claim that `(λ, C, L, U, α)` are
//!   window-size invariant while only `p` moves.
//!
//! ## Quickstart
//!
//! ```
//! use palu::params::PaluParams;
//! use palu::analytic::ObservedPrediction;
//!
//! // A network that is mostly core by node count, observed through a
//! // window that captures 30% of underlying edges.
//! let params = PaluParams::from_core_leaf_fractions(0.5, 0.2, 1.5, 2.0, 0.3).unwrap();
//! let pred = ObservedPrediction::new(&params).unwrap();
//! // The model predicts what fraction of visible nodes have degree 1:
//! assert!(pred.degree_one_fraction > 0.3);
//! // And the full degree law:
//! let f5 = pred.degree_fraction(5);
//! assert!(f5 > 0.0 && f5 < pred.degree_one_fraction);
//! ```
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

/// Closed-form observed-degree predictions for a parameterized PALU network.
pub mod analytic;
/// Parameter recovery: fitting PALU parameters to observed distributions.
pub mod estimate;
/// Window-size invariance checks for `(λ, C, L, U, α)` (Section III).
pub mod invariance;
/// The full PALU parameter set and its validity constraints.
pub mod params;
/// The reduced two-parameter PALU surface used for coarse fitting.
pub mod simplified;
/// Zipf–Mandelbrot distribution primitives.
pub mod zm;
/// The Section VI bridge between PALU and Zipf–Mandelbrot (Equation 5).
pub mod zm_connection;
/// Fitting `(α, δ)` to pooled differential cumulative distributions.
pub mod zm_fit;

pub use analytic::ObservedPrediction;
pub use params::PaluParams;
pub use simplified::SimplifiedParams;
pub use zm::ZipfMandelbrot;
pub use zm_connection::PaluCurve;
pub use zm_fit::{FitObjective, ZmFit, ZmFitter};

/// Errors from this crate are the statistical substrate's errors.
pub use palu_stats::StatsError as Error;

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;
