//! The five streaming network quantities of Figure 1.
//!
//! From a packet window `A_t` the paper derives five degree-like
//! quantities, each yielding a histogram `n_t(d)` for pooling:
//!
//! * **source packets** — packets sent per source (`A·1`);
//! * **source fan-out** — unique destinations per source (`|A|₀·1`);
//! * **link packets** — packets per unique source–destination pair
//!   (the stored values of `A`);
//! * **destination fan-in** — unique sources per destination
//!   (`1ᵀ|A|₀`);
//! * **destination packets** — packets received per destination
//!   (`1ᵀA`).
//!
//! Zero rows/columns (addresses with no traffic in the window) are
//! excluded, matching the observational reality that silent hosts are
//! invisible.

use crate::csr::CsrMatrix;
use palu_stats::histogram::DegreeHistogram;

/// Selector for one of the five Figure 1 quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkQuantity {
    /// Packets sent per unique source.
    SourcePackets,
    /// Unique destinations per unique source.
    SourceFanOut,
    /// Packets per unique link.
    LinkPackets,
    /// Unique sources per unique destination.
    DestinationFanIn,
    /// Packets received per unique destination.
    DestinationPackets,
}

impl NetworkQuantity {
    /// All five quantities in the paper's Figure 1 order.
    pub const ALL: [NetworkQuantity; 5] = [
        NetworkQuantity::SourcePackets,
        NetworkQuantity::SourceFanOut,
        NetworkQuantity::LinkPackets,
        NetworkQuantity::DestinationFanIn,
        NetworkQuantity::DestinationPackets,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkQuantity::SourcePackets => "source packets",
            NetworkQuantity::SourceFanOut => "source fan-out",
            NetworkQuantity::LinkPackets => "link packets",
            NetworkQuantity::DestinationFanIn => "destination fan-in",
            NetworkQuantity::DestinationPackets => "destination packets",
        }
    }

    /// Compute this quantity's histogram from a window matrix.
    pub fn histogram(&self, a: &CsrMatrix) -> DegreeHistogram {
        match self {
            NetworkQuantity::SourcePackets => {
                DegreeHistogram::from_degrees(a.row_sums().into_iter().filter(|&s| s > 0))
            }
            NetworkQuantity::SourceFanOut => DegreeHistogram::from_degrees(
                a.row_nnzs()
                    .into_iter()
                    .filter(|&n| n > 0)
                    .map(|n| n as u64),
            ),
            NetworkQuantity::LinkPackets => {
                DegreeHistogram::from_degrees(a.values().iter().copied())
            }
            NetworkQuantity::DestinationFanIn => DegreeHistogram::from_degrees(
                a.col_nnzs()
                    .into_iter()
                    .filter(|&n| n > 0)
                    .map(|n| n as u64),
            ),
            NetworkQuantity::DestinationPackets => {
                DegreeHistogram::from_degrees(a.col_sums().into_iter().filter(|&s| s > 0))
            }
        }
    }
}

/// All five quantity histograms for one window, computed in one call.
#[derive(Debug, Clone, Default)]
pub struct QuantityHistograms {
    /// Packets per source.
    pub source_packets: DegreeHistogram,
    /// Fan-out per source.
    pub source_fan_out: DegreeHistogram,
    /// Packets per link.
    pub link_packets: DegreeHistogram,
    /// Fan-in per destination.
    pub destination_fan_in: DegreeHistogram,
    /// Packets per destination.
    pub destination_packets: DegreeHistogram,
}

impl QuantityHistograms {
    /// Compute all five quantities from a window matrix.
    pub fn compute(a: &CsrMatrix) -> Self {
        QuantityHistograms {
            source_packets: NetworkQuantity::SourcePackets.histogram(a),
            source_fan_out: NetworkQuantity::SourceFanOut.histogram(a),
            link_packets: NetworkQuantity::LinkPackets.histogram(a),
            destination_fan_in: NetworkQuantity::DestinationFanIn.histogram(a),
            destination_packets: NetworkQuantity::DestinationPackets.histogram(a),
        }
    }

    /// Access a quantity's histogram by selector.
    pub fn get(&self, q: NetworkQuantity) -> &DegreeHistogram {
        match q {
            NetworkQuantity::SourcePackets => &self.source_packets,
            NetworkQuantity::SourceFanOut => &self.source_fan_out,
            NetworkQuantity::LinkPackets => &self.link_packets,
            NetworkQuantity::DestinationFanIn => &self.destination_fan_in,
            NetworkQuantity::DestinationPackets => &self.destination_packets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// Window: 0→1 ×3, 0→2 ×1, 5→1 ×2, 5→5 ×1.
    fn window() -> CsrMatrix {
        let mut m = CooMatrix::new();
        m.push(0, 1, 3);
        m.push(0, 2, 1);
        m.push(5, 1, 2);
        m.push(5, 5, 1);
        m.to_csr()
    }

    #[test]
    fn source_packets() {
        // Source 0 sent 4, source 5 sent 3.
        let h = NetworkQuantity::SourcePackets.histogram(&window());
        assert_eq!(h.total(), 2);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(3), 1);
    }

    #[test]
    fn source_fan_out() {
        // Both sources talk to exactly 2 destinations.
        let h = NetworkQuantity::SourceFanOut.histogram(&window());
        assert_eq!(h.total(), 2);
        assert_eq!(h.count(2), 2);
    }

    #[test]
    fn link_packets() {
        // Link weights: 3, 1, 2, 1.
        let h = NetworkQuantity::LinkPackets.histogram(&window());
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(3), 1);
        // Total packets recoverable from the weighted histogram.
        assert_eq!(h.degree_sum(), 7);
    }

    #[test]
    fn destination_fan_in() {
        // Dest 1 hears from 2 sources; dests 2 and 5 from 1 each.
        let h = NetworkQuantity::DestinationFanIn.histogram(&window());
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(1), 2);
    }

    #[test]
    fn destination_packets() {
        // Dest 1 got 5, dest 2 got 1, dest 5 got 1.
        let h = NetworkQuantity::DestinationPackets.histogram(&window());
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(1), 2);
    }

    #[test]
    fn all_quantities_struct_matches_selectors() {
        let a = window();
        let all = QuantityHistograms::compute(&a);
        for q in NetworkQuantity::ALL {
            assert_eq!(all.get(q), &q.histogram(&a), "{}", q.name());
        }
    }

    #[test]
    fn silent_hosts_are_invisible() {
        let mut m = CooMatrix::new();
        m.push(0, 1, 1);
        m.reserve_dims(10, 10); // 9 silent sources, 9 silent dests
        let a = m.to_csr();
        assert_eq!(NetworkQuantity::SourcePackets.histogram(&a).total(), 1);
        assert_eq!(NetworkQuantity::DestinationPackets.histogram(&a).total(), 1);
        assert_eq!(NetworkQuantity::SourceFanOut.histogram(&a).total(), 1);
        assert_eq!(NetworkQuantity::DestinationFanIn.histogram(&a).total(), 1);
    }

    #[test]
    fn quantity_identities() {
        // Cross-quantity invariants that hold for any window:
        //   Σ source packets = Σ destination packets = N_V
        //   Σ fan-out = Σ fan-in = unique links
        let a = window();
        let q = QuantityHistograms::compute(&a);
        assert_eq!(q.source_packets.degree_sum(), a.total());
        assert_eq!(q.destination_packets.degree_sum(), a.total());
        assert_eq!(q.source_fan_out.degree_sum(), a.nnz() as u64);
        assert_eq!(q.destination_fan_in.degree_sum(), a.nnz() as u64);
        assert_eq!(q.link_packets.total(), a.nnz() as u64);
        assert_eq!(q.link_packets.degree_sum(), a.total());
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            NetworkQuantity::ALL.iter().map(|q| q.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn empty_window_gives_empty_histograms() {
        let a = CooMatrix::new().to_csr();
        let q = QuantityHistograms::compute(&a);
        for sel in NetworkQuantity::ALL {
            assert!(q.get(sel).is_empty(), "{}", sel.name());
        }
    }
}
