//! Reusable per-worker scratch buffers for the window hot path.
//!
//! The pipeline assembles and measures one matrix per window — at
//! observatory scale, millions of times. Building each window from
//! fresh allocations (dense counting-sort buffers in
//! [`CooMatrix::to_csr`](crate::coo::CooMatrix::to_csr), a
//! `BTreeMap<_, BTreeSet<_>>` per undirected-degree histogram) turns
//! the workers into allocator benchmarks: under threads they serialize
//! on the global allocator and parallel speedup inverts. The types
//! here hold every such buffer once per worker and are threaded
//! through the per-window stages, so steady-state window processing
//! performs no heap allocation beyond the result histograms
//! themselves.
//!
//! All scratch-based computations are exact drop-in replacements:
//! each produces a value **equal** to its allocating counterpart
//! (same `BTreeMap` contents for histograms, same CSR arrays), which
//! is what keeps the parallel pipeline's bit-identity contract intact.

use crate::csr::CsrMatrix;
use crate::quantities::NetworkQuantity;
use crate::{Count, NodeId};
use palu_stats::histogram::DegreeHistogram;

/// Reusable buffers for [`CooMatrix::try_to_csr_with`]
/// (counting-sort offsets, scatter arrays, per-row sort space, and
/// recycled CSR output arrays).
///
/// [`CooMatrix::try_to_csr_with`]: crate::coo::CooMatrix::try_to_csr_with
#[derive(Debug, Clone, Default)]
pub struct CsrScratch {
    /// Counting-sort row offsets (`n_rows + 1` entries).
    pub(crate) offsets: Vec<usize>,
    /// Per-row write cursors during the scatter pass.
    pub(crate) next: Vec<usize>,
    /// Row-grouped column indices (scatter output).
    pub(crate) scat_cols: Vec<NodeId>,
    /// Row-grouped values (scatter output).
    pub(crate) scat_vals: Vec<Count>,
    /// Per-row `(col, val)` sort-and-dedup space.
    pub(crate) pair: Vec<(NodeId, Count)>,
    /// Recycled CSR `row_ptr` (taken by the conversion, returned via
    /// [`CsrScratch::recycle`]).
    pub(crate) out_row_ptr: Vec<usize>,
    /// Recycled CSR column array.
    pub(crate) out_cols: Vec<NodeId>,
    /// Recycled CSR value array.
    pub(crate) out_vals: Vec<Count>,
}

impl CsrScratch {
    /// Create an empty scratch; buffers grow on first use and are
    /// retained across conversions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a spent matrix's backing arrays to the scratch so the
    /// next conversion reuses them instead of allocating. Purely an
    /// optimization — a matrix that is never recycled just costs the
    /// next conversion a fresh allocation.
    pub fn recycle(&mut self, m: CsrMatrix) {
        let (row_ptr, cols, vals, _) = m.into_raw_parts();
        self.out_row_ptr = row_ptr;
        self.out_cols = cols;
        self.out_vals = vals;
    }
}

/// Reusable buffers for allocation-free degree-histogram extraction.
///
/// Replaces the per-window `BTreeMap<u32, BTreeSet<u32>>` partner
/// tracking (one heap node per insert) with sort-based edge
/// deduplication plus a *touched-list* count array: the dense
/// per-node accumulator is sized once to the address space and only
/// the entries a window actually touched are reset afterwards, so a
/// sparse window never pays an `O(n_nodes)` clear.
#[derive(Debug, Clone, Default)]
pub struct DegreeScratch {
    /// Normalized undirected edges, packed `(min << 32) | max`.
    edges: Vec<u64>,
    /// Per-window degree list; sorted before histogram construction.
    degrees: Vec<u64>,
    /// Dense per-node accumulator (partner counts or packet volumes).
    counts: Vec<u64>,
    /// Node ids with a nonzero entry in `counts` this window.
    touched: Vec<NodeId>,
}

/// Add `v` to `counts[id]`, recording first touches in `touched`.
/// Out-of-range ids are ignored (callers size `counts` to the matrix
/// address space, so this is unreachable in practice — the guard
/// replaces an indexing panic, not a behaviour).
fn bump(counts: &mut [u64], touched: &mut Vec<NodeId>, id: NodeId, v: u64) {
    if let Some(c) = counts.get_mut(id as usize) {
        if *c == 0 {
            touched.push(id);
        }
        *c += v;
    }
}

impl DegreeScratch {
    /// Create an empty scratch; buffers grow on first use and are
    /// retained across windows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero any accumulator residue without emitting degrees. A normal
    /// call leaves `touched` empty so this is free; it matters when a
    /// previous computation on this scratch panicked mid-accumulation
    /// (the pipeline reuses arenas across `catch_unwind` boundaries)
    /// and stale touched counts would otherwise leak into the next
    /// window's histogram.
    fn reset(&mut self) {
        for &id in &self.touched {
            if let Some(c) = self.counts.get_mut(id as usize) {
                *c = 0;
            }
        }
        self.touched.clear();
    }

    /// Grow the dense accumulator to cover `n` node ids.
    fn ensure_counts(&mut self, n: usize) {
        if self.counts.len() < n {
            self.counts.resize(n, 0);
        }
    }

    /// Move the touched counts into `degrees` (dropping zeros) and
    /// reset exactly the touched entries.
    fn drain_touched(&mut self) {
        for &id in &self.touched {
            if let Some(c) = self.counts.get_mut(id as usize) {
                if *c > 0 {
                    self.degrees.push(*c);
                }
                *c = 0;
            }
        }
        self.touched.clear();
    }

    /// Sort the collected degrees and build the histogram via the
    /// run-length fast path.
    fn finish(&mut self) -> DegreeHistogram {
        self.degrees.sort_unstable();
        DegreeHistogram::from_sorted_degrees(&self.degrees)
    }

    /// Undirected-degree histogram of a window matrix: distinct
    /// partners per visible host. Equal to
    /// `PacketWindow::undirected_degree_histogram` output — a
    /// self-loop contributes exactly one partner (the host itself),
    /// matching the partner-set semantics.
    pub fn undirected_degree_histogram(&mut self, a: &CsrMatrix) -> DegreeHistogram {
        self.reset();
        self.edges.clear();
        for (src, dst, _) in a.iter() {
            let (lo, hi) = if src <= dst { (src, dst) } else { (dst, src) };
            self.edges.push(((lo as u64) << 32) | hi as u64);
        }
        self.edges.sort_unstable();
        self.edges.dedup();
        self.ensure_counts(a.n_rows().max(a.n_cols()) as usize);
        self.degrees.clear();
        for &e in &self.edges {
            let lo = (e >> 32) as NodeId;
            let hi = (e & u32::MAX as u64) as NodeId;
            bump(&mut self.counts, &mut self.touched, lo, 1);
            if hi != lo {
                bump(&mut self.counts, &mut self.touched, hi, 1);
            }
        }
        self.drain_touched();
        self.finish()
    }

    /// Node-volume histogram: total packets each visible host sent or
    /// received. Equal to `PacketWindow::node_volume_histogram`
    /// output.
    pub fn node_volume_histogram(&mut self, a: &CsrMatrix) -> DegreeHistogram {
        self.reset();
        self.ensure_counts(a.n_rows().max(a.n_cols()) as usize);
        self.degrees.clear();
        for (src, dst, v) in a.iter() {
            bump(&mut self.counts, &mut self.touched, src, v);
            bump(&mut self.counts, &mut self.touched, dst, v);
        }
        self.drain_touched();
        self.finish()
    }

    /// One Figure 1 quantity histogram, equal to
    /// [`NetworkQuantity::histogram`] on the same matrix but reusing
    /// this scratch's buffers.
    pub fn quantity_histogram(&mut self, q: NetworkQuantity, a: &CsrMatrix) -> DegreeHistogram {
        self.reset();
        self.degrees.clear();
        match q {
            NetworkQuantity::SourcePackets => {
                for r in 0..a.n_rows() {
                    let s = a.row_sum(r);
                    if s > 0 {
                        self.degrees.push(s);
                    }
                }
            }
            NetworkQuantity::SourceFanOut => {
                for r in 0..a.n_rows() {
                    let n = a.row_nnz(r);
                    if n > 0 {
                        self.degrees.push(n as u64);
                    }
                }
            }
            NetworkQuantity::LinkPackets => {
                self.degrees.extend_from_slice(a.values());
            }
            NetworkQuantity::DestinationFanIn => {
                self.ensure_counts(a.n_cols() as usize);
                for (_, dst, _) in a.iter() {
                    bump(&mut self.counts, &mut self.touched, dst, 1);
                }
                self.drain_touched();
            }
            NetworkQuantity::DestinationPackets => {
                self.ensure_counts(a.n_cols() as usize);
                for (_, dst, v) in a.iter() {
                    bump(&mut self.counts, &mut self.touched, dst, v);
                }
                self.drain_touched();
            }
        }
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// Window: 0→1 ×3, 0→2 ×1, 5→1 ×2, 5→5 ×1 (self-loop).
    fn window() -> CsrMatrix {
        let mut m = CooMatrix::new();
        m.push(0, 1, 3);
        m.push(0, 2, 1);
        m.push(5, 1, 2);
        m.push(5, 5, 1);
        m.to_csr()
    }

    fn reference_undirected(a: &CsrMatrix) -> DegreeHistogram {
        let mut partners: std::collections::BTreeMap<u32, std::collections::BTreeSet<u32>> =
            std::collections::BTreeMap::new();
        for (src, dst, _) in a.iter() {
            partners.entry(src).or_default().insert(dst);
            partners.entry(dst).or_default().insert(src);
        }
        DegreeHistogram::from_degrees(partners.values().map(|s| s.len() as u64))
    }

    #[test]
    fn undirected_matches_partner_set_reference() {
        let a = window();
        let mut s = DegreeScratch::new();
        assert_eq!(s.undirected_degree_histogram(&a), reference_undirected(&a));
        // Reuse across windows: a second, different matrix on the
        // same scratch must still be exact.
        let mut m = CooMatrix::new();
        for &(x, y) in &[(0u32, 0u32), (1, 2), (2, 1), (7, 3)] {
            m.push_packet(x, y);
        }
        let b = m.to_csr();
        assert_eq!(s.undirected_degree_histogram(&b), reference_undirected(&b));
        // And re-running the first matrix is unaffected by residue.
        assert_eq!(s.undirected_degree_histogram(&a), reference_undirected(&a));
    }

    #[test]
    fn self_loop_counts_one_partner() {
        let mut m = CooMatrix::new();
        m.push(4, 4, 9);
        let a = m.to_csr();
        let h = DegreeScratch::new().undirected_degree_histogram(&a);
        assert_eq!(h.total(), 1);
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn node_volume_matches_row_plus_col_sums() {
        let a = window();
        let sent = a.row_sums();
        let received = a.col_sums();
        let n = sent.len().max(received.len());
        let reference = DegreeHistogram::from_degrees((0..n).filter_map(|i| {
            let t = sent.get(i).copied().unwrap_or(0) + received.get(i).copied().unwrap_or(0);
            (t > 0).then_some(t)
        }));
        let mut s = DegreeScratch::new();
        assert_eq!(s.node_volume_histogram(&a), reference);
        assert_eq!(s.node_volume_histogram(&a), reference);
    }

    #[test]
    fn quantities_match_allocating_path() {
        let a = window();
        let mut s = DegreeScratch::new();
        for q in NetworkQuantity::ALL {
            assert_eq!(s.quantity_histogram(q, &a), q.histogram(&a), "{}", q.name());
            // Twice: buffer residue must not leak between calls.
            assert_eq!(s.quantity_histogram(q, &a), q.histogram(&a), "{}", q.name());
        }
    }

    #[test]
    fn empty_matrix_yields_empty_histograms() {
        let a = CooMatrix::new().to_csr();
        let mut s = DegreeScratch::new();
        assert!(s.undirected_degree_histogram(&a).is_empty());
        assert!(s.node_volume_histogram(&a).is_empty());
        for q in NetworkQuantity::ALL {
            assert!(s.quantity_histogram(q, &a).is_empty());
        }
    }
}
