//! Table I aggregate network properties.
//!
//! The paper's Table I defines four aggregates of a traffic matrix
//! `A_t`, each in two equivalent notations:
//!
//! | Property            | Summation                       | Matrix        |
//! |---------------------|---------------------------------|---------------|
//! | Valid packets `N_V` | `Σ_i Σ_j A_t(i,j)`              | `1ᵀ A_t 1`    |
//! | Unique links        | `Σ_i Σ_j |A_t(i,j)|₀`           | `1ᵀ |A_t|₀ 1` |
//! | Unique sources      | `Σ_i |Σ_j A_t(i,j)|₀`           | `|1ᵀ A_tᵀ|₀ 1`|
//! | Unique destinations | `Σ_j |Σ_i A_t(i,j)|₀`           | `|1ᵀ A_t|₀ 1` |
//!
//! [`Aggregates::compute`] evaluates the summation forms with direct
//! reductions; [`Aggregates::compute_matrix_notation`] builds them
//! literally from `1` vectors, zero-norms, and transposes. Experiment
//! E-T1 cross-checks the two.

use crate::csr::CsrMatrix;
use crate::Count;

/// The Table I aggregate properties of one packet window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregates {
    /// Total valid packets `N_V = Σ_{ij} A(i,j)`.
    pub valid_packets: Count,
    /// Unique source–destination pairs with traffic.
    pub unique_links: u64,
    /// Sources that sent at least one packet.
    pub unique_sources: u64,
    /// Destinations that received at least one packet.
    pub unique_destinations: u64,
}

impl Aggregates {
    /// Compute all four aggregates in summation notation (single pass
    /// over the stored entries plus one pass over columns).
    pub fn compute(a: &CsrMatrix) -> Self {
        let valid_packets = a.total();
        let unique_links = a.nnz() as u64;
        let unique_sources = (0..a.n_rows()).filter(|&r| a.row_nnz(r) > 0).count() as u64;
        let unique_destinations = a.col_nnzs().iter().filter(|&&c| c > 0).count() as u64;
        Aggregates {
            valid_packets,
            unique_links,
            unique_sources,
            unique_destinations,
        }
    }

    /// Compute the same aggregates by literally evaluating the matrix
    /// notation of Table I: `1ᵀA1`, `1ᵀ|A|₀1`, `|1ᵀAᵀ|₀1`, `|1ᵀA|₀1`.
    ///
    /// Slower (it materializes the intermediate vectors) but
    /// structurally independent from [`Aggregates::compute`], so the
    /// pair form a self-checking implementation of Table I.
    pub fn compute_matrix_notation(a: &CsrMatrix) -> Self {
        let ones_rows = vec![1.0f64; a.n_rows() as usize];
        let ones_cols = vec![1.0f64; a.n_cols() as usize];

        // 1ᵀ A 1
        let row_totals = a.mat_vec(&ones_cols);
        let valid_packets = row_totals.iter().sum::<f64>().round() as Count;

        // 1ᵀ |A|₀ 1
        let z = a.zero_norm();
        let unique_links = z.mat_vec(&ones_cols).iter().sum::<f64>().round() as u64;

        // |1ᵀ Aᵀ|₀ 1 : zero-norm of the per-source totals.
        let t = a.transpose();
        let source_totals = t.vec_mat(&ones_cols);
        let unique_sources = source_totals.iter().filter(|&&v| v != 0.0).count() as u64;

        // |1ᵀ A|₀ 1 : zero-norm of the per-destination totals.
        let dest_totals = a.vec_mat(&ones_rows);
        let unique_destinations = dest_totals.iter().filter(|&&v| v != 0.0).count() as u64;

        Aggregates {
            valid_packets,
            unique_links,
            unique_sources,
            unique_destinations,
        }
    }

    /// Mean packets per unique link (∞-free: 0 when no links).
    pub fn packets_per_link(&self) -> f64 {
        if self.unique_links == 0 {
            0.0
        } else {
            self.valid_packets as f64 / self.unique_links as f64
        }
    }

    /// Mean fan-out: unique links per unique source (0 when empty).
    pub fn mean_fan_out(&self) -> f64 {
        if self.unique_sources == 0 {
            0.0
        } else {
            self.unique_links as f64 / self.unique_sources as f64
        }
    }

    /// Mean fan-in: unique links per unique destination (0 when empty).
    pub fn mean_fan_in(&self) -> f64 {
        if self.unique_destinations == 0 {
            0.0
        } else {
            self.unique_links as f64 / self.unique_destinations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::NodeId;

    fn window() -> CsrMatrix {
        // Packets: 0→1 ×3, 0→2 ×1, 5→1 ×2, 5→5 ×1. Sources {0,5},
        // destinations {1,2,5}, links 4, packets 7.
        let mut m = CooMatrix::new();
        m.push(0, 1, 3);
        m.push(0, 2, 1);
        m.push(5, 1, 2);
        m.push(5, 5, 1);
        m.to_csr()
    }

    #[test]
    fn summation_notation_values() {
        let g = Aggregates::compute(&window());
        assert_eq!(g.valid_packets, 7);
        assert_eq!(g.unique_links, 4);
        assert_eq!(g.unique_sources, 2);
        assert_eq!(g.unique_destinations, 3);
    }

    #[test]
    fn matrix_notation_agrees_with_summation() {
        let a = window();
        assert_eq!(
            Aggregates::compute(&a),
            Aggregates::compute_matrix_notation(&a)
        );
    }

    #[test]
    fn matrix_notation_agrees_on_random_windows() {
        let mut x = 987654321u64;
        for trial in 0..20 {
            let mut coo = CooMatrix::new();
            for _ in 0..200 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let s = ((x >> 33) % 30) as NodeId;
                let d = ((x >> 13) % 25) as NodeId;
                coo.push_packet(s, d);
            }
            let a = coo.to_csr();
            assert_eq!(
                Aggregates::compute(&a),
                Aggregates::compute_matrix_notation(&a),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn empty_window() {
        let a = CooMatrix::new().to_csr();
        let g = Aggregates::compute(&a);
        assert_eq!(g.valid_packets, 0);
        assert_eq!(g.unique_links, 0);
        assert_eq!(g.unique_sources, 0);
        assert_eq!(g.unique_destinations, 0);
        assert_eq!(g.packets_per_link(), 0.0);
        assert_eq!(g.mean_fan_out(), 0.0);
        assert_eq!(g.mean_fan_in(), 0.0);
        assert_eq!(g, Aggregates::compute_matrix_notation(&a));
    }

    #[test]
    fn derived_ratios() {
        let g = Aggregates::compute(&window());
        assert!((g.packets_per_link() - 7.0 / 4.0).abs() < 1e-12);
        assert!((g.mean_fan_out() - 2.0).abs() < 1e-12);
        assert!((g.mean_fan_in() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates_ignore_reserved_empty_dims() {
        // Reserved (empty) rows/cols must not count as sources/dests.
        let mut m = CooMatrix::new();
        m.push(0, 0, 1);
        m.reserve_dims(100, 100);
        let g = Aggregates::compute(&m.to_csr());
        assert_eq!(g.unique_sources, 1);
        assert_eq!(g.unique_destinations, 1);
        assert_eq!(g.unique_links, 1);
    }
}
