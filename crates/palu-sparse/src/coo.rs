//! Coordinate-format (COO) sparse matrix builder.
//!
//! Packet windows arrive as a stream of `(source, destination)` pairs;
//! the COO builder accumulates them (duplicates summed — a link crossed
//! by `k` packets has value `k`) and converts to [`CsrMatrix`] for the
//! reductions.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scratch::CsrScratch;
use crate::{Count, NodeId};

/// Validate that `elems` elements of `elem_size` bytes fit one
/// allocation (`usize` count, ≤ `isize::MAX` bytes); returns the count
/// as `usize` on success. All geometry-derived buffer sizing in this
/// module funnels through here so an adversarial dimension surfaces as
/// a typed [`SparseError`] instead of a capacity-overflow panic.
fn checked_buffer(what: &'static str, elems: u128, elem_size: usize) -> Result<usize, SparseError> {
    let overflow = SparseError::CapacityOverflow {
        what,
        requested: elems,
    };
    let bytes = elems
        .checked_mul(elem_size as u128)
        .ok_or(overflow.clone())?;
    if elems > usize::MAX as u128 || bytes > isize::MAX as u128 {
        return Err(overflow);
    }
    Ok(elems as usize)
}

/// A sparse matrix under construction: unsorted `(row, col, value)`
/// triplets with duplicates allowed (they accumulate on conversion).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CooMatrix {
    rows: Vec<NodeId>,
    cols: Vec<NodeId>,
    vals: Vec<Count>,
    n_rows: NodeId,
    n_cols: NodeId,
}

impl CooMatrix {
    /// Create an empty builder. Dimensions grow automatically as
    /// entries arrive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty builder with reserved capacity for `nnz`
    /// triplets. Panics if the reservation itself cannot fit an
    /// allocation; see [`CooMatrix::try_with_capacity`] for the
    /// checked variant.
    pub fn with_capacity(nnz: usize) -> Self {
        match Self::try_with_capacity(nnz) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`CooMatrix::with_capacity`] with checked sizing: `nnz` is
    /// typically derived from untrusted window geometry, so the byte
    /// arithmetic is validated and reported as a typed error instead
    /// of a capacity-overflow panic.
    pub fn try_with_capacity(nnz: usize) -> Result<Self, SparseError> {
        let nnz = checked_buffer("coo triplets", nnz as u128, size_of::<Count>())?;
        Ok(CooMatrix {
            rows: Vec::with_capacity(nnz), // sized via checked_buffer — lint:allow(R7)
            cols: Vec::with_capacity(nnz), // sized via checked_buffer — lint:allow(R7)
            vals: Vec::with_capacity(nnz), // sized via checked_buffer — lint:allow(R7)
            n_rows: 0,
            n_cols: 0,
        })
    }

    /// Record `count` packets from `src` to `dst`.
    pub fn push(&mut self, src: NodeId, dst: NodeId, count: Count) {
        if count == 0 {
            return;
        }
        self.rows.push(src);
        self.cols.push(dst);
        self.vals.push(count);
        self.n_rows = self.n_rows.max(src + 1);
        self.n_cols = self.n_cols.max(dst + 1);
    }

    /// Record one packet from `src` to `dst`.
    pub fn push_packet(&mut self, src: NodeId, dst: NodeId) {
        self.push(src, dst, 1);
    }

    /// Build from an iterator of `(src, dst)` packet pairs.
    pub fn from_packet_pairs<I: IntoIterator<Item = (NodeId, NodeId)>>(pairs: I) -> Self {
        let mut m = Self::new();
        for (s, d) in pairs {
            m.push_packet(s, d);
        }
        m
    }

    /// Number of raw triplets recorded (≥ the number of unique links).
    pub fn triplet_count(&self) -> usize {
        self.vals.len()
    }

    /// Total packets recorded so far — this will equal the matrix sum
    /// `Σ_{ij} A(i,j) = N_V` after conversion.
    pub fn total_count(&self) -> Count {
        self.vals.iter().sum()
    }

    /// Current row dimension (1 + max source id seen).
    pub fn n_rows(&self) -> NodeId {
        self.n_rows
    }

    /// Current column dimension (1 + max destination id seen).
    pub fn n_cols(&self) -> NodeId {
        self.n_cols
    }

    /// Force the matrix dimensions to at least `(n_rows, n_cols)` —
    /// needed when a window's address space is fixed externally (e.g.
    /// the underlying network's node count) so that empty trailing
    /// rows/columns survive.
    pub fn reserve_dims(&mut self, n_rows: NodeId, n_cols: NodeId) {
        self.n_rows = self.n_rows.max(n_rows);
        self.n_cols = self.n_cols.max(n_cols);
    }

    /// Reset to an empty builder, keeping the triplet buffers'
    /// capacity — the per-worker reuse path: one builder per worker,
    /// cleared between windows, so steady-state window assembly
    /// allocates nothing.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
        self.n_rows = 0;
        self.n_cols = 0;
    }

    /// Merge another COO builder's triplets into this one.
    pub fn merge(&mut self, other: &CooMatrix) {
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
        self.n_rows = self.n_rows.max(other.n_rows);
        self.n_cols = self.n_cols.max(other.n_cols);
    }

    /// Convert to CSR, accumulating duplicate `(row, col)` entries.
    ///
    /// Runs in `O(nnz + n_rows)` using a two-pass counting sort on
    /// rows followed by per-row sorting on columns. Panics if buffer
    /// sizing overflows; see [`CooMatrix::try_to_csr`] for the checked
    /// variant.
    pub fn to_csr(&self) -> CsrMatrix {
        match self.try_to_csr() {
            Ok(csr) => csr,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`CooMatrix::to_csr`] with checked sizing: `n_rows` can be
    /// forced arbitrarily high by [`CooMatrix::reserve_dims`] from
    /// untrusted configuration, so every buffer size is validated
    /// before allocation and an infeasible conversion is reported as a
    /// typed [`SparseError`] instead of a capacity-overflow panic.
    pub fn try_to_csr(&self) -> Result<CsrMatrix, SparseError> {
        let nnz = self.vals.len();
        let n_rows_plus =
            checked_buffer("csr row_ptr", self.n_rows as u128 + 1, size_of::<usize>())?;
        let n_rows = n_rows_plus - 1;
        checked_buffer(
            "csr entries",
            nnz as u128,
            size_of::<NodeId>() + size_of::<Count>(),
        )?;

        // Pass 1: count triplets per row.
        let mut row_counts = vec![0usize; n_rows_plus];
        for &r in &self.rows {
            row_counts[r as usize + 1] += 1;
        }
        // Prefix-sum into provisional row offsets.
        for i in 0..n_rows {
            row_counts[i + 1] += row_counts[i];
        }

        // Pass 2: scatter triplets into row-grouped order.
        let mut cols = vec![0 as NodeId; nnz];
        let mut vals = vec![0 as Count; nnz];
        let mut next = row_counts.clone();
        for i in 0..nnz {
            let r = self.rows[i] as usize;
            let slot = next[r];
            next[r] += 1;
            cols[slot] = self.cols[i];
            vals[slot] = self.vals[i];
        }

        // Pass 3: per row, sort by column and accumulate duplicates
        // in place, building the final compacted arrays.
        let mut out_cols = Vec::with_capacity(nnz); // sized via checked_buffer — lint:allow(R7)
        let mut out_vals = Vec::with_capacity(nnz); // sized via checked_buffer — lint:allow(R7)
        let mut row_ptr = Vec::with_capacity(n_rows_plus); // sized via checked_buffer — lint:allow(R7)
        row_ptr.push(0usize);
        let mut scratch: Vec<(NodeId, Count)> = Vec::new();
        for r in 0..n_rows {
            let (start, end) = (row_counts[r], row_counts[r + 1]);
            scratch.clear();
            scratch.extend(
                cols[start..end]
                    .iter()
                    .copied()
                    .zip(vals[start..end].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = scratch.iter().copied();
            if let Some((mut cur_c, mut cur_v)) = iter.next() {
                for (c, v) in iter {
                    if c == cur_c {
                        cur_v += v;
                    } else {
                        out_cols.push(cur_c);
                        out_vals.push(cur_v);
                        cur_c = c;
                        cur_v = v;
                    }
                }
                out_cols.push(cur_c);
                out_vals.push(cur_v);
            }
            row_ptr.push(out_cols.len());
        }

        Ok(CsrMatrix::from_raw_parts(
            row_ptr,
            out_cols,
            out_vals,
            self.n_cols,
        ))
    }

    /// [`CooMatrix::try_to_csr`] on reusable scratch buffers: the
    /// counting-sort offsets, scatter arrays, and per-row sort space
    /// live in `scratch` and are retained across conversions, and the
    /// output arrays are taken from `scratch`'s recycled pool (see
    /// [`CsrScratch::recycle`]) — so a worker converting one window
    /// after another reaches a steady state with **zero** heap
    /// allocation per conversion. Produces a matrix equal to
    /// [`CooMatrix::try_to_csr`]'s.
    ///
    /// Written index-free (`get`/`get_mut` with benign fallbacks on
    /// ranges that are in-bounds by construction) so the capture path
    /// gains no reachable panic sites.
    pub fn try_to_csr_with(&self, scratch: &mut CsrScratch) -> Result<CsrMatrix, SparseError> {
        let nnz = self.vals.len();
        let n_rows_plus =
            checked_buffer("csr row_ptr", self.n_rows as u128 + 1, size_of::<usize>())?;
        checked_buffer(
            "csr entries",
            nnz as u128,
            size_of::<NodeId>() + size_of::<Count>(),
        )?;

        // Pass 1: count triplets per row, then prefix-sum so
        // `offsets[r]` is row `r`'s start in the scattered arrays.
        scratch.offsets.clear();
        scratch.offsets.resize(n_rows_plus, 0);
        for &r in &self.rows {
            if let Some(c) = scratch.offsets.get_mut(r as usize + 1) {
                *c += 1;
            }
        }
        let mut acc = 0usize;
        for o in scratch.offsets.iter_mut() {
            acc += *o;
            *o = acc;
        }

        // Pass 2: scatter triplets into row-grouped order, advancing
        // per-row write cursors.
        scratch.next.clear();
        scratch.next.extend_from_slice(&scratch.offsets);
        scratch.scat_cols.clear();
        scratch.scat_cols.resize(nnz, 0);
        scratch.scat_vals.clear();
        scratch.scat_vals.resize(nnz, 0);
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            if let Some(cursor) = scratch.next.get_mut(r as usize) {
                let slot = *cursor;
                *cursor += 1;
                if let Some(dst) = scratch.scat_cols.get_mut(slot) {
                    *dst = c;
                }
                if let Some(dst) = scratch.scat_vals.get_mut(slot) {
                    *dst = v;
                }
            }
        }

        // Pass 3: per row, sort by column and accumulate duplicates
        // into the recycled output arrays.
        let mut row_ptr = std::mem::take(&mut scratch.out_row_ptr);
        let mut out_cols = std::mem::take(&mut scratch.out_cols);
        let mut out_vals = std::mem::take(&mut scratch.out_vals);
        row_ptr.clear();
        out_cols.clear();
        out_vals.clear();
        row_ptr.push(0usize);
        for w in scratch.offsets.windows(2) {
            let &[start, end] = w else { continue };
            let run_cols = scratch.scat_cols.get(start..end).unwrap_or(&[]);
            let run_vals = scratch.scat_vals.get(start..end).unwrap_or(&[]);
            scratch.pair.clear();
            scratch
                .pair
                .extend(run_cols.iter().copied().zip(run_vals.iter().copied()));
            scratch.pair.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = scratch.pair.iter().copied();
            if let Some((mut cur_c, mut cur_v)) = iter.next() {
                for (c, v) in iter {
                    if c == cur_c {
                        cur_v += v;
                    } else {
                        out_cols.push(cur_c);
                        out_vals.push(cur_v);
                        cur_c = c;
                        cur_v = v;
                    }
                }
                out_cols.push(cur_c);
                out_vals.push(cur_v);
            }
            row_ptr.push(out_cols.len());
        }

        Ok(CsrMatrix::from_raw_parts(
            row_ptr,
            out_cols,
            out_vals,
            self.n_cols,
        ))
    }
}

impl FromIterator<(NodeId, NodeId)> for CooMatrix {
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeId)>>(iter: I) -> Self {
        Self::from_packet_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder() {
        let m = CooMatrix::new();
        assert_eq!(m.triplet_count(), 0);
        assert_eq!(m.total_count(), 0);
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 0);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.n_rows(), 0);
    }

    #[test]
    fn dimensions_track_max_ids() {
        let mut m = CooMatrix::new();
        m.push_packet(3, 7);
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 8);
        m.push_packet(10, 2);
        assert_eq!(m.n_rows(), 11);
        assert_eq!(m.n_cols(), 8);
    }

    #[test]
    fn zero_count_push_is_noop() {
        let mut m = CooMatrix::new();
        m.push(5, 5, 0);
        assert_eq!(m.triplet_count(), 0);
        assert_eq!(m.n_rows(), 0);
    }

    #[test]
    fn duplicates_accumulate_in_csr() {
        let mut m = CooMatrix::new();
        m.push_packet(0, 1);
        m.push_packet(0, 1);
        m.push(0, 1, 3);
        m.push_packet(0, 2);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 5);
        assert_eq!(csr.get(0, 2), 1);
        assert_eq!(csr.total(), 6);
    }

    #[test]
    fn csr_rows_are_sorted_by_column() {
        let mut m = CooMatrix::new();
        for &(s, d) in &[(1u32, 9u32), (1, 3), (1, 7), (1, 3), (0, 5), (2, 0)] {
            m.push_packet(s, d);
        }
        let csr = m.to_csr();
        for r in 0..csr.n_rows() {
            let cols: Vec<_> = csr.row(r).map(|(c, _)| c).collect();
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(cols, sorted, "row {r}");
        }
        assert_eq!(csr.get(1, 3), 2);
    }

    #[test]
    fn total_count_is_preserved_through_conversion() {
        let pairs: Vec<(NodeId, NodeId)> = (0..1000)
            .map(|i| ((i * 7 % 50) as NodeId, (i * 13 % 60) as NodeId))
            .collect();
        let m = CooMatrix::from_packet_pairs(pairs);
        assert_eq!(m.total_count(), 1000);
        let csr = m.to_csr();
        assert_eq!(csr.total(), 1000);
    }

    #[test]
    fn reserve_dims_preserves_empty_rows() {
        let mut m = CooMatrix::new();
        m.push_packet(0, 0);
        m.reserve_dims(5, 9);
        let csr = m.to_csr();
        assert_eq!(csr.n_rows(), 5);
        assert_eq!(csr.n_cols(), 9);
        assert_eq!(csr.row_nnz(4), 0);
    }

    #[test]
    fn merge_combines_builders() {
        let mut a = CooMatrix::from_packet_pairs([(0, 1), (1, 2)]);
        let b = CooMatrix::from_packet_pairs([(0, 1), (3, 0)]);
        a.merge(&b);
        let csr = a.to_csr();
        assert_eq!(csr.get(0, 1), 2);
        assert_eq!(csr.get(3, 0), 1);
        assert_eq!(csr.total(), 4);
        assert_eq!(csr.n_rows(), 4);
    }

    #[test]
    fn collect_from_pairs() {
        let m: CooMatrix = [(0u32, 1u32), (1, 0)].into_iter().collect();
        assert_eq!(m.total_count(), 2);
    }

    #[test]
    fn adversarial_capacity_is_a_typed_error_not_a_panic() {
        let err = CooMatrix::try_with_capacity(usize::MAX).unwrap_err();
        match err {
            SparseError::CapacityOverflow { what, requested } => {
                assert_eq!(what, "coo triplets");
                assert_eq!(requested, usize::MAX as u128);
            }
        }
    }

    #[test]
    fn try_to_csr_matches_the_panicking_path() {
        let mut m = CooMatrix::from_packet_pairs([(0, 1), (1, 2), (0, 1)]);
        m.reserve_dims(10, 10);
        assert_eq!(m.try_to_csr().unwrap(), m.to_csr());
    }

    #[test]
    fn scratch_conversion_matches_allocating_path() {
        let mut scratch = CsrScratch::new();
        // Several windows of different shapes through ONE scratch, with
        // recycling in between — each must equal the allocating path.
        let shapes: Vec<Vec<(NodeId, NodeId)>> = vec![
            vec![(0, 1), (1, 2), (0, 1), (3, 0)],
            vec![(5, 5)],
            vec![],
            (0..500)
                .map(|i| ((i * 7 % 23) as NodeId, (i * 13 % 17) as NodeId))
                .collect(),
        ];
        for pairs in shapes {
            let mut m = CooMatrix::from_packet_pairs(pairs);
            m.reserve_dims(30, 30);
            let fast = m.try_to_csr_with(&mut scratch).unwrap();
            assert_eq!(fast, m.to_csr());
            scratch.recycle(fast);
        }
    }

    #[test]
    fn scratch_conversion_without_recycling_is_still_exact() {
        let mut scratch = CsrScratch::new();
        let m = CooMatrix::from_packet_pairs([(2, 0), (0, 2), (2, 0)]);
        let a = m.try_to_csr_with(&mut scratch).unwrap();
        let b = m.try_to_csr_with(&mut scratch).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, m.to_csr());
    }

    #[test]
    fn clear_resets_but_keeps_reusable() {
        let mut m = CooMatrix::from_packet_pairs([(0, 1), (4, 2)]);
        m.reserve_dims(10, 10);
        m.clear();
        assert_eq!(m.triplet_count(), 0);
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 0);
        m.push_packet(1, 1);
        let csr = m.to_csr();
        assert_eq!(csr.n_rows(), 2);
        assert_eq!(csr.get(1, 1), 1);
    }

    #[test]
    fn checked_buffer_rejects_byte_overflow() {
        // Element count fits usize but the byte size exceeds isize::MAX.
        let elems = (isize::MAX as u128 / 8) + 1;
        assert!(checked_buffer("x", elems, 8).is_err());
        assert_eq!(checked_buffer("x", 16, 8), Ok(16));
        // Count × size overflowing u128 is also caught.
        assert!(checked_buffer("x", u128::MAX, 8).is_err());
    }
}
