//! Compressed sparse row (CSR) traffic matrix.
//!
//! The canonical storage for a packet window `A_t`. Rows are sources,
//! columns destinations, values packet counts. All Table I reductions
//! and all five Figure 1 quantities are linear passes over this layout.

use crate::{Count, NodeId};

/// An immutable CSR matrix with `u64` packet counts.
///
/// Invariants (checked in debug builds at construction):
/// * `row_ptr` has `n_rows + 1` monotone entries ending at `nnz`;
/// * within each row, column indices are strictly increasing;
/// * all stored values are nonzero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrMatrix {
    row_ptr: Vec<usize>,
    cols: Vec<NodeId>,
    vals: Vec<Count>,
    n_cols: NodeId,
}

impl CsrMatrix {
    /// Assemble from raw parts. Intended for [`crate::coo::CooMatrix`]
    /// and the parallel builder; validates invariants in debug builds.
    pub fn from_raw_parts(
        row_ptr: Vec<usize>,
        cols: Vec<NodeId>,
        vals: Vec<Count>,
        n_cols: NodeId,
    ) -> Self {
        debug_assert!(!row_ptr.is_empty());
        debug_assert_eq!(row_ptr.last().copied(), Some(cols.len()));
        debug_assert_eq!(cols.len(), vals.len());
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(vals.iter().all(|&v| v > 0), "stored zeros are forbidden");
        #[cfg(debug_assertions)]
        for r in 0..row_ptr.len() - 1 {
            let s = &cols[row_ptr[r]..row_ptr[r + 1]];
            debug_assert!(s.windows(2).all(|w| w[0] < w[1]), "row {r} not sorted");
            debug_assert!(s.iter().all(|&c| c < n_cols.max(1)));
        }
        CsrMatrix {
            row_ptr,
            cols,
            vals,
            n_cols,
        }
    }

    /// Disassemble into raw parts (`row_ptr`, `cols`, `vals`,
    /// `n_cols`) — the inverse of [`CsrMatrix::from_raw_parts`]. Lets
    /// [`crate::scratch::CsrScratch`] recycle a spent matrix's
    /// allocations for the next window.
    pub fn into_raw_parts(self) -> (Vec<usize>, Vec<NodeId>, Vec<Count>, NodeId) {
        (self.row_ptr, self.cols, self.vals, self.n_cols)
    }

    /// Number of rows (source address space).
    pub fn n_rows(&self) -> NodeId {
        (self.row_ptr.len() - 1) as NodeId
    }

    /// Number of columns (destination address space).
    pub fn n_cols(&self) -> NodeId {
        self.n_cols
    }

    /// Number of stored (nonzero) entries — the window's unique links.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Value at `(row, col)`; 0 if not stored.
    pub fn get(&self, row: NodeId, col: NodeId) -> Count {
        if row >= self.n_rows() {
            return 0;
        }
        let (s, e) = (self.row_ptr[row as usize], self.row_ptr[row as usize + 1]);
        match self.cols[s..e].binary_search(&col) {
            Ok(i) => self.vals[s + i],
            Err(_) => 0,
        }
    }

    /// Iterate `(col, value)` pairs of one row in increasing column
    /// order. Empty iterator for out-of-range rows.
    pub fn row(&self, row: NodeId) -> impl Iterator<Item = (NodeId, Count)> + '_ {
        let (s, e) = if row < self.n_rows() {
            (self.row_ptr[row as usize], self.row_ptr[row as usize + 1])
        } else {
            (0, 0)
        };
        self.cols[s..e]
            .iter()
            .copied()
            .zip(self.vals[s..e].iter().copied())
    }

    /// Iterate all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, Count)> + '_ {
        (0..self.n_rows()).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Number of stored entries in a row — the source's *fan-out*
    /// (unique destinations).
    pub fn row_nnz(&self, row: NodeId) -> usize {
        if row >= self.n_rows() {
            return 0;
        }
        self.row_ptr[row as usize + 1] - self.row_ptr[row as usize]
    }

    /// Sum of a row's values — the source's total packets.
    pub fn row_sum(&self, row: NodeId) -> Count {
        self.row(row).map(|(_, v)| v).sum()
    }

    /// All row sums (`A·1`): per-source packet counts.
    pub fn row_sums(&self) -> Vec<Count> {
        (0..self.n_rows()).map(|r| self.row_sum(r)).collect()
    }

    /// All row nnz counts (`|A|₀·1`): per-source fan-out.
    pub fn row_nnzs(&self) -> Vec<usize> {
        (0..self.n_rows()).map(|r| self.row_nnz(r)).collect()
    }

    /// All column sums (`1ᵀA`, as a vector): per-destination packets.
    pub fn col_sums(&self) -> Vec<Count> {
        let mut sums = vec![0 as Count; self.n_cols as usize];
        for (&c, &v) in self.cols.iter().zip(&self.vals) {
            sums[c as usize] += v;
        }
        sums
    }

    /// All column nnz counts (`1ᵀ|A|₀`): per-destination fan-in.
    pub fn col_nnzs(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_cols as usize];
        for &c in &self.cols {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Sum of all stored values: `1ᵀA1 = N_V`, the window's valid
    /// packets.
    pub fn total(&self) -> Count {
        self.vals.iter().sum()
    }

    /// Stored values (per-link packet counts), in row-major order.
    pub fn values(&self) -> &[Count] {
        &self.vals
    }

    /// Transpose (destinations become rows). `O(nnz + n_cols)`.
    pub fn transpose(&self) -> CsrMatrix {
        let n_cols = self.n_cols as usize;
        let nnz = self.nnz();
        let mut row_ptr = vec![0usize; n_cols + 1];
        for &c in &self.cols {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..n_cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cols = vec![0 as NodeId; nnz];
        let mut vals = vec![0 as Count; nnz];
        let mut next = row_ptr.clone();
        for (r, c, v) in self.iter() {
            let slot = next[c as usize];
            next[c as usize] += 1;
            cols[slot] = r;
            vals[slot] = v;
        }
        // Row-major iteration of the source matrix emits each
        // destination's entries in increasing source order, so the
        // transposed rows are already sorted.
        CsrMatrix::from_raw_parts(row_ptr, cols, vals, self.n_rows())
    }

    /// The zero-norm matrix `|A|₀` (every stored value set to 1) — the
    /// paper's unweighted view of the window.
    pub fn zero_norm(&self) -> CsrMatrix {
        CsrMatrix {
            row_ptr: self.row_ptr.clone(),
            cols: self.cols.clone(),
            vals: vec![1; self.nnz()],
            n_cols: self.n_cols,
        }
    }

    /// Dense right-multiplication by a vector: `y = A·x`.
    ///
    /// Reference implementation used by the Table I matrix-notation
    /// cross-checks; `x.len()` must equal `n_cols`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols as usize, "dimension mismatch");
        (0..self.n_rows())
            .map(|r| self.row(r).map(|(c, v)| v as f64 * x[c as usize]).sum())
            .collect()
    }

    /// Dense left-multiplication by a vector: `yᵀ = xᵀ·A`.
    pub fn vec_mat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_rows() as usize, "dimension mismatch");
        let mut y = vec![0.0f64; self.n_cols as usize];
        for (r, c, v) in self.iter() {
            y[c as usize] += x[r as usize] * v as f64;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// 3×4 fixture:
    ///   row 0: (0,1)=2 (0,3)=1
    ///   row 1: (1,1)=5
    ///   row 2: —
    fn fixture() -> CsrMatrix {
        let mut m = CooMatrix::new();
        m.push(0, 1, 2);
        m.push(0, 3, 1);
        m.push(1, 1, 5);
        m.reserve_dims(3, 4);
        m.to_csr()
    }

    #[test]
    fn get_and_dims() {
        let a = fixture();
        assert_eq!(a.n_rows(), 3);
        assert_eq!(a.n_cols(), 4);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), 2);
        assert_eq!(a.get(0, 3), 1);
        assert_eq!(a.get(1, 1), 5);
        assert_eq!(a.get(0, 0), 0);
        assert_eq!(a.get(2, 2), 0);
        assert_eq!(a.get(99, 0), 0); // out of range
    }

    #[test]
    fn row_reductions() {
        let a = fixture();
        assert_eq!(a.row_sums(), vec![3, 5, 0]);
        assert_eq!(a.row_nnzs(), vec![2, 1, 0]);
        assert_eq!(a.row_sum(0), 3);
        assert_eq!(a.row_nnz(2), 0);
        assert_eq!(a.row_nnz(99), 0);
    }

    #[test]
    fn col_reductions() {
        let a = fixture();
        assert_eq!(a.col_sums(), vec![0, 7, 0, 1]);
        assert_eq!(a.col_nnzs(), vec![0, 2, 0, 1]);
    }

    #[test]
    fn total_is_nv() {
        assert_eq!(fixture().total(), 8);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = fixture();
        let t = a.transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.get(1, 0), 2);
        assert_eq!(t.get(3, 0), 1);
        assert_eq!(t.get(1, 1), 5);
        assert_eq!(t.total(), a.total());
        // (Aᵀ)ᵀ = A
        assert_eq!(t.transpose(), a);
        // Column reductions of A equal row reductions of Aᵀ.
        assert_eq!(a.col_sums(), t.row_sums(),);
        assert_eq!(a.col_nnzs(), t.row_nnzs());
    }

    #[test]
    fn zero_norm_flattens_weights() {
        let a = fixture();
        let z = a.zero_norm();
        assert_eq!(z.nnz(), a.nnz());
        assert_eq!(z.total(), 3); // unique links
        assert_eq!(z.get(0, 1), 1);
        assert_eq!(z.get(1, 1), 1);
    }

    #[test]
    fn mat_vec_and_vec_mat() {
        let a = fixture();
        // A·1 = row sums
        let ones4 = vec![1.0; 4];
        assert_eq!(a.mat_vec(&ones4), vec![3.0, 5.0, 0.0]);
        // 1ᵀ·A = col sums
        let ones3 = vec![1.0; 3];
        assert_eq!(a.vec_mat(&ones3), vec![0.0, 7.0, 0.0, 1.0]);
        // General vector.
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.mat_vec(&x), vec![2.0 * 2.0 + 4.0, 10.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mat_vec_checks_dims() {
        fixture().mat_vec(&[1.0, 2.0]);
    }

    #[test]
    fn iter_visits_all_entries_in_order() {
        let a = fixture();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries, vec![(0, 1, 2), (0, 3, 1), (1, 1, 5)]);
    }

    #[test]
    fn empty_matrix() {
        let a = CooMatrix::new().to_csr();
        assert_eq!(a.n_rows(), 0);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.total(), 0);
        assert_eq!(a.col_sums(), Vec::<Count>::new());
        let t = a.transpose();
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn random_transpose_preserves_entries() {
        // Deterministic pseudo-random matrix; check entry-by-entry.
        let mut coo = CooMatrix::new();
        let mut x = 12345u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = ((x >> 33) % 40) as NodeId;
            let c = ((x >> 13) % 50) as NodeId;
            coo.push_packet(r, c);
        }
        let a = coo.to_csr();
        let t = a.transpose();
        for (r, c, v) in a.iter() {
            assert_eq!(t.get(c, r), v);
        }
        assert_eq!(a.nnz(), t.nnz());
    }
}
