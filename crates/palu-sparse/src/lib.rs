//! Sparse traffic-matrix substrate for the PALU reproduction.
//!
//! Section II of the paper aggregates `N_V` consecutive valid packets
//! into a sparse matrix `A_t`, where `A_t(i, j)` counts the packets
//! from source `i` to destination `j`. Everything the paper measures is
//! then a function of `A_t`:
//!
//! * [`coo`] / [`csr`] — construction (coordinate triplets with
//!   duplicate accumulation) and compressed storage with row/column
//!   reductions and transposition.
//! * [`aggregates`] — the Table I aggregate properties (valid packets,
//!   unique links, unique sources, unique destinations), computed both
//!   in "summation notation" (direct reductions) and "matrix notation"
//!   (explicit `1ᵀA1`-style products) so the two can be cross-checked.
//! * [`quantities`] — the five streaming network quantities of
//!   Figure 1: source packets, source fan-out, link packets,
//!   destination fan-in, and destination packets, each as a degree
//!   histogram ready for logarithmic pooling.
//! * [`parallel`] — sharded parallel assembly of large windows using
//!   std::thread scoped threads.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

/// Per-node aggregate quantities derived from an assembled window.
pub mod aggregates;
/// Coordinate-format (COO) triple accumulation for streaming inserts.
pub mod coo;
/// Compressed sparse row matrices built from COO batches.
pub mod csr;
/// Typed errors for sizing on untrusted dimensions.
pub mod error;
/// Sharded parallel window assembly on std::thread scoped threads.
pub mod parallel;
/// The network quantities (degree, flows, packets, bytes) tracked per node.
pub mod quantities;
/// Reusable per-worker scratch buffers for allocation-free window
/// assembly and histogram extraction.
pub mod scratch;

pub use aggregates::Aggregates;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use quantities::{NetworkQuantity, QuantityHistograms};
pub use scratch::{CsrScratch, DegreeScratch};

/// Largest capacity *hint* honoured verbatim before admission-control
/// accounting kicks in (4 Mi elements). Geometry-derived sizes below
/// this pre-reserve exactly; larger hints are clamped and the buffer
/// grows organically by doubling, so an adversarial or mis-accounted
/// dimension can never trigger a multi-gigabyte up-front reservation.
pub const MAX_UNACCOUNTED_RESERVE: usize = 1 << 22;

/// Clamp a window-geometry-derived capacity hint to
/// [`MAX_UNACCOUNTED_RESERVE`]. This is the sanctioned entry point the
/// R7 lint rule recognises: pipeline code reserves geometry-derived
/// capacities through here (or through a budget accountant built on
/// it), never via a raw `with_capacity` on the untrusted size.
pub fn admitted_capacity(hint: usize) -> usize {
    hint.min(MAX_UNACCOUNTED_RESERVE)
}

/// Checked in-memory footprint, in bytes, of a CSR matrix with
/// `n_rows` rows and `nnz` stored entries: the `row_ptr` offsets plus
/// the column-index and value arrays. `None` on arithmetic overflow —
/// budget cost models treat that as infeasible.
pub fn csr_footprint_bytes(n_rows: u64, nnz: u64) -> Option<u64> {
    let row_ptr = n_rows
        .checked_add(1)?
        .checked_mul(size_of::<usize>() as u64)?;
    let entries = nnz.checked_mul((size_of::<NodeId>() + size_of::<Count>()) as u64)?;
    row_ptr.checked_add(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admitted_capacity_clamps_only_above_the_cap() {
        assert_eq!(admitted_capacity(0), 0);
        assert_eq!(admitted_capacity(1234), 1234);
        assert_eq!(admitted_capacity(usize::MAX), MAX_UNACCOUNTED_RESERVE);
    }

    #[test]
    fn csr_footprint_is_checked() {
        let f = csr_footprint_bytes(10, 100).unwrap();
        assert_eq!(f, 11 * 8 + 100 * 12);
        assert!(csr_footprint_bytes(u64::MAX, 1).is_none());
        assert!(csr_footprint_bytes(1, u64::MAX).is_none());
    }
}

/// Node identifier (source or destination address index).
///
/// 32 bits comfortably covers the address diversity of a packet window
/// (`N_V ≤ 10^8` in the paper) while halving index memory versus
/// `usize` — these matrices are the hot data structure of the pipeline.
pub type NodeId = u32;

/// Packet multiplicity on a link.
pub type Count = u64;
