//! Sparse traffic-matrix substrate for the PALU reproduction.
//!
//! Section II of the paper aggregates `N_V` consecutive valid packets
//! into a sparse matrix `A_t`, where `A_t(i, j)` counts the packets
//! from source `i` to destination `j`. Everything the paper measures is
//! then a function of `A_t`:
//!
//! * [`coo`] / [`csr`] — construction (coordinate triplets with
//!   duplicate accumulation) and compressed storage with row/column
//!   reductions and transposition.
//! * [`aggregates`] — the Table I aggregate properties (valid packets,
//!   unique links, unique sources, unique destinations), computed both
//!   in "summation notation" (direct reductions) and "matrix notation"
//!   (explicit `1ᵀA1`-style products) so the two can be cross-checked.
//! * [`quantities`] — the five streaming network quantities of
//!   Figure 1: source packets, source fan-out, link packets,
//!   destination fan-in, and destination packets, each as a degree
//!   histogram ready for logarithmic pooling.
//! * [`parallel`] — sharded parallel assembly of large windows using
//!   std::thread scoped threads.
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

/// Per-node aggregate quantities derived from an assembled window.
pub mod aggregates;
/// Coordinate-format (COO) triple accumulation for streaming inserts.
pub mod coo;
/// Compressed sparse row matrices built from COO batches.
pub mod csr;
/// Sharded parallel window assembly on std::thread scoped threads.
pub mod parallel;
/// The network quantities (degree, flows, packets, bytes) tracked per node.
pub mod quantities;

pub use aggregates::Aggregates;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use quantities::{NetworkQuantity, QuantityHistograms};

/// Node identifier (source or destination address index).
///
/// 32 bits comfortably covers the address diversity of a packet window
/// (`N_V ≤ 10^8` in the paper) while halving index memory versus
/// `usize` — these matrices are the hot data structure of the pipeline.
pub type NodeId = u32;

/// Packet multiplicity on a link.
pub type Count = u64;
