//! Parallel window assembly with `std::thread` scoped threads.
//!
//! The paper's measurement pipeline aggregates windows of up to
//! `N_V = 10^8` packets; building such a window serially is the
//! bottleneck of the whole pipeline. The sharded builder splits the
//! packet slice across threads, builds thread-local COO accumulators,
//! and merges shards in spawn order — bit-identical to the serial
//! result because COO → CSR conversion accumulates duplicates
//! regardless of input order *within each (row, col) cell*.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::quantities::QuantityHistograms;
use crate::NodeId;

/// Join a scoped worker, re-raising its panic on the calling thread.
fn joined<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Default shard count: one per available CPU, capped to keep shard
/// merge overhead negligible.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Packet count below which [`build_csr_parallel`] falls back to the
/// serial path: the scoped-thread setup costs more than it saves below
/// roughly this many packets.
pub const SERIAL_CUTOFF: usize = 100_000;

/// Build a CSR window matrix from packet pairs using `n_threads`
/// shards, with the default [`SERIAL_CUTOFF`]. Produces the identical
/// matrix to `CooMatrix::from_packet_pairs(pairs).to_csr()`.
pub fn build_csr_parallel(pairs: &[(NodeId, NodeId)], n_threads: usize) -> CsrMatrix {
    build_csr_parallel_with_cutoff(pairs, n_threads, SERIAL_CUTOFF)
}

/// [`build_csr_parallel`] with an explicit serial-fallback `cutoff`:
/// inputs shorter than `cutoff` (or a single thread) take the serial
/// path. Passing `cutoff = 0` forces the sharded path on arbitrarily
/// small inputs — that is how the tests pin bit-identity of the
/// parallel path without a 100k-pair fixture, including the
/// `pairs.len() < n_threads` edge where trailing shards are empty.
pub fn build_csr_parallel_with_cutoff(
    pairs: &[(NodeId, NodeId)],
    n_threads: usize,
    cutoff: usize,
) -> CsrMatrix {
    if n_threads <= 1 || pairs.len() < cutoff.max(1) {
        return CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
    }
    // `pairs` is non-empty here (cutoff.max(1) routed the empty slice
    // to the serial path), so the chunk size is at least 1 and
    // `chunks` never sees a zero size.
    let chunk = pairs.len().div_ceil(n_threads).max(1);
    let mut merged = CooMatrix::with_capacity(crate::admitted_capacity(pairs.len()));
    std::thread::scope(|s| {
        let workers: Vec<_> = pairs
            .chunks(chunk)
            .map(|piece| {
                s.spawn(move || {
                    let mut local = CooMatrix::with_capacity(crate::admitted_capacity(piece.len()));
                    for &(src, dst) in piece {
                        local.push_packet(src, dst);
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            merged.merge(&joined(worker));
        }
    });
    merged.to_csr()
}

/// Compute the five Figure 1 quantity histograms concurrently, one
/// quantity per thread. Useful when the window matrix is large enough
/// that each reduction pass is itself expensive.
pub fn quantities_parallel(a: &CsrMatrix) -> QuantityHistograms {
    let mut result = QuantityHistograms::default();
    std::thread::scope(|s| {
        let sp = s.spawn(|| crate::quantities::NetworkQuantity::SourcePackets.histogram(a));
        let sf = s.spawn(|| crate::quantities::NetworkQuantity::SourceFanOut.histogram(a));
        let lp = s.spawn(|| crate::quantities::NetworkQuantity::LinkPackets.histogram(a));
        let df = s.spawn(|| crate::quantities::NetworkQuantity::DestinationFanIn.histogram(a));
        let dp = s.spawn(|| crate::quantities::NetworkQuantity::DestinationPackets.histogram(a));
        result.source_packets = joined(sp);
        result.source_fan_out = joined(sf);
        result.link_packets = joined(lp);
        result.destination_fan_in = joined(df);
        result.destination_packets = joined(dp);
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_pairs(n: usize, sources: u32, dests: u32) -> Vec<(NodeId, NodeId)> {
        let mut x = 0xDEADBEEFu64;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (
                    ((x >> 33) % sources as u64) as NodeId,
                    ((x >> 13) % dests as u64) as NodeId,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_small() {
        // Below cutoff: must take the serial path and still be correct.
        let pairs = synthetic_pairs(1000, 50, 60);
        let serial = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let parallel = build_csr_parallel(&pairs, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_matches_serial_large() {
        let pairs = synthetic_pairs(250_000, 500, 700);
        let serial = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        for threads in [2, 3, 8] {
            let parallel = build_csr_parallel(&pairs, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_empty_input() {
        let a = build_csr_parallel(&[], 4);
        assert_eq!(a.nnz(), 0);
        // Even with the sharded path forced (cutoff 0), an empty input
        // must not panic on zero-size chunks.
        let a = build_csr_parallel_with_cutoff(&[], 4, 0);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn forced_parallel_path_matches_serial_on_small_input() {
        // cutoff = 0 exercises the sharded path on inputs the default
        // cutoff would route to the serial fallback.
        let pairs = synthetic_pairs(1_000, 50, 60);
        let serial = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        for threads in [2, 3, 8] {
            let parallel = build_csr_parallel_with_cutoff(&pairs, threads, 0);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn forced_parallel_path_with_fewer_pairs_than_threads() {
        // pairs.len() < n_threads: some shards are empty; the merge
        // in spawn order must still reproduce the serial matrix.
        let pairs = synthetic_pairs(3, 10, 10);
        let serial = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let parallel = build_csr_parallel_with_cutoff(&pairs, 8, 0);
        assert_eq!(serial, parallel);
        // Single pair, many threads.
        let one = [(1u32, 2u32)];
        let serial = CooMatrix::from_packet_pairs(one.iter().copied()).to_csr();
        assert_eq!(serial, build_csr_parallel_with_cutoff(&one, 16, 0));
    }

    #[test]
    fn explicit_cutoff_controls_the_fallback() {
        let pairs = synthetic_pairs(500, 20, 20);
        // Below the cutoff → serial path; above → sharded path; both
        // bit-identical anyway, so just pin equality across the knob.
        let high = build_csr_parallel_with_cutoff(&pairs, 4, 1_000);
        let low = build_csr_parallel_with_cutoff(&pairs, 4, 1);
        assert_eq!(high, low);
        // And the default-cutoff wrapper agrees.
        assert_eq!(high, build_csr_parallel(&pairs, 4));
    }

    #[test]
    fn single_thread_request_works() {
        let pairs = synthetic_pairs(5000, 10, 10);
        let a = build_csr_parallel(&pairs, 1);
        assert_eq!(a.total(), 5000);
    }

    #[test]
    fn parallel_quantities_match_serial() {
        let pairs = synthetic_pairs(50_000, 300, 400);
        let a = build_csr_parallel(&pairs, 4);
        let serial = QuantityHistograms::compute(&a);
        let parallel = quantities_parallel(&a);
        assert_eq!(serial.source_packets, parallel.source_packets);
        assert_eq!(serial.source_fan_out, parallel.source_fan_out);
        assert_eq!(serial.link_packets, parallel.link_packets);
        assert_eq!(serial.destination_fan_in, parallel.destination_fan_in);
        assert_eq!(serial.destination_packets, parallel.destination_packets);
    }

    #[test]
    fn default_threads_is_positive() {
        let t = default_threads();
        assert!(t >= 1);
        assert!(t <= 16);
    }
}
