//! Parallel window assembly with `std::thread` scoped threads.
//!
//! The paper's measurement pipeline aggregates windows of up to
//! `N_V = 10^8` packets; building such a window serially is the
//! bottleneck of the whole pipeline. The sharded builder splits the
//! packet slice across threads, builds thread-local COO accumulators,
//! and merges shards in spawn order — bit-identical to the serial
//! result because COO → CSR conversion accumulates duplicates
//! regardless of input order *within each (row, col) cell*.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::quantities::QuantityHistograms;
use crate::NodeId;

/// Join a scoped worker, re-raising its panic on the calling thread.
fn joined<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Default shard count: one per available CPU, capped to keep shard
/// merge overhead negligible.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Build a CSR window matrix from packet pairs using `n_threads`
/// shards. Produces the identical matrix to
/// `CooMatrix::from_packet_pairs(pairs).to_csr()`.
///
/// Falls back to the serial path for a single thread or small inputs
/// (the scoped-thread setup costs more than it saves below ~100k
/// packets).
pub fn build_csr_parallel(pairs: &[(NodeId, NodeId)], n_threads: usize) -> CsrMatrix {
    const SERIAL_CUTOFF: usize = 100_000;
    if n_threads <= 1 || pairs.len() < SERIAL_CUTOFF {
        return CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
    }
    let chunk = pairs.len().div_ceil(n_threads);
    let mut merged = CooMatrix::with_capacity(pairs.len());
    std::thread::scope(|s| {
        let workers: Vec<_> = pairs
            .chunks(chunk)
            .map(|piece| {
                s.spawn(move || {
                    let mut local = CooMatrix::with_capacity(piece.len());
                    for &(src, dst) in piece {
                        local.push_packet(src, dst);
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            merged.merge(&joined(worker));
        }
    });
    merged.to_csr()
}

/// Compute the five Figure 1 quantity histograms concurrently, one
/// quantity per thread. Useful when the window matrix is large enough
/// that each reduction pass is itself expensive.
pub fn quantities_parallel(a: &CsrMatrix) -> QuantityHistograms {
    let mut result = QuantityHistograms::default();
    std::thread::scope(|s| {
        let sp = s.spawn(|| crate::quantities::NetworkQuantity::SourcePackets.histogram(a));
        let sf = s.spawn(|| crate::quantities::NetworkQuantity::SourceFanOut.histogram(a));
        let lp = s.spawn(|| crate::quantities::NetworkQuantity::LinkPackets.histogram(a));
        let df = s.spawn(|| crate::quantities::NetworkQuantity::DestinationFanIn.histogram(a));
        let dp = s.spawn(|| crate::quantities::NetworkQuantity::DestinationPackets.histogram(a));
        result.source_packets = joined(sp);
        result.source_fan_out = joined(sf);
        result.link_packets = joined(lp);
        result.destination_fan_in = joined(df);
        result.destination_packets = joined(dp);
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_pairs(n: usize, sources: u32, dests: u32) -> Vec<(NodeId, NodeId)> {
        let mut x = 0xDEADBEEFu64;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (
                    ((x >> 33) % sources as u64) as NodeId,
                    ((x >> 13) % dests as u64) as NodeId,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_small() {
        // Below cutoff: must take the serial path and still be correct.
        let pairs = synthetic_pairs(1000, 50, 60);
        let serial = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let parallel = build_csr_parallel(&pairs, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_matches_serial_large() {
        let pairs = synthetic_pairs(250_000, 500, 700);
        let serial = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        for threads in [2, 3, 8] {
            let parallel = build_csr_parallel(&pairs, threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_empty_input() {
        let a = build_csr_parallel(&[], 4);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn single_thread_request_works() {
        let pairs = synthetic_pairs(5000, 10, 10);
        let a = build_csr_parallel(&pairs, 1);
        assert_eq!(a.total(), 5000);
    }

    #[test]
    fn parallel_quantities_match_serial() {
        let pairs = synthetic_pairs(50_000, 300, 400);
        let a = build_csr_parallel(&pairs, 4);
        let serial = QuantityHistograms::compute(&a);
        let parallel = quantities_parallel(&a);
        assert_eq!(serial.source_packets, parallel.source_packets);
        assert_eq!(serial.source_fan_out, parallel.source_fan_out);
        assert_eq!(serial.link_packets, parallel.link_packets);
        assert_eq!(serial.destination_fan_in, parallel.destination_fan_in);
        assert_eq!(serial.destination_packets, parallel.destination_packets);
    }

    #[test]
    fn default_threads_is_positive() {
        let t = default_threads();
        assert!(t >= 1);
        assert!(t <= 16);
    }
}
