//! Typed errors for sparse-matrix construction.
//!
//! Window geometry reaches the builders from configuration files and
//! journals — both untrusted. Sizing arithmetic on those dimensions
//! must not panic with a capacity overflow; it reports a
//! [`SparseError`] instead so callers can refuse the window cleanly.

use std::error::Error;
use std::fmt;

/// Failure while sizing or building a sparse matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A capacity computation on untrusted dimensions overflowed
    /// `usize` (or would exceed the platform's allocation limit).
    CapacityOverflow {
        /// Which buffer the computation was sizing.
        what: &'static str,
        /// The requested element count that overflowed.
        requested: u128,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::CapacityOverflow { what, requested } => write!(
                f,
                "capacity overflow sizing {what}: {requested} elements exceeds \
                 the addressable allocation limit"
            ),
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_buffer_and_count() {
        let e = SparseError::CapacityOverflow {
            what: "csr row_ptr",
            requested: u128::MAX,
        };
        let msg = e.to_string();
        assert!(msg.contains("csr row_ptr"), "{msg}");
        assert!(msg.contains("capacity overflow"), "{msg}");
    }
}
