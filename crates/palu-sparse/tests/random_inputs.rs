//! Randomized-input fallback for the gated proptest suite
//! (`tests/proptest_sparse.rs`): the same invariants, driven by the
//! in-repo deterministic RNG so they run in the offline build.

use palu_sparse::aggregates::Aggregates;
use palu_sparse::coo::CooMatrix;
use palu_sparse::parallel::build_csr_parallel;
use palu_sparse::quantities::QuantityHistograms;
use palu_stats::rng::{Rng, Xoshiro256pp};

const CASES: usize = 150;

/// Random small packet stream over a bounded id space so duplicate
/// links actually happen.
fn packets(rng: &mut Xoshiro256pp) -> Vec<(u32, u32)> {
    let len = rng.gen_range(0usize..400);
    (0..len)
        .map(|_| (rng.gen_range(0u32..64), rng.gen_range(0u32..64)))
        .collect()
}

#[test]
fn csr_roundtrips_every_packet() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5a01);
    for _ in 0..CASES {
        let pairs = packets(&mut rng);
        let csr = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        assert_eq!(csr.total(), pairs.len() as u64);
        let mut counts = std::collections::HashMap::new();
        for &(s, d) in &pairs {
            *counts.entry((s, d)).or_insert(0u64) += 1;
        }
        for (&(s, d), &c) in &counts {
            assert_eq!(csr.get(s, d), c);
        }
        assert_eq!(csr.nnz(), counts.len());
    }
}

#[test]
fn transpose_is_involutive_and_preserves() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5a02);
    for _ in 0..CASES {
        let pairs = packets(&mut rng);
        let a = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let t = a.transpose();
        assert_eq!(t.transpose(), a.clone());
        assert_eq!(a.total(), t.total());
        assert_eq!(a.nnz(), t.nnz());
        assert_eq!(a.row_sums(), t.col_sums());
        assert_eq!(a.col_nnzs(), t.row_nnzs());
    }
}

#[test]
fn table1_notations_always_agree() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5a03);
    for _ in 0..CASES {
        let pairs = packets(&mut rng);
        let a = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        assert_eq!(
            Aggregates::compute(&a),
            Aggregates::compute_matrix_notation(&a)
        );
    }
}

#[test]
fn quantity_conservation_laws() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5a04);
    for _ in 0..CASES {
        let pairs = packets(&mut rng);
        if pairs.is_empty() {
            continue;
        }
        let a = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let g = Aggregates::compute(&a);
        assert!(g.unique_links <= g.valid_packets);
        assert!(g.unique_sources <= g.unique_links);
        assert!(g.unique_destinations <= g.unique_links);
        assert!(g.unique_sources >= 1);
        let q = QuantityHistograms::compute(&a);
        assert_eq!(q.source_packets.degree_sum(), g.valid_packets);
        assert_eq!(q.destination_packets.degree_sum(), g.valid_packets);
        assert_eq!(q.source_fan_out.degree_sum(), g.unique_links);
        assert_eq!(q.destination_fan_in.degree_sum(), g.unique_links);
        assert_eq!(q.link_packets.total(), g.unique_links);
        assert_eq!(q.link_packets.degree_sum(), g.valid_packets);
        assert_eq!(q.source_packets.total(), g.unique_sources);
        assert_eq!(q.destination_packets.total(), g.unique_destinations);
    }
}

#[test]
fn parallel_build_matches_serial() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5a05);
    for _ in 0..CASES {
        let pairs = packets(&mut rng);
        let threads = rng.gen_range(1usize..8);
        let serial = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        assert_eq!(serial, build_csr_parallel(&pairs, threads));
    }
}

#[test]
fn mat_vec_against_dense_reference() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5a06);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..60);
        let pairs: Vec<(u32, u32)> = (0..len)
            .map(|_| (rng.gen_range(0u32..12), rng.gen_range(0u32..12)))
            .collect();
        let x: Vec<f64> = (0..12).map(|_| 20.0 * rng.gen::<f64>() - 10.0).collect();
        let mut coo = CooMatrix::from_packet_pairs(pairs.iter().copied());
        coo.reserve_dims(12, 12);
        let a = coo.to_csr();
        let mut dense = [[0f64; 12]; 12];
        for &(s, d) in &pairs {
            dense[s as usize][d as usize] += 1.0;
        }
        let y = a.mat_vec(&x);
        for (r, yr) in y.iter().enumerate() {
            let expected: f64 = (0..12).map(|c| dense[r][c] * x[c]).sum();
            assert!((yr - expected).abs() < 1e-9);
        }
        let ones = vec![1.0; 12];
        let z = a.vec_mat(&ones);
        for (c, zc) in z.iter().enumerate() {
            let expected: f64 = (0..12).map(|r| dense[r][c]).sum();
            assert!((zc - expected).abs() < 1e-9);
        }
    }
}

#[test]
fn zero_norm_bounds() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5a07);
    for _ in 0..CASES {
        let pairs = packets(&mut rng);
        let a = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let z = a.zero_norm();
        assert_eq!(z.nnz(), a.nnz());
        assert_eq!(z.total(), a.nnz() as u64);
        assert!(z.total() <= a.total());
    }
}
