//! Property-based tests for the sparse traffic-matrix substrate:
//! construction, reduction, and Table-I invariants over arbitrary
//! packet streams.
// Gated: `proptest` is declared as an empty feature so the offline
// build never resolves the external crate. To run these tests, add
// `proptest = "1"` under [dev-dependencies] (requires network) and
// build with `--features proptest`. The in-repo fallback coverage
// lives in each crate's tests/random_inputs.rs.
#![cfg(feature = "proptest")]

use palu_sparse::aggregates::Aggregates;
use palu_sparse::coo::CooMatrix;
use palu_sparse::parallel::build_csr_parallel;
use palu_sparse::quantities::QuantityHistograms;
use proptest::prelude::*;

/// Arbitrary small packet streams: (src, dst) pairs over a bounded id
/// space so collisions (duplicate links) actually happen.
fn packets() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..64, 0u32..64), 0..400)
}

proptest! {
    #[test]
    fn csr_roundtrips_every_packet(pairs in packets()) {
        let csr = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        // Total conservation.
        prop_assert_eq!(csr.total(), pairs.len() as u64);
        // Every pair is present with its multiplicity.
        let mut counts = std::collections::HashMap::new();
        for &(s, d) in &pairs {
            *counts.entry((s, d)).or_insert(0u64) += 1;
        }
        for (&(s, d), &c) in &counts {
            prop_assert_eq!(csr.get(s, d), c);
        }
        prop_assert_eq!(csr.nnz(), counts.len());
    }

    #[test]
    fn transpose_is_involutive_and_preserves(pairs in packets()) {
        let a = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let t = a.transpose();
        prop_assert_eq!(t.transpose(), a.clone());
        prop_assert_eq!(a.total(), t.total());
        prop_assert_eq!(a.nnz(), t.nnz());
        prop_assert_eq!(a.row_sums(), t.col_sums());
        prop_assert_eq!(a.col_nnzs(), t.row_nnzs());
    }

    #[test]
    fn table1_notations_always_agree(pairs in packets()) {
        let a = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        prop_assert_eq!(
            Aggregates::compute(&a),
            Aggregates::compute_matrix_notation(&a)
        );
    }

    #[test]
    fn aggregate_orderings(pairs in packets()) {
        prop_assume!(!pairs.is_empty());
        let a = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let g = Aggregates::compute(&a);
        // links ≤ packets; sources ≤ links; destinations ≤ links.
        prop_assert!(g.unique_links <= g.valid_packets);
        prop_assert!(g.unique_sources <= g.unique_links);
        prop_assert!(g.unique_destinations <= g.unique_links);
        prop_assert!(g.unique_sources >= 1);
    }

    #[test]
    fn quantity_conservation_laws(pairs in packets()) {
        prop_assume!(!pairs.is_empty());
        let a = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let g = Aggregates::compute(&a);
        let q = QuantityHistograms::compute(&a);
        prop_assert_eq!(q.source_packets.degree_sum(), g.valid_packets);
        prop_assert_eq!(q.destination_packets.degree_sum(), g.valid_packets);
        prop_assert_eq!(q.source_fan_out.degree_sum(), g.unique_links);
        prop_assert_eq!(q.destination_fan_in.degree_sum(), g.unique_links);
        prop_assert_eq!(q.link_packets.total(), g.unique_links);
        prop_assert_eq!(q.link_packets.degree_sum(), g.valid_packets);
        prop_assert_eq!(q.source_packets.total(), g.unique_sources);
        prop_assert_eq!(q.destination_packets.total(), g.unique_destinations);
    }

    #[test]
    fn parallel_build_matches_serial(pairs in packets(), threads in 1usize..8) {
        let serial = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let parallel = build_csr_parallel(&pairs, threads);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn mat_vec_against_dense_reference(pairs in prop::collection::vec((0u32..12, 0u32..12), 0..60),
                                       x in prop::collection::vec(-10f64..10.0, 12)) {
        let mut coo = CooMatrix::from_packet_pairs(pairs.iter().copied());
        coo.reserve_dims(12, 12);
        let a = coo.to_csr();
        // Dense reference.
        let mut dense = [[0f64; 12]; 12];
        for &(s, d) in &pairs {
            dense[s as usize][d as usize] += 1.0;
        }
        let y = a.mat_vec(&x);
        for (r, yr) in y.iter().enumerate() {
            let expected: f64 = (0..12).map(|c| dense[r][c] * x[c]).sum();
            prop_assert!((yr - expected).abs() < 1e-9);
        }
        let ones = vec![1.0; 12];
        let z = a.vec_mat(&ones);
        for (c, zc) in z.iter().enumerate() {
            let expected: f64 = (0..12).map(|r| dense[r][c]).sum();
            prop_assert!((zc - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_norm_bounds(pairs in packets()) {
        let a = CooMatrix::from_packet_pairs(pairs.iter().copied()).to_csr();
        let z = a.zero_norm();
        prop_assert_eq!(z.nnz(), a.nnz());
        prop_assert_eq!(z.total(), a.nnz() as u64);
        prop_assert!(z.total() <= a.total());
    }
}
