//! Randomized-input fallback for the gated proptest suite
//! (`tests/proptest_traffic.rs`): the same invariants, driven by the
//! in-repo deterministic RNG so they run in the offline build.

use palu_stats::rng::{Rng, Xoshiro256pp};
use palu_traffic::packets::Packet;
use palu_traffic::pipeline::{Measurement, Pipeline};
use palu_traffic::stream::WindowStream;
use palu_traffic::window::PacketWindow;

const CASES: usize = 100;

/// Random packet stream over a bounded host space.
fn packets(rng: &mut Xoshiro256pp) -> Vec<Packet> {
    let len = rng.gen_range(1usize..600);
    (0..len)
        .map(|_| Packet {
            src: rng.gen_range(0u32..48),
            dst: rng.gen_range(0u32..48),
        })
        .collect()
}

#[test]
fn window_conservation_laws() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x7001);
    for _ in 0..CASES {
        let ps = packets(&mut rng);
        let w = PacketWindow::from_packets(0, &ps);
        let agg = w.aggregates();
        assert_eq!(agg.valid_packets, ps.len() as u64);
        let q = w.quantities();
        assert_eq!(q.source_packets.degree_sum(), agg.valid_packets);
        assert_eq!(q.destination_packets.degree_sum(), agg.valid_packets);
        assert_eq!(q.source_fan_out.degree_sum(), agg.unique_links);
        assert_eq!(q.destination_fan_in.degree_sum(), agg.unique_links);
        assert_eq!(
            w.node_volume_histogram().degree_sum(),
            2 * agg.valid_packets
        );
        assert!(w.undirected_degree_histogram().degree_sum() <= 2 * agg.unique_links);
    }
}

#[test]
fn streaming_segmentation_is_exact() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x7002);
    for _ in 0..CASES {
        let ps = packets(&mut rng);
        let n_v = rng.gen_range(1usize..100);
        let windows: Vec<_> = WindowStream::new(ps.iter().copied(), n_v).collect();
        assert_eq!(windows.len(), ps.len() / n_v);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.t(), i as u64);
            assert_eq!(w.n_v(), n_v as u64);
            let reference = PacketWindow::from_packets(i as u64, &ps[i * n_v..(i + 1) * n_v]);
            assert_eq!(w.matrix(), reference.matrix());
        }
    }
}

#[test]
fn pooled_mass_conserved_over_any_windows() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x7003);
    for _ in 0..CASES {
        let ps = packets(&mut rng);
        let n_v = rng.gen_range(5usize..60);
        if ps.len() < n_v {
            continue;
        }
        let windows: Vec<_> = WindowStream::new(ps.iter().copied(), n_v).collect();
        if windows.is_empty() {
            continue;
        }
        for m in [Measurement::UndirectedDegree, Measurement::NodeVolume] {
            let pooled = Pipeline::pool(m, &windows);
            assert!((pooled.mean.total_mass() - 1.0).abs() < 1e-9);
            assert_eq!(pooled.windows, windows.len() as u64);
            assert!(pooled.sigma.iter().all(|&s| s >= 0.0));
        }
    }
}

#[test]
fn compaction_preserves_all_statistics() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x7004);
    for _ in 0..CASES {
        let ps = packets(&mut rng);
        let offset = rng.gen_range(1u32..1_000_000);
        let shifted: Vec<Packet> = ps
            .iter()
            .map(|p| Packet {
                src: p.src * 7919 + offset,
                dst: p.dst * 7919 + offset,
            })
            .collect();
        let dense = PacketWindow::from_packets(0, &ps);
        let compact = PacketWindow::from_packets_compacted(0, &shifted).unwrap();
        assert_eq!(dense.aggregates(), compact.aggregates());
        assert_eq!(
            dense.undirected_degree_histogram(),
            compact.undirected_degree_histogram()
        );
        assert_eq!(
            dense.node_volume_histogram(),
            compact.node_volume_histogram()
        );
        assert_eq!(
            dense.quantities().link_packets,
            compact.quantities().link_packets
        );
    }
}
