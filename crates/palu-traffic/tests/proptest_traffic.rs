//! Property-based tests for the streaming-traffic substrate.
// Gated: `proptest` is declared as an empty feature so the offline
// build never resolves the external crate. To run these tests, add
// `proptest = "1"` under [dev-dependencies] (requires network) and
// build with `--features proptest`. The in-repo fallback coverage
// lives in each crate's tests/random_inputs.rs.
#![cfg(feature = "proptest")]

use palu_traffic::packets::Packet;
use palu_traffic::pipeline::{Measurement, Pipeline};
use palu_traffic::stream::WindowStream;
use palu_traffic::window::PacketWindow;
use proptest::prelude::*;

/// Arbitrary packet streams over a bounded host space.
fn packets() -> impl Strategy<Value = Vec<Packet>> {
    prop::collection::vec((0u32..48, 0u32..48), 1..600).prop_map(|v| {
        v.into_iter()
            .map(|(src, dst)| Packet { src, dst })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_conservation_laws(ps in packets()) {
        let w = PacketWindow::from_packets(0, &ps);
        let agg = w.aggregates();
        prop_assert_eq!(agg.valid_packets, ps.len() as u64);
        let q = w.quantities();
        prop_assert_eq!(q.source_packets.degree_sum(), agg.valid_packets);
        prop_assert_eq!(q.destination_packets.degree_sum(), agg.valid_packets);
        prop_assert_eq!(q.source_fan_out.degree_sum(), agg.unique_links);
        prop_assert_eq!(q.destination_fan_in.degree_sum(), agg.unique_links);
        // Node volume double-counts every packet.
        prop_assert_eq!(w.node_volume_histogram().degree_sum(), 2 * agg.valid_packets);
        // Undirected degree ≤ fan-in + fan-out per host, so its total
        // is bounded by twice the unique links.
        prop_assert!(w.undirected_degree_histogram().degree_sum() <= 2 * agg.unique_links);
    }

    #[test]
    fn streaming_segmentation_is_exact(ps in packets(), n_v in 1usize..100) {
        let windows: Vec<_> = WindowStream::new(ps.iter().copied(), n_v).collect();
        prop_assert_eq!(windows.len(), ps.len() / n_v);
        for (i, w) in windows.iter().enumerate() {
            prop_assert_eq!(w.t(), i as u64);
            prop_assert_eq!(w.n_v(), n_v as u64);
            let reference = PacketWindow::from_packets(i as u64, &ps[i * n_v..(i + 1) * n_v]);
            prop_assert_eq!(w.matrix(), reference.matrix());
        }
    }

    #[test]
    fn pooled_mass_conserved_over_any_windows(ps in packets(), n_v in 5usize..60) {
        prop_assume!(ps.len() >= n_v);
        let windows: Vec<_> = WindowStream::new(ps.iter().copied(), n_v).collect();
        prop_assume!(!windows.is_empty());
        for m in [Measurement::UndirectedDegree, Measurement::NodeVolume] {
            let pooled = Pipeline::pool(m, &windows);
            prop_assert!((pooled.mean.total_mass() - 1.0).abs() < 1e-9);
            prop_assert_eq!(pooled.windows, windows.len() as u64);
            prop_assert!(pooled.sigma.iter().all(|&s| s >= 0.0));
        }
    }

    #[test]
    fn compaction_preserves_all_statistics(ps in packets(), offset in 1u32..1_000_000) {
        // Shift ids far away: the compacting constructor must yield
        // identical statistics to the dense original.
        let shifted: Vec<Packet> = ps
            .iter()
            .map(|p| Packet {
                src: p.src * 7919 + offset,
                dst: p.dst * 7919 + offset,
            })
            .collect();
        let dense = PacketWindow::from_packets(0, &ps);
        let compact = PacketWindow::from_packets_compacted(0, &shifted).unwrap();
        prop_assert_eq!(dense.aggregates(), compact.aggregates());
        prop_assert_eq!(
            dense.undirected_degree_histogram(),
            compact.undirected_degree_histogram()
        );
        prop_assert_eq!(dense.node_volume_histogram(), compact.node_volume_histogram());
        prop_assert_eq!(dense.quantities().link_packets, compact.quantities().link_packets);
    }
}
