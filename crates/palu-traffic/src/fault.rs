//! Typed failure taxonomy, failure policies, and the deterministic
//! fault injector for the measurement pipeline.
//!
//! A production trunk-line observatory loses windows: captures get
//! truncated, aggregation hits pathological inputs, workers die. The
//! pipeline's robustness contract (DESIGN.md §4e) is that a window
//! failure is a *data point*, not a crash: each window's
//! synthesize → window → histogram → bin stage is isolated, failures
//! are classified into a [`WindowFault`], retried against fresh
//! deterministic RNG sub-streams, and — under a permissive
//! [`FailurePolicy`] — quarantined without disturbing the bit-identical
//! window-ordered merge of the surviving set.
//!
//! The [`Injector`] closes the loop: it deterministically plants
//! faults (truncated windows, NaN histogram bins, duplicate-edge
//! storms, worker panics) at configurable rates so the recovery
//! machinery is exercised by tests and the CI smoke matrix, not just
//! by theory. Same `(spec, seed)` ⇒ the same faults in the same
//! windows, regardless of thread count.

use palu_stats::restart::RungTally;
use palu_stats::rng::{Rng, SeedSequence};

/// One classified per-window failure.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowFault {
    /// The window held fewer packets than its `N_V` budget.
    Truncated {
        /// The configured packet budget.
        expected: u64,
        /// Packets actually present.
        actual: u64,
    },
    /// The measurement histogram came back empty.
    EmptyHistogram,
    /// The histogram's support collapsed (e.g. a duplicate-edge storm
    /// crushed thousands of packets onto one conversation).
    Degenerate {
        /// Distinct degrees left in the histogram.
        support: u64,
    },
    /// A binned probability was NaN or infinite.
    NonFiniteBin {
        /// Index of the first offending bin.
        bin: usize,
    },
    /// More distinct host ids than `u32` can relabel.
    HostIdOverflow {
        /// Distinct ids encountered when the relabeling overflowed.
        distinct: u64,
    },
    /// The packet synthesizer has no conversations to draw from.
    EmptySynthesizer,
    /// The worker thread panicked; the payload's message is captured.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The attempt exceeded the policy's per-window wall-clock
    /// deadline (the stall watchdog; see DESIGN.md §4f).
    Stalled {
        /// Measured attempt duration in milliseconds.
        elapsed_ms: u64,
        /// The policy's deadline in milliseconds.
        deadline_ms: u64,
    },
    /// The configured window budget `N_V` does not fit in `usize` on
    /// this platform, so the synthesis buffer cannot be sized.
    BudgetUnrepresentable {
        /// The configured packet budget.
        n_v: u64,
    },
}

impl WindowFault {
    /// The payload-free classification of this fault.
    pub fn kind(&self) -> FaultKind {
        match self {
            WindowFault::Truncated { .. } => FaultKind::Truncated,
            WindowFault::EmptyHistogram => FaultKind::EmptyHistogram,
            WindowFault::Degenerate { .. } => FaultKind::Degenerate,
            WindowFault::NonFiniteBin { .. } => FaultKind::NonFiniteBin,
            WindowFault::HostIdOverflow { .. } => FaultKind::HostIdOverflow,
            WindowFault::EmptySynthesizer => FaultKind::EmptySynthesizer,
            WindowFault::Panic { .. } => FaultKind::Panic,
            WindowFault::Stalled { .. } => FaultKind::Stalled,
            WindowFault::BudgetUnrepresentable { .. } => FaultKind::BudgetUnrepresentable,
        }
    }
}

impl std::fmt::Display for WindowFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowFault::Truncated { expected, actual } => {
                write!(f, "truncated window: {actual} of {expected} packets")
            }
            WindowFault::EmptyHistogram => write!(f, "empty measurement histogram"),
            WindowFault::Degenerate { support } => {
                write!(f, "degenerate histogram: support collapsed to {support}")
            }
            WindowFault::NonFiniteBin { bin } => {
                write!(f, "non-finite probability in bin {bin}")
            }
            WindowFault::HostIdOverflow { distinct } => {
                write!(f, "more than u32::MAX distinct host ids ({distinct})")
            }
            WindowFault::EmptySynthesizer => {
                write!(f, "synthesizer has no conversations to draw from")
            }
            WindowFault::Panic { message } => write!(f, "worker panic: {message}"),
            WindowFault::Stalled {
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "window stalled: attempt took {elapsed_ms} ms against a {deadline_ms} ms deadline"
            ),
            WindowFault::BudgetUnrepresentable { n_v } => write!(
                f,
                "window budget N_V = {n_v} does not fit in usize on this platform"
            ),
        }
    }
}

impl std::error::Error for WindowFault {}

/// Payload-free fault classification, used as a JSON label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// See [`WindowFault::Truncated`].
    Truncated,
    /// See [`WindowFault::EmptyHistogram`].
    EmptyHistogram,
    /// See [`WindowFault::Degenerate`].
    Degenerate,
    /// See [`WindowFault::NonFiniteBin`].
    NonFiniteBin,
    /// See [`WindowFault::HostIdOverflow`].
    HostIdOverflow,
    /// See [`WindowFault::EmptySynthesizer`].
    EmptySynthesizer,
    /// See [`WindowFault::Panic`].
    Panic,
    /// See [`WindowFault::Stalled`].
    Stalled,
    /// See [`WindowFault::BudgetUnrepresentable`].
    BudgetUnrepresentable,
    /// The window's capture shard never delivered it: missing or
    /// corrupt shard journal at federation merge time (no
    /// corresponding [`WindowFault`] — this kind is synthesized by
    /// [`crate::federation`], not by a window attempt).
    ShardLost,
    /// A leased worker stopped heartbeating before its lease
    /// deadline work completed (synthesized by [`crate::dispatch`]).
    WorkerLost,
    /// A lease deadline elapsed and the range was reclaimed for
    /// re-dispatch (synthesized by [`crate::dispatch`]).
    LeaseExpired,
    /// A zombie worker presented a stale fencing token and was
    /// refused (synthesized by [`crate::dispatch`]).
    LeaseFenced,
    /// A shard range finished its lease without full coverage — its
    /// windows return to the dispatch queue (synthesized by
    /// [`crate::dispatch`]).
    RangeOrphaned,
    /// The dispatcher's stall deadline elapsed with incomplete
    /// coverage and no live leases (synthesized by
    /// [`crate::dispatch`]).
    DispatchStalled,
}

impl FaultKind {
    /// Stable lowercase name, used as a JSON key.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Truncated => "truncated",
            FaultKind::EmptyHistogram => "empty_histogram",
            FaultKind::Degenerate => "degenerate",
            FaultKind::NonFiniteBin => "non_finite_bin",
            FaultKind::HostIdOverflow => "host_id_overflow",
            FaultKind::EmptySynthesizer => "empty_synthesizer",
            FaultKind::Panic => "panic",
            FaultKind::Stalled => "stalled",
            FaultKind::BudgetUnrepresentable => "budget_unrepresentable",
            FaultKind::ShardLost => "shard_lost",
            FaultKind::WorkerLost => "worker_lost",
            FaultKind::LeaseExpired => "lease_expired",
            FaultKind::LeaseFenced => "lease_fenced",
            FaultKind::RangeOrphaned => "range_orphaned",
            FaultKind::DispatchStalled => "dispatch_stalled",
        }
    }

    /// Stable one-byte wire code for the capture journal. Codes are
    /// append-only: existing values never change meaning.
    pub fn code(self) -> u8 {
        match self {
            FaultKind::Truncated => 0,
            FaultKind::EmptyHistogram => 1,
            FaultKind::Degenerate => 2,
            FaultKind::NonFiniteBin => 3,
            FaultKind::HostIdOverflow => 4,
            FaultKind::EmptySynthesizer => 5,
            FaultKind::Panic => 6,
            FaultKind::Stalled => 7,
            FaultKind::BudgetUnrepresentable => 8,
            FaultKind::ShardLost => 9,
            FaultKind::WorkerLost => 10,
            FaultKind::LeaseExpired => 11,
            FaultKind::LeaseFenced => 12,
            FaultKind::RangeOrphaned => 13,
            FaultKind::DispatchStalled => 14,
        }
    }

    /// Inverse of [`FaultKind::code`]; `None` for unknown codes (a
    /// journal written by a future version).
    pub fn from_code(code: u8) -> Option<FaultKind> {
        Some(match code {
            0 => FaultKind::Truncated,
            1 => FaultKind::EmptyHistogram,
            2 => FaultKind::Degenerate,
            3 => FaultKind::NonFiniteBin,
            4 => FaultKind::HostIdOverflow,
            5 => FaultKind::EmptySynthesizer,
            6 => FaultKind::Panic,
            7 => FaultKind::Stalled,
            8 => FaultKind::BudgetUnrepresentable,
            9 => FaultKind::ShardLost,
            10 => FaultKind::WorkerLost,
            11 => FaultKind::LeaseExpired,
            12 => FaultKind::LeaseFenced,
            13 => FaultKind::RangeOrphaned,
            14 => FaultKind::DispatchStalled,
            _ => return None,
        })
    }
}

/// What the pipeline does with a window whose retry budget is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the whole run with [`PipelineError::WindowAborted`].
    Abort,
    /// Drop the window from the pooled result and record it.
    Quarantine,
    /// Replace it with one extra deterministic re-synthesis attempt
    /// (never fault-injected); quarantine only if that also fails.
    Substitute,
}

impl FaultAction {
    /// Stable lowercase name, used as a CLI value and JSON label.
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Abort => "abort",
            FaultAction::Quarantine => "quarantine",
            FaultAction::Substitute => "substitute",
        }
    }
}

/// Per-run failure-handling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePolicy {
    /// Disposal of a window whose retries are exhausted.
    pub on_fault: FaultAction,
    /// Retries per window after the initial attempt. Retry `k` of
    /// window `t` draws from a deterministic sub-stream derived from
    /// `(t, k)`, so recovery is replayable.
    pub max_retries: u32,
    /// Maximum tolerated quarantined fraction in `[0, 1]`; exceeding
    /// it (strictly) fails the run with
    /// [`PipelineError::QuarantineOverflow`] — see
    /// [`FailurePolicy::overflows`].
    pub quarantine_threshold: f64,
    /// Per-window stall-watchdog deadline in milliseconds; `None`
    /// disables the watchdog (and keeps the result path entirely
    /// clock-free). An attempt that finishes but overran the deadline
    /// is classified [`FaultKind::Stalled`] and disposed of through
    /// the ordinary retry/quarantine machinery.
    pub window_deadline_ms: Option<u64>,
}

impl FailurePolicy {
    /// The pre-fault-tolerance behavior: no retries, any fault aborts.
    pub fn strict() -> Self {
        FailurePolicy {
            on_fault: FaultAction::Abort,
            max_retries: 0,
            quarantine_threshold: 1.0,
            window_deadline_ms: None,
        }
    }

    /// Retry up to `max_retries` times, then quarantine.
    pub fn quarantine(max_retries: u32) -> Self {
        FailurePolicy {
            on_fault: FaultAction::Quarantine,
            max_retries,
            quarantine_threshold: 1.0,
            window_deadline_ms: None,
        }
    }

    /// Retry up to `max_retries` times, then substitute a clean
    /// re-synthesis.
    pub fn substitute(max_retries: u32) -> Self {
        FailurePolicy {
            on_fault: FaultAction::Substitute,
            max_retries,
            quarantine_threshold: 1.0,
            window_deadline_ms: None,
        }
    }

    /// This policy with the stall watchdog armed at `deadline_ms`.
    pub fn with_deadline_ms(self, deadline_ms: u64) -> Self {
        FailurePolicy {
            window_deadline_ms: Some(deadline_ms),
            ..self
        }
    }

    /// Whether `quarantined` dropped windows out of `windows` exceed
    /// the tolerated fraction.
    ///
    /// The comparison matches the error message's wording exactly: a
    /// quarantined fraction *strictly above* the threshold overflows;
    /// exact equality passes. The fraction is compared as
    /// `quarantined / windows > threshold` rather than
    /// `quarantined > threshold * windows`, because the latter's
    /// product can round *down* (e.g. `0.3 * 10.0` is
    /// `2.999999999999999…`), spuriously failing a run sitting exactly
    /// on the boundary.
    pub fn overflows(&self, quarantined: u64, windows: u64) -> bool {
        if windows == 0 {
            return false;
        }
        quarantined as f64 / windows as f64 > self.quarantine_threshold
    }
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy::strict()
    }
}

/// How one faulted window was ultimately disposed of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowOutcome {
    /// A retry succeeded; the window contributes to the pool.
    Recovered,
    /// Dropped from the pooled result.
    Quarantined,
    /// Replaced by a clean re-synthesis; contributes to the pool.
    Substituted,
    /// Failed the whole run (strict policy).
    Aborted,
}

impl WindowOutcome {
    /// Stable lowercase name, used as a JSON label.
    pub fn name(self) -> &'static str {
        match self {
            WindowOutcome::Recovered => "recovered",
            WindowOutcome::Quarantined => "quarantined",
            WindowOutcome::Substituted => "substituted",
            WindowOutcome::Aborted => "aborted",
        }
    }

    /// Stable one-byte wire code for the capture journal.
    pub fn code(self) -> u8 {
        match self {
            WindowOutcome::Recovered => 0,
            WindowOutcome::Quarantined => 1,
            WindowOutcome::Substituted => 2,
            WindowOutcome::Aborted => 3,
        }
    }

    /// Inverse of [`WindowOutcome::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<WindowOutcome> {
        Some(match code {
            0 => WindowOutcome::Recovered,
            1 => WindowOutcome::Quarantined,
            2 => WindowOutcome::Substituted,
            3 => WindowOutcome::Aborted,
            _ => return None,
        })
    }
}

/// One faulted window's audit-trail entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Window index `t`.
    pub window: u64,
    /// Classification of the *last* fault the window exhibited.
    pub kind: FaultKind,
    /// Synthesis attempts spent on the window (including the first).
    pub attempts: u32,
    /// Final disposal.
    pub outcome: WindowOutcome,
}

/// Aggregate fault accounting for one pipeline run. Deterministic:
/// records are in window order and the report compares equal across
/// reruns and thread counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultReport {
    /// Windows the run attempted.
    pub windows: u64,
    /// Windows contributing to the pooled result.
    pub survivors: u64,
    /// Windows dropped by quarantine.
    pub quarantined: u64,
    /// Windows replaced by a clean re-synthesis.
    pub substituted: u64,
    /// Windows rescued by a retry.
    pub recovered: u64,
    /// Faults planted by the injector (0 when injection is off).
    pub injected: u64,
    /// Total retry attempts across all windows.
    pub retries: u64,
    /// Per-window audit trail, in window order (clean windows have no
    /// record).
    pub records: Vec<FaultRecord>,
    /// Fit-restart ladder rung histogram for fits run on the pooled
    /// output (filled in by callers that fit; see `palu-cli`).
    pub ladder: RungTally,
    /// Degradation-ladder engagements recorded by the budget governor,
    /// in engagement order (empty without a memory budget).
    pub degradations: Vec<crate::budget::DegradationEvent>,
}

impl FaultReport {
    /// An empty report for a run over `windows` windows.
    pub fn new(windows: u64) -> Self {
        FaultReport {
            windows,
            survivors: windows,
            ..Default::default()
        }
    }

    /// True when no window faulted and nothing was injected.
    pub fn is_clean(&self) -> bool {
        self.records.is_empty() && self.injected == 0
    }
}

/// A fault the injector plants into one window attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Drop half the window's packets (⇒ [`WindowFault::Truncated`]).
    Truncate,
    /// Poison one binned probability with NaN
    /// (⇒ [`WindowFault::NonFiniteBin`]).
    NanBin,
    /// Overwrite every packet with the first (⇒
    /// [`WindowFault::Degenerate`] support collapse).
    DuplicateStorm,
    /// Panic on the worker thread (⇒ [`WindowFault::Panic`]).
    WorkerPanic,
    /// Sleep the attempt past the policy's stall deadline (⇒
    /// [`WindowFault::Stalled`] when the watchdog is armed; a no-op
    /// without a deadline).
    Stall,
    /// Inflate the window's *accounted* footprint in the budget ledger
    /// (no real allocation) to simulate memory pressure and exercise
    /// the degradation ladder. A no-op without a memory budget; never
    /// produces a [`WindowFault`] — the window completes normally.
    Ballast,
}

impl InjectedFault {
    /// Stable lowercase name, used in CLI specs and JSON labels.
    pub fn name(self) -> &'static str {
        match self {
            InjectedFault::Truncate => "truncate",
            InjectedFault::NanBin => "nan",
            InjectedFault::DuplicateStorm => "dup",
            InjectedFault::WorkerPanic => "panic",
            InjectedFault::Stall => "stall",
            InjectedFault::Ballast => "ballast",
        }
    }
}

/// Per-attempt injection rates, each in `[0, 1]` with total ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionSpec {
    /// Probability of [`InjectedFault::Truncate`] per attempt.
    pub truncate: f64,
    /// Probability of [`InjectedFault::NanBin`] per attempt.
    pub nan: f64,
    /// Probability of [`InjectedFault::DuplicateStorm`] per attempt.
    pub duplicate: f64,
    /// Probability of [`InjectedFault::WorkerPanic`] per attempt.
    pub panic: f64,
    /// Probability of [`InjectedFault::Stall`] per attempt. Not part
    /// of the [`InjectionSpec::uniform`] split (a stall is only
    /// observable with the watchdog armed), so it must be requested
    /// explicitly as `stall=rate`.
    pub stall: f64,
    /// Probability of [`InjectedFault::Ballast`] per attempt. Like
    /// `stall`, not part of the [`InjectionSpec::uniform`] split (only
    /// observable with a memory budget set); request it explicitly as
    /// `ballast=rate`.
    pub ballast: f64,
}

impl InjectionSpec {
    /// No injection at all.
    pub fn none() -> Self {
        InjectionSpec {
            truncate: 0.0,
            nan: 0.0,
            duplicate: 0.0,
            panic: 0.0,
            stall: 0.0,
            ballast: 0.0,
        }
    }

    /// Total rate `rate`, split evenly across the four fault kinds.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn uniform(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "injection rate must be in [0, 1], got {rate}"
        );
        InjectionSpec {
            truncate: rate / 4.0,
            nan: rate / 4.0,
            duplicate: rate / 4.0,
            panic: rate / 4.0,
            stall: 0.0,
            ballast: 0.0,
        }
    }

    /// Parse a CLI spec: either a bare total rate (`"0.5"`, split
    /// evenly across `truncate`/`nan`/`dup`/`panic`) or
    /// comma-separated `kind=rate` pairs drawn from `truncate`, `nan`,
    /// `dup`, `panic`, `stall` (unnamed kinds default to 0).
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed input, rates outside
    /// `[0, 1]`, or totals above 1.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty injection spec".into());
        }
        let mut spec = InjectionSpec::none();
        if let Ok(rate) = s.parse::<f64>() {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("injection rate must be in [0, 1], got {rate}"));
            }
            return Ok(InjectionSpec::uniform(rate));
        }
        for part in s.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected kind=rate, got '{part}'"))?;
            let rate: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad rate '{value}' for '{key}'"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate for '{key}' must be in [0, 1], got {rate}"));
            }
            match key.trim() {
                "truncate" => spec.truncate = rate,
                "nan" => spec.nan = rate,
                "dup" => spec.duplicate = rate,
                "panic" => spec.panic = rate,
                "stall" => spec.stall = rate,
                "ballast" => spec.ballast = rate,
                other => {
                    return Err(format!(
                        "unknown fault kind '{other}' (expected truncate, nan, dup, panic, \
                         stall, ballast)"
                    ))
                }
            }
        }
        if spec.total() > 1.0 {
            return Err(format!("injection rates sum to {} > 1", spec.total()));
        }
        Ok(spec)
    }

    /// Sum of all the rates.
    pub fn total(&self) -> f64 {
        self.truncate + self.nan + self.duplicate + self.panic + self.stall + self.ballast
    }

    /// True when every rate is zero.
    pub fn is_none(&self) -> bool {
        self.total() == 0.0
    }
}

/// Deterministic seeded fault injector.
///
/// The decision for `(window, attempt)` is a pure function of the
/// injector's seed: the plan is computed from its own derived RNG
/// stream, independent of which thread evaluates it or in what order.
/// Retries see independent draws, so an injected fault does not
/// automatically recur on the retry (at rate `r` it recurs with
/// probability `r`).
#[derive(Debug, Clone)]
pub struct Injector {
    spec: InjectionSpec,
    seq: SeedSequence,
}

impl Injector {
    /// An injector planting faults per `spec`, deterministically
    /// derived from `seed`.
    pub fn new(spec: InjectionSpec, seed: u64) -> Self {
        Injector {
            spec,
            seq: SeedSequence::new(seed),
        }
    }

    /// The injection rates in force.
    pub fn spec(&self) -> &InjectionSpec {
        &self.spec
    }

    /// The fault (if any) to plant into attempt `attempt` of window
    /// `window`. Pure: same `(seed, window, attempt)` ⇒ same answer.
    pub fn plan(&self, window: u64, attempt: u32) -> Option<InjectedFault> {
        if self.spec.is_none() {
            return None;
        }
        let mut rng = SeedSequence::new(self.seq.child_seed(window)).rng(attempt as u64);
        let u: f64 = rng.gen::<f64>();
        let mut edge = self.spec.truncate;
        if u < edge {
            return Some(InjectedFault::Truncate);
        }
        edge += self.spec.nan;
        if u < edge {
            return Some(InjectedFault::NanBin);
        }
        edge += self.spec.duplicate;
        if u < edge {
            return Some(InjectedFault::DuplicateStorm);
        }
        edge += self.spec.panic;
        if u < edge {
            return Some(InjectedFault::WorkerPanic);
        }
        edge += self.spec.stall;
        if u < edge {
            return Some(InjectedFault::Stall);
        }
        // Appended after every pre-existing kind so enabling ballast
        // never re-plans the established deterministic outcomes.
        edge += self.spec.ballast;
        if u < edge {
            return Some(InjectedFault::Ballast);
        }
        None
    }
}

/// A run-level failure of the fault-tolerant pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The run was configured with zero windows — always a caller bug,
    /// never silently coerced to one window.
    ZeroWindows,
    /// A window exhausted its retry budget under
    /// [`FaultAction::Abort`].
    WindowAborted {
        /// The window index `t`.
        window: u64,
        /// Synthesis attempts spent before giving up.
        attempts: u32,
        /// The last fault observed.
        fault: WindowFault,
    },
    /// Quarantine dropped more than the policy's tolerated fraction.
    QuarantineOverflow {
        /// Windows quarantined.
        quarantined: u64,
        /// Windows attempted.
        windows: u64,
        /// The policy's tolerated fraction.
        threshold: f64,
    },
    /// The durable capture journal failed (I/O or corruption); see
    /// [`crate::journal::JournalFault`].
    Journal(crate::journal::JournalFault),
    /// The resource-budget governor refused or aborted the capture;
    /// see [`crate::budget::BudgetFault`].
    Budget(crate::budget::BudgetFault),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::ZeroWindows => {
                write!(f, "pipeline run configured with zero windows")
            }
            PipelineError::WindowAborted {
                window,
                attempts,
                fault,
            } => write!(
                f,
                "window {window} aborted after {attempts} attempt(s): {fault}"
            ),
            PipelineError::QuarantineOverflow {
                quarantined,
                windows,
                threshold,
            } => write!(
                f,
                "{quarantined} of {windows} windows quarantined, above the {threshold} threshold"
            ),
            PipelineError::Journal(fault) => write!(f, "capture journal: {fault}"),
            PipelineError::Budget(fault) => write!(f, "resource budget: {fault}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::WindowAborted { fault, .. } => Some(fault),
            PipelineError::Journal(fault) => Some(fault),
            PipelineError::Budget(fault) => Some(fault),
            _ => None,
        }
    }
}

impl From<crate::journal::JournalFault> for PipelineError {
    fn from(fault: crate::journal::JournalFault) -> Self {
        PipelineError::Journal(fault)
    }
}

impl From<crate::budget::BudgetFault> for PipelineError {
    fn from(fault: crate::budget::BudgetFault) -> Self {
        PipelineError::Budget(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic_and_thread_independent() {
        let inj = Injector::new(InjectionSpec::uniform(0.5), 42);
        let first: Vec<_> = (0..64).map(|t| inj.plan(t, 0)).collect();
        let again: Vec<_> = (0..64).map(|t| inj.plan(t, 0)).collect();
        assert_eq!(first, again);
        // Reversed evaluation order — random access, same plan.
        let reversed: Vec<_> = (0..64).rev().map(|t| inj.plan(t, 0)).collect();
        assert_eq!(first, reversed.into_iter().rev().collect::<Vec<_>>());
        // At a 50% rate over 64 windows, both outcomes occur.
        let hits = first.iter().filter(|p| p.is_some()).count();
        assert!(hits > 8 && hits < 56, "hits {hits}");
    }

    #[test]
    fn ballast_parses_and_extends_the_plan_tail() {
        let spec = InjectionSpec::parse("ballast=0.5").expect("parses");
        assert_eq!(spec.ballast, 0.5);
        assert_eq!(spec.total(), 0.5);
        assert!(!spec.is_none());
        // Certain ballast plans ballast everywhere.
        let inj = Injector::new(InjectionSpec::parse("ballast=1.0").unwrap(), 11);
        assert!((0..32).all(|t| inj.plan(t, 0) == Some(InjectedFault::Ballast)));
        // Enabling ballast never re-plans pre-existing kinds: windows
        // the old spec faulted keep the identical fault.
        let old = Injector::new(InjectionSpec::uniform(0.4), 23);
        let mut with_ballast = InjectionSpec::uniform(0.4);
        with_ballast.ballast = 0.3;
        let new = Injector::new(with_ballast, 23);
        for t in 0..128 {
            if let Some(f) = old.plan(t, 0) {
                assert_eq!(new.plan(t, 0), Some(f), "window {t}");
            }
        }
        assert_eq!(InjectedFault::Ballast.name(), "ballast");
        let err = InjectionSpec::parse("blast=0.1").unwrap_err();
        assert!(err.contains("ballast"), "kind list mentions ballast: {err}");
    }

    #[test]
    fn injector_rates_are_respected() {
        let inj = Injector::new(InjectionSpec::uniform(1.0), 7);
        // Total rate 1.0 ⇒ every attempt faults.
        assert!((0..100).all(|t| inj.plan(t, 0).is_some()));
        let off = Injector::new(InjectionSpec::none(), 7);
        assert!((0..100).all(|t| off.plan(t, 0).is_none()));
        // A single-kind spec only produces that kind.
        let only_nan = Injector::new(
            InjectionSpec {
                nan: 1.0,
                ..InjectionSpec::none()
            },
            7,
        );
        assert!((0..50).all(|t| only_nan.plan(t, 3) == Some(InjectedFault::NanBin)));
    }

    #[test]
    fn retries_draw_independent_plans() {
        let inj = Injector::new(InjectionSpec::uniform(0.5), 9);
        let differs = (0..64).any(|t| inj.plan(t, 0) != inj.plan(t, 1));
        assert!(differs, "attempt 1 must not replay attempt 0's plan");
    }

    #[test]
    fn spec_parses_bare_rates_and_pairs() {
        let u = InjectionSpec::parse("0.4").unwrap();
        assert!((u.total() - 0.4).abs() < 1e-12);
        assert_eq!(u.truncate, 0.1);
        let p = InjectionSpec::parse("truncate=0.2,panic=0.05").unwrap();
        assert_eq!(p.truncate, 0.2);
        assert_eq!(p.panic, 0.05);
        assert_eq!(p.nan, 0.0);
        assert!((p.total() - 0.25).abs() < 1e-12);
        assert_eq!(InjectionSpec::parse("0").unwrap(), InjectionSpec::none());
    }

    #[test]
    fn spec_parse_rejects_bad_input() {
        assert!(InjectionSpec::parse("").is_err());
        assert!(InjectionSpec::parse("1.5").is_err());
        assert!(InjectionSpec::parse("-0.1").is_err());
        assert!(InjectionSpec::parse("frobnicate=0.5").is_err());
        assert!(InjectionSpec::parse("nan=abc").is_err());
        assert!(InjectionSpec::parse("nan=0.6,dup=0.6").is_err());
        assert!(InjectionSpec::parse("nan").is_err());
    }

    #[test]
    fn policy_constructors() {
        let s = FailurePolicy::strict();
        assert_eq!(s.on_fault, FaultAction::Abort);
        assert_eq!(s.max_retries, 0);
        assert_eq!(FailurePolicy::default(), s);
        let q = FailurePolicy::quarantine(3);
        assert_eq!(q.on_fault, FaultAction::Quarantine);
        assert_eq!(q.max_retries, 3);
        let sub = FailurePolicy::substitute(1);
        assert_eq!(sub.on_fault, FaultAction::Substitute);
    }

    #[test]
    fn fault_kinds_and_outcomes_have_stable_names() {
        assert_eq!(
            WindowFault::Truncated {
                expected: 10,
                actual: 5
            }
            .kind()
            .name(),
            "truncated"
        );
        assert_eq!(WindowFault::EmptyHistogram.kind().name(), "empty_histogram");
        assert_eq!(
            WindowFault::Panic {
                message: "x".into()
            }
            .kind()
            .name(),
            "panic"
        );
        assert_eq!(WindowOutcome::Quarantined.name(), "quarantined");
        assert_eq!(FaultAction::Substitute.name(), "substitute");
        assert_eq!(InjectedFault::DuplicateStorm.name(), "dup");
    }

    #[test]
    fn quarantine_boundary_exact_equality_passes() {
        // 3 of 10 at threshold 0.3 sits exactly on the boundary: the
        // message says "above the threshold", so equality must pass.
        // The old `quarantined > threshold * n` comparison failed it,
        // because 0.3 * 10.0 rounds to 2.999999999999999… .
        let policy = FailurePolicy {
            quarantine_threshold: 0.3,
            ..FailurePolicy::quarantine(0)
        };
        assert!(!policy.overflows(3, 10));
        assert!(policy.overflows(4, 10));
        assert!(!policy.overflows(0, 10));
        // Thresholds 0 and 1 behave as the degenerate ends.
        let zero = FailurePolicy {
            quarantine_threshold: 0.0,
            ..policy
        };
        assert!(zero.overflows(1, 10));
        assert!(!zero.overflows(0, 10));
        let one = FailurePolicy {
            quarantine_threshold: 1.0,
            ..policy
        };
        assert!(!one.overflows(10, 10));
        // Zero windows never overflow (nothing was attempted).
        assert!(!policy.overflows(0, 0));
    }

    #[test]
    fn stall_spec_parses_and_plans() {
        let s = InjectionSpec::parse("stall=1.0").unwrap();
        assert_eq!(s.stall, 1.0);
        assert_eq!(s.truncate, 0.0);
        let inj = Injector::new(s, 3);
        assert!((0..20).all(|t| inj.plan(t, 0) == Some(InjectedFault::Stall)));
        // The uniform split never includes stalls.
        let u = InjectionSpec::uniform(1.0);
        assert_eq!(u.stall, 0.0);
        assert_eq!(InjectedFault::Stall.name(), "stall");
        assert_eq!(FaultKind::Stalled.name(), "stalled");
    }

    #[test]
    fn wire_codes_round_trip() {
        for kind in [
            FaultKind::Truncated,
            FaultKind::EmptyHistogram,
            FaultKind::Degenerate,
            FaultKind::NonFiniteBin,
            FaultKind::HostIdOverflow,
            FaultKind::EmptySynthesizer,
            FaultKind::Panic,
            FaultKind::Stalled,
            FaultKind::BudgetUnrepresentable,
            FaultKind::ShardLost,
            FaultKind::WorkerLost,
            FaultKind::LeaseExpired,
            FaultKind::LeaseFenced,
            FaultKind::RangeOrphaned,
            FaultKind::DispatchStalled,
        ] {
            assert_eq!(FaultKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(FaultKind::from_code(250), None);
        for outcome in [
            WindowOutcome::Recovered,
            WindowOutcome::Quarantined,
            WindowOutcome::Substituted,
            WindowOutcome::Aborted,
        ] {
            assert_eq!(WindowOutcome::from_code(outcome.code()), Some(outcome));
        }
        assert_eq!(WindowOutcome::from_code(9), None);
    }

    #[test]
    fn report_starts_clean() {
        let r = FaultReport::new(8);
        assert!(r.is_clean());
        assert_eq!(r.windows, 8);
        assert_eq!(r.survivors, 8);
        assert_eq!(r.quarantined, 0);
    }

    #[test]
    fn pipeline_errors_display() {
        let e = PipelineError::WindowAborted {
            window: 3,
            attempts: 2,
            fault: WindowFault::EmptyHistogram,
        };
        let msg = e.to_string();
        assert!(msg.contains("window 3"), "{msg}");
        assert!(msg.contains("2 attempt"), "{msg}");
        assert!(PipelineError::ZeroWindows.to_string().contains("zero"));
        let q = PipelineError::QuarantineOverflow {
            quarantined: 5,
            windows: 8,
            threshold: 0.25,
        };
        assert!(q.to_string().contains("5 of 8"), "{q}");
    }
}
