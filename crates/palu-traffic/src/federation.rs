//! Federated observatories: fault-tolerant sharded capture with
//! hierarchical journal merge (DESIGN.md §4j).
//!
//! Real trunk measurement aggregates many sensors — the MAWI/CAIDA
//! methodology pools per-link collectors, and hypersparse traffic
//! analysis distributes capture across nodes under per-node
//! envelopes. This module generalizes the single-process pipeline the
//! same way: a capture of `W` windows is split by a [`ShardPlan`]
//! into `N` disjoint contiguous window ranges over the *same*
//! `SeedSequence`, each shard running the ordinary durable/governed
//! engine ([`capture_shard`]) with its own journal and budget, and
//! the shard journals are then merged hierarchically
//! ([`merge_shard_journals`]) through the exact window-ordered fold
//! the engines use internally.
//!
//! **Bit-identity.** Window `t`'s state is a pure function of the
//! capture identity (seed, `N_V`, fingerprinted parameters) — never
//! of which process computed it — and journal records round-trip
//! results as raw IEEE-754 bits. Folding the union of shard entries
//! in strict window order therefore replays the exact statement
//! sequence of a single-process merge, so a federated merge of clean
//! shards is **bit-identical to a single-process run** at any shard
//! and thread count.
//!
//! **Fault tolerance.** Shards die, stall, and corrupt
//! independently. Every way a shard can fail is a typed
//! [`ShardFault`]; a failed shard quarantines (its windows are folded
//! as [`FaultKind::ShardLost`] quarantine records, so the pooled
//! report recounts them exactly) while identity skew — a shard
//! journal captured under a different seed, version, or parameter
//! fingerprint — is a *hard refusal* ([`FederationError::IdentitySkew`]):
//! splicing incompatible captures would silently bias the fitted
//! exponents. The merge proceeds only while at least `min_coverage`
//! of the windows survive; below that it refuses with
//! [`FederationError::Coverage`]. Missing windows can instead be
//! *re-captured* deterministically (the same fresh-seed retry streams
//! as crash recovery) by supplying an observatory to
//! [`merge_shard_journals`], which recomputes exactly the complement
//! of the journaled union.

use crate::budget::Governor;
use crate::fault::{FailurePolicy, FaultKind, Injector, PipelineError, WindowOutcome};
use crate::journal::{Journal, JournalFault, JournalHeader, Recovery, WindowEntry};
use crate::metrics::{time_stage, Metrics, Stage};
use crate::observatory::Observatory;
use crate::pipeline::{FaultTolerantPool, Measurement, MergeAcc, Pipeline, WindowSlot};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// How a capture of `windows` windows is split across `shards`
/// cooperating processes: shard `i` owns a contiguous window range,
/// ranges are disjoint, and their union covers `0..windows` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    windows: u64,
    shards: u64,
}

impl ShardPlan {
    /// A balanced plan: every shard gets `windows / shards` windows
    /// and the first `windows % shards` shards get one extra.
    ///
    /// # Errors
    ///
    /// [`FederationError::BadPlan`] when `windows` or `shards` is
    /// zero, or there are more shards than windows (an empty shard
    /// could never journal anything and would always read as lost).
    pub fn new(windows: u64, shards: u64) -> Result<ShardPlan, FederationError> {
        if windows == 0 || shards == 0 || shards > windows {
            return Err(FederationError::BadPlan { windows, shards });
        }
        Ok(ShardPlan { windows, shards })
    }

    /// Total windows in the federated capture.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Number of shards the capture is split into.
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// The window range shard `shard` owns; `None` when the index is
    /// outside the plan.
    pub fn shard_range(&self, shard: u64) -> Option<ShardRange> {
        if shard >= self.shards {
            return None;
        }
        let base = self.windows / self.shards;
        let extra = self.windows % self.shards;
        let lo = shard * base + shard.min(extra);
        let len = base + u64::from(shard < extra);
        Some(ShardRange {
            shard,
            lo,
            hi: lo + len,
        })
    }

    /// Every shard's range, in shard order — the dispatcher iterates
    /// this to seed its lease table.
    pub fn ranges(&self) -> impl Iterator<Item = ShardRange> + '_ {
        (0..self.shards).filter_map(|shard| self.shard_range(shard))
    }
}

/// One shard's contiguous half-open window range `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// The owning shard's index.
    pub shard: u64,
    /// First window (inclusive).
    pub lo: u64,
    /// Past-the-end window (exclusive).
    pub hi: u64,
}

impl ShardRange {
    /// Number of windows in the range.
    pub fn window_count(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether window `t` belongs to this shard.
    pub fn owns(&self, t: u64) -> bool {
        (self.lo..self.hi).contains(&t)
    }
}

/// Every way one shard can fail without poisoning the merge. Each
/// variant carries exact window counts so the fault report's
/// arithmetic is checkable. Identity skew is deliberately *not* here
/// — it is a hard [`FederationError::IdentitySkew`] refusal, never a
/// quarantine.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardFault {
    /// The shard's journal file could not be read at all (never
    /// started, died before the atomic header write, or the file was
    /// lost). The whole shard quarantines.
    MissingJournal {
        /// The failed shard.
        shard: u64,
        /// Path that could not be read.
        path: String,
        /// The OS error.
        message: String,
    },
    /// The shard's journal ends in a torn record — the signature of a
    /// mid-append kill. The intact prefix is merged; only the torn
    /// tail is dropped.
    TornTail {
        /// The killed shard.
        shard: u64,
        /// Torn records dropped (0 or 1 by journal construction).
        records_dropped: u64,
        /// Bytes dropped with the torn tail.
        bytes_dropped: u64,
    },
    /// The shard's journal is corrupt (checksum-failed record, not a
    /// journal, malformed body) — unlike a torn tail this cannot be
    /// crash residue, so nothing from the shard is trusted and the
    /// whole shard quarantines.
    Corrupt {
        /// The corrupt shard.
        shard: u64,
        /// The underlying typed journal refusal.
        fault: JournalFault,
    },
    /// The shard journaled windows outside its assigned range
    /// (overlap with a neighbor's range). The trespassing entries are
    /// dropped — each window is taken only from its owner, keeping
    /// the union deterministic.
    RangeViolation {
        /// The trespassing shard.
        shard: u64,
        /// How many out-of-range windows it journaled.
        windows: u64,
        /// The first out-of-range window index.
        first_window: u64,
    },
    /// The shard's journal is valid but covers fewer windows than its
    /// assigned range — it stalled or died mid-capture and was not
    /// re-captured.
    RangeGap {
        /// The incomplete shard.
        shard: u64,
        /// Assigned windows with no journaled entry.
        missing: u64,
    },
    /// The shard's own capture classified windows as stalled (the
    /// per-window deadline watchdog fired); surfaced per shard so a
    /// consistently slow sensor is visible in the roll-up.
    Stalled {
        /// The slow shard.
        shard: u64,
        /// Windows whose journaled fault record is `Stalled`.
        windows: u64,
    },
    /// Two *distinct* shard journals claim the identical journaled
    /// window span under the same capture fingerprint — a
    /// mis-specified shard list (e.g. a stale copy of the same shard
    /// submitted alongside a fresh one). Byte-identical duplicates are
    /// deduplicated silently instead; this fault is raised only when
    /// the contents disagree, and it is a hard
    /// [`FederationError::Overlap`] refusal, never a quarantine.
    OverlappingRange {
        /// The later of the two clashing shard-list positions.
        shard: u64,
        /// The earlier clashing shard-list position.
        other_shard: u64,
        /// First window of the contested span (inclusive).
        lo: u64,
        /// Last window of the contested span (inclusive).
        hi: u64,
    },
}

impl ShardFault {
    /// The shard this fault belongs to.
    pub fn shard(&self) -> u64 {
        match self {
            ShardFault::MissingJournal { shard, .. }
            | ShardFault::TornTail { shard, .. }
            | ShardFault::Corrupt { shard, .. }
            | ShardFault::RangeViolation { shard, .. }
            | ShardFault::RangeGap { shard, .. }
            | ShardFault::Stalled { shard, .. }
            | ShardFault::OverlappingRange { shard, .. } => *shard,
        }
    }

    /// Stable lowercase name, used as a JSON label.
    pub fn name(&self) -> &'static str {
        match self {
            ShardFault::MissingJournal { .. } => "missing_journal",
            ShardFault::TornTail { .. } => "torn_tail",
            ShardFault::Corrupt { .. } => "corrupt",
            ShardFault::RangeViolation { .. } => "range_violation",
            ShardFault::RangeGap { .. } => "range_gap",
            ShardFault::Stalled { .. } => "stalled",
            ShardFault::OverlappingRange { .. } => "overlapping_range",
        }
    }
}

impl std::fmt::Display for ShardFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardFault::MissingJournal {
                shard,
                path,
                message,
            } => write!(f, "shard {shard}: journal {path} unreadable: {message}"),
            ShardFault::TornTail {
                shard,
                records_dropped,
                bytes_dropped,
            } => write!(
                f,
                "shard {shard}: torn tail ({records_dropped} record(s), \
                 {bytes_dropped} byte(s) dropped)"
            ),
            ShardFault::Corrupt { shard, fault } => {
                write!(f, "shard {shard}: corrupt journal: {fault}")
            }
            ShardFault::RangeViolation {
                shard,
                windows,
                first_window,
            } => write!(
                f,
                "shard {shard}: {windows} window(s) outside its assigned range \
                 (first: window {first_window}) — dropped"
            ),
            ShardFault::RangeGap { shard, missing } => {
                write!(
                    f,
                    "shard {shard}: {missing} assigned window(s) not journaled"
                )
            }
            ShardFault::Stalled { shard, windows } => {
                write!(
                    f,
                    "shard {shard}: {windows} window(s) hit the stall deadline"
                )
            }
            ShardFault::OverlappingRange {
                shard,
                other_shard,
                lo,
                hi,
            } => write!(
                f,
                "shard-list entries {other_shard} and {shard} both journal windows \
                 [{lo}, {hi}] with differing contents — overlapping shard ranges, \
                 refusing to merge an ambiguous shard list"
            ),
        }
    }
}

impl std::error::Error for ShardFault {}

/// Typed federation failure taxonomy: what can stop a sharded
/// capture or a merge outright (shard-local trouble becomes a
/// [`ShardFault`] instead).
#[derive(Debug, Clone, PartialEq)]
pub enum FederationError {
    /// The shard plan is not satisfiable (zero windows/shards, or
    /// more shards than windows).
    BadPlan {
        /// Requested total windows.
        windows: u64,
        /// Requested shard count.
        shards: u64,
    },
    /// A shard index outside the plan was addressed.
    BadShardIndex {
        /// The out-of-range index.
        shard: u64,
        /// Shards in the plan.
        shards: u64,
    },
    /// `min_coverage` outside `[0, 1]` (or NaN).
    BadCoverage {
        /// The rejected threshold.
        min_coverage: f64,
    },
    /// A merge was requested with no shard journals at all.
    NoJournals,
    /// A shard journal's identity (seed, version, or parameter
    /// fingerprint) does not match the merge's expected header. Hard
    /// refusal: splicing incompatible captures would bias the pooled
    /// fit, so no quarantine/coverage machinery applies.
    IdentitySkew {
        /// The skewed shard.
        shard: u64,
        /// The underlying typed journal refusal (a fingerprint skew
        /// names the exact parameter that differed).
        fault: JournalFault,
    },
    /// Fewer windows were accounted for (journaled by a surviving
    /// shard or re-captured) than the coverage threshold tolerates.
    Coverage {
        /// Windows with a known outcome.
        covered: u64,
        /// Total windows in the plan.
        windows: u64,
        /// The minimum surviving fraction required.
        min_coverage: f64,
    },
    /// Two distinct shard journals claim the identical window span
    /// (see [`ShardFault::OverlappingRange`]). The shard list is
    /// ambiguous, so the merge refuses outright.
    Overlap(ShardFault),
    /// The underlying capture/merge pipeline failed.
    Pipeline(PipelineError),
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::BadPlan { windows, shards } => write!(
                f,
                "unsatisfiable shard plan: {shards} shard(s) over {windows} window(s)"
            ),
            FederationError::BadShardIndex { shard, shards } => {
                write!(f, "shard index {shard} outside a {shards}-shard plan")
            }
            FederationError::BadCoverage { min_coverage } => {
                write!(f, "min coverage {min_coverage} outside [0, 1]")
            }
            FederationError::NoJournals => write!(f, "no shard journals to merge"),
            FederationError::IdentitySkew { shard, fault } => {
                write!(f, "shard {shard}: identity skew — {fault}")
            }
            FederationError::Coverage {
                covered,
                windows,
                min_coverage,
            } => write!(
                f,
                "coverage below threshold: {covered}/{windows} window(s) accounted for, \
                 minimum coverage is {min_coverage} — refusing to pool an \
                 unrepresentative capture"
            ),
            FederationError::Overlap(fault) => write!(f, "{fault}"),
            FederationError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FederationError {}

impl From<PipelineError> for FederationError {
    fn from(e: PipelineError) -> Self {
        FederationError::Pipeline(e)
    }
}

/// Per-shard accounting in the merge roll-up. All counts are in
/// windows; `journaled = accepted + out-of-range drops`, and
/// `accepted + missing` equals the shard's assigned range.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: u64,
    /// First assigned window (inclusive).
    pub lo: u64,
    /// Past-the-end assigned window (exclusive).
    pub hi: u64,
    /// Entries found in the shard's journal.
    pub journaled: u64,
    /// In-range entries merged.
    pub accepted: u64,
    /// Accepted entries carrying a result.
    pub survivors: u64,
    /// Accepted entries quarantined at capture time.
    pub quarantined: u64,
    /// Faults injected into the shard's attempts (from its entries).
    pub injected: u64,
    /// Retries the shard's windows consumed.
    pub retries: u64,
    /// Accepted entries whose fault record is `Stalled`.
    pub stalled: u64,
    /// Assigned windows with no accepted entry.
    pub missing: u64,
    /// Torn records dropped from the journal tail.
    pub torn_records_dropped: u64,
    /// Bytes dropped with the shard's torn tail.
    pub torn_bytes_dropped: u64,
    /// Whether the whole shard quarantined (missing or corrupt
    /// journal: nothing from it was merged).
    pub quarantined_shard: bool,
}

/// The federation-level roll-up accompanying a merged pool: shard
/// reports, the typed fault list, and the coverage arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationReport {
    /// Total windows in the plan.
    pub windows: u64,
    /// Windows with an accepted journal entry across all shards.
    pub covered: u64,
    /// Windows no surviving shard delivered (`windows - covered`).
    pub missing: u64,
    /// Missing windows recomputed by the re-capture path (0 on a
    /// journal-only merge).
    pub recaptured: u64,
    /// Windows contributing results to the pooled output.
    pub survivors: u64,
    /// The coverage threshold the merge was held to.
    pub min_coverage: f64,
    /// Rounds of pairwise journal union (`ceil(log2(shards))`).
    pub merge_levels: u64,
    /// Byte-identical duplicate journals dropped by the exact-dup
    /// pass before planning (the same shard path listed twice).
    pub duplicates_removed: u64,
    /// Per-shard accounting, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// Every typed shard fault observed, in shard order.
    pub faults: Vec<ShardFault>,
}

/// A federated merge's outcome: the pooled result (indistinguishable
/// from a single-process [`FaultTolerantPool`]) plus the federation
/// roll-up.
#[derive(Debug, Clone)]
pub struct FederatedMerge {
    /// The merged pool; bit-identical to a single-process run when
    /// every window survived.
    pub pool: FaultTolerantPool,
    /// Shard-level accounting and faults.
    pub federation: FederationReport,
}

/// Run one shard of a federated capture: seek the observatory to the
/// shard's range and drive the ordinary durable/governed engine over
/// exactly that range. Window indices are *absolute*, so the shard's
/// journal carries the same header identity as a single-process
/// capture and a 1-shard capture is byte-compatible with `simulate`.
///
/// # Errors
///
/// [`FederationError::BadShardIndex`] for an index outside the plan,
/// [`FederationError::IdentitySkew`] when the supplied journal's
/// header disagrees with the plan's window count, and any
/// [`PipelineError`] from the underlying engine.
#[allow(clippy::too_many_arguments)]
pub fn capture_shard(
    measurement: Measurement,
    obs: &mut Observatory,
    plan: &ShardPlan,
    shard: u64,
    threads: usize,
    metrics: Option<&Metrics>,
    policy: &FailurePolicy,
    injector: Option<&Injector>,
    journal: Option<&Journal>,
    recovery: Option<&Recovery>,
    governor: Option<&Governor<'_>>,
) -> Result<FaultTolerantPool, FederationError> {
    let range = plan
        .shard_range(shard)
        .ok_or(FederationError::BadShardIndex {
            shard,
            shards: plan.shards,
        })?;
    if let Some(j) = journal {
        if j.header().windows != plan.windows {
            return Err(FederationError::IdentitySkew {
                shard,
                fault: JournalFault::ConfigMismatch {
                    field: "windows".to_string(),
                    journal: j.header().windows.to_string(),
                    run: plan.windows.to_string(),
                },
            });
        }
    }
    let n = usize::try_from(range.window_count()).map_err(|_| FederationError::BadPlan {
        windows: plan.windows,
        shards: plan.shards,
    })?;
    obs.seek(range.lo);
    Pipeline::pool_observatory_governed(
        measurement,
        obs,
        n,
        threads,
        metrics,
        policy,
        injector,
        journal,
        recovery,
        governor,
    )
    .map_err(FederationError::Pipeline)
}

/// One shard journal's scan outcome: the accepted in-range entries
/// plus the shard's accounting row.
struct ShardLoad {
    entries: BTreeMap<u64, WindowEntry>,
    report: ShardReport,
}

/// Classify one shard journal's pre-scanned recovery and keep only
/// the entries inside the shard's assigned range. Identity skew is
/// the only hard error; everything else degrades into
/// [`ShardFault`]s. The scan itself happens up front (see
/// [`scan_journals`]) so the duplicate/overlap pre-pass and the
/// per-shard load read each journal exactly once.
fn load_shard(
    path: &Path,
    recovered: Result<Recovery, JournalFault>,
    range: &ShardRange,
    faults: &mut Vec<ShardFault>,
) -> Result<ShardLoad, FederationError> {
    let shard = range.shard;
    let mut report = ShardReport {
        shard,
        lo: range.lo,
        hi: range.hi,
        ..ShardReport::default()
    };
    let recovery = match recovered {
        Ok(rec) => rec,
        Err(fault @ JournalFault::Io { .. }) => {
            let message = fault.to_string();
            faults.push(ShardFault::MissingJournal {
                shard,
                path: path.display().to_string(),
                message,
            });
            report.missing = range.window_count();
            report.quarantined_shard = true;
            return Ok(ShardLoad {
                entries: BTreeMap::new(),
                report,
            });
        }
        Err(
            fault @ (JournalFault::SeedMismatch { .. }
            | JournalFault::ConfigMismatch { .. }
            | JournalFault::VersionSkew { .. }),
        ) => {
            return Err(FederationError::IdentitySkew { shard, fault });
        }
        Err(fault) => {
            // NotAJournal / ChecksumMismatch / Malformed: corruption,
            // not crash residue — trust nothing from this shard.
            faults.push(ShardFault::Corrupt { shard, fault });
            report.missing = range.window_count();
            report.quarantined_shard = true;
            return Ok(ShardLoad {
                entries: BTreeMap::new(),
                report,
            });
        }
    };
    if recovery.torn_records_dropped > 0 {
        faults.push(ShardFault::TornTail {
            shard,
            records_dropped: recovery.torn_records_dropped,
            bytes_dropped: recovery.torn_bytes_dropped,
        });
        report.torn_records_dropped = recovery.torn_records_dropped;
        report.torn_bytes_dropped = recovery.torn_bytes_dropped;
    }
    report.journaled = recovery.windows.len() as u64;
    let mut entries = BTreeMap::new();
    let mut violations = 0u64;
    let mut first_violation = None;
    for (window, entry) in recovery.windows {
        if !range.owns(window) {
            violations += 1;
            if first_violation.is_none() {
                first_violation = Some(window);
            }
            continue;
        }
        report.accepted += 1;
        report.injected += entry.injected;
        report.retries += entry.retries;
        if entry.result.is_some() {
            report.survivors += 1;
        }
        if let Some(rec) = &entry.record {
            if rec.outcome == WindowOutcome::Quarantined {
                report.quarantined += 1;
            }
            if rec.kind == FaultKind::Stalled {
                report.stalled += 1;
            }
        }
        entries.insert(window, entry);
    }
    if let Some(first_window) = first_violation {
        faults.push(ShardFault::RangeViolation {
            shard,
            windows: violations,
            first_window,
        });
    }
    report.missing = range.window_count() - report.accepted;
    if report.missing > 0 {
        faults.push(ShardFault::RangeGap {
            shard,
            missing: report.missing,
        });
    }
    if report.stalled > 0 {
        faults.push(ShardFault::Stalled {
            shard,
            windows: report.stalled,
        });
    }
    Ok(ShardLoad { entries, report })
}

/// Pairwise hierarchical union of per-shard entry maps: each round
/// merges neighbors, halving the list, until one map remains.
/// Returns the union and the number of merge levels
/// (`ceil(log2(shards))`). Disjoint shard ranges make the union
/// conflict-free; `BTreeMap` keeps every round deterministically
/// window-ordered.
fn hierarchical_union(
    mut maps: Vec<BTreeMap<u64, WindowEntry>>,
) -> (BTreeMap<u64, WindowEntry>, u64) {
    let mut levels = 0u64;
    while maps.len() > 1 {
        levels += 1;
        let mut next = Vec::with_capacity(maps.len().div_ceil(2));
        let mut iter = maps.into_iter();
        while let Some(mut a) = iter.next() {
            if let Some(b) = iter.next() {
                a.extend(b);
            }
            next.push(a);
        }
        maps = next;
    }
    (maps.pop().unwrap_or_default(), levels)
}

/// Fold the merged entries through the engines' window-ordered merge
/// accumulator. Windows nobody delivered fold as synthetic
/// [`FaultKind::ShardLost`] quarantine records, so the pooled report
/// recounts lost windows through the exact same arithmetic as
/// capture-time quarantines. The quarantine gate is the merge's
/// `min_coverage` (checked by the caller), so the fold itself runs
/// under a fully permissive policy.
pub(crate) fn merge_entries(
    measurement: Measurement,
    n: usize,
    entries: &BTreeMap<u64, WindowEntry>,
    metrics: Option<&Metrics>,
) -> Result<FaultTolerantPool, FederationError> {
    let mut acc = MergeAcc::new(measurement, n);
    time_stage(metrics, Stage::Merge, || {
        for w in 0..n as u64 {
            match entries.get(&w) {
                Some(entry) => acc.fold(WindowSlot::from_entry(entry)),
                None => acc.fold(WindowSlot::shard_lost(w)),
            }
        }
    });
    acc.finish(&FailurePolicy::quarantine(0), n, metrics)
        .map_err(FederationError::Pipeline)
}

/// Whether `covered` out of `windows` meets the coverage threshold.
/// Mirrors [`FailurePolicy::overflows`]: the fraction is compared
/// directly (exact equality *passes*) so a merge sitting exactly on
/// the boundary is not refused by float rounding. Coverage counts
/// windows with a *known outcome* (journaled by a surviving shard or
/// re-captured) — a window the shard itself quarantined under its own
/// failure policy is accounted data, not federation loss.
pub(crate) fn covers(covered: u64, windows: u64, min_coverage: f64) -> bool {
    if windows == 0 {
        return true;
    }
    covered as f64 / windows as f64 >= min_coverage
}

/// One journal path's up-front scan: the raw read outcome plus the
/// recovered state, read exactly once and reused by both the
/// duplicate/overlap pre-pass and the per-shard load.
struct Scanned {
    path: PathBuf,
    recovered: Result<Recovery, JournalFault>,
}

/// Read and scan every journal path once, dropping byte-identical
/// duplicates (the same shard journal listed twice — previously
/// silently accepted, splitting the plan across two copies of one
/// range) and refusing *non*-identical journals that claim the same
/// journaled window span ([`ShardFault::OverlappingRange`]): same
/// span + same fingerprint but different bytes means a stale or
/// diverged copy, and merging either arbitrarily would be silent
/// data loss.
fn scan_journals(
    paths: &[PathBuf],
    expect: &JournalHeader,
) -> Result<(Vec<Scanned>, u64), FederationError> {
    let mut kept: Vec<(Option<Vec<u8>>, Scanned)> = Vec::with_capacity(paths.len());
    let mut duplicates_removed = 0u64;
    for path in paths {
        let blob = std::fs::read(path).map_err(|e| JournalFault::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        });
        match blob {
            Ok(bytes) => {
                if kept
                    .iter()
                    .any(|(b, _)| b.as_deref().is_some_and(|prev| prev == bytes.as_slice()))
                {
                    duplicates_removed += 1;
                    continue;
                }
                let recovered = Journal::recover_bytes(&bytes, expect);
                kept.push((
                    Some(bytes),
                    Scanned {
                        path: path.clone(),
                        recovered,
                    },
                ));
            }
            Err(fault) => kept.push((
                None,
                Scanned {
                    path: path.clone(),
                    recovered: Err(fault),
                },
            )),
        }
    }
    // Overlap refusal: two kept (hence non-identical) journals whose
    // journaled spans coincide exactly. Partial overlaps stay with
    // the tolerant RangeViolation path — a shard journaling a
    // neighbor's window is dropped entry-by-entry, not refused.
    let spans: Vec<Option<(u64, u64)>> = kept
        .iter()
        .map(|(_, s)| match &s.recovered {
            Ok(rec) => {
                let lo = rec.windows.keys().next().copied();
                let hi = rec.windows.keys().next_back().copied();
                lo.zip(hi)
            }
            Err(_) => None,
        })
        .collect();
    for (i, a) in spans.iter().enumerate() {
        let Some((lo, hi)) = a else { continue };
        for (j, b) in spans.iter().enumerate().skip(i + 1) {
            if b == a {
                return Err(FederationError::Overlap(ShardFault::OverlappingRange {
                    shard: j as u64,
                    other_shard: i as u64,
                    lo: *lo,
                    hi: *hi,
                }));
            }
        }
    }
    Ok((
        kept.into_iter().map(|(_, s)| s).collect(),
        duplicates_removed,
    ))
}

/// Merge `paths.len()` shard journals into one pooled result.
///
/// `paths[i]` is shard `i` of a balanced [`ShardPlan`] over
/// `expect.windows` windows (after the exact-duplicate pass: a
/// byte-identical journal listed twice counts once). Each journal is
/// scanned read-only ([`Journal::recover_bytes`]); shard failures
/// degrade into typed [`ShardFault`]s (the shard's windows quarantine
/// as [`FaultKind::ShardLost`]) while identity skew hard-refuses. With
/// `recapture` supplied, the missing windows are instead *recomputed*
/// deterministically by driving the durable engine over the full
/// range with the journaled union as recovery — only the complement
/// runs, and the result is bit-identical to an uninterrupted
/// single-process capture. The merge must end with at least
/// `min_coverage` of the windows surviving, else
/// [`FederationError::Coverage`].
///
/// # Errors
///
/// [`FederationError::NoJournals`] / [`FederationError::BadPlan`] /
/// [`FederationError::BadCoverage`] on unsatisfiable requests,
/// [`FederationError::IdentitySkew`] on any shard identity mismatch,
/// [`FederationError::Coverage`] below the threshold, and
/// [`FederationError::Pipeline`] from the re-capture engine.
#[allow(clippy::too_many_arguments)]
pub fn merge_shard_journals(
    measurement: Measurement,
    expect: &JournalHeader,
    paths: &[PathBuf],
    policy: &FailurePolicy,
    min_coverage: f64,
    threads: usize,
    injector: Option<&Injector>,
    recapture: Option<&mut Observatory>,
    metrics: Option<&Metrics>,
) -> Result<FederatedMerge, FederationError> {
    if paths.is_empty() {
        return Err(FederationError::NoJournals);
    }
    if !(0.0..=1.0).contains(&min_coverage) {
        return Err(FederationError::BadCoverage { min_coverage });
    }
    let (scanned, duplicates_removed) = scan_journals(paths, expect)?;
    if scanned.is_empty() {
        return Err(FederationError::NoJournals);
    }
    let plan = ShardPlan::new(expect.windows, scanned.len() as u64)?;
    let n = usize::try_from(expect.windows).map_err(|_| FederationError::BadPlan {
        windows: expect.windows,
        shards: plan.shards,
    })?;
    let mut faults = Vec::new();
    let mut shard_maps = Vec::with_capacity(scanned.len());
    let mut shard_reports = Vec::with_capacity(scanned.len());
    for (i, scan) in scanned.into_iter().enumerate() {
        let shard = i as u64;
        let range = plan
            .shard_range(shard)
            .ok_or(FederationError::BadShardIndex {
                shard,
                shards: plan.shards,
            })?;
        let load = load_shard(&scan.path, scan.recovered, &range, &mut faults)?;
        shard_maps.push(load.entries);
        shard_reports.push(load.report);
    }
    let (combined, merge_levels) = hierarchical_union(shard_maps);
    let covered = combined.len() as u64;
    let missing = expect.windows - covered;
    let (pool, recaptured) = match recapture {
        Some(obs) if missing > 0 => {
            // Re-capture exactly the complement: the union becomes a
            // recovery set and the ordinary durable engine recomputes
            // only the windows it does not cover, drawing from the
            // same per-(window, attempt) seed streams as the original
            // shards would have.
            let recovery = Recovery {
                windows: combined,
                bytes_replayed: 0,
                torn_bytes_dropped: 0,
                torn_records_dropped: 0,
            };
            obs.seek(0);
            let pool = Pipeline::pool_observatory_durable(
                measurement,
                obs,
                n,
                threads,
                metrics,
                policy,
                injector,
                None,
                Some(&recovery),
            )
            .map_err(FederationError::Pipeline)?;
            (pool, missing)
        }
        _ => (merge_entries(measurement, n, &combined, metrics)?, 0),
    };
    let known = covered + recaptured;
    if !covers(known, expect.windows, min_coverage) {
        return Err(FederationError::Coverage {
            covered: known,
            windows: expect.windows,
            min_coverage,
        });
    }
    let survivors = pool.report.survivors;
    Ok(FederatedMerge {
        pool,
        federation: FederationReport {
            windows: expect.windows,
            covered,
            missing,
            recaptured,
            survivors,
            min_coverage,
            merge_levels,
            duplicates_removed,
            shards: shard_reports,
            faults,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use palu_stats::logbin::DifferentialCumulative;
    use palu_stats::summary::BinStats;

    fn plan(windows: u64, shards: u64) -> ShardPlan {
        ShardPlan::new(windows, shards).unwrap()
    }

    #[test]
    fn shard_plan_partitions_exactly() {
        for (windows, shards) in [(16u64, 4u64), (17, 4), (5, 5), (64, 3), (1, 1)] {
            let p = plan(windows, shards);
            let mut next = 0u64;
            for s in 0..shards {
                let r = p.shard_range(s).unwrap();
                assert_eq!(r.lo, next, "{windows}w/{shards}s shard {s}");
                assert!(r.hi > r.lo);
                next = r.hi;
            }
            assert_eq!(next, windows, "{windows}w/{shards}s covers all windows");
            // Balanced: sizes differ by at most one.
            let sizes: Vec<u64> = (0..shards)
                .map(|s| p.shard_range(s).unwrap().window_count())
                .collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "{sizes:?}");
        }
        assert!(plan(16, 4).shard_range(4).is_none());
        assert!(ShardPlan::new(3, 4).is_err());
        assert!(ShardPlan::new(0, 1).is_err());
        assert!(ShardPlan::new(4, 0).is_err());
    }

    fn entry(window: u64) -> WindowEntry {
        let mut stats = BinStats::new();
        stats.push(&DifferentialCumulative::from_values(vec![0.5, 0.25, 0.25]));
        WindowEntry {
            window,
            injected: 0,
            retries: 0,
            record: None,
            result: Some(crate::journal::WindowResult {
                stats,
                d_max: Some(3 + window),
                histogram: palu_stats::histogram::DegreeHistogram::from_counts([
                    (1, 4),
                    (3 + window, 1),
                ]),
            }),
        }
    }

    fn header(windows: u64) -> JournalHeader {
        JournalHeader::with_params(5, 50, windows, vec!["lambda=2".to_string()])
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("palu-federation-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_shard(
        name: &str,
        h: &JournalHeader,
        windows: impl IntoIterator<Item = u64>,
    ) -> PathBuf {
        let path = temp_path(name);
        let j = Journal::create(&path, h.clone()).unwrap();
        for w in windows {
            j.append(&entry(w)).unwrap();
        }
        path
    }

    #[test]
    fn hierarchical_union_counts_levels() {
        let maps: Vec<BTreeMap<u64, WindowEntry>> = (0..4)
            .map(|s| {
                let mut m = BTreeMap::new();
                m.insert(s, entry(s));
                m
            })
            .collect();
        let (combined, levels) = hierarchical_union(maps);
        assert_eq!(combined.len(), 4);
        assert_eq!(levels, 2);
        let (single, levels) = hierarchical_union(vec![BTreeMap::new()]);
        assert!(single.is_empty());
        assert_eq!(levels, 0);
    }

    #[test]
    fn missing_shard_quarantines_and_coverage_gates() {
        let h = header(8);
        let a = write_shard("cov_a.journal", &h, 0..4);
        let missing = temp_path("cov_missing.journal");
        let _ = std::fs::remove_file(&missing);
        // Exactly at threshold: 4/8 survive, min 0.5 passes.
        let merged = merge_shard_journals(
            Measurement::UndirectedDegree,
            &h,
            &[a.clone(), missing.clone()],
            &FailurePolicy::quarantine(0),
            0.5,
            1,
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(merged.federation.covered, 4);
        assert_eq!(merged.federation.missing, 4);
        assert_eq!(merged.federation.survivors, 4);
        assert_eq!(merged.pool.report.quarantined, 4);
        assert!(merged
            .federation
            .faults
            .iter()
            .any(|f| matches!(f, ShardFault::MissingJournal { shard: 1, .. })));
        let lost: Vec<u64> = merged
            .pool
            .report
            .records
            .iter()
            .filter(|r| r.kind == FaultKind::ShardLost)
            .map(|r| r.window)
            .collect();
        assert_eq!(lost, vec![4, 5, 6, 7]);
        // One window above the surviving fraction refuses.
        let err = merge_shard_journals(
            Measurement::UndirectedDegree,
            &h,
            &[a, missing],
            &FailurePolicy::quarantine(0),
            0.625,
            1,
            None,
            None,
            None,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                FederationError::Coverage {
                    covered: 4,
                    windows: 8,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn identity_skew_is_a_hard_refusal() {
        let h = header(4);
        let skewed = JournalHeader::with_params(5, 50, 4, vec!["lambda=3".to_string()]);
        let a = write_shard("skew_a.journal", &h, 0..2);
        let b = write_shard("skew_b.journal", &skewed, 2..4);
        let err = merge_shard_journals(
            Measurement::UndirectedDegree,
            &h,
            &[a, b],
            &FailurePolicy::quarantine(0),
            0.0,
            1,
            None,
            None,
            None,
        )
        .unwrap_err();
        match err {
            FederationError::IdentitySkew {
                shard: 1,
                fault:
                    JournalFault::ConfigMismatch {
                        field,
                        journal,
                        run,
                    },
            } => {
                assert_eq!(field, "lambda");
                assert_eq!(journal, "3");
                assert_eq!(run, "2");
            }
            other => panic!("expected identity skew naming lambda, got {other:?}"),
        }
    }

    #[test]
    fn range_violation_drops_trespassing_windows() {
        let h = header(8);
        // Shard 0 owns [0, 4) but journals window 5 as well.
        let a = write_shard("tres_a.journal", &h, vec![0, 1, 2, 3, 5]);
        let b = write_shard("tres_b.journal", &h, 4..8);
        let merged = merge_shard_journals(
            Measurement::UndirectedDegree,
            &h,
            &[a, b],
            &FailurePolicy::quarantine(0),
            1.0,
            1,
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(merged.federation.covered, 8);
        assert!(merged.federation.faults.iter().any(|f| matches!(
            f,
            ShardFault::RangeViolation {
                shard: 0,
                windows: 1,
                first_window: 5
            }
        )));
        assert_eq!(merged.federation.shards[0].journaled, 5);
        assert_eq!(merged.federation.shards[0].accepted, 4);
    }

    #[test]
    fn duplicate_journal_paths_dedupe_exactly() {
        let h = header(8);
        let a = write_shard("dedupe_a.journal", &h, 0..4);
        let b = write_shard("dedupe_b.journal", &h, 4..8);
        // The same shard journal listed twice used to split the plan
        // across two copies of one range; the exact-duplicate pass
        // collapses it back to a clean 2-shard merge.
        let merged = merge_shard_journals(
            Measurement::UndirectedDegree,
            &h,
            &[a.clone(), a.clone(), b],
            &FailurePolicy::quarantine(0),
            1.0,
            1,
            None,
            None,
            None,
        )
        .unwrap();
        assert_eq!(merged.federation.duplicates_removed, 1);
        assert_eq!(merged.federation.shards.len(), 2);
        assert_eq!(merged.federation.covered, 8);
        assert_eq!(merged.federation.missing, 0);
        assert!(merged.federation.faults.is_empty());
    }

    #[test]
    fn overlapping_non_identical_journals_refuse() {
        let h = header(8);
        let a = write_shard("overlap_a.journal", &h, 0..4);
        // A diverged copy of the same span: same windows, different
        // record contents (injected counter skewed).
        let path = temp_path("overlap_a_stale.journal");
        let j = Journal::create(&path, h.clone()).unwrap();
        for w in 0..4 {
            let mut e = entry(w);
            e.injected = 7;
            j.append(&e).unwrap();
        }
        let b = write_shard("overlap_b.journal", &h, 4..8);
        let err = merge_shard_journals(
            Measurement::UndirectedDegree,
            &h,
            &[a, path, b],
            &FailurePolicy::quarantine(0),
            0.0,
            1,
            None,
            None,
            None,
        )
        .unwrap_err();
        match err {
            FederationError::Overlap(ShardFault::OverlappingRange {
                shard,
                other_shard,
                lo,
                hi,
            }) => {
                assert_eq!((other_shard, shard), (0, 1));
                assert_eq!((lo, hi), (0, 3));
            }
            other => panic!("expected an overlapping-range refusal, got {other:?}"),
        }
    }

    #[test]
    fn bad_inputs_are_typed() {
        let h = header(4);
        assert!(matches!(
            merge_shard_journals(
                Measurement::UndirectedDegree,
                &h,
                &[],
                &FailurePolicy::quarantine(0),
                1.0,
                1,
                None,
                None,
                None,
            ),
            Err(FederationError::NoJournals)
        ));
        let a = write_shard("bad_a.journal", &h, 0..4);
        assert!(matches!(
            merge_shard_journals(
                Measurement::UndirectedDegree,
                &h,
                &[a],
                &FailurePolicy::quarantine(0),
                1.5,
                1,
                None,
                None,
                None,
            ),
            Err(FederationError::BadCoverage { .. })
        ));
    }
}
