//! Host-id anonymization.
//!
//! Public trunk captures (CAIDA, MAWI) anonymize addresses with a
//! keyed permutation before release; all of the paper's statistics are
//! invariant under that relabeling. The [`Anonymizer`] applies the same
//! step to synthetic streams — a deterministic keyed Feistel-style
//! permutation over the id space — and the tests verify the pipeline's
//! distributions really are relabeling-invariant.

use crate::packets::Packet;

/// A keyed bijective mapping over `u32` host ids.
///
/// Four rounds of a Feistel network on the 16+16-bit halves, keyed by
/// a 64-bit secret: a permutation of the full `u32` space, so distinct
/// hosts never collide.
#[derive(Debug, Clone, Copy)]
pub struct Anonymizer {
    round_keys: [u32; 4],
}

impl Anonymizer {
    /// Create an anonymizer from a secret key.
    pub fn new(key: u64) -> Self {
        // Derive four round keys by splitmix-style mixing.
        let mut keys = [0u32; 4];
        let mut state = key;
        for k in &mut keys {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            // Intentional truncation: the round key is the low 32 bits
            // of the splitmix-mixed state (masked to make that
            // explicit, not an accidental narrowing).
            *k = ((z ^ (z >> 31)) & 0xFFFF_FFFF) as u32;
        }
        Anonymizer { round_keys: keys }
    }

    /// Feistel round function: a 16-bit mix of the half and key.
    fn round(half: u16, key: u32) -> u16 {
        let x = (half as u32).wrapping_mul(0x9E3B).wrapping_add(key);
        // Lossless: after `>> 16` the value fits in 16 bits.
        ((x ^ (x >> 11)).wrapping_mul(0xC2B2_AE35) >> 16) as u16
    }

    /// Anonymize one host id (bijective).
    pub fn map(&self, id: u32) -> u32 {
        // Lossless halving: both shift and mask bound the value to 16
        // bits before the cast.
        let mut left = (id >> 16) as u16;
        let mut right = (id & 0xFFFF) as u16;
        for &k in &self.round_keys {
            let new_right = left ^ Self::round(right, k);
            left = right;
            right = new_right;
        }
        ((left as u32) << 16) | right as u32
    }

    /// Invert the mapping (reverse Feistel).
    pub fn unmap(&self, id: u32) -> u32 {
        let mut left = (id >> 16) as u16;
        let mut right = (id & 0xFFFF) as u16;
        for &k in self.round_keys.iter().rev() {
            let new_left = right ^ Self::round(left, k);
            right = left;
            left = new_left;
        }
        ((left as u32) << 16) | right as u32
    }

    /// Anonymize a packet (both endpoints).
    pub fn map_packet(&self, p: Packet) -> Packet {
        Packet {
            src: self.map(p.src),
            dst: self.map(p.dst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_bijective_on_samples() {
        let a = Anonymizer::new(0xFEED_FACE_CAFE_BEEF);
        let mut seen = std::collections::HashSet::new();
        for id in (0..2_000_000u32).step_by(7) {
            let m = a.map(id);
            assert!(seen.insert(m), "collision at {id}");
            assert_eq!(a.unmap(m), id, "roundtrip failed at {id}");
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Anonymizer::new(1);
        let b = Anonymizer::new(2);
        let diffs = (0..1000u32).filter(|&i| a.map(i) != b.map(i)).count();
        assert!(diffs > 990);
    }

    #[test]
    fn deterministic_per_key() {
        let a = Anonymizer::new(42);
        let b = Anonymizer::new(42);
        for id in 0..1000 {
            assert_eq!(a.map(id), b.map(id));
        }
    }

    #[test]
    fn packet_mapping_preserves_link_structure() {
        let a = Anonymizer::new(7);
        let p1 = Packet { src: 10, dst: 20 };
        let p2 = Packet { src: 10, dst: 30 };
        let m1 = a.map_packet(p1);
        let m2 = a.map_packet(p2);
        // Shared source stays shared.
        assert_eq!(m1.src, m2.src);
        assert_ne!(m1.dst, m2.dst);
    }

    #[test]
    fn statistics_are_relabel_invariant() {
        use crate::window::PacketWindow;
        let packets: Vec<Packet> = (0..500)
            .map(|i| Packet {
                src: i % 37,
                dst: (i * 7) % 53,
            })
            .collect();
        let anon = Anonymizer::new(99);
        let mapped: Vec<Packet> = packets.iter().map(|&p| anon.map_packet(p)).collect();
        let w1 = PacketWindow::from_packets(0, &packets);
        // Anonymized ids are sparse in u32, so the compacting
        // constructor re-labels them densely first.
        let w2 = PacketWindow::from_packets_compacted(0, &mapped).unwrap();
        // Aggregates identical.
        assert_eq!(w1.aggregates(), w2.aggregates());
        // All five quantity histograms identical.
        let q1 = w1.quantities();
        let q2 = w2.quantities();
        assert_eq!(q1.source_packets, q2.source_packets);
        assert_eq!(q1.source_fan_out, q2.source_fan_out);
        assert_eq!(q1.link_packets, q2.link_packets);
        assert_eq!(q1.destination_fan_in, q2.destination_fan_in);
        assert_eq!(q1.destination_packets, q2.destination_packets);
        // Undirected degrees identical.
        assert_eq!(
            w1.undirected_degree_histogram(),
            w2.undirected_degree_histogram()
        );
    }
}
