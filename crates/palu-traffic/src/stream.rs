//! Streaming window segmentation.
//!
//! Real observatories never hold a capture in memory: packets arrive
//! as an unbounded stream and are cut into fixed-`N_V` windows on the
//! fly ("at a given time t, N_V consecutive valid packets are
//! aggregated", Section II). [`WindowStream`] adapts any packet
//! iterator into an iterator of [`PacketWindow`]s with O(`N_V`)
//! memory, and [`StreamStats`] folds windows directly into pooled
//! statistics so arbitrarily long captures process in constant space.

use crate::metrics::{Metrics, Stage};
use crate::packets::Packet;
use crate::pipeline::{Measurement, Pipeline, PooledDistribution};
use crate::window::PacketWindow;
use palu_stats::logbin::DifferentialCumulative;

/// Iterator adapter: cuts a packet stream into consecutive
/// fixed-`N_V` windows. A trailing partial window (fewer than `N_V`
/// packets at stream end) is *discarded*, matching the paper's
/// same-`N_V` methodology.
pub struct WindowStream<I> {
    packets: I,
    n_v: usize,
    next_t: u64,
    buffer: Vec<Packet>,
}

impl<I: Iterator<Item = Packet>> WindowStream<I> {
    /// Wrap a packet iterator with window size `n_v ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n_v == 0`.
    pub fn new(packets: I, n_v: usize) -> Self {
        assert!(n_v > 0, "window size must be positive");
        WindowStream {
            packets,
            n_v,
            next_t: 0,
            buffer: Vec::with_capacity(palu_sparse::admitted_capacity(n_v)),
        }
    }
}

impl<I: Iterator<Item = Packet>> Iterator for WindowStream<I> {
    type Item = PacketWindow;

    fn next(&mut self) -> Option<PacketWindow> {
        self.buffer.clear();
        for p in self.packets.by_ref() {
            self.buffer.push(p);
            if self.buffer.len() == self.n_v {
                let t = self.next_t;
                self.next_t += 1;
                return Some(PacketWindow::from_packets(t, &self.buffer));
            }
        }
        None // stream ended mid-window: discard the partial window
    }
}

/// Constant-space pooled statistics over a packet stream: the full
/// Section II pipeline (window → pool → mean/σ) without ever holding
/// more than one window.
pub struct StreamStats {
    pipeline: Pipeline,
}

impl StreamStats {
    /// Create for one measurement.
    pub fn new(measurement: Measurement) -> Self {
        StreamStats {
            pipeline: Pipeline::new(measurement),
        }
    }

    /// Consume a packet stream, pooling every complete window.
    /// Returns the pooled `D(d_i) ± σ(d_i)`.
    pub fn consume<I: Iterator<Item = Packet>>(
        mut self,
        packets: I,
        n_v: usize,
    ) -> PooledDistribution {
        for window in WindowStream::new(packets, n_v) {
            self.pipeline.push_window(&window);
        }
        self.pipeline.finish()
    }

    /// [`StreamStats::consume`] with per-stage instrumentation: window
    /// assembly, histogram reduction, binning, and merge wall-times
    /// plus packet/window counters accumulate into `metrics`. (The
    /// synthesize stage belongs to the caller's packet iterator and is
    /// folded into the window-assembly time here.) The pooled result
    /// is identical to the uninstrumented path.
    pub fn consume_with_metrics<I: Iterator<Item = Packet>>(
        mut self,
        packets: I,
        n_v: usize,
        metrics: &Metrics,
    ) -> PooledDistribution {
        metrics.set_threads(1);
        let mut stream = WindowStream::new(packets, n_v);
        loop {
            let Some(window) = metrics.time(Stage::Window, || stream.next()) else {
                break;
            };
            metrics.add_windows(1);
            metrics.add_packets(window.n_v());
            let h = metrics.time(Stage::Histogram, || {
                self.pipeline.measurement().histogram(&window)
            });
            let binned = metrics.time(Stage::Bin, || DifferentialCumulative::from_histogram(&h));
            metrics.time(Stage::Merge, || {
                self.pipeline.push_binned(&binned, h.d_max())
            });
        }
        self.pipeline.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::{EdgeIntensity, PacketSynthesizer};
    use palu_graph::palu_gen::PaluGenerator;
    use palu_stats::rng::Xoshiro256pp;

    fn synthetic_packets(n: usize, seed: u64) -> Vec<Packet> {
        let net = PaluGenerator::new(2_000, 500, 300, 2.0, 1.5)
            .unwrap()
            .generate(&mut Xoshiro256pp::seed_from_u64(seed));
        let mut rng = Xoshiro256pp::seed_from_u64(seed + 1);
        let syn = PacketSynthesizer::new(&net.graph, EdgeIntensity::Uniform, &mut rng);
        syn.draw_many(&mut rng, n).unwrap()
    }

    #[test]
    fn windows_are_exact_and_consecutive() {
        let packets = synthetic_packets(10_500, 1);
        let windows: Vec<_> = WindowStream::new(packets.iter().copied(), 2_000).collect();
        // 10500 / 2000 = 5 complete windows; the 500-packet remnant is
        // discarded.
        assert_eq!(windows.len(), 5);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.t(), i as u64);
            assert_eq!(w.n_v(), 2_000);
        }
    }

    #[test]
    fn streaming_matches_batch_segmentation() {
        let packets = synthetic_packets(8_000, 2);
        let streamed: Vec<_> = WindowStream::new(packets.iter().copied(), 2_000).collect();
        for (i, w) in streamed.iter().enumerate() {
            let batch = PacketWindow::from_packets(i as u64, &packets[i * 2000..(i + 1) * 2000]);
            assert_eq!(w.matrix(), batch.matrix(), "window {i}");
        }
    }

    #[test]
    fn empty_and_short_streams() {
        let none: Vec<_> = WindowStream::new(std::iter::empty(), 100).collect();
        assert!(none.is_empty());
        let short = synthetic_packets(99, 3);
        let none: Vec<_> = WindowStream::new(short.into_iter(), 100).collect();
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_size_panics() {
        let _ = WindowStream::new(std::iter::empty(), 0);
    }

    #[test]
    fn stream_stats_equals_batch_pipeline() {
        let packets = synthetic_packets(12_000, 4);
        let pooled_stream =
            StreamStats::new(Measurement::UndirectedDegree).consume(packets.iter().copied(), 3_000);
        // Batch reference.
        let windows: Vec<_> = packets
            .chunks_exact(3_000)
            .enumerate()
            .map(|(i, chunk)| PacketWindow::from_packets(i as u64, chunk))
            .collect();
        let pooled_batch = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        assert_eq!(pooled_stream.mean, pooled_batch.mean);
        assert_eq!(pooled_stream.sigma, pooled_batch.sigma);
        assert_eq!(pooled_stream.windows, 4);
    }

    #[test]
    fn instrumented_consume_matches_plain_consume() {
        let packets = synthetic_packets(9_000, 5);
        let plain =
            StreamStats::new(Measurement::UndirectedDegree).consume(packets.iter().copied(), 3_000);
        let metrics = Metrics::new();
        let timed = StreamStats::new(Measurement::UndirectedDegree).consume_with_metrics(
            packets.iter().copied(),
            3_000,
            &metrics,
        );
        assert_eq!(plain.mean, timed.mean);
        assert_eq!(plain.sigma, timed.sigma);
        assert_eq!(plain.d_max, timed.d_max);
        let snap = metrics.snapshot();
        assert_eq!(snap.windows, 3);
        assert_eq!(snap.packets, 9_000);
        assert_eq!(snap.threads, 1);
        assert!(snap.window_ns > 0);
    }
}
