//! Resource-budget governor for bounded-memory captures
//! (DESIGN.md §4g).
//!
//! A large `(n_v, windows, threads)` configuration allocates unchecked
//! — COO/CSR builds, per-window histograms, journal replay buffers —
//! until the OS kills the process, losing the very audit trail the
//! fault machinery exists to keep. This module gives the pipeline the
//! discipline of a production collector running under a hard per-node
//! memory envelope, in three layers:
//!
//! 1. **Admission control.** Before any window is synthesized, a
//!    [`CostModel`] projects the peak accounted footprint from the
//!    window geometry. An infeasible configuration is refused with a
//!    typed [`BudgetFault::AdmissionRefused`] carrying the estimate
//!    and, where one exists, a [`SuggestedConfig`] that fits.
//! 2. **Backpressure.** A [`ResourceBudget`] tracks accounted bytes;
//!    the governed engine acquires each batch's transient footprint at
//!    window boundaries, so a soft-watermark breach deterministically
//!    reduces the number of in-flight windows. Decisions are keyed
//!    only to accounted bytes at those boundaries — reruns at a fixed
//!    budget reproduce the same schedule, and the pooled output is
//!    bit-identical to the ungoverned run (the merge stays strictly
//!    window-ordered regardless of batching).
//! 3. **Graceful degradation.** An ordered [`DegradationRung`] ladder
//!    — coarsen log-binning, shrink the worker count, spill pooled
//!    state — engages one rung per breached checkpoint, each recorded
//!    as a typed [`DegradationEvent`] in the
//!    [`FaultReport`](crate::fault::FaultReport). The hard watermark
//!    produces a clean typed abort, never an OOM kill.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use palu_stats::histogram::DegreeHistogram;

// The sanctioned capacity clamp lives in palu-sparse (the bottom of
// the dependency stack) so the sparse builders can use it too;
// re-export it as part of the budget vocabulary.
pub use palu_sparse::{admitted_capacity, MAX_UNACCOUNTED_RESERVE};

/// Bytes of one synthesized packet pair (`(NodeId, NodeId)`).
const PAIR_BYTES: u64 = 8;
/// Bytes of one COO triplet (row + col + value).
const COO_TRIPLET_BYTES: u64 = 16;
/// Modelled bytes per B-tree histogram entry (key + value + amortized
/// node overhead) — matches `DegreeHistogram::approx_bytes`.
const BTREE_ENTRY_BYTES: u64 = 48;
/// Encoded size of one Welford accumulator.
const WELFORD_BYTES: u64 = 24;
/// Upper bound on log-bin count: degrees are `u64`, so at most 64
/// power-of-two bins; the vector's capacity may double past the
/// length, hence the 2× in the fixed slot term below.
const MAX_BINS: u64 = 64;
/// Fixed per-slot overhead retained after a window completes: the
/// `BinStats` vector at doubled capacity, struct headers, and the
/// optional fault record.
const SLOT_FIXED_BYTES: u64 = 2 * MAX_BINS * WELFORD_BYTES + 1024;
/// Fixed overhead of the merge-side state (pooled `BinStats`,
/// histogram and report headers).
const MERGE_FIXED_BYTES: u64 = 2 * MAX_BINS * WELFORD_BYTES + 1024;
/// Extra multiples of `window_bytes` a ballast-injected window
/// accounts for, simulating memory pressure without allocating.
pub const BALLAST_WINDOW_MULTIPLIER: u64 = 3;

/// Accounted-bytes ledger with optional soft and hard watermarks.
///
/// The governed pipeline acquires projected footprints *before*
/// allocating and releases them as state is freed; only the
/// coordinating thread touches the ledger (at window boundaries), so
/// the accounting — and every decision keyed to it — is deterministic
/// for a fixed budget. Atomics make the ledger `Sync` for the metrics
/// reader, not for contended updates.
#[derive(Debug)]
pub struct ResourceBudget {
    soft: Option<u64>,
    hard: Option<u64>,
    accounted: AtomicU64,
    peak: AtomicU64,
}

impl ResourceBudget {
    /// A budget with no watermarks: accounting runs, nothing trips.
    pub fn unbounded() -> Self {
        Self::with_watermarks(None, None)
    }

    /// A budget with a hard limit and the soft watermark defaulted to
    /// 3/4 of it — backpressure engages before the cliff.
    pub fn with_limit(hard: u64) -> Self {
        Self::with_watermarks(Some(hard / 4 * 3), Some(hard))
    }

    /// A budget with explicit watermarks. `soft` should be ≤ `hard`;
    /// breaching `soft` engages the degradation ladder, breaching
    /// `hard` fails the acquisition with a typed fault.
    pub fn with_watermarks(soft: Option<u64>, hard: Option<u64>) -> Self {
        ResourceBudget {
            soft,
            hard,
            accounted: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Account `bytes` more, failing with
    /// [`BudgetFault::HardWatermark`] (and rolling the ledger back) if
    /// the hard watermark would be breached. `window` tags the fault
    /// with the capture position for the audit trail. Returns the new
    /// accounted total.
    pub fn try_acquire(&self, bytes: u64, window: u64) -> Result<u64, BudgetFault> {
        let new = self
            .accounted
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        if let Some(limit) = self.hard {
            if new > limit {
                self.release(bytes);
                return Err(BudgetFault::HardWatermark {
                    accounted: new,
                    limit,
                    window,
                });
            }
        }
        self.peak.fetch_max(new, Ordering::Relaxed);
        Ok(new)
    }

    /// Return `bytes` to the ledger (saturating at zero).
    pub fn release(&self, bytes: u64) {
        // fetch_update with a total closure always succeeds.
        let _ = self
            .accounted
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    /// Currently accounted bytes.
    pub fn accounted(&self) -> u64 {
        self.accounted.load(Ordering::Relaxed)
    }

    /// High-water mark of accounted bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The soft watermark, if any.
    pub fn soft(&self) -> Option<u64> {
        self.soft
    }

    /// The hard watermark, if any.
    pub fn hard(&self) -> Option<u64> {
        self.hard
    }

    /// True when accounted bytes currently exceed the soft watermark.
    pub fn soft_breached(&self) -> bool {
        self.soft.is_some_and(|s| self.accounted() > s)
    }
}

/// How the governed engine treats a configured budget.
#[derive(Debug, Clone, Copy)]
pub struct Governor<'a> {
    /// The ledger every acquisition goes through.
    pub budget: &'a ResourceBudget,
    /// When true (CLI `--admission`), refuse configurations whose
    /// *undegraded* projected peak exceeds the hard watermark. The
    /// floor check — "not even a fully degraded run fits" — always
    /// runs regardless.
    pub strict_admission: bool,
}

/// Typed budget failures. These surface as
/// [`PipelineError::Budget`](crate::fault::PipelineError) — a capture
/// under a budget ends in a clean typed error, never an OOM kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetFault {
    /// Admission control projected an infeasible peak footprint and
    /// refused the capture before any window was synthesized.
    AdmissionRefused {
        /// Projected peak accounted bytes at the requested geometry.
        estimated: u64,
        /// Projected peak with every degradation rung engaged — the
        /// least memory any schedule of this capture can run in.
        floor: u64,
        /// The hard watermark the projection was tested against.
        limit: u64,
        /// A feasible variant of the configuration, when one exists.
        suggestion: Option<SuggestedConfig>,
    },
    /// An acquisition breached the hard watermark mid-capture (after
    /// draining everything drainable).
    HardWatermark {
        /// Accounted bytes the acquisition would have reached.
        accounted: u64,
        /// The hard watermark.
        limit: u64,
        /// Window index the capture had reached.
        window: u64,
    },
}

impl fmt::Display for BudgetFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetFault::AdmissionRefused {
                estimated,
                floor,
                limit,
                suggestion,
            } => {
                write!(
                    f,
                    "admission refused: projected peak {estimated} B (degraded floor \
                     {floor} B) exceeds the memory budget of {limit} B"
                )?;
                if let Some(s) = suggestion {
                    write!(f, "; feasible: --threads {} with n_v {}", s.threads, s.n_v)?;
                }
                Ok(())
            }
            BudgetFault::HardWatermark {
                accounted,
                limit,
                window,
            } => write!(
                f,
                "hard watermark breached at window {window}: {accounted} B accounted \
                 against a budget of {limit} B"
            ),
        }
    }
}

impl Error for BudgetFault {}

/// A configuration variant admission control believes would fit the
/// budget, attached to [`BudgetFault::AdmissionRefused`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuggestedConfig {
    /// Suggested worker / in-flight window count.
    pub threads: u64,
    /// Suggested packets per window.
    pub n_v: u64,
}

/// Per-stage cost model projecting the peak accounted footprint of a
/// capture from its window geometry. All arithmetic saturates — an
/// overflowing projection reads as "infeasible", never wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Packets aggregated per window.
    pub n_v: u64,
    /// Node count of the underlying network (bounds matrix rows and
    /// histogram support).
    pub n_nodes: u64,
    /// Number of windows in the capture.
    pub windows: u64,
    /// Requested worker count — the initial in-flight window width.
    pub threads: u64,
}

/// Integer square root (Newton's method) — used for the
/// distinct-value bound on histogram support without touching floats.
fn isqrt(v: u64) -> u64 {
    if v < 2 {
        return v;
    }
    // Seed with v/2 ≥ √v (true for every v ≥ 2), then descend.
    let mut x = v;
    let mut y = v / 2;
    while y < x {
        x = y;
        y = (x + v / x) / 2;
    }
    x
}

/// Multiply by 5/4 (the safety factor on transient footprints),
/// saturating instead of shrinking when the product would overflow.
fn with_margin(base: u64) -> u64 {
    if base > u64::MAX / 5 {
        u64::MAX
    } else {
        base * 5 / 4
    }
}

impl CostModel {
    /// Upper bound on one histogram's support (distinct keys): the
    /// keys are distinct per-node values summing to at most `2·n_v`,
    /// so `k(k+1)/2 ≤ 2·n_v` bounds the support near `2·√n_v`; the
    /// node count and `2·n_v` bound it independently.
    pub fn hist_support(&self) -> u64 {
        let sqrt_bound = 2 * isqrt(self.n_v) + 2;
        sqrt_bound
            .min(self.n_nodes)
            .min(self.n_v.saturating_mul(2).max(1))
    }

    /// Transient bytes of one in-flight window: packet pairs, the COO
    /// build, the CSR matrix, the per-window histogram and bin stats,
    /// with a 25% safety margin.
    pub fn window_bytes(&self) -> u64 {
        let csr = palu_sparse::csr_footprint_bytes(self.n_nodes, self.n_v).unwrap_or(u64::MAX);
        let base = self
            .n_v
            .saturating_mul(PAIR_BYTES)
            .saturating_add(self.n_v.saturating_mul(COO_TRIPLET_BYTES))
            .saturating_add(csr)
            .saturating_add(self.hist_support().saturating_mul(BTREE_ENTRY_BYTES))
            .saturating_add(SLOT_FIXED_BYTES);
        with_margin(base)
    }

    /// Bytes retained per *completed* window until its slot drains
    /// into the merge: the binned stats plus the fine-grained
    /// histogram. Upper-bounds the measured
    /// `approx_bytes` accounting the engine performs.
    pub fn slot_bytes(&self) -> u64 {
        self.hist_support()
            .saturating_mul(BTREE_ENTRY_BYTES)
            .saturating_add(SLOT_FIXED_BYTES)
    }

    /// Bytes of the merge-side state: the pooled stats plus the merged
    /// histogram, whose support is bounded by the per-window supports
    /// and by the `2·n_v` key range.
    pub fn merge_bytes(&self) -> u64 {
        let support = self
            .windows
            .saturating_mul(self.hist_support())
            .min(self.n_v.saturating_mul(2).max(1));
        support
            .saturating_mul(BTREE_ENTRY_BYTES)
            .saturating_add(MERGE_FIXED_BYTES)
    }

    /// Projected peak accounted bytes with `in_flight` windows
    /// computing concurrently and every completed slot retained until
    /// the final merge (the undegraded schedule).
    pub fn peak_bytes(&self, in_flight: u64) -> u64 {
        in_flight
            .saturating_mul(self.window_bytes())
            .saturating_add(self.windows.saturating_mul(self.slot_bytes()))
            .saturating_add(self.merge_bytes())
    }

    /// Projected peak with every degradation rung engaged: one window
    /// in flight, slots spilled into the merge as they complete (at
    /// most a small non-contiguous remainder retained). No schedule of
    /// this capture can run in less; a hard watermark below this is
    /// refused at admission unconditionally.
    pub fn floor_bytes(&self) -> u64 {
        self.window_bytes()
            .saturating_add(self.slot_bytes().saturating_mul(2))
            .saturating_add(self.merge_bytes())
    }

    /// Admission check: returns the undegraded peak estimate, or the
    /// typed refusal. The floor check always runs when a hard
    /// watermark is set; `strict` additionally refuses configurations
    /// that would only fit by degrading.
    pub fn admit(&self, budget: &ResourceBudget, strict: bool) -> Result<u64, BudgetFault> {
        let estimated = self.peak_bytes(self.threads);
        let Some(limit) = budget.hard() else {
            return Ok(estimated);
        };
        let floor = self.floor_bytes();
        if floor > limit || (strict && estimated > limit) {
            return Err(BudgetFault::AdmissionRefused {
                estimated,
                floor,
                limit,
                suggestion: self.suggest(limit),
            });
        }
        Ok(estimated)
    }

    /// Search for a feasible variant of this configuration under
    /// `limit`: first fewer threads at the same geometry, then a
    /// smaller `n_v` at one thread. `None` when even one packet per
    /// window cannot fit.
    pub fn suggest(&self, limit: u64) -> Option<SuggestedConfig> {
        for t in (1..=self.threads.min(64)).rev() {
            let m = CostModel {
                threads: t,
                ..*self
            };
            if m.peak_bytes(t) <= limit && m.floor_bytes() <= limit {
                return Some(SuggestedConfig {
                    threads: t,
                    n_v: self.n_v,
                });
            }
        }
        let (mut lo, mut hi) = (0u64, self.n_v);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            let m = CostModel {
                n_v: mid,
                threads: 1,
                ..*self
            };
            if m.peak_bytes(1) <= limit && m.floor_bytes() <= limit {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        if lo == 0 {
            None
        } else {
            Some(SuggestedConfig {
                threads: 1,
                n_v: lo,
            })
        }
    }
}

/// One rung of the graceful-degradation ladder, in engagement order.
/// Mirrors the fit-restart ladder: each rung trades fidelity or
/// throughput for memory, and engagements are recorded as typed
/// events so a degraded capture is auditable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationRung {
    /// Coarsen the merged degree histogram to power-of-two bin
    /// representatives (the pooled `BinStats` is untouched, so the
    /// pooled distribution stays bit-identical to an ungoverned run).
    CoarsenBins,
    /// Halve the number of in-flight windows.
    ShrinkWorkers,
    /// Spill completed window slots into the merge at every
    /// checkpoint instead of retaining them until the end.
    SpillPooled,
}

impl DegradationRung {
    /// Every rung, in engagement order.
    pub const ALL: [DegradationRung; 3] = [
        DegradationRung::CoarsenBins,
        DegradationRung::ShrinkWorkers,
        DegradationRung::SpillPooled,
    ];

    /// Stable kebab-case name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            DegradationRung::CoarsenBins => "coarsen_bins",
            DegradationRung::ShrinkWorkers => "shrink_workers",
            DegradationRung::SpillPooled => "spill_pooled",
        }
    }

    /// Stable wire code (append-only).
    pub fn code(&self) -> u8 {
        match self {
            DegradationRung::CoarsenBins => 0,
            DegradationRung::ShrinkWorkers => 1,
            DegradationRung::SpillPooled => 2,
        }
    }

    /// Inverse of [`DegradationRung::code`].
    pub fn from_code(code: u8) -> Option<DegradationRung> {
        DegradationRung::ALL
            .iter()
            .copied()
            .find(|r| r.code() == code)
    }
}

/// One recorded engagement of a degradation rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Which rung engaged.
    pub rung: DegradationRung,
    /// Window index the capture had reached at the checkpoint.
    pub window: u64,
    /// Accounted bytes at the moment of engagement.
    pub accounted_bytes: u64,
}

/// Collapse a degree to its log-bin representative — the smallest
/// power of two ≥ `d` — so a coarsened histogram has at most 65 keys.
/// Idempotent: coarsening a coarsened key is the identity. Degree 0
/// (an invisible isolated node) keeps its own bin.
pub fn coarsen_degree(d: u64) -> u64 {
    if d == 0 {
        return 0;
    }
    d.checked_next_power_of_two().unwrap_or(u64::MAX)
}

/// Rebuild a histogram with every key collapsed through
/// [`coarsen_degree`] (counts are preserved: `total()` is unchanged).
pub fn coarsen_histogram(h: &DegreeHistogram) -> DegreeHistogram {
    let mut out = DegreeHistogram::new();
    for (d, c) in h.iter() {
        out.increment(coarsen_degree(d), c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_acquire_release_and_peak() {
        let b = ResourceBudget::unbounded();
        assert_eq!(b.try_acquire(100, 0), Ok(100));
        assert_eq!(b.try_acquire(50, 1), Ok(150));
        b.release(120);
        assert_eq!(b.accounted(), 30);
        assert_eq!(b.peak(), 150);
        b.release(1_000);
        assert_eq!(b.accounted(), 0, "release saturates at zero");
        assert!(!b.soft_breached(), "no soft watermark configured");
    }

    #[test]
    fn hard_watermark_rolls_back_and_reports() {
        let b = ResourceBudget::with_watermarks(Some(80), Some(100));
        assert!(b.try_acquire(90, 3).is_ok());
        assert!(b.soft_breached());
        let err = b.try_acquire(20, 7).unwrap_err();
        assert_eq!(
            err,
            BudgetFault::HardWatermark {
                accounted: 110,
                limit: 100,
                window: 7
            }
        );
        assert_eq!(b.accounted(), 90, "failed acquire rolled back");
        assert_eq!(b.peak(), 90, "failed acquire does not move the peak");
    }

    #[test]
    fn with_limit_defaults_soft_to_three_quarters() {
        let b = ResourceBudget::with_limit(1000);
        assert_eq!(b.soft(), Some(750));
        assert_eq!(b.hard(), Some(1000));
    }

    #[test]
    fn isqrt_exact_on_squares_and_neighbors() {
        for v in [0u64, 1, 2, 3, 4, 15, 16, 17, 99, 100, 101, 1 << 40] {
            let r = isqrt(v);
            assert!(r * r <= v, "v={v}");
            assert!((r + 1) * (r + 1) > v, "v={v}");
        }
    }

    #[test]
    fn cost_model_is_monotone_in_geometry() {
        let base = CostModel {
            n_v: 10_000,
            n_nodes: 20_000,
            windows: 8,
            threads: 4,
        };
        let bigger = CostModel {
            n_v: 100_000,
            ..base
        };
        assert!(bigger.window_bytes() > base.window_bytes());
        assert!(bigger.peak_bytes(4) > base.peak_bytes(4));
        assert!(base.peak_bytes(8) > base.peak_bytes(1));
        assert!(base.floor_bytes() <= base.peak_bytes(base.threads));
        // Saturating, never wrapping, on absurd geometry.
        let huge = CostModel {
            n_v: u64::MAX,
            n_nodes: u64::MAX,
            windows: u64::MAX,
            threads: 16,
        };
        assert_eq!(huge.peak_bytes(16), u64::MAX);
    }

    #[test]
    fn admission_refuses_infeasible_and_suggests() {
        let model = CostModel {
            n_v: 100_000,
            n_nodes: 20_000,
            windows: 10,
            threads: 8,
        };
        // Ample budget: admitted, estimate returned.
        let ample = ResourceBudget::with_limit(u64::MAX);
        assert_eq!(
            model.admit(&ample, true),
            Ok(model.peak_bytes(8)),
            "ample budget admits"
        );
        // No hard watermark: always admitted.
        assert!(model.admit(&ResourceBudget::unbounded(), true).is_ok());
        // Below the floor: refused even without strict admission.
        let tiny = ResourceBudget::with_limit(1024);
        let err = model.admit(&tiny, false).unwrap_err();
        match err {
            BudgetFault::AdmissionRefused {
                estimated,
                floor,
                limit,
                ..
            } => {
                assert_eq!(limit, 1024);
                assert!(floor > limit);
                assert!(estimated >= floor);
            }
            other => panic!("expected AdmissionRefused, got {other:?}"),
        }
        // Strict admission refuses a peak that only fits by degrading,
        // and the suggestion it carries is itself feasible.
        let squeeze = ResourceBudget::with_limit(model.floor_bytes() + model.window_bytes());
        let err = model.admit(&squeeze, true).unwrap_err();
        let BudgetFault::AdmissionRefused {
            suggestion: Some(s),
            limit,
            ..
        } = err
        else {
            panic!("expected a refusal with a suggestion, got {err:?}");
        };
        let feasible = CostModel {
            n_v: s.n_v,
            threads: s.threads,
            ..model
        };
        assert!(feasible.peak_bytes(s.threads) <= limit);
        // Non-strict admission admits the same squeeze budget.
        assert!(model.admit(&squeeze, false).is_ok());
    }

    #[test]
    fn suggest_is_none_when_nothing_fits() {
        let model = CostModel {
            n_v: 1_000,
            n_nodes: 1_000,
            windows: 4,
            threads: 2,
        };
        assert_eq!(model.suggest(16), None);
    }

    #[test]
    fn coarsen_degree_is_ceil_pow2_and_idempotent() {
        let cases = [(0, 0), (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (1000, 1024)];
        for (d, want) in cases {
            assert_eq!(coarsen_degree(d), want, "d={d}");
            assert_eq!(coarsen_degree(coarsen_degree(d)), coarsen_degree(d));
        }
        assert_eq!(coarsen_degree(u64::MAX), u64::MAX);
        assert_eq!(coarsen_degree((1 << 63) + 1), u64::MAX);
    }

    #[test]
    fn coarsen_histogram_preserves_total_and_shrinks_support() {
        let h = DegreeHistogram::from_counts((1..=1000u64).map(|d| (d, d % 5 + 1)));
        let c = coarsen_histogram(&h);
        assert_eq!(c.total(), h.total());
        assert!(c.support_size() <= 11, "≤ log2(1000)+2 keys");
        assert_eq!(c.d_max(), Some(1024));
        // Coarsening after summation equals summing coarsened parts.
        let mut parts = DegreeHistogram::new();
        for (d, cnt) in h.iter() {
            parts.increment(coarsen_degree(d), cnt);
        }
        assert_eq!(coarsen_histogram(&h), parts);
    }

    #[test]
    fn rung_codes_round_trip() {
        for rung in DegradationRung::ALL {
            assert_eq!(DegradationRung::from_code(rung.code()), Some(rung));
        }
        assert_eq!(DegradationRung::from_code(99), None);
        assert_eq!(DegradationRung::ALL[0].name(), "coarsen_bins");
        assert_eq!(DegradationRung::ALL[1].name(), "shrink_workers");
        assert_eq!(DegradationRung::ALL[2].name(), "spill_pooled");
    }

    #[test]
    fn faults_display_their_numbers() {
        let refusal = BudgetFault::AdmissionRefused {
            estimated: 5000,
            floor: 2000,
            limit: 1000,
            suggestion: Some(SuggestedConfig {
                threads: 1,
                n_v: 100,
            }),
        };
        let msg = refusal.to_string();
        assert!(msg.contains("admission refused"), "{msg}");
        assert!(msg.contains("5000"), "{msg}");
        assert!(msg.contains("--threads 1"), "{msg}");
        let hw = BudgetFault::HardWatermark {
            accounted: 300,
            limit: 200,
            window: 9,
        };
        let msg = hw.to_string();
        assert!(msg.contains("hard watermark"), "{msg}");
        assert!(msg.contains("window 9"), "{msg}");
    }
}
