//! Zero-dependency pipeline instrumentation.
//!
//! The ROADMAP's production goal is a system that "runs as fast as the
//! hardware allows" — which demands *measured* speedups, not asserted
//! ones. [`Metrics`] is a set of thread-safe counters the multi-window
//! pipeline threads through its synthesize → window → histogram → bin
//! → merge stages: workers on any thread attribute wall-time and
//! packet/window volume to a [`Stage`], and [`Metrics::snapshot`]
//! freezes everything into a plain [`MetricsSnapshot`] struct that the
//! CLI and bench binaries serialize.
//!
//! Timing reads the monotonic clock, which lint rule R2 bans from
//! result paths. Instrumentation is observability-only: nanosecond
//! counts never feed a numerical result, so the `Instant` uses below
//! carry explicit `lint:allow(R2)` pragmas (see DESIGN.md, "Parallel
//! pipeline & determinism").

use std::sync::atomic::{AtomicU64, Ordering};

/// One instrumented stage of the multi-window measurement pipeline,
/// in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Drawing a window's `N_V` packets from the synthesizer.
    Synthesize,
    /// Aggregating the packets into the sparse window matrix `A_t`.
    Window,
    /// Reducing the matrix to the measurement's degree histogram.
    Histogram,
    /// Pooling the histogram into logarithmic bins `D_t(d_i)`.
    Bin,
    /// Window-ordered accumulation into the pooled mean/σ.
    Merge,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Synthesize,
        Stage::Window,
        Stage::Histogram,
        Stage::Bin,
        Stage::Merge,
    ];

    /// Stable lowercase name, used as a JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Synthesize => "synthesize",
            Stage::Window => "window",
            Stage::Histogram => "histogram",
            Stage::Bin => "bin",
            Stage::Merge => "merge",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Synthesize => 0,
            Stage::Window => 1,
            Stage::Histogram => 2,
            Stage::Bin => 3,
            Stage::Merge => 4,
        }
    }
}

/// A cache-line-padded relaxed atomic counter.
///
/// The hot per-window counters (`stage_ns`, `packets`) are hammered by
/// every worker thread; packed `AtomicU64`s land eight to a 64-byte
/// cache line, so updates to *different* counters from *different*
/// cores still ping-pong the same line (false sharing). Aligning each
/// counter to its own line makes the relaxed `fetch_add`s core-local.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn store(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    fn max(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    fn load(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Thread-safe wall-time and volume counters for one pipeline run.
///
/// All counters are relaxed atomics: workers on different threads add
/// into the same instance through a shared reference, and the totals
/// are read only after the scoped threads have joined. Each counter is
/// cache-line padded ([`PaddedU64`]) so concurrent workers never
/// false-share a line. Stage times are *summed across threads*, so
/// with `k` workers the per-stage total can exceed the elapsed
/// wall-clock by up to a factor of `k` — that ratio is exactly the
/// measured parallel speedup.
#[derive(Debug, Default)]
pub struct Metrics {
    stage_ns: [PaddedU64; 5],
    packets: PaddedU64,
    windows: PaddedU64,
    threads: PaddedU64,
    retries: PaddedU64,
    quarantined: PaddedU64,
    windows_recovered: PaddedU64,
    journal_bytes_replayed: PaddedU64,
    journal_torn_dropped: PaddedU64,
    peak_accounted_bytes: PaddedU64,
    budget_degradations: PaddedU64,
    admission_estimate_bytes: PaddedU64,
    capture_wall_ns: PaddedU64,
    leases_granted: PaddedU64,
    leases_expired: PaddedU64,
    leases_fenced: PaddedU64,
    leases_redispatched: PaddedU64,
    heartbeats: PaddedU64,
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f`, attributing its wall-time to `stage`.
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        // Observability only: the clock reading never reaches a
        // numerical result. lint:allow(R2)
        let start = std::time::Instant::now();
        let out = f();
        self.add_stage_ns(stage, elapsed_ns(start));
        out
    }

    /// Add `ns` nanoseconds to `stage`'s accumulated wall-time.
    pub fn add_stage_ns(&self, stage: Stage, ns: u64) {
        // Stage::index() is enum-bounded. lint:allow(R8)
        self.stage_ns[stage.index()].add(ns);
    }

    /// Count `n` synthesized/consumed packets.
    pub fn add_packets(&self, n: u64) {
        self.packets.add(n);
    }

    /// Count `n` processed windows.
    pub fn add_windows(&self, n: u64) {
        self.windows.add(n);
    }

    /// Record the worker-thread count of the run (last write wins).
    pub fn set_threads(&self, threads: u64) {
        self.threads.store(threads);
    }

    /// Count `n` per-window retry attempts (fault recovery).
    pub fn add_retries(&self, n: u64) {
        self.retries.add(n);
    }

    /// Count `n` quarantined (dropped) windows.
    pub fn add_quarantined(&self, n: u64) {
        self.quarantined.add(n);
    }

    /// Count `n` windows replayed from a capture journal instead of
    /// recomputed.
    pub fn add_windows_recovered(&self, n: u64) {
        self.windows_recovered.add(n);
    }

    /// Count `n` journal bytes replayed on resume.
    pub fn add_journal_bytes_replayed(&self, n: u64) {
        self.journal_bytes_replayed.add(n);
    }

    /// Count `n` torn tail records dropped during journal recovery.
    pub fn add_journal_torn_dropped(&self, n: u64) {
        self.journal_torn_dropped.add(n);
    }

    /// Raise the high-water mark of budget-accounted bytes to at least
    /// `bytes` (monotone: lower observations are ignored).
    pub fn record_peak_accounted_bytes(&self, bytes: u64) {
        self.peak_accounted_bytes.max(bytes);
    }

    /// Count one degradation-ladder rung engagement.
    pub fn add_budget_degradation(&self) {
        self.budget_degradations.add(1);
    }

    /// Record admission control's projected peak footprint in bytes
    /// (last write wins).
    pub fn set_admission_estimate_bytes(&self, bytes: u64) {
        self.admission_estimate_bytes.store(bytes);
    }

    /// Add `ns` nanoseconds of *elapsed* capture wall-time (clock
    /// started before workers spawn, stopped after the merge). Unlike
    /// the per-stage times this is not summed across threads, so
    /// `packets / capture_wall_ns` is a true end-to-end throughput.
    pub fn add_capture_wall_ns(&self, ns: u64) {
        self.capture_wall_ns.add(ns);
    }

    /// Count `n` granted leases (dispatcher).
    pub fn add_leases_granted(&self, n: u64) {
        self.leases_granted.add(n);
    }

    /// Count `n` leases whose deadline elapsed (dispatcher).
    pub fn add_leases_expired(&self, n: u64) {
        self.leases_expired.add(n);
    }

    /// Count `n` fenced zombie refusals (dispatcher).
    pub fn add_leases_fenced(&self, n: u64) {
        self.leases_fenced.add(n);
    }

    /// Count `n` re-dispatches of a previously expired range
    /// (dispatcher).
    pub fn add_leases_redispatched(&self, n: u64) {
        self.leases_redispatched.add(n);
    }

    /// Count `n` accepted worker heartbeats (dispatcher).
    pub fn add_heartbeats(&self, n: u64) {
        self.heartbeats.add(n);
    }

    /// Freeze the counters into a plain value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Stage::index() is enum-bounded. lint:allow(R8)
        let ns = |s: Stage| self.stage_ns[s.index()].load();
        MetricsSnapshot {
            synthesize_ns: ns(Stage::Synthesize),
            window_ns: ns(Stage::Window),
            histogram_ns: ns(Stage::Histogram),
            bin_ns: ns(Stage::Bin),
            merge_ns: ns(Stage::Merge),
            packets: self.packets.load(),
            windows: self.windows.load(),
            threads: self.threads.load(),
            retries: self.retries.load(),
            quarantined: self.quarantined.load(),
            windows_recovered: self.windows_recovered.load(),
            journal_bytes_replayed: self.journal_bytes_replayed.load(),
            journal_torn_dropped: self.journal_torn_dropped.load(),
            peak_accounted_bytes: self.peak_accounted_bytes.load(),
            budget_degradations: self.budget_degradations.load(),
            admission_estimate_bytes: self.admission_estimate_bytes.load(),
            capture_wall_ns: self.capture_wall_ns.load(),
            leases_granted: self.leases_granted.load(),
            leases_expired: self.leases_expired.load(),
            leases_fenced: self.leases_fenced.load(),
            leases_redispatched: self.leases_redispatched.load(),
            heartbeats: self.heartbeats.load(),
        }
    }
}

/// Run `f`, attributing its wall-time to `stage` when metrics are
/// enabled; with `None` the call is a plain invocation with no clock
/// reads at all.
pub fn time_stage<T>(metrics: Option<&Metrics>, stage: Stage, f: impl FnOnce() -> T) -> T {
    match metrics {
        Some(m) => m.time(stage, f),
        None => f(),
    }
}

/// Nanoseconds since `start`, saturating at `u64::MAX` (≈ 585 years).
// Observability only (see module docs). lint:allow(R2)
fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A frozen copy of one run's [`Metrics`]: plain `u64` fields, `Copy`,
/// no atomics — safe to move across threads, store, or serialize.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Wall-time in the synthesize stage, summed across threads (ns).
    pub synthesize_ns: u64,
    /// Wall-time in the window-assembly stage (ns).
    pub window_ns: u64,
    /// Wall-time in the histogram-reduction stage (ns).
    pub histogram_ns: u64,
    /// Wall-time in the log-binning stage (ns).
    pub bin_ns: u64,
    /// Wall-time in the window-ordered merge stage (ns).
    pub merge_ns: u64,
    /// Total packets synthesized/consumed.
    pub packets: u64,
    /// Total windows processed.
    pub windows: u64,
    /// Worker threads used by the run.
    pub threads: u64,
    /// Per-window retry attempts spent on fault recovery.
    pub retries: u64,
    /// Windows quarantined (dropped from the pooled result).
    pub quarantined: u64,
    /// Windows replayed from a capture journal instead of recomputed.
    pub windows_recovered: u64,
    /// Journal bytes replayed on resume.
    pub journal_bytes_replayed: u64,
    /// Torn tail records dropped during journal recovery.
    pub journal_torn_dropped: u64,
    /// High-water mark of budget-accounted bytes (0 without a budget).
    pub peak_accounted_bytes: u64,
    /// Degradation-ladder rung engagements by the budget governor.
    pub budget_degradations: u64,
    /// Admission control's projected peak footprint in bytes.
    pub admission_estimate_bytes: u64,
    /// Elapsed end-to-end capture wall-time (ns): workers spawned
    /// through merge finished, *not* summed across threads. Accumulates
    /// across captures sharing one `Metrics`.
    pub capture_wall_ns: u64,
    /// Leases granted by the dispatcher.
    pub leases_granted: u64,
    /// Leases whose deadline elapsed without completion.
    pub leases_expired: u64,
    /// Fenced zombie refusals issued.
    pub leases_fenced: u64,
    /// Re-dispatches of a previously expired range.
    pub leases_redispatched: u64,
    /// Worker heartbeats accepted.
    pub heartbeats: u64,
}

impl MetricsSnapshot {
    /// `(stage name, accumulated ns)` pairs in pipeline order.
    pub fn stages(&self) -> [(&'static str, u64); 5] {
        [
            (Stage::Synthesize.name(), self.synthesize_ns),
            (Stage::Window.name(), self.window_ns),
            (Stage::Histogram.name(), self.histogram_ns),
            (Stage::Bin.name(), self.bin_ns),
            (Stage::Merge.name(), self.merge_ns),
        ]
    }

    /// Sum of all per-stage times (ns). With `k` worker threads this
    /// is CPU time, not elapsed time: `total_ns / wall_ns` ≈ the
    /// measured speedup.
    pub fn total_ns(&self) -> u64 {
        self.stages().iter().map(|&(_, ns)| ns).sum()
    }

    /// End-to-end capture throughput in packets per second, from the
    /// elapsed (not thread-summed) capture wall-time. `0.0` when no
    /// capture wall-time was recorded.
    pub fn packets_per_sec(&self) -> f64 {
        if self.capture_wall_ns == 0 {
            return 0.0;
        }
        self.packets as f64 * 1e9 / self.capture_wall_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.add_stage_ns(Stage::Synthesize, 10);
        m.add_stage_ns(Stage::Synthesize, 5);
        m.add_stage_ns(Stage::Merge, 7);
        m.add_packets(100);
        m.add_packets(50);
        m.add_windows(2);
        m.set_threads(8);
        m.add_retries(3);
        m.add_retries(1);
        m.add_quarantined(2);
        m.add_windows_recovered(5);
        m.add_journal_bytes_replayed(640);
        m.add_journal_torn_dropped(1);
        m.record_peak_accounted_bytes(900);
        m.record_peak_accounted_bytes(400);
        m.add_budget_degradation();
        m.add_budget_degradation();
        m.set_admission_estimate_bytes(12_345);
        m.add_leases_granted(3);
        m.add_leases_expired(1);
        m.add_leases_fenced(1);
        m.add_leases_redispatched(1);
        m.add_heartbeats(9);
        let s = m.snapshot();
        assert_eq!(s.leases_granted, 3);
        assert_eq!(s.leases_expired, 1);
        assert_eq!(s.leases_fenced, 1);
        assert_eq!(s.leases_redispatched, 1);
        assert_eq!(s.heartbeats, 9);
        assert_eq!(s.windows_recovered, 5);
        assert_eq!(s.journal_bytes_replayed, 640);
        assert_eq!(s.journal_torn_dropped, 1);
        assert_eq!(s.peak_accounted_bytes, 900, "peak is monotone");
        assert_eq!(s.budget_degradations, 2);
        assert_eq!(s.admission_estimate_bytes, 12_345);
        assert_eq!(s.synthesize_ns, 15);
        assert_eq!(s.merge_ns, 7);
        assert_eq!(s.window_ns, 0);
        assert_eq!(s.packets, 150);
        assert_eq!(s.windows, 2);
        assert_eq!(s.threads, 8);
        assert_eq!(s.retries, 4);
        assert_eq!(s.quarantined, 2);
        assert_eq!(s.total_ns(), 22);
    }

    #[test]
    fn packets_per_sec_uses_elapsed_wall_time() {
        let m = Metrics::new();
        m.add_packets(1_000_000);
        assert_eq!(m.snapshot().packets_per_sec(), 0.0, "no wall-time yet");
        m.add_capture_wall_ns(500_000_000); // 0.5 s
        let s = m.snapshot();
        assert_eq!(s.capture_wall_ns, 500_000_000);
        assert!((s.packets_per_sec() - 2_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn padded_counters_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<PaddedU64>(), 64);
        assert_eq!(std::mem::size_of::<PaddedU64>(), 64);
    }

    #[test]
    fn time_attributes_to_the_right_stage() {
        let m = Metrics::new();
        let out = m.time(Stage::Histogram, || {
            // Something the optimizer can't erase but finishes fast.
            (0..1000u64).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        assert_eq!(out, (0..1000u64).fold(0u64, |a, b| a.wrapping_add(b * b)));
        let s = m.snapshot();
        assert!(s.histogram_ns > 0 || s.total_ns() == s.histogram_ns);
        assert_eq!(s.synthesize_ns, 0);
    }

    #[test]
    fn time_stage_none_is_a_plain_call() {
        assert_eq!(time_stage(None, Stage::Bin, || 41 + 1), 42);
        let m = Metrics::new();
        let _ = time_stage(Some(&m), Stage::Bin, || ());
        assert_eq!(m.snapshot().bin_ns, m.snapshot().bin_ns);
    }

    #[test]
    fn stage_names_are_stable_and_ordered() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["synthesize", "window", "histogram", "bin", "merge"]);
    }

    #[test]
    fn metrics_are_shareable_across_scoped_threads() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    m.add_windows(1);
                    m.add_packets(10);
                    m.add_stage_ns(Stage::Window, 3);
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.windows, 4);
        assert_eq!(snap.packets, 40);
        assert_eq!(snap.window_ns, 12);
    }
}
