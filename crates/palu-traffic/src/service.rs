//! Federation service mode: a crash-tolerant shard-submission server
//! with retry/backoff clients and rolling merged fits (DESIGN.md §4k).
//!
//! The [`Collector`] is the protocol brain: it accepts shard-journal
//! submissions framed by [`crate::wire`], validates capture identity
//! with the same typed skew refusals as `pool --merge`, persists
//! every accepted window *through the journal layer* (one
//! [`Journal`] per shard under `journal_dir` — lint rule R6's only
//! sanctioned write path, which is also what makes SIGKILL recovery
//! free: restart re-runs [`Journal::resume`] per shard and coverage
//! state rebuilds from disk), and maintains the rolling hierarchical
//! merge so a fit query returns the pooled distribution for whatever
//! coverage currently exists, tagged with a typed
//! [`ServiceFault::PartialCoverage`] marker below the threshold.
//!
//! The [`Server`] wraps a `Collector` around a `std::net`
//! [`TcpListener`]: per-connection read deadlines, one thread per
//! connection, and a graceful drain (a `Shutdown` frame flips the
//! draining flag; the accept loop exits and joins in-flight
//! sessions — every accepted record was already durably appended, so
//! drain persists nothing extra by construction).
//!
//! The client half ([`submit_journal`], [`query_fit`],
//! [`request_shutdown`]) implements deadline + jittered exponential
//! backoff retries with idempotent resumable submission: every
//! session opens with a `SubmitBegin`/`BeginAck` handshake that
//! returns the server's persisted have-set, so a reconnecting client
//! resumes exactly where the last session tore. Duplicate
//! submissions are detected byte-for-byte and skipped, never
//! errors. All connection state is derived from the shard's journal,
//! so a client killed at any point restarts from its own journal and
//! converges.
//!
//! Separation of concerns: `Collector::handle` takes any
//! `Read + Write` stream, so the torn-frame sweep in
//! `tests/service.rs` drives the full protocol over in-memory
//! buffers, byte by byte, with no sockets involved.

use crate::federation::{self, FederationError, ShardPlan, ShardRange};
use crate::journal::{self, Journal, JournalFault, JournalHeader, WindowEntry};
use crate::metrics::Metrics;
use crate::pipeline::Measurement;
use crate::wire::{
    read_frame, write_frame, FitRow, FitSnapshot, ServiceFault, ShardTornRow, WireInjector,
    WireMessage,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Read the monotonic clock for retry pacing and read deadlines.
/// Confined here so the pragma is one auditable site.
// Transport pacing only: the clock reading never reaches a numerical
// result. lint:allow(R2)
pub(crate) fn now() -> std::time::Instant {
    // lint:allow(R2)
    std::time::Instant::now()
}

/// How the collector identifies the capture it is collecting: the
/// full run identity (the journal header every shard must match) plus
/// the merge geometry and serving policy.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The measurement being pooled.
    pub measurement: Measurement,
    /// The capture identity every submitted shard must match (seed,
    /// `N_V`, windows, parameter fingerprint).
    pub expect: JournalHeader,
    /// Shards in the federation plan.
    pub shards: u64,
    /// Minimum coverage fraction below which served fits carry the
    /// typed [`ServiceFault::PartialCoverage`] marker.
    pub min_coverage: f64,
    /// Directory holding one journal per shard
    /// (`shard-<shards>-<s>.journal`).
    pub journal_dir: PathBuf,
    /// Per-connection read deadline.
    pub read_timeout: Duration,
}

/// One shard's durable state inside the collector.
struct ShardSlot {
    journal: Journal,
    range: ShardRange,
    windows: BTreeSet<u64>,
    torn_records_dropped: u64,
    torn_bytes_dropped: u64,
}

/// A fault the collector refused a frame or session over, kept for
/// the service report (bounded; the counter keeps exact totals).
#[derive(Debug, Clone)]
pub struct ServiceFaultRow {
    /// The fault's stable [`ServiceFault::name`].
    pub name: &'static str,
    /// The fault's stable [`ServiceFault::code`].
    pub code: u8,
    /// The fault's display rendering.
    pub detail: String,
}

/// Mutable collector state, all under one lock: shard slots, the
/// rolling merged entry map, and the accounting counters.
#[derive(Default)]
struct State {
    slots: BTreeMap<u64, ShardSlot>,
    entries: BTreeMap<u64, WindowEntry>,
    faults: Vec<ServiceFaultRow>,
    submissions: u64,
    frames_accepted: u64,
    duplicates: u64,
    rejected: u64,
    fits_served: u64,
}

/// State shared by every connection handler.
struct Shared {
    config: ServiceConfig,
    plan: ShardPlan,
    state: Mutex<State>,
    draining: AtomicBool,
    metrics: Metrics,
}

/// Accounting for one handled connection.
#[derive(Debug, Default, Clone)]
pub struct ConnectionSummary {
    /// Window records newly persisted this session.
    pub accepted: u64,
    /// Byte-identical resubmissions skipped idempotently.
    pub duplicates: u64,
    /// The fault that ended the session, if it did not end cleanly.
    pub fault: Option<ServiceFault>,
}

/// Per-shard accounting in a [`ServiceReport`] — including the
/// per-shard torn-tail drop counts (crash residue the shard's
/// journal recovery compacted away on restart).
#[derive(Debug, Clone)]
pub struct ServiceShardRow {
    /// The shard index.
    pub shard: u64,
    /// First window of the shard's range (inclusive).
    pub lo: u64,
    /// One past the last window of the shard's range.
    pub hi: u64,
    /// Windows durably persisted for this shard.
    pub persisted: u64,
    /// Torn-tail records dropped recovering this shard's journal.
    pub torn_records_dropped: u64,
    /// Torn-tail bytes dropped recovering this shard's journal.
    pub torn_bytes_dropped: u64,
}

/// The collector's full accounting, surfaced in `serve` metrics JSON.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Shards in the federation plan.
    pub shards: u64,
    /// Total windows in the capture.
    pub windows: u64,
    /// Windows currently persisted across all shards.
    pub covered: u64,
    /// The configured minimum coverage fraction.
    pub min_coverage: f64,
    /// Submission sessions opened (`SubmitBegin` accepted).
    pub submissions: u64,
    /// Window records newly persisted.
    pub frames_accepted: u64,
    /// Byte-identical resubmissions skipped idempotently.
    pub duplicates: u64,
    /// Frames or sessions refused with a typed fault.
    pub rejected: u64,
    /// Fit snapshots served.
    pub fits_served: u64,
    /// Torn-tail records dropped across all shard recoveries.
    pub torn_records_dropped: u64,
    /// Torn-tail bytes dropped across all shard recoveries.
    pub torn_bytes_dropped: u64,
    /// Per-shard accounting rows, shard-ordered.
    pub shard_rows: Vec<ServiceShardRow>,
    /// The first [`FAULT_ROW_CAP`] typed refusals, in arrival order.
    pub faults: Vec<ServiceFaultRow>,
}

/// Retained fault rows are bounded; `rejected` keeps exact totals.
pub const FAULT_ROW_CAP: usize = 256;

/// File name of shard `shard`'s journal under the service's
/// journal directory, for a `shards`-way plan.
pub fn shard_journal_name(shards: u64, shard: u64) -> String {
    format!("shard-{shards}-{shard}.journal")
}

pub(crate) fn journal_fault_to_service(fault: JournalFault) -> ServiceFault {
    match fault {
        JournalFault::SeedMismatch { .. }
        | JournalFault::ConfigMismatch { .. }
        | JournalFault::VersionSkew { .. } => ServiceFault::IdentitySkew { fault },
        other => ServiceFault::Journal {
            detail: other.to_string(),
        },
    }
}

/// The protocol + persistence brain of the service, independent of
/// any socket: every connection handler clones it (cheap `Arc`) and
/// drives [`Collector::handle`] over its stream.
#[derive(Clone)]
pub struct Collector {
    shared: Arc<Shared>,
}

impl Collector {
    /// Build a collector: validate the plan, ensure the journal
    /// directory exists, and rebuild coverage state from any shard
    /// journals already on disk ([`Journal::resume`] per shard — the
    /// SIGKILL crash-recovery path; torn tails are compacted away and
    /// counted). A journal that refuses recovery (skew, corruption)
    /// is recorded as a typed fault and left on disk untouched; a
    /// later `SubmitBegin` for that shard recreates it fresh.
    ///
    /// # Errors
    ///
    /// [`ServiceFault::BadShard`] for an infeasible plan,
    /// [`ServiceFault::Journal`] when the journal directory cannot be
    /// created.
    pub fn new(config: ServiceConfig) -> Result<Collector, ServiceFault> {
        let plan = ShardPlan::new(config.expect.windows, config.shards).map_err(|_| {
            ServiceFault::BadShard {
                shard: config.shards,
                shards: config.shards,
            }
        })?;
        std::fs::create_dir_all(&config.journal_dir).map_err(|e| ServiceFault::Journal {
            detail: format!(
                "cannot create journal directory {}: {e}",
                config.journal_dir.display()
            ),
        })?;
        let mut state = State::default();
        for shard in 0..config.shards {
            let Some(range) = plan.shard_range(shard) else {
                continue;
            };
            let path = config
                .journal_dir
                .join(shard_journal_name(config.shards, shard));
            if !path.exists() {
                continue;
            }
            match Journal::resume(&path, config.expect.clone()) {
                Ok((journal, recovery)) => {
                    let mut windows = BTreeSet::new();
                    for (w, entry) in recovery.windows {
                        if range.owns(w) {
                            windows.insert(w);
                            state.entries.insert(w, entry);
                        }
                    }
                    state.slots.insert(
                        shard,
                        ShardSlot {
                            journal,
                            range,
                            windows,
                            torn_records_dropped: recovery.torn_records_dropped,
                            torn_bytes_dropped: recovery.torn_bytes_dropped,
                        },
                    );
                }
                Err(fault) => {
                    let fault = journal_fault_to_service(fault);
                    state.rejected += 1;
                    if state.faults.len() < FAULT_ROW_CAP {
                        state.faults.push(ServiceFaultRow {
                            name: fault.name(),
                            code: fault.code(),
                            detail: format!("recovering {}: {fault}", path.display()),
                        });
                    }
                }
            }
        }
        Ok(Collector {
            shared: Arc::new(Shared {
                config,
                plan,
                state: Mutex::new(state),
                draining: AtomicBool::new(false),
                metrics: Metrics::new(),
            }),
        })
    }

    /// The service configuration in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Whether the collector has been asked to drain for shutdown.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// A poisoned state lock cannot corrupt this state — every
    /// mutation is complete before the lock drops — so recover the
    /// guard instead of propagating the panic.
    fn lock(&self) -> MutexGuard<'_, State> {
        match self.shared.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn record_fault(state: &mut State, fault: &ServiceFault) {
        state.rejected += 1;
        if state.faults.len() < FAULT_ROW_CAP {
            state.faults.push(ServiceFaultRow {
                name: fault.name(),
                code: fault.code(),
                detail: fault.to_string(),
            });
        }
    }

    /// Handle one connection's full session over any byte stream.
    /// Never returns a transport error to the caller: every failure
    /// mode is accounted in the [`ConnectionSummary`] (and answered
    /// with a best-effort `Reject` frame where the peer may still be
    /// listening).
    pub fn handle<S: Read + Write>(&self, conn: &mut S) -> ConnectionSummary {
        let mut summary = ConnectionSummary::default();
        // Session state: which shard this connection submits for, and
        // whether its identity header has been validated.
        let mut session: Option<u64> = None;
        let mut header_ok = false;
        loop {
            let payload = match read_frame(conn) {
                Ok(Some(payload)) => payload,
                Ok(None) => break,
                Err(fault) => {
                    self.refuse(conn, &mut summary, fault);
                    break;
                }
            };
            let message = match WireMessage::decode(&payload) {
                Ok(message) => message,
                Err(fault) => {
                    self.refuse(conn, &mut summary, fault);
                    break;
                }
            };
            let outcome = match message {
                WireMessage::SubmitBegin {
                    shard,
                    shards,
                    windows,
                } => self.on_begin(conn, &mut session, shard, shards, windows),
                WireMessage::Record(raw) => {
                    self.on_record(&mut summary, &session, &mut header_ok, &raw)
                }
                WireMessage::SubmitEnd { .. } => self.on_end(conn, &session),
                WireMessage::FitRequest => self.on_fit(conn),
                WireMessage::Shutdown => {
                    self.shared.draining.store(true, Ordering::SeqCst);
                    let _ = write_frame(conn, &WireMessage::ShutdownAck.encode());
                    break;
                }
                WireMessage::LeaseRequest { .. }
                | WireMessage::Heartbeat { .. }
                | WireMessage::WorkDone { .. } => Err(ServiceFault::Protocol {
                    detail: "lease frame on a submission session — this endpoint \
                             is a plain collector, not a dispatcher"
                        .to_string(),
                }),
                WireMessage::BeginAck { .. }
                | WireMessage::EndAck { .. }
                | WireMessage::Reject { .. }
                | WireMessage::FitResponse(_)
                | WireMessage::ShutdownAck
                | WireMessage::LeaseGrant(_)
                | WireMessage::LeaseRenew { .. } => Err(ServiceFault::Protocol {
                    detail: "received a server-to-client frame".to_string(),
                }),
            };
            if let Err(fault) = outcome {
                self.refuse(conn, &mut summary, fault);
                break;
            }
        }
        summary
    }

    /// Record a refusal, best-effort notify the peer, and account it
    /// in the summary.
    fn refuse<S: Read + Write>(
        &self,
        conn: &mut S,
        summary: &mut ConnectionSummary,
        fault: ServiceFault,
    ) {
        {
            let mut state = self.lock();
            Collector::record_fault(&mut state, &fault);
        }
        let _ = write_frame(
            conn,
            &WireMessage::Reject {
                code: fault.code(),
                message: fault.to_string(),
            }
            .encode(),
        );
        summary.fault = Some(fault);
    }

    fn on_begin<S: Read + Write>(
        &self,
        conn: &mut S,
        session: &mut Option<u64>,
        shard: u64,
        shards: u64,
        windows: u64,
    ) -> Result<(), ServiceFault> {
        if self.draining() {
            return Err(ServiceFault::Draining);
        }
        if shards != self.shared.plan.shards() {
            return Err(ServiceFault::BadShard {
                shard: shards,
                shards: self.shared.plan.shards(),
            });
        }
        if windows != self.shared.config.expect.windows {
            return Err(ServiceFault::Protocol {
                detail: format!(
                    "client plans {windows} window(s), this capture has {}",
                    self.shared.config.expect.windows
                ),
            });
        }
        let Some(range) = self.shared.plan.shard_range(shard) else {
            return Err(ServiceFault::BadShard { shard, shards });
        };
        let mut state = self.lock();
        if !state.slots.contains_key(&shard) {
            let path = self
                .shared
                .config
                .journal_dir
                .join(shard_journal_name(shards, shard));
            let journal = Journal::create(&path, self.shared.config.expect.clone())
                .map_err(journal_fault_to_service)?;
            state.slots.insert(
                shard,
                ShardSlot {
                    journal,
                    range,
                    windows: BTreeSet::new(),
                    torn_records_dropped: 0,
                    torn_bytes_dropped: 0,
                },
            );
        }
        state.submissions += 1;
        let have: Vec<u64> = match state.slots.get(&shard) {
            Some(slot) => slot.windows.iter().copied().collect(),
            None => Vec::new(),
        };
        drop(state);
        *session = Some(shard);
        write_frame(conn, &WireMessage::BeginAck { have }.encode())
    }

    fn on_record(
        &self,
        summary: &mut ConnectionSummary,
        session: &Option<u64>,
        header_ok: &mut bool,
        raw: &[u8],
    ) -> Result<(), ServiceFault> {
        let Some(shard) = *session else {
            return Err(ServiceFault::Protocol {
                detail: "journal record before SubmitBegin".to_string(),
            });
        };
        let Some((&kind, body)) = raw.split_first() else {
            return Err(ServiceFault::Malformed {
                detail: "empty record payload".to_string(),
            });
        };
        let cursor = journal::Cursor {
            bytes: body,
            record_offset: 0,
        };
        match kind {
            0 => {
                // The shard's identity header: validated with the
                // same typed skew refusals as `pool --merge`.
                journal::parse_header(cursor, &self.shared.config.expect)
                    .map_err(|fault| journal_fault_to_service(fault))?;
                *header_ok = true;
                Ok(())
            }
            1 => {
                if !*header_ok {
                    return Err(ServiceFault::Protocol {
                        detail: "window record before the identity header".to_string(),
                    });
                }
                let entry =
                    journal::parse_window(cursor, &self.shared.config.expect).map_err(|fault| {
                        ServiceFault::Malformed {
                            detail: fault.to_string(),
                        }
                    })?;
                self.accept_window(summary, shard, entry)
            }
            other => Err(ServiceFault::UnknownFrame { kind: other }),
        }
    }

    /// Persist one submitted window: idempotent for byte-identical
    /// resubmission, a typed [`ServiceFault::WindowConflict`] for a
    /// differing one, journal-layer append for a fresh one.
    fn accept_window(
        &self,
        summary: &mut ConnectionSummary,
        shard: u64,
        entry: WindowEntry,
    ) -> Result<(), ServiceFault> {
        let window = entry.window;
        let mut state = self.lock();
        // Resubmission of a window anyone already delivered: equal
        // contents are idempotent, differing contents are refused.
        if let Some(existing) = state.entries.get(&window) {
            if *existing == entry {
                state.duplicates += 1;
                summary.duplicates += 1;
                return Ok(());
            }
            return Err(ServiceFault::WindowConflict { window });
        }
        let Some(slot) = state.slots.get_mut(&shard) else {
            return Err(ServiceFault::Protocol {
                detail: format!("no open submission for shard {shard}"),
            });
        };
        if !slot.range.owns(window) {
            return Err(ServiceFault::Protocol {
                detail: format!(
                    "window {window} outside shard {shard}'s range [{}, {})",
                    slot.range.lo, slot.range.hi
                ),
            });
        }
        slot.journal
            .append(&entry)
            .map_err(journal_fault_to_service)?;
        slot.windows.insert(window);
        state.entries.insert(window, entry);
        state.frames_accepted += 1;
        summary.accepted += 1;
        Ok(())
    }

    fn on_end<S: Read + Write>(
        &self,
        conn: &mut S,
        session: &Option<u64>,
    ) -> Result<(), ServiceFault> {
        let Some(shard) = *session else {
            return Err(ServiceFault::Protocol {
                detail: "SubmitEnd before SubmitBegin".to_string(),
            });
        };
        let state = self.lock();
        let Some(slot) = state.slots.get(&shard) else {
            return Err(ServiceFault::Protocol {
                detail: format!("no open submission for shard {shard}"),
            });
        };
        let accepted = slot.windows.len() as u64;
        let missing: Vec<u64> = (slot.range.lo..slot.range.hi)
            .filter(|w| !slot.windows.contains(w))
            .collect();
        drop(state);
        write_frame(conn, &WireMessage::EndAck { accepted, missing }.encode())
    }

    fn on_fit<S: Read + Write>(&self, conn: &mut S) -> Result<(), ServiceFault> {
        let snapshot = self.fit_snapshot()?;
        let mut state = self.lock();
        state.fits_served += 1;
        drop(state);
        write_frame(conn, &WireMessage::FitResponse(snapshot).encode())
    }

    /// The rolling merged fit for current coverage: fold every
    /// persisted window through the same hierarchical merge
    /// accumulator as `pool --merge` (missing windows quarantine as
    /// `ShardLost`), tag the snapshot with the coverage arithmetic,
    /// and mark it partial below the threshold. The served rows carry
    /// raw IEEE-754 bits, so a fit rendered from this snapshot is
    /// byte-identical to the single-process pooled output.
    ///
    /// # Errors
    ///
    /// [`ServiceFault::Unavailable`] when the merge itself cannot run
    /// (e.g. zero windows pooled refuses inside the fold).
    pub fn fit_snapshot(&self) -> Result<FitSnapshot, ServiceFault> {
        let config = &self.shared.config;
        let state = self.lock();
        let covered = state.entries.len() as u64;
        let shard_torn: Vec<ShardTornRow> = state
            .slots
            .iter()
            .map(|(shard, slot)| ShardTornRow {
                shard: *shard,
                torn_records_dropped: slot.torn_records_dropped,
                torn_bytes_dropped: slot.torn_bytes_dropped,
            })
            .collect();
        let pool = federation::merge_entries(
            config.measurement,
            config.expect.windows as usize,
            &state.entries,
            Some(&self.shared.metrics),
        )
        .map_err(|e: FederationError| ServiceFault::Unavailable {
            detail: format!("rolling merge failed: {e}"),
        })?;
        drop(state);
        let partial = !federation::covers(covered, config.expect.windows, config.min_coverage);
        let rows: Vec<FitRow> = pool
            .pooled
            .mean
            .iter()
            .zip(pool.pooled.sigma.iter())
            .map(|((degree, mean), sigma)| FitRow {
                degree,
                mean_bits: mean.to_bits(),
                sigma_bits: sigma.to_bits(),
            })
            .collect();
        Ok(FitSnapshot {
            windows: config.expect.windows,
            covered,
            min_coverage: config.min_coverage,
            partial,
            survivors: pool.report.survivors,
            quarantined: pool.report.quarantined,
            pooled_windows: pool.pooled.windows,
            d_max: pool.pooled.d_max,
            rows,
            shard_torn,
        })
    }

    /// Windows persisted so far, per shard — the dispatcher's view of
    /// completion. A shard absent from the map has persisted nothing.
    pub fn shard_progress(&self) -> std::collections::BTreeMap<u64, u64> {
        let state = self.lock();
        state
            .slots
            .iter()
            .map(|(shard, slot)| (*shard, slot.windows.len() as u64))
            .collect()
    }

    /// The collector's shared metrics sink (the dispatcher records its
    /// lease counters into the same instance).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The collector's accounting snapshot.
    pub fn report(&self) -> ServiceReport {
        let config = &self.shared.config;
        let state = self.lock();
        let mut shard_rows = Vec::with_capacity(state.slots.len());
        let mut torn_records = 0u64;
        let mut torn_bytes = 0u64;
        for (shard, slot) in &state.slots {
            torn_records += slot.torn_records_dropped;
            torn_bytes += slot.torn_bytes_dropped;
            shard_rows.push(ServiceShardRow {
                shard: *shard,
                lo: slot.range.lo,
                hi: slot.range.hi,
                persisted: slot.windows.len() as u64,
                torn_records_dropped: slot.torn_records_dropped,
                torn_bytes_dropped: slot.torn_bytes_dropped,
            });
        }
        ServiceReport {
            shards: config.shards,
            windows: config.expect.windows,
            covered: state.entries.len() as u64,
            min_coverage: config.min_coverage,
            submissions: state.submissions,
            frames_accepted: state.frames_accepted,
            duplicates: state.duplicates,
            rejected: state.rejected,
            fits_served: state.fits_served,
            torn_records_dropped: torn_records,
            torn_bytes_dropped: torn_bytes,
            shard_rows,
            faults: state.faults.clone(),
        }
    }
}

/// The TCP face of the service: a nonblocking accept loop spawning
/// one handler thread per connection, polling the collector's
/// draining flag so a `Shutdown` frame (or a caller-side stop) drains
/// gracefully — in-flight sessions are joined, and since every
/// accepted record was already journal-appended, nothing is lost even
/// on SIGKILL instead.
pub struct Server {
    listener: TcpListener,
    collector: Collector,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral CI port).
    ///
    /// # Errors
    ///
    /// [`ServiceFault::Io`] when the bind fails.
    pub fn bind(addr: &str, collector: Collector) -> Result<Server, ServiceFault> {
        let listener = TcpListener::bind(addr).map_err(|e| ServiceFault::Io {
            detail: format!("bind {addr}: {e}"),
        })?;
        Ok(Server {
            listener,
            collector,
        })
    }

    /// The bound address (resolves the real port after binding `:0`).
    ///
    /// # Errors
    ///
    /// [`ServiceFault::Io`] when the socket cannot report it.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, ServiceFault> {
        self.listener.local_addr().map_err(|e| ServiceFault::Io {
            detail: e.to_string(),
        })
    }

    /// The collector this server fronts.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Accept and handle connections until the collector drains, then
    /// join every in-flight session and return the final report.
    ///
    /// # Errors
    ///
    /// [`ServiceFault::Io`] when the listener cannot be made
    /// nonblocking.
    pub fn run(self) -> Result<ServiceReport, ServiceFault> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServiceFault::Io {
                detail: e.to_string(),
            })?;
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.collector.draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(self.collector.config().read_timeout));
                    let collector = self.collector.clone();
                    handles.push(std::thread::spawn(move || {
                        let mut stream = stream;
                        let _ = collector.handle(&mut stream);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(self.collector.report())
    }
}

// The client retry/backoff policy lives in the wire layer (shared by
// `submit` and the dispatcher's `work` client); re-exported here for
// continuity with the PR 9 API surface.
pub use crate::wire::RetryPolicy;

/// What a completed submission achieved, including the local
/// journal's torn-tail accounting (the client-side half of the
/// per-shard torn counts the server reports).
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The submitted shard.
    pub shard: u64,
    /// Windows the shard's range owns.
    pub assigned: u64,
    /// Windows recovered from the local shard journal.
    pub recovered: u64,
    /// Windows the server confirms persisted for this shard.
    pub accepted: u64,
    /// Connection attempts consumed (1 = first try succeeded).
    pub attempts: u64,
    /// Windows the server already had before this client's sessions
    /// (idempotent resume skips).
    pub already_present: u64,
    /// Torn-tail records dropped recovering the local journal.
    pub torn_records_dropped: u64,
    /// Torn-tail bytes dropped recovering the local journal.
    pub torn_bytes_dropped: u64,
}

pub(crate) fn connect(addr: &str, retry: &RetryPolicy) -> Result<TcpStream, ServiceFault> {
    let stream = TcpStream::connect(addr).map_err(|e| ServiceFault::Io {
        detail: format!("connect {addr}: {e}"),
    })?;
    stream
        .set_read_timeout(Some(retry.io_timeout))
        .map_err(|e| ServiceFault::Io {
            detail: e.to_string(),
        })?;
    stream
        .set_write_timeout(Some(retry.io_timeout))
        .map_err(|e| ServiceFault::Io {
            detail: e.to_string(),
        })?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// Read one frame and decode it, treating a clean close mid-session
/// as a retryable [`ServiceFault::Unavailable`], and a `Reject` frame
/// as its reconstructed [`ServiceFault::Remote`].
pub(crate) fn read_reply(stream: &mut TcpStream) -> Result<WireMessage, ServiceFault> {
    match read_frame(stream)? {
        None => Err(ServiceFault::Unavailable {
            detail: "connection closed before acknowledgement".to_string(),
        }),
        Some(payload) => match WireMessage::decode(&payload)? {
            WireMessage::Reject { code, message } => Err(ServiceFault::Remote { code, message }),
            other => Ok(other),
        },
    }
}

/// Send one already-framed record, routing it through the wire-fault
/// injector: `Drop` skips the write, `Corrupt` flips a payload byte,
/// `Duplicate` writes twice (probing server idempotency), `Delay`
/// stalls briefly, `Truncate` writes a prefix and abandons the
/// session — the mid-frame-kill signature, surfaced as a retryable
/// [`ServiceFault::Torn`].
fn send_framed(
    stream: &mut TcpStream,
    framed: &[u8],
    frame: u64,
    attempt: u64,
    injector: &WireInjector,
) -> Result<(), ServiceFault> {
    use crate::wire::WireFault;
    let write = |stream: &mut TcpStream, bytes: &[u8]| -> Result<(), ServiceFault> {
        stream.write_all(bytes).map_err(|e| ServiceFault::Io {
            detail: e.to_string(),
        })
    };
    match injector.plan(frame, attempt) {
        None => write(stream, framed),
        Some(WireFault::Drop) => Ok(()),
        Some(WireFault::Corrupt) => {
            let mut bad = framed.to_vec();
            if let Some(last) = bad.last_mut() {
                *last ^= 0xFF;
            }
            write(stream, &bad)
        }
        Some(WireFault::Duplicate) => {
            write(stream, framed)?;
            write(stream, framed)
        }
        Some(WireFault::Delay) => {
            std::thread::sleep(Duration::from_millis(2));
            write(stream, framed)
        }
        Some(WireFault::Truncate) => {
            let (head, _) = framed.split_at(framed.len() / 2);
            write(stream, head)?;
            let _ = stream.flush();
            Err(ServiceFault::Torn {
                bytes: head.len() as u64,
            })
        }
    }
}

/// One submission session: handshake, resume from the server's
/// have-set, stream the identity header + missing window records
/// (byte-verbatim from the local journal's canonical codec), and
/// collect the `EndAck`. Returns `(accepted, missing, skipped)`.
fn try_submit_once(
    addr: &str,
    shard: u64,
    shards: u64,
    expect: &JournalHeader,
    entries: &BTreeMap<u64, WindowEntry>,
    retry: &RetryPolicy,
    injector: &WireInjector,
    attempt: u64,
) -> Result<(u64, Vec<u64>, u64), ServiceFault> {
    let mut stream = connect(addr, retry)?;
    write_frame(
        &mut stream,
        &WireMessage::SubmitBegin {
            shard,
            shards,
            windows: expect.windows,
        }
        .encode(),
    )?;
    let have: BTreeSet<u64> = match read_reply(&mut stream)? {
        WireMessage::BeginAck { have } => have.into_iter().collect(),
        other => {
            return Err(ServiceFault::Protocol {
                detail: format!("expected BeginAck, got {}", frame_name(&other)),
            })
        }
    };
    let skipped = entries.keys().filter(|w| have.contains(w)).count() as u64;
    // The identity header rides first on every session, framed by the
    // same canonical codec that wrote it to disk.
    send_framed(
        &mut stream,
        &journal::header_record(expect),
        0,
        attempt,
        injector,
    )?;
    let mut sent = 0u64;
    for (window, entry) in entries {
        if have.contains(window) {
            continue;
        }
        send_framed(
            &mut stream,
            &journal::window_record(entry),
            window + 1,
            attempt,
            injector,
        )?;
        sent += 1;
    }
    write_frame(&mut stream, &WireMessage::SubmitEnd { sent }.encode())?;
    match read_reply(&mut stream)? {
        WireMessage::EndAck { accepted, missing } => Ok((accepted, missing, skipped)),
        other => Err(ServiceFault::Protocol {
            detail: format!("expected EndAck, got {}", frame_name(&other)),
        }),
    }
}

pub(crate) fn frame_name(message: &WireMessage) -> &'static str {
    match message {
        WireMessage::Record(_) => "Record",
        WireMessage::SubmitBegin { .. } => "SubmitBegin",
        WireMessage::BeginAck { .. } => "BeginAck",
        WireMessage::SubmitEnd { .. } => "SubmitEnd",
        WireMessage::EndAck { .. } => "EndAck",
        WireMessage::Reject { .. } => "Reject",
        WireMessage::FitRequest => "FitRequest",
        WireMessage::FitResponse(_) => "FitResponse",
        WireMessage::Shutdown => "Shutdown",
        WireMessage::ShutdownAck => "ShutdownAck",
        WireMessage::LeaseRequest { .. } => "LeaseRequest",
        WireMessage::LeaseGrant(_) => "LeaseGrant",
        WireMessage::Heartbeat { .. } => "Heartbeat",
        WireMessage::LeaseRenew { .. } => "LeaseRenew",
        WireMessage::WorkDone { .. } => "WorkDone",
    }
}

/// Submit a shard journal to a federation service, with deadline +
/// jittered-backoff retries, idempotent resumption, and optional
/// wire-fault injection.
///
/// The journal is recovered locally first (same typed refusals as
/// `pool --merge`; a torn tail from a killed capture is counted, not
/// fatal), then each session resumes from the server's persisted
/// have-set, so any interleaving of client kills, server kills, and
/// injected faults converges to every locally-known window persisted
/// server-side. Success does *not* require the server's range to be
/// fully covered — a journal from a capture killed mid-run submits
/// what it has (the server's coverage stays partial, exactly as it
/// should).
///
/// # Errors
///
/// Non-retryable refusals ([`ServiceFault::IdentitySkew`],
/// [`ServiceFault::BadShard`], [`ServiceFault::WindowConflict`], …)
/// return immediately; transport faults retry until the deadline,
/// then return [`ServiceFault::Unavailable`] wrapping the last
/// failure.
pub fn submit_journal(
    addr: &str,
    journal_path: &Path,
    shard: u64,
    shards: u64,
    expect: &JournalHeader,
    retry: &RetryPolicy,
    injector: &WireInjector,
) -> Result<SubmitOutcome, ServiceFault> {
    let recovery = Journal::recover_file(journal_path, expect).map_err(journal_fault_to_service)?;
    let plan = ShardPlan::new(expect.windows, shards)
        .map_err(|_| ServiceFault::BadShard { shard, shards })?;
    let range = plan
        .shard_range(shard)
        .ok_or(ServiceFault::BadShard { shard, shards })?;
    let entries: BTreeMap<u64, WindowEntry> = recovery
        .windows
        .into_iter()
        .filter(|(w, _)| range.owns(*w))
        .collect();
    let start = now();
    let mut attempt = 0u64;
    loop {
        let last = match try_submit_once(
            addr, shard, shards, expect, &entries, retry, injector, attempt,
        ) {
            Ok((accepted, missing, skipped)) => {
                // Success = every window we can provide is persisted;
                // windows the local journal never captured stay
                // missing server-side by design.
                if missing.iter().all(|w| !entries.contains_key(w)) {
                    return Ok(SubmitOutcome {
                        shard,
                        assigned: range.window_count(),
                        recovered: entries.len() as u64,
                        accepted,
                        attempts: attempt + 1,
                        already_present: skipped,
                        torn_records_dropped: recovery.torn_records_dropped,
                        torn_bytes_dropped: recovery.torn_bytes_dropped,
                    });
                }
                ServiceFault::Unavailable {
                    detail: format!(
                        "server still missing {} window(s) after acknowledgement",
                        missing.len()
                    ),
                }
            }
            Err(fault) if !fault.retryable() => return Err(fault),
            Err(fault) => fault,
        };
        if start.elapsed() >= retry.deadline {
            return Err(ServiceFault::Unavailable {
                detail: format!("retry deadline elapsed; last fault: {last}"),
            });
        }
        std::thread::sleep(retry.backoff(attempt));
        attempt += 1;
    }
}

/// Query the service's rolling merged fit, retrying transport faults
/// until the deadline.
///
/// # Errors
///
/// Non-retryable remote refusals immediately;
/// [`ServiceFault::Unavailable`] when the deadline elapses. A partial
/// snapshot is *not* an error here — the typed
/// [`ServiceFault::PartialCoverage`] is available from
/// [`FitSnapshot::partial_fault`] for callers that refuse it.
pub fn query_fit(addr: &str, retry: &RetryPolicy) -> Result<FitSnapshot, ServiceFault> {
    let start = now();
    let mut attempt = 0u64;
    loop {
        let outcome = connect(addr, retry).and_then(|mut stream| {
            write_frame(&mut stream, &WireMessage::FitRequest.encode())?;
            match read_reply(&mut stream)? {
                WireMessage::FitResponse(snapshot) => Ok(snapshot),
                other => Err(ServiceFault::Protocol {
                    detail: format!("expected FitResponse, got {}", frame_name(&other)),
                }),
            }
        });
        let fault = match outcome {
            Ok(snapshot) => return Ok(snapshot),
            Err(fault) if !fault.retryable() => return Err(fault),
            Err(fault) => fault,
        };
        if start.elapsed() >= retry.deadline {
            return Err(ServiceFault::Unavailable {
                detail: format!("retry deadline elapsed; last fault: {fault}"),
            });
        }
        std::thread::sleep(retry.backoff(attempt));
        attempt += 1;
    }
}

/// Ask the service to drain and shut down, retrying until the
/// deadline.
///
/// # Errors
///
/// [`ServiceFault::Unavailable`] when the service cannot be reached
/// before the deadline.
pub fn request_shutdown(addr: &str, retry: &RetryPolicy) -> Result<(), ServiceFault> {
    let start = now();
    let mut attempt = 0u64;
    loop {
        let outcome = connect(addr, retry).and_then(|mut stream| {
            write_frame(&mut stream, &WireMessage::Shutdown.encode())?;
            match read_reply(&mut stream)? {
                WireMessage::ShutdownAck => Ok(()),
                other => Err(ServiceFault::Protocol {
                    detail: format!("expected ShutdownAck, got {}", frame_name(&other)),
                }),
            }
        });
        let fault = match outcome {
            Ok(()) => return Ok(()),
            Err(fault) if !fault.retryable() => return Err(fault),
            Err(fault) => fault,
        };
        if start.elapsed() >= retry.deadline {
            return Err(ServiceFault::Unavailable {
                detail: format!("retry deadline elapsed; last fault: {fault}"),
            });
        }
        std::thread::sleep(retry.backoff(attempt));
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palu_stats::summary::BinStats;

    /// An in-memory Read + Write stream: reads consume a scripted
    /// input, writes collect into an output buffer — so the full
    /// protocol runs with no sockets.
    struct Duplex {
        input: Vec<u8>,
        read_at: usize,
        output: Vec<u8>,
    }

    impl Duplex {
        fn new(input: Vec<u8>) -> Duplex {
            Duplex {
                input,
                read_at: 0,
                output: Vec::new(),
            }
        }

        fn replies(&self) -> Vec<WireMessage> {
            let mut out = Vec::new();
            let mut r = &self.output[..];
            while let Ok(Some(payload)) = read_frame(&mut r) {
                out.push(WireMessage::decode(&payload).unwrap());
            }
            out
        }
    }

    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let rest = &self.input[self.read_at..];
            let n = rest.len().min(buf.len());
            buf[..n].copy_from_slice(&rest[..n]);
            self.read_at += n;
            Ok(n)
        }
    }

    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn entry(window: u64) -> WindowEntry {
        let mut stats = BinStats::new();
        stats.push(&palu_stats::logbin::DifferentialCumulative::from_values(
            vec![0.5, 0.25, 0.25],
        ));
        WindowEntry {
            window,
            injected: 0,
            retries: 0,
            record: None,
            result: Some(crate::journal::WindowResult {
                stats,
                d_max: Some(3 + window),
                histogram: palu_stats::histogram::DegreeHistogram::from_counts([
                    (1, 4),
                    (3 + window, 1),
                ]),
            }),
        }
    }

    fn header(windows: u64) -> JournalHeader {
        JournalHeader::with_params(5, 50, windows, vec!["lambda=2".to_string()])
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("palu-service-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config(name: &str, windows: u64, shards: u64) -> ServiceConfig {
        ServiceConfig {
            measurement: Measurement::UndirectedDegree,
            expect: header(windows),
            shards,
            min_coverage: 1.0,
            journal_dir: temp_dir(name),
            read_timeout: Duration::from_secs(5),
        }
    }

    fn session_bytes(h: &JournalHeader, shard: u64, shards: u64, windows: &[u64]) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_frame(
            &mut bytes,
            &WireMessage::SubmitBegin {
                shard,
                shards,
                windows: h.windows,
            }
            .encode(),
        )
        .unwrap();
        bytes.extend_from_slice(&journal::header_record(h));
        for &w in windows {
            bytes.extend_from_slice(&journal::window_record(&entry(w)));
        }
        write_frame(
            &mut bytes,
            &WireMessage::SubmitEnd {
                sent: windows.len() as u64,
            }
            .encode(),
        )
        .unwrap();
        bytes
    }

    #[test]
    fn submission_session_persists_and_acks() {
        let cfg = config("persists", 8, 2);
        let h = cfg.expect.clone();
        let collector = Collector::new(cfg).unwrap();
        let mut conn = Duplex::new(session_bytes(&h, 0, 2, &[0, 1, 2, 3]));
        let summary = collector.handle(&mut conn);
        assert!(summary.fault.is_none(), "{:?}", summary.fault);
        assert_eq!(summary.accepted, 4);
        let replies = conn.replies();
        assert!(matches!(
            replies.first(),
            Some(WireMessage::BeginAck { have }) if have.is_empty()
        ));
        match replies.get(1) {
            Some(WireMessage::EndAck { accepted, missing }) => {
                assert_eq!(*accepted, 4);
                assert!(missing.is_empty());
            }
            other => panic!("expected EndAck, got {other:?}"),
        }
        // The persisted journal is recoverable and byte-complete.
        let report = collector.report();
        assert_eq!(report.covered, 4);
        assert_eq!(report.frames_accepted, 4);
        assert_eq!(report.submissions, 1);
    }

    #[test]
    fn resubmission_is_idempotent_and_conflicts_are_refused() {
        let cfg = config("idempotent", 8, 2);
        let h = cfg.expect.clone();
        let collector = Collector::new(cfg).unwrap();
        let mut first = Duplex::new(session_bytes(&h, 0, 2, &[0, 1]));
        collector.handle(&mut first);
        // Same bytes again: all duplicates, no error. The have-set in
        // BeginAck means a well-behaved client would skip them, but
        // even a client that resends everything is harmless.
        let mut again = Duplex::new(session_bytes(&h, 0, 2, &[0, 1]));
        let summary = collector.handle(&mut again);
        assert!(summary.fault.is_none(), "{:?}", summary.fault);
        assert_eq!(summary.accepted, 0);
        assert_eq!(summary.duplicates, 2);
        match again.replies().first() {
            Some(WireMessage::BeginAck { have }) => assert_eq!(have, &vec![0, 1]),
            other => panic!("expected BeginAck, got {other:?}"),
        }
        // A *different* record for a persisted window is a typed
        // conflict, not silent clobbering.
        let mut bytes = Vec::new();
        write_frame(
            &mut bytes,
            &WireMessage::SubmitBegin {
                shard: 0,
                shards: 2,
                windows: h.windows,
            }
            .encode(),
        )
        .unwrap();
        bytes.extend_from_slice(&journal::header_record(&h));
        let mut diverged = entry(0);
        diverged.injected = 9;
        bytes.extend_from_slice(&journal::window_record(&diverged));
        let mut conflict = Duplex::new(bytes);
        let summary = collector.handle(&mut conflict);
        assert!(matches!(
            summary.fault,
            Some(ServiceFault::WindowConflict { window: 0 })
        ));
        match conflict.replies().last() {
            Some(WireMessage::Reject { code, .. }) => {
                assert_eq!(*code, ServiceFault::WindowConflict { window: 0 }.code());
            }
            other => panic!("expected Reject, got {other:?}"),
        }
    }

    #[test]
    fn identity_skew_is_refused_with_the_journal_fault_text() {
        let cfg = config("skew", 8, 1);
        let h = cfg.expect.clone();
        let collector = Collector::new(cfg).unwrap();
        let skewed = JournalHeader::with_params(999, h.n_v, h.windows, h.params.clone());
        let mut bytes = Vec::new();
        write_frame(
            &mut bytes,
            &WireMessage::SubmitBegin {
                shard: 0,
                shards: 1,
                windows: h.windows,
            }
            .encode(),
        )
        .unwrap();
        bytes.extend_from_slice(&journal::header_record(&skewed));
        let mut conn = Duplex::new(bytes);
        let summary = collector.handle(&mut conn);
        assert!(matches!(
            summary.fault,
            Some(ServiceFault::IdentitySkew { .. })
        ));
        match conn.replies().last() {
            Some(WireMessage::Reject { code, message }) => {
                assert_eq!(*code, 9);
                assert!(
                    message.contains("seed"),
                    "message should name the skew: {message}"
                );
            }
            other => panic!("expected Reject, got {other:?}"),
        }
    }

    #[test]
    fn window_before_begin_and_bad_shard_are_typed() {
        let cfg = config("protocol", 8, 2);
        let h = cfg.expect.clone();
        let collector = Collector::new(cfg).unwrap();
        // A window record with no session open.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&journal::window_record(&entry(0)));
        let mut conn = Duplex::new(bytes);
        let summary = collector.handle(&mut conn);
        assert!(matches!(summary.fault, Some(ServiceFault::Protocol { .. })));
        // A shard index outside the plan.
        let mut bytes = Vec::new();
        write_frame(
            &mut bytes,
            &WireMessage::SubmitBegin {
                shard: 7,
                shards: 2,
                windows: h.windows,
            }
            .encode(),
        )
        .unwrap();
        let mut conn = Duplex::new(bytes);
        let summary = collector.handle(&mut conn);
        assert!(matches!(
            summary.fault,
            Some(ServiceFault::BadShard {
                shard: 7,
                shards: 2
            })
        ));
        let report = collector.report();
        assert_eq!(report.rejected, 2);
        assert_eq!(report.faults.len(), 2);
    }

    #[test]
    fn fit_reflects_coverage_and_partial_marker() {
        let mut cfg = config("fit", 4, 2);
        cfg.min_coverage = 0.75;
        let h = cfg.expect.clone();
        let collector = Collector::new(cfg).unwrap();
        // Half coverage: shard 0 only.
        let mut conn = Duplex::new(session_bytes(&h, 0, 2, &[0, 1]));
        collector.handle(&mut conn);
        let snap = collector.fit_snapshot().unwrap();
        assert_eq!(snap.covered, 2);
        assert!(snap.partial);
        assert!(snap.partial_fault().is_some());
        // Full coverage: shard 1 lands, the marker clears.
        let mut conn = Duplex::new(session_bytes(&h, 1, 2, &[2, 3]));
        collector.handle(&mut conn);
        let snap = collector.fit_snapshot().unwrap();
        assert_eq!(snap.covered, 4);
        assert!(!snap.partial);
        assert!(snap.partial_fault().is_none());
        assert_eq!(snap.pooled_windows, 4);
        assert!(!snap.rows.is_empty());
    }

    #[test]
    fn crash_recovery_rebuilds_coverage_from_journals() {
        let cfg = config("recover", 8, 2);
        let h = cfg.expect.clone();
        let dir = cfg.journal_dir.clone();
        {
            let collector = Collector::new(cfg.clone()).unwrap();
            let mut conn = Duplex::new(session_bytes(&h, 0, 2, &[0, 1, 2]));
            collector.handle(&mut conn);
            // Dropped without any graceful path — the "SIGKILL".
        }
        // Torn tail: append garbage to the persisted journal, as a
        // kill mid-append would leave.
        let path = dir.join(shard_journal_name(2, 0));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        std::fs::write(&path, &bytes).unwrap();
        let collector = Collector::new(cfg).unwrap();
        let report = collector.report();
        assert_eq!(report.covered, 3, "coverage rebuilt from disk");
        assert_eq!(report.torn_records_dropped, 1);
        assert_eq!(report.torn_bytes_dropped, 3);
        let row = report.shard_rows.first().unwrap();
        assert_eq!(row.shard, 0);
        assert_eq!(row.persisted, 3);
        assert_eq!(row.torn_records_dropped, 1);
        // And a resumed session is told what the server already has.
        let mut conn = Duplex::new(session_bytes(&h, 0, 2, &[3]));
        let summary = collector.handle(&mut conn);
        assert!(summary.fault.is_none(), "{:?}", summary.fault);
        match conn.replies().first() {
            Some(WireMessage::BeginAck { have }) => assert_eq!(have, &vec![0, 1, 2]),
            other => panic!("expected BeginAck, got {other:?}"),
        }
    }

    #[test]
    fn draining_refuses_new_submissions() {
        let cfg = config("drain", 4, 1);
        let h = cfg.expect.clone();
        let collector = Collector::new(cfg).unwrap();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &WireMessage::Shutdown.encode()).unwrap();
        let mut conn = Duplex::new(bytes);
        collector.handle(&mut conn);
        assert!(collector.draining());
        assert!(matches!(
            conn.replies().last(),
            Some(WireMessage::ShutdownAck)
        ));
        let mut conn = Duplex::new(session_bytes(&h, 0, 1, &[0]));
        let summary = collector.handle(&mut conn);
        assert!(matches!(summary.fault, Some(ServiceFault::Draining)));
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        let retry = RetryPolicy::fast(42);
        let again = RetryPolicy::fast(42);
        for attempt in 0..20 {
            let b = retry.backoff(attempt);
            assert_eq!(b, again.backoff(attempt), "attempt {attempt}");
            assert!(b <= retry.backoff_cap);
        }
        // Exponential growth until the cap.
        assert!(retry.backoff(3) > retry.backoff(0));
        // Jitter: different seeds give different schedules.
        let other = RetryPolicy::fast(43);
        let differs = (0..5).any(|a| other.backoff(a) != retry.backoff(a));
        assert!(differs, "jitter must depend on the seed");
    }
}
