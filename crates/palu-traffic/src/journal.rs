//! Durable write-ahead capture journal (DESIGN.md §4f).
//!
//! The trunk-line captures the paper models run for hours to days; at
//! production scale a capture that dies at window 900/1000 must not
//! restart from zero. This module makes the measurement pipeline
//! *resumable*: every completed window's pooled state is appended to
//! an on-disk journal as a length-prefixed, CRC32-checksummed record,
//! and [`Journal::resume`] reconstructs exactly the completed set so
//! [`crate::pipeline::Pipeline::pool_observatory_durable`] recomputes
//! only the missing windows.
//!
//! ## Wire format
//!
//! ```text
//! journal := record*
//! record  := len:u32 LE | crc32(payload):u32 LE | payload[len]
//! payload := type:u8 body
//!
//! type 0 (header, always first, exactly once):
//!     magic[8] = "PALUJRNL"  version:u16  seed:u64  n_v:u64
//!     windows:u64  fingerprint:u64
//!     n_params:u16  (param_len:u16 param_utf8[param_len])*
//! type 1 (one completed window):
//!     window:u64  injected:u64  retries:u64
//!     rec_flag:u8  [kind:u8 attempts:u32 outcome:u8]
//!     res_flag:u8  [BinStats  dmax_flag:u8 [dmax:u64]
//!                   hist_len:u64 (degree:u64 count:u64)*]
//! ```
//!
//! All integers are little-endian; floats ride inside the
//! [`BinStats`] block as raw IEEE-754 bit patterns
//! ([`palu_stats::summary::Welford::encode_into`]), so a replayed
//! window merges bit-identically to the original computation.
//!
//! ## Recovery state machine
//!
//! [`Journal::recover_bytes`] scans front to back. For each record:
//!
//! * the length prefix itself is incomplete, or the declared span
//!   passes EOF → **torn tail**: the bytes are dropped (counted in
//!   [`Recovery`]) and the window recomputes on resume — the only
//!   state a killed writer can leave behind;
//! * a *complete* record whose CRC32 does not match → typed
//!   [`JournalFault::ChecksumMismatch`] refusal: corruption is never
//!   silently dropped, because unlike a torn tail it cannot have been
//!   produced by a crash;
//! * header version/seed/`N_V`/window-count/fingerprint mismatches →
//!   typed refusal: resuming under different parameters would splice
//!   incompatible windows into one pooled series (the fitted-exponent
//!   bias "A critical look at power law modelling" warns about). The
//!   header carries the `key=value` manifest its fingerprint was
//!   derived from, so a fingerprint refusal names the exact parameter
//!   that skewed instead of two opaque hashes.
//!
//! The file is created and rotated via write-to-temp + atomic rename,
//! so the header is either absent or complete on disk; a byte-prefix
//! that ends inside the first record is still classified torn (and
//! resumes from scratch) to keep the kill-point sweep total.
//!
//! Hand-rolled CRC32 (IEEE 802.3, table-driven) because the workspace
//! is dependency-free by policy (lint rule R1).

use crate::fault::{FaultKind, FaultRecord, WindowOutcome};
use palu_stats::histogram::DegreeHistogram;
use palu_stats::summary::BinStats;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal format version; bumped on any wire-format change.
/// Version 2 added the parameter manifest to the header record.
pub const VERSION: u16 = 2;

/// Magic bytes opening every header record.
pub const MAGIC: [u8; 8] = *b"PALUJRNL";

/// Upper bound on a single record's payload length. A *complete*
/// length prefix above this is corruption (typed refusal), never a
/// torn tail — truncating a valid stream cannot manufacture an
/// oversized length.
pub const MAX_RECORD_LEN: u32 = 1 << 24;

/// Payload length of the fixed portion of the header record (type
/// byte + magic + version + seed + n_v + windows + fingerprint); the
/// variable-length parameter manifest follows it.
const HEADER_FIXED_PAYLOAD_LEN: u32 = (1 + 8 + 2 + 8 + 8 + 8 + 8) as u32;

/// Minimum header payload length: the fixed portion plus the
/// manifest's `n_params` count (which may be zero).
const HEADER_MIN_PAYLOAD_LEN: u32 = HEADER_FIXED_PAYLOAD_LEN + 2;

/// Typed journal failure taxonomy. Every refusal is one of these —
/// recovery never panics and never silently resumes from a journal it
/// cannot fully vouch for.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalFault {
    /// An OS-level I/O failure (open, read, write, rename).
    Io {
        /// The path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The file is not a capture journal at all (wrong magic or an
    /// impossible first record).
    NotAJournal {
        /// What failed to parse.
        detail: String,
    },
    /// The journal was written by a different format version.
    VersionSkew {
        /// Version found in the header.
        found: u16,
        /// Version this build writes.
        expected: u16,
    },
    /// The journal belongs to a capture with a different seed.
    SeedMismatch {
        /// Seed recorded in the journal.
        journal: u64,
        /// Seed of the run attempting to resume.
        run: u64,
    },
    /// The journal belongs to a capture with different parameters.
    ConfigMismatch {
        /// Which parameter disagreed: `n_v`, `windows`, a named key
        /// from the fingerprint manifest (e.g. `lambda`), or
        /// `fingerprint` when no manifest is available to diagnose
        /// the skew.
        field: String,
        /// Value recorded in the journal.
        journal: String,
        /// Value of the run attempting to resume.
        run: String,
    },
    /// A complete record whose CRC32 does not match its payload.
    ChecksumMismatch {
        /// Byte offset of the record's length prefix.
        offset: u64,
    },
    /// A checksummed record whose body is internally inconsistent
    /// (unknown type/code, out-of-range window, duplicate window…).
    Malformed {
        /// Byte offset of the record's length prefix.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for JournalFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalFault::Io { path, message } => write!(f, "{path}: {message}"),
            JournalFault::NotAJournal { detail } => {
                write!(f, "not a capture journal: {detail}")
            }
            JournalFault::VersionSkew { found, expected } => write!(
                f,
                "journal format version {found} (this build reads {expected})"
            ),
            JournalFault::SeedMismatch { journal, run } => write!(
                f,
                "seed mismatch: journal captured with seed {journal}, run uses {run} \
                 — refusing to splice incompatible captures"
            ),
            JournalFault::ConfigMismatch {
                field,
                journal,
                run,
            } => write!(
                f,
                "config mismatch on {field}: journal captured with {journal}, run has \
                 {run} — refusing to splice incompatible captures"
            ),
            JournalFault::ChecksumMismatch { offset } => write!(
                f,
                "checksum mismatch in record at byte {offset} — journal is corrupt, \
                 not merely torn; refusing to resume"
            ),
            JournalFault::Malformed { offset, detail } => {
                write!(f, "malformed record at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalFault {}

/// The identity a journal is bound to: a resume is refused unless all
/// four identity fields match the resuming run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalHeader {
    /// The observatory/master seed.
    pub seed: u64,
    /// Packets per window (`N_V`).
    pub n_v: u64,
    /// Total windows the capture will produce.
    pub windows: u64,
    /// FNV-1a fingerprint over every remaining run parameter that
    /// shapes window results (see [`fingerprint64`]). Thread count is
    /// deliberately *excluded*: the merge is bit-identical across
    /// thread counts, so a resume may use a different `--threads`.
    pub fingerprint: u64,
    /// The ordered `key=value` manifest the fingerprint was computed
    /// from, journaled alongside it so a fingerprint refusal can name
    /// the exact parameter that skewed. Empty for callers that supply
    /// a raw fingerprint; never part of the identity comparison
    /// itself (the fingerprint is).
    pub params: Vec<String>,
}

impl JournalHeader {
    /// Build a header whose fingerprint is derived from `params`
    /// (ordered `key=value` strings), keeping manifest and
    /// fingerprint consistent by construction.
    pub fn with_params(seed: u64, n_v: u64, windows: u64, params: Vec<String>) -> JournalHeader {
        let fingerprint = fingerprint64(params.iter().map(String::as_str));
        JournalHeader {
            seed,
            n_v,
            windows,
            fingerprint,
            params,
        }
    }
}

/// One completed window's journaled state — everything the merge
/// needs, so a replayed window is indistinguishable from a computed
/// one.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEntry {
    /// Window index `t`.
    pub window: u64,
    /// Faults the injector planted into this window's attempts.
    pub injected: u64,
    /// Retry attempts this window consumed. Together with the fault
    /// record's `attempts`, this pins the window's RNG stream
    /// position: attempt `k` of window `t` is a fixed derived stream,
    /// so no generator state needs serializing.
    pub retries: u64,
    /// The fault record, for windows that faulted (`None` for a clean
    /// first attempt).
    pub record: Option<FaultRecord>,
    /// The measured result; `None` for a quarantined window.
    pub result: Option<WindowResult>,
}

/// The measured per-window state carried by a [`WindowEntry`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult {
    /// The single-window [`BinStats`] accumulator, byte-exact.
    pub stats: BinStats,
    /// The window's largest observed degree.
    pub d_max: Option<u64>,
    /// The window's measurement histogram (summed into the pooled
    /// histogram downstream fits consume).
    pub histogram: DegreeHistogram,
}

/// What [`Journal::recover_bytes`] reconstructed: the completed
/// windows plus replay accounting, surfaced as journal counters in
/// `--metrics` JSON and `palu-bench`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recovery {
    /// Completed windows by index; resume recomputes the complement.
    pub windows: BTreeMap<u64, WindowEntry>,
    /// Bytes of valid records replayed from the journal.
    pub bytes_replayed: u64,
    /// Bytes dropped from the torn tail (0 on a clean shutdown).
    pub torn_bytes_dropped: u64,
    /// Torn tail records dropped (0 or 1 by construction).
    pub torn_records_dropped: u64,
}

impl Recovery {
    /// A recovery with nothing to replay (fresh capture).
    pub fn empty() -> Self {
        Recovery::default()
    }
}

/// FNV-1a (64-bit) over the given parts with a separator, used to
/// fingerprint run configuration into [`JournalHeader::fingerprint`].
/// Not cryptographic — it guards against *accidental* parameter
/// drift between a capture and its resume, not tampering.
pub fn fingerprint64<'a>(parts: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in part.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ["ab","c"] and ["a","bc"] differ.
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// CRC32 lookup table (IEEE 802.3 reflected polynomial 0xEDB88320),
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE 802.3) of `bytes` — the checksum guarding every
/// journal record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A little-endian cursor over a checksummed payload, turning every
/// short read into a typed [`JournalFault::Malformed`]. Shared with
/// the service wire codec ([`crate::wire`]), which frames control
/// messages with the same record layout.
pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    /// File offset of the record's length prefix, for diagnostics.
    pub(crate) record_offset: u64,
}

impl<'a> Cursor<'a> {
    pub(crate) fn malformed(&self, detail: impl Into<String>) -> JournalFault {
        JournalFault::Malformed {
            offset: self.record_offset,
            detail: detail.into(),
        }
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], JournalFault> {
        if self.bytes.len() < n {
            return Err(self.malformed(format!("truncated {what} inside a checksummed record")));
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, JournalFault> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &str) -> Result<u16, JournalFault> {
        let raw = self.take(2, what)?;
        Ok(u16::from_le_bytes([raw[0], raw[1]]))
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, JournalFault> {
        let raw = self.take(4, what)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, JournalFault> {
        let raw = self.take(8, what)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf))
    }
}

/// Serialize one record (length prefix + CRC + payload) into `out`.
/// The service wire protocol ([`crate::wire`]) frames every message
/// with this exact layout, so a submitted shard record is
/// byte-identical to its on-disk journal record.
pub(crate) fn frame_record(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The header record's framed bytes for `header`. Manifest strings
/// are CLI-parameter scale; lengths are stored as `u16` (a manifest
/// entry longer than 64 KiB is not representable and would be
/// refused on replay by the fingerprint-consistency check).
pub(crate) fn header_record(header: &JournalHeader) -> Vec<u8> {
    // Small header frame sized by the CLI-scale manifest.
    // lint:allow(R7)
    let mut payload = Vec::with_capacity(HEADER_MIN_PAYLOAD_LEN as usize);
    payload.push(0u8);
    payload.extend_from_slice(&MAGIC);
    payload.extend_from_slice(&VERSION.to_le_bytes());
    payload.extend_from_slice(&header.seed.to_le_bytes());
    payload.extend_from_slice(&header.n_v.to_le_bytes());
    payload.extend_from_slice(&header.windows.to_le_bytes());
    payload.extend_from_slice(&header.fingerprint.to_le_bytes());
    payload.extend_from_slice(&(header.params.len() as u16).to_le_bytes());
    for part in &header.params {
        payload.extend_from_slice(&(part.len() as u16).to_le_bytes());
        payload.extend_from_slice(part.as_bytes());
    }
    debug_assert!(payload.len() as u32 >= HEADER_MIN_PAYLOAD_LEN);
    // Sized from bytes already in hand. lint:allow(R7)
    let mut out = Vec::with_capacity(payload.len() + 8);
    frame_record(&payload, &mut out);
    out
}

/// The framed bytes of one window record.
pub(crate) fn window_record(entry: &WindowEntry) -> Vec<u8> {
    // Constant initial hint, independent of window geometry.
    // lint:allow(R7)
    let mut payload = Vec::with_capacity(256);
    payload.push(1u8);
    payload.extend_from_slice(&entry.window.to_le_bytes());
    payload.extend_from_slice(&entry.injected.to_le_bytes());
    payload.extend_from_slice(&entry.retries.to_le_bytes());
    match &entry.record {
        Some(rec) => {
            payload.push(1u8);
            payload.push(rec.kind.code());
            payload.extend_from_slice(&rec.attempts.to_le_bytes());
            payload.push(rec.outcome.code());
        }
        None => payload.push(0u8),
    }
    match &entry.result {
        Some(res) => {
            payload.push(1u8);
            res.stats.encode_into(&mut payload);
            match res.d_max {
                Some(d) => {
                    payload.push(1u8);
                    payload.extend_from_slice(&d.to_le_bytes());
                }
                None => payload.push(0u8),
            }
            let entries: Vec<(u64, u64)> = res.histogram.iter().collect();
            payload.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for (d, c) in entries {
                payload.extend_from_slice(&d.to_le_bytes());
                payload.extend_from_slice(&c.to_le_bytes());
            }
        }
        None => payload.push(0u8),
    }
    // Sized from bytes already in hand. lint:allow(R7)
    let mut out = Vec::with_capacity(payload.len() + 8);
    frame_record(&payload, &mut out);
    out
}

/// Parse a window record's payload (past the type byte).
pub(crate) fn parse_window(
    mut cur: Cursor<'_>,
    expect: &JournalHeader,
) -> Result<WindowEntry, JournalFault> {
    let window = cur.u64("window index")?;
    if window >= expect.windows {
        return Err(cur.malformed(format!(
            "window index {window} out of range for a {}-window capture",
            expect.windows
        )));
    }
    let injected = cur.u64("injected count")?;
    let retries = cur.u64("retry count")?;
    let record = match cur.u8("fault-record flag")? {
        0 => None,
        1 => {
            let code = cur.u8("fault kind")?;
            let kind = FaultKind::from_code(code)
                .ok_or_else(|| cur.malformed(format!("unknown fault kind code {code}")))?;
            let attempts = cur.u32("attempt count")?;
            let code = cur.u8("outcome")?;
            let outcome = WindowOutcome::from_code(code)
                .ok_or_else(|| cur.malformed(format!("unknown outcome code {code}")))?;
            Some(FaultRecord {
                window,
                kind,
                attempts,
                outcome,
            })
        }
        other => return Err(cur.malformed(format!("bad fault-record flag {other}"))),
    };
    let result = match cur.u8("result flag")? {
        0 => None,
        1 => {
            let (stats, rest) = BinStats::decode(cur.bytes)
                .map_err(|e| cur.malformed(format!("bin-stats block: {e}")))?;
            cur.bytes = rest;
            let d_max = match cur.u8("d_max flag")? {
                0 => None,
                1 => Some(cur.u64("d_max")?),
                other => return Err(cur.malformed(format!("bad d_max flag {other}"))),
            };
            let n_entries = cur.u64("histogram length")?;
            // Validate before allocating: each entry is 16 bytes.
            if (n_entries as u128) * 16 > cur.bytes.len() as u128 {
                return Err(cur.malformed("declared histogram length extends past the record"));
            }
            let mut pairs = Vec::with_capacity(palu_sparse::admitted_capacity(n_entries as usize));
            let mut last_degree: Option<u64> = None;
            for _ in 0..n_entries {
                let d = cur.u64("histogram degree")?;
                let c = cur.u64("histogram count")?;
                if last_degree.is_some_and(|prev| prev >= d) {
                    return Err(cur.malformed("histogram degrees not strictly increasing"));
                }
                last_degree = Some(d);
                pairs.push((d, c));
            }
            Some(WindowResult {
                stats,
                d_max,
                histogram: DegreeHistogram::from_counts(pairs),
            })
        }
        other => return Err(cur.malformed(format!("bad result flag {other}"))),
    };
    if !cur.bytes.is_empty() {
        return Err(cur.malformed(format!(
            "{} trailing bytes after the window body",
            cur.bytes.len()
        )));
    }
    Ok(WindowEntry {
        window,
        injected,
        retries,
        record,
        result,
    })
}

/// Name the first skewed parameter between two fingerprint manifests.
/// Falls back to the raw fingerprint values when either side has no
/// manifest to compare (pre-manifest callers, raw-fingerprint tests).
fn diagnose_fingerprint(
    journal: &[String],
    run: &[String],
    journal_fp: u64,
    run_fp: u64,
) -> JournalFault {
    fn split(part: &str) -> (String, String) {
        match part.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => ("parameter".to_string(), part.to_string()),
        }
    }
    for i in 0..journal.len().max(run.len()) {
        let (j, r) = (journal.get(i), run.get(i));
        if j == r {
            continue;
        }
        match (j, r) {
            (Some(a), Some(b)) => {
                let (ka, va) = split(a);
                let (kb, vb) = split(b);
                return if ka == kb {
                    JournalFault::ConfigMismatch {
                        field: ka,
                        journal: va,
                        run: vb,
                    }
                } else {
                    JournalFault::ConfigMismatch {
                        field: "parameter-list".to_string(),
                        journal: a.clone(),
                        run: b.clone(),
                    }
                };
            }
            (Some(a), None) => {
                return JournalFault::ConfigMismatch {
                    field: "parameter-list".to_string(),
                    journal: a.clone(),
                    run: "<absent>".to_string(),
                };
            }
            (None, Some(b)) => {
                return JournalFault::ConfigMismatch {
                    field: "parameter-list".to_string(),
                    journal: "<absent>".to_string(),
                    run: b.clone(),
                };
            }
            (None, None) => {}
        }
    }
    JournalFault::ConfigMismatch {
        field: "fingerprint".to_string(),
        journal: format!("{journal_fp:#018x}"),
        run: format!("{run_fp:#018x}"),
    }
}

/// Parse and verify a header payload (past the type byte) against the
/// resuming run's identity.
pub(crate) fn parse_header(
    mut cur: Cursor<'_>,
    expect: &JournalHeader,
) -> Result<(), JournalFault> {
    let magic = cur.take(8, "magic")?;
    if magic != MAGIC {
        return Err(JournalFault::NotAJournal {
            detail: format!("bad magic {magic:02x?}"),
        });
    }
    let version = cur.u16("version")?;
    if version != VERSION {
        return Err(JournalFault::VersionSkew {
            found: version,
            expected: VERSION,
        });
    }
    let seed = cur.u64("seed")?;
    if seed != expect.seed {
        return Err(JournalFault::SeedMismatch {
            journal: seed,
            run: expect.seed,
        });
    }
    let n_v = cur.u64("n_v")?;
    let windows = cur.u64("windows")?;
    let fingerprint = cur.u64("fingerprint")?;
    let n_params = cur.u16("parameter count")?;
    // Each manifest entry needs at least its 2-byte length on the
    // wire, so the remaining payload bounds the count. lint:allow(R7)
    let mut params = Vec::with_capacity(usize::from(n_params).min(cur.bytes.len() / 2));
    for _ in 0..n_params {
        let len = usize::from(cur.u16("parameter length")?);
        let raw = cur.take(len, "parameter bytes")?;
        match std::str::from_utf8(raw) {
            Ok(part) => params.push(part.to_string()),
            Err(_) => return Err(cur.malformed("parameter manifest entry is not UTF-8")),
        }
    }
    if !cur.bytes.is_empty() {
        return Err(cur.malformed(format!(
            "{} trailing bytes after the header manifest",
            cur.bytes.len()
        )));
    }
    // A non-empty manifest must reproduce the stored fingerprint —
    // otherwise the named-field diagnosis below could lie about what
    // skewed.
    if !params.is_empty() && fingerprint64(params.iter().map(String::as_str)) != fingerprint {
        return Err(cur.malformed("parameter manifest does not match the stored fingerprint"));
    }
    if n_v != expect.n_v {
        return Err(JournalFault::ConfigMismatch {
            field: "n_v".to_string(),
            journal: n_v.to_string(),
            run: expect.n_v.to_string(),
        });
    }
    if windows != expect.windows {
        return Err(JournalFault::ConfigMismatch {
            field: "windows".to_string(),
            journal: windows.to_string(),
            run: expect.windows.to_string(),
        });
    }
    if fingerprint != expect.fingerprint {
        return Err(diagnose_fingerprint(
            &params,
            &expect.params,
            fingerprint,
            expect.fingerprint,
        ));
    }
    Ok(())
}

/// A durable, append-only capture journal bound to one run identity.
///
/// Appends are internally serialized with a mutex so pipeline workers
/// on any thread can journal completed windows directly; record order
/// in the file is irrelevant (each record carries its window index,
/// and the merge is by index).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    header: JournalHeader,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    file: std::fs::File,
    appended_bytes: u64,
    fault: Option<JournalFault>,
}

fn io_fault(path: &Path, e: std::io::Error) -> JournalFault {
    JournalFault::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Write `bytes` to `<path>.tmp` and atomically rename over `path`,
/// so a crash leaves either the old file or the new one — never a
/// half-written hybrid. This is the only sanctioned way to (re)create
/// a journal segment (lint rule R6).
fn atomic_replace(path: &Path, bytes: &[u8]) -> Result<(), JournalFault> {
    let tmp = path.with_extension("journal.tmp");
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_fault(&tmp, e))?;
    f.write_all(bytes).map_err(|e| io_fault(&tmp, e))?;
    f.sync_all().map_err(|e| io_fault(&tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| io_fault(path, e))?;
    Ok(())
}

impl Journal {
    /// Create (or truncate) a journal for a fresh capture: the header
    /// record is written via temp-file + atomic rename, then the file
    /// is opened for appends.
    ///
    /// # Errors
    ///
    /// [`JournalFault::Io`] on any filesystem failure.
    pub fn create(
        path: impl Into<PathBuf>,
        header: JournalHeader,
    ) -> Result<Journal, JournalFault> {
        let path = path.into();
        atomic_replace(&path, &header_record(&header))?;
        Journal::open_append(path, header)
    }

    /// Resume from an existing journal: scan it, validate its identity
    /// against `header`, drop a torn tail, compact the file (atomic
    /// segment rotation: the surviving records are rewritten through
    /// temp-file + rename), and reopen for appends.
    ///
    /// # Errors
    ///
    /// [`JournalFault::Io`] on filesystem failures, otherwise the
    /// typed refusals of [`Journal::recover_bytes`].
    pub fn resume(
        path: impl Into<PathBuf>,
        header: JournalHeader,
    ) -> Result<(Journal, Recovery), JournalFault> {
        let path = path.into();
        let bytes = std::fs::read(&path).map_err(|e| io_fault(&path, e))?;
        let recovery = Journal::recover_bytes(&bytes, &header)?;
        // Segment rotation: serialize the surviving state into a fresh
        // segment so the torn tail (if any) is physically gone and the
        // record order is normalized.
        let mut fresh = header_record(&header);
        for entry in recovery.windows.values() {
            fresh.extend_from_slice(&window_record(entry));
        }
        atomic_replace(&path, &fresh)?;
        let journal = Journal::open_append(path, header)?;
        Ok((journal, recovery))
    }

    /// Read a journal file and scan it with
    /// [`Journal::recover_bytes`] — the read-only half of
    /// [`Journal::resume`]: no identity is taken over the file, no
    /// compaction happens. The federation merge uses this to inspect
    /// shard journals without rotating them.
    ///
    /// # Errors
    ///
    /// [`JournalFault::Io`] when the file cannot be read, otherwise
    /// the typed refusals of [`Journal::recover_bytes`].
    pub fn recover_file(path: &Path, expect: &JournalHeader) -> Result<Recovery, JournalFault> {
        let bytes = std::fs::read(path).map_err(|e| io_fault(path, e))?;
        Journal::recover_bytes(&bytes, expect)
    }

    fn open_append(path: PathBuf, header: JournalHeader) -> Result<Journal, JournalFault> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_fault(&path, e))?;
        Ok(Journal {
            path,
            header,
            inner: Mutex::new(Inner {
                file,
                appended_bytes: 0,
                fault: None,
            }),
        })
    }

    /// Pure scan of journal bytes: replay valid records, drop a torn
    /// tail, refuse corruption. This is [`Journal::resume`] minus the
    /// filesystem — the kill-point sweep test drives it over every
    /// byte prefix of a capture.
    ///
    /// # Errors
    ///
    /// The typed refusals documented on [`JournalFault`]; a torn tail
    /// is *not* an error (it is the one state a killed writer can
    /// leave) and is reported through the [`Recovery`] counters.
    pub fn recover_bytes(bytes: &[u8], expect: &JournalHeader) -> Result<Recovery, JournalFault> {
        let mut recovery = Recovery::empty();
        let mut off: usize = 0;
        let mut saw_header = false;
        loop {
            let remaining = bytes.len() - off;
            if remaining == 0 {
                break;
            }
            if remaining < 4 {
                // Not even a complete length prefix.
                break;
            }
            let len =
                u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
            if off == 0 && !(HEADER_MIN_PAYLOAD_LEN..=MAX_RECORD_LEN).contains(&len) {
                // The first record of a genuine journal is a header
                // (written atomically, so never torn) and its payload
                // can't be shorter than the fixed fields plus the
                // manifest count, nor longer than any legal record;
                // anything else is a foreign file, and refusing here
                // prevents a resume from overwriting it. Plausible
                // first-record lengths fall through to the CRC +
                // magic checks below.
                return Err(JournalFault::NotAJournal {
                    detail: format!(
                        "first record declares length {len}, a journal header is at \
                         least {HEADER_MIN_PAYLOAD_LEN}"
                    ),
                });
            }
            if len == 0 || len > MAX_RECORD_LEN {
                return Err(JournalFault::Malformed {
                    offset: off as u64,
                    detail: format!("record length {len} outside (0, {MAX_RECORD_LEN}]"),
                });
            }
            if remaining < 8 || (remaining - 8) < len as usize {
                // The record's declared span passes EOF: torn tail.
                // Sanity-check what IS present of the first record so a
                // truncated foreign file is still refused.
                if off == 0 {
                    if remaining >= 9 && bytes[8] != 0 {
                        return Err(JournalFault::NotAJournal {
                            detail: format!("first record type {} is not a header", bytes[8]),
                        });
                    }
                    let have_magic = remaining.saturating_sub(9).min(8);
                    if have_magic > 0 && bytes[9..9 + have_magic] != MAGIC[..have_magic] {
                        return Err(JournalFault::NotAJournal {
                            detail: "magic bytes do not match".to_string(),
                        });
                    }
                }
                break;
            }
            let payload = &bytes[off + 8..off + 8 + len as usize];
            let stored = u32::from_le_bytes([
                bytes[off + 4],
                bytes[off + 5],
                bytes[off + 6],
                bytes[off + 7],
            ]);
            if crc32(payload) != stored {
                return Err(JournalFault::ChecksumMismatch { offset: off as u64 });
            }
            let cur = Cursor {
                bytes: &payload[1..],
                record_offset: off as u64,
            };
            match payload[0] {
                0 => {
                    if saw_header {
                        return Err(cur.malformed("second header record"));
                    }
                    parse_header(cur, expect)?;
                    saw_header = true;
                }
                1 => {
                    if !saw_header {
                        return Err(cur.malformed("window record before the header"));
                    }
                    let entry = parse_window(cur, expect)?;
                    let window = entry.window;
                    if recovery.windows.insert(window, entry).is_some() {
                        return Err(JournalFault::Malformed {
                            offset: off as u64,
                            detail: format!("duplicate record for window {window}"),
                        });
                    }
                }
                other => {
                    return Err(cur.malformed(format!("unknown record type {other}")));
                }
            }
            off += 8 + len as usize;
            recovery.bytes_replayed = off as u64;
        }
        let torn = (bytes.len() - off) as u64;
        recovery.torn_bytes_dropped = torn;
        recovery.torn_records_dropped = u64::from(torn > 0);
        Ok(recovery)
    }

    /// Append one completed window's record and flush it to the OS.
    ///
    /// Thread-safe; pipeline workers call this directly. The first
    /// failure is also latched (see [`Journal::take_fault`]) so the
    /// pipeline can surface it after the capture scope joins.
    ///
    /// # Errors
    ///
    /// [`JournalFault::Io`] when the write fails.
    pub fn append(&self, entry: &WindowEntry) -> Result<(), JournalFault> {
        let record = window_record(entry);
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let write = inner
            .file
            .write_all(&record)
            .and_then(|()| inner.file.flush());
        match write {
            Ok(()) => {
                inner.appended_bytes += record.len() as u64;
                Ok(())
            }
            Err(e) => {
                let fault = io_fault(&self.path, e);
                if inner.fault.is_none() {
                    inner.fault = Some(fault.clone());
                }
                Err(fault)
            }
        }
    }

    /// The first append failure since the last call, if any.
    pub fn take_fault(&self) -> Option<JournalFault> {
        match self.inner.lock() {
            Ok(mut g) => g.fault.take(),
            Err(poisoned) => poisoned.into_inner().fault.take(),
        }
    }

    /// Bytes appended through this handle (excludes replayed bytes).
    pub fn appended_bytes(&self) -> u64 {
        match self.inner.lock() {
            Ok(g) => g.appended_bytes,
            Err(poisoned) => poisoned.into_inner().appended_bytes,
        }
    }

    /// The identity this journal is bound to.
    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader::with_params(7, 100, 16, vec!["a=1".to_string(), "b=2".to_string()])
    }

    /// Destructure a `ConfigMismatch` or panic with the actual fault.
    fn config_mismatch(err: JournalFault) -> (String, String, String) {
        match err {
            JournalFault::ConfigMismatch {
                field,
                journal,
                run,
            } => (field, journal, run),
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }

    fn entry(window: u64) -> WindowEntry {
        let mut stats = BinStats::new();
        stats.push(&palu_stats::logbin::DifferentialCumulative::from_values(
            vec![0.5, 0.25, 0.25],
        ));
        WindowEntry {
            window,
            injected: window % 2,
            retries: window % 3,
            record: (window % 2 == 1).then(|| FaultRecord {
                window,
                kind: FaultKind::Truncated,
                attempts: 2,
                outcome: WindowOutcome::Recovered,
            }),
            result: Some(WindowResult {
                stats,
                d_max: Some(10 + window),
                histogram: DegreeHistogram::from_counts([(1, 5), (2, 3), (10 + window, 1)]),
            }),
        }
    }

    fn journal_bytes(h: &JournalHeader, entries: &[WindowEntry]) -> Vec<u8> {
        let mut bytes = header_record(h);
        for e in entries {
            bytes.extend_from_slice(&window_record(e));
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fingerprint_separates_parts() {
        assert_ne!(fingerprint64(["ab", "c"]), fingerprint64(["a", "bc"]));
        assert_eq!(fingerprint64(["x", "y"]), fingerprint64(["x", "y"]));
    }

    #[test]
    fn round_trip_preserves_entries() {
        let h = header();
        let entries: Vec<WindowEntry> = (0..5).map(entry).collect();
        let bytes = journal_bytes(&h, &entries);
        let rec = Journal::recover_bytes(&bytes, &h).unwrap();
        assert_eq!(rec.windows.len(), 5);
        for e in &entries {
            assert_eq!(rec.windows.get(&e.window), Some(e));
        }
        assert_eq!(rec.bytes_replayed, bytes.len() as u64);
        assert_eq!(rec.torn_bytes_dropped, 0);
        assert_eq!(rec.torn_records_dropped, 0);
    }

    #[test]
    fn quarantined_window_round_trips_without_result() {
        let h = header();
        let e = WindowEntry {
            window: 3,
            injected: 2,
            retries: 1,
            record: Some(FaultRecord {
                window: 3,
                kind: FaultKind::Degenerate,
                attempts: 2,
                outcome: WindowOutcome::Quarantined,
            }),
            result: None,
        };
        let bytes = journal_bytes(&h, std::slice::from_ref(&e));
        let rec = Journal::recover_bytes(&bytes, &h).unwrap();
        assert_eq!(rec.windows.get(&3), Some(&e));
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let h = header();
        let entries: Vec<WindowEntry> = (0..3).map(entry).collect();
        let bytes = journal_bytes(&h, &entries);
        let boundary = journal_bytes(&h, &entries[..2]).len();
        // Cut inside the third window record.
        for cut in [boundary + 1, boundary + 5, bytes.len() - 1] {
            let rec = Journal::recover_bytes(&bytes[..cut], &h).unwrap();
            assert_eq!(rec.windows.len(), 2, "cut {cut}");
            assert_eq!(rec.bytes_replayed, boundary as u64, "cut {cut}");
            assert_eq!(rec.torn_bytes_dropped, (cut - boundary) as u64);
            assert_eq!(rec.torn_records_dropped, 1);
        }
    }

    #[test]
    fn checksum_corruption_is_refused() {
        let h = header();
        let entries: Vec<WindowEntry> = (0..3).map(entry).collect();
        let mut bytes = journal_bytes(&h, &entries);
        let boundary = journal_bytes(&h, &entries[..1]).len();
        // Flip one payload byte inside the second window record.
        bytes[boundary + 12] ^= 0x40;
        let err = Journal::recover_bytes(&bytes, &h).unwrap_err();
        assert_eq!(
            err,
            JournalFault::ChecksumMismatch {
                offset: boundary as u64
            }
        );
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn identity_mismatches_are_typed_refusals() {
        let h = header();
        let bytes = journal_bytes(&h, &[entry(0)]);
        let seed = JournalHeader {
            seed: 8,
            ..header()
        };
        assert!(matches!(
            Journal::recover_bytes(&bytes, &seed).unwrap_err(),
            JournalFault::SeedMismatch { journal: 7, run: 8 }
        ));
        let nv = JournalHeader {
            n_v: 101,
            ..header()
        };
        let (field, journal, run) =
            config_mismatch(Journal::recover_bytes(&bytes, &nv).unwrap_err());
        assert_eq!(
            (field.as_str(), journal.as_str(), run.as_str()),
            ("n_v", "100", "101")
        );
        let wins = JournalHeader {
            windows: 17,
            ..header()
        };
        let (field, ..) = config_mismatch(Journal::recover_bytes(&bytes, &wins).unwrap_err());
        assert_eq!(field, "windows");
        // Same manifest on both sides but a different stored
        // fingerprint: nothing to name, fall back to the raw values.
        let fp = JournalHeader {
            fingerprint: 1,
            ..header()
        };
        let (field, ..) = config_mismatch(Journal::recover_bytes(&bytes, &fp).unwrap_err());
        assert_eq!(field, "fingerprint");
    }

    #[test]
    fn fingerprint_skew_names_the_parameter() {
        let on_disk = JournalHeader::with_params(
            7,
            100,
            16,
            vec!["lambda=2".to_string(), "alpha=1.5".to_string()],
        );
        let bytes = journal_bytes(&on_disk, &[]);
        let resuming = JournalHeader::with_params(
            7,
            100,
            16,
            vec!["lambda=2".to_string(), "alpha=2.5".to_string()],
        );
        let err = Journal::recover_bytes(&bytes, &resuming).unwrap_err();
        assert!(err.to_string().contains("alpha"), "{err}");
        let (field, journal, run) = config_mismatch(err);
        assert_eq!(
            (field.as_str(), journal.as_str(), run.as_str()),
            ("alpha", "1.5", "2.5")
        );
        // A manifest that is longer on one side names the extra entry.
        let extra = JournalHeader::with_params(
            7,
            100,
            16,
            vec![
                "lambda=2".to_string(),
                "alpha=1.5".to_string(),
                "burst=3".to_string(),
            ],
        );
        let (field, journal, run) =
            config_mismatch(Journal::recover_bytes(&bytes, &extra).unwrap_err());
        assert_eq!(field, "parameter-list");
        assert_eq!(journal, "<absent>");
        assert_eq!(run, "burst=3");
    }

    #[test]
    fn header_manifest_round_trips() {
        let h = JournalHeader::with_params(
            42,
            1_000,
            8,
            vec!["nodes=20000".to_string(), "lambda=2".to_string()],
        );
        let bytes = journal_bytes(&h, &[entry(0)]);
        let rec = Journal::recover_bytes(&bytes, &h).unwrap();
        assert_eq!(rec.windows.len(), 1);
    }

    #[test]
    fn tampered_manifest_is_malformed() {
        let h = JournalHeader::with_params(7, 100, 16, vec!["lambda=2".to_string()]);
        let mut bytes = journal_bytes(&h, &[]);
        // Patch one manifest byte (the last payload byte) and
        // re-checksum: the CRC is now valid but the manifest no
        // longer reproduces the stored fingerprint.
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        bytes[8 + len - 1] ^= 0x01;
        let crc = crc32(&bytes[8..8 + len]);
        bytes[4..8].copy_from_slice(&crc.to_le_bytes());
        let err = Journal::recover_bytes(&bytes, &h).unwrap_err();
        assert!(matches!(err, JournalFault::Malformed { .. }), "{err:?}");
        assert!(err.to_string().contains("manifest"), "{err}");
    }

    #[test]
    fn version_skew_is_refused() {
        let h = header();
        let mut bytes = journal_bytes(&h, &[]);
        // The version field sits after len(4) + crc(4) + type(1) +
        // magic(8); patch it and re-checksum the payload.
        bytes[17] = 99;
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        let crc = crc32(&bytes[8..8 + len]);
        bytes[4..8].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Journal::recover_bytes(&bytes, &h).unwrap_err(),
            JournalFault::VersionSkew {
                found: 99,
                expected: VERSION
            }
        ));
    }

    #[test]
    fn foreign_files_are_not_journals() {
        let h = header();
        let err = Journal::recover_bytes(b"definitely not a journal file", &h).unwrap_err();
        assert!(matches!(err, JournalFault::NotAJournal { .. }), "{err:?}");
        // A tiny fragment (shorter than a length prefix) is treated as
        // a torn header: resumable from scratch.
        let rec = Journal::recover_bytes(b"\x01", &h).unwrap();
        assert!(rec.windows.is_empty());
        assert_eq!(rec.torn_records_dropped, 1);
        // Empty file likewise.
        let rec = Journal::recover_bytes(b"", &h).unwrap();
        assert!(rec.windows.is_empty());
        assert_eq!(rec.torn_records_dropped, 0);
    }

    #[test]
    fn duplicate_window_is_refused() {
        let h = header();
        let bytes = journal_bytes(&h, &[entry(2), entry(2)]);
        assert!(matches!(
            Journal::recover_bytes(&bytes, &h).unwrap_err(),
            JournalFault::Malformed { .. }
        ));
    }

    #[test]
    fn out_of_range_window_is_refused() {
        let h = header();
        let bytes = journal_bytes(&h, &[entry(16)]);
        assert!(matches!(
            Journal::recover_bytes(&bytes, &h).unwrap_err(),
            JournalFault::Malformed { .. }
        ));
    }

    #[test]
    fn create_append_resume_file_cycle() {
        let dir = std::env::temp_dir().join("palu-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle.journal");
        let h = header();
        let j = Journal::create(&path, h.clone()).unwrap();
        j.append(&entry(0)).unwrap();
        j.append(&entry(1)).unwrap();
        assert!(j.appended_bytes() > 0);
        assert!(j.take_fault().is_none());
        drop(j);
        // Simulate a crash mid-append: truncate into the tail record.
        let mut bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len() - 7;
        bytes.truncate(keep);
        std::fs::write(&path, &bytes).unwrap();
        let (j2, rec) = Journal::resume(&path, h.clone()).unwrap();
        assert_eq!(rec.windows.len(), 1);
        assert_eq!(rec.torn_records_dropped, 1);
        assert_eq!(rec.windows.get(&0), Some(&entry(0)));
        // The rotation compacted the torn tail away: a fresh scan of
        // the rotated segment is clean.
        j2.append(&entry(1)).unwrap();
        drop(j2);
        let bytes = std::fs::read(&path).unwrap();
        let rec = Journal::recover_bytes(&bytes, &h).unwrap();
        assert_eq!(rec.windows.len(), 2);
        assert_eq!(rec.torn_bytes_dropped, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_refuses_wrong_seed_on_disk() {
        let dir = std::env::temp_dir().join("palu-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong_seed.journal");
        let h = header();
        drop(Journal::create(&path, h.clone()).unwrap());
        let other = JournalHeader { seed: 99, ..h };
        let err = Journal::resume(&path, other).unwrap_err();
        assert!(matches!(err, JournalFault::SeedMismatch { .. }), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }
}
