//! Multi-window measurement pipeline.
//!
//! Section II-A: each window `t` yields a pooled distribution
//! `D_t(d_i)`; "the corresponding mean and standard deviation of
//! `D_t(d_i)` over many different consecutive values of t for a given
//! data set are denoted `D(d_i)` and `σ(d_i)`". Every Figure 3 panel is
//! one [`PooledDistribution`] produced by this pipeline. Windows can be
//! processed in parallel (scoped threads) since each is independent;
//! the per-bin accumulation is merged deterministically in window
//! order.

use crate::window::PacketWindow;
use palu_sparse::quantities::NetworkQuantity;
use palu_stats::logbin::DifferentialCumulative;
use palu_stats::summary::BinStats;

/// Which degree-like measurement the pipeline pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measurement {
    /// One of the five directed Figure 1 quantities.
    Quantity(NetworkQuantity),
    /// The undirected host degree (distinct partners) — the quantity
    /// the PALU model's analysis describes.
    UndirectedDegree,
    /// The *weighted* undirected degree: total packets a host touched
    /// (sent + received). The paper's future-work weighted-edge view,
    /// "where potential weights could be the number of packets …
    /// sent over a link".
    NodeVolume,
}

impl Measurement {
    /// Extract this measurement's histogram from a window.
    pub fn histogram(&self, w: &PacketWindow) -> palu_stats::histogram::DegreeHistogram {
        match self {
            Measurement::Quantity(q) => q.histogram(w.matrix()),
            Measurement::UndirectedDegree => w.undirected_degree_histogram(),
            Measurement::NodeVolume => w.node_volume_histogram(),
        }
    }
}

/// The pooled multi-window result: `D(d_i)`, `σ(d_i)`, and support
/// metadata.
#[derive(Debug, Clone)]
pub struct PooledDistribution {
    /// Per-bin mean `D(d_i)`.
    pub mean: DifferentialCumulative,
    /// Per-bin standard deviation `σ(d_i)`.
    pub sigma: Vec<f64>,
    /// Number of windows pooled.
    pub windows: u64,
    /// Largest degree observed in any window (`d_max`, Equation 1).
    pub d_max: u64,
}

impl PooledDistribution {
    /// Inverse-variance weights for weighted fitting. Constant bins
    /// get `default_weight`.
    pub fn weights(&self, default_weight: f64) -> Vec<f64> {
        self.sigma
            .iter()
            .map(|&s| {
                if s > 0.0 {
                    1.0 / (s * s)
                } else {
                    default_weight
                }
            })
            .collect()
    }
}

/// Accumulates windows into a pooled distribution for one measurement.
#[derive(Debug, Clone)]
pub struct Pipeline {
    measurement: Measurement,
    stats: BinStats,
    d_max: u64,
}

impl Pipeline {
    /// Create a pipeline pooling `measurement`.
    pub fn new(measurement: Measurement) -> Self {
        Pipeline {
            measurement,
            stats: BinStats::new(),
            d_max: 0,
        }
    }

    /// The measurement being pooled.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Fold in one window.
    pub fn push_window(&mut self, w: &PacketWindow) {
        let h = self.measurement.histogram(w);
        if let Some(d) = h.d_max() {
            self.d_max = self.d_max.max(d);
        }
        self.stats.push(&DifferentialCumulative::from_histogram(&h));
    }

    /// Fold in many windows.
    pub fn push_windows(&mut self, windows: &[PacketWindow]) {
        for w in windows {
            self.push_window(w);
        }
    }

    /// Number of windows folded in so far.
    pub fn windows(&self) -> u64 {
        self.stats.windows()
    }

    /// Finish: the pooled `D(d_i) ± σ(d_i)`.
    pub fn finish(&self) -> PooledDistribution {
        PooledDistribution {
            mean: self.stats.mean_distribution(),
            sigma: self.stats.std_devs(),
            windows: self.stats.windows(),
            d_max: self.d_max,
        }
    }

    /// One-shot convenience: pool `windows` for `measurement`.
    pub fn pool(measurement: Measurement, windows: &[PacketWindow]) -> PooledDistribution {
        let mut p = Pipeline::new(measurement);
        p.push_windows(windows);
        p.finish()
    }

    /// Pool several measurements over the same windows concurrently
    /// (one scoped thread per measurement).
    pub fn pool_many(
        measurements: &[Measurement],
        windows: &[PacketWindow],
    ) -> Vec<PooledDistribution> {
        let mut results: Vec<Option<PooledDistribution>> = vec![None; measurements.len()];
        std::thread::scope(|s| {
            for (slot, &m) in results.iter_mut().zip(measurements) {
                s.spawn(move || {
                    *slot = Some(Pipeline::pool(m, windows));
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observatory::{Observatory, ObservatoryConfig};
    use crate::packets::{EdgeIntensity, Packet};
    use palu_graph::palu_gen::PaluGenerator;

    fn observatory(seed: u64) -> Observatory {
        Observatory::new(
            ObservatoryConfig {
                name: "pipeline-test".into(),
                date: "2026-07-06".into(),
                n_v: 4_000,
            },
            &PaluGenerator::new(2_000, 600, 400, 2.0, 1.5).unwrap(),
            EdgeIntensity::Uniform,
            seed,
        )
    }

    #[test]
    fn pooled_mass_is_one() {
        let mut obs = observatory(1);
        let windows = obs.windows(8);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        assert_eq!(pooled.windows, 8);
        assert!((pooled.mean.total_mass() - 1.0).abs() < 1e-9);
        assert!(pooled.d_max >= 1);
        assert_eq!(pooled.sigma.len(), pooled.mean.n_bins());
    }

    #[test]
    fn sigma_is_zero_for_single_window() {
        let mut obs = observatory(2);
        let windows = obs.windows(1);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        assert!(pooled.sigma.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn sigma_positive_for_varying_windows() {
        let mut obs = observatory(3);
        let windows = obs.windows(10);
        let pooled = Pipeline::pool(
            Measurement::Quantity(NetworkQuantity::SourceFanOut),
            &windows,
        );
        assert!(
            pooled.sigma.iter().any(|&s| s > 0.0),
            "some bin must fluctuate across windows"
        );
    }

    #[test]
    fn incremental_equals_batch() {
        let mut obs = observatory(4);
        let windows = obs.windows(5);
        let batch = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        let mut inc = Pipeline::new(Measurement::UndirectedDegree);
        for w in &windows {
            inc.push_window(w);
        }
        let inc = inc.finish();
        assert_eq!(batch.mean, inc.mean);
        assert_eq!(batch.sigma, inc.sigma);
        assert_eq!(batch.d_max, inc.d_max);
    }

    #[test]
    fn pool_many_matches_individual() {
        let mut obs = observatory(5);
        let windows = obs.windows(4);
        let ms = [
            Measurement::UndirectedDegree,
            Measurement::Quantity(NetworkQuantity::LinkPackets),
            Measurement::Quantity(NetworkQuantity::DestinationFanIn),
        ];
        let many = Pipeline::pool_many(&ms, &windows);
        for (m, pooled) in ms.iter().zip(&many) {
            let single = Pipeline::pool(*m, &windows);
            assert_eq!(single.mean, pooled.mean);
            assert_eq!(single.sigma, pooled.sigma);
        }
    }

    #[test]
    fn degree_one_bin_dominates_palu_traffic() {
        // PALU traffic at moderate p has its largest pooled mass in the
        // d = 1 bin (leaves + unattached links) — the headline
        // observation of the paper.
        let mut obs = observatory(6);
        let windows = obs.windows(6);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        let d1 = pooled.mean.value(0);
        for i in 1..pooled.mean.n_bins() {
            assert!(d1 >= pooled.mean.value(i), "bin {i} exceeds the d=1 bin");
        }
        assert!(d1 > 0.2, "d=1 mass {d1} suspiciously small");
    }

    #[test]
    fn weights_invert_variance() {
        let pooled = PooledDistribution {
            mean: palu_stats::logbin::DifferentialCumulative::from_values(vec![0.5, 0.5]),
            sigma: vec![0.1, 0.0],
            windows: 2,
            d_max: 2,
        };
        let w = pooled.weights(7.0);
        assert!((w[0] - 100.0).abs() < 1e-9);
        assert_eq!(w[1], 7.0);
    }

    #[test]
    fn measurement_histograms_dispatch() {
        let packets = vec![
            Packet { src: 0, dst: 1 },
            Packet { src: 1, dst: 0 },
            Packet { src: 0, dst: 2 },
        ];
        let w = PacketWindow::from_packets(0, &packets);
        let und = Measurement::UndirectedDegree.histogram(&w);
        // Partners: 0↔{1,2}, 1↔{0}, 2↔{0}.
        assert_eq!(und.count(2), 1);
        assert_eq!(und.count(1), 2);
        let fanout = Measurement::Quantity(NetworkQuantity::SourceFanOut).histogram(&w);
        // Sources 0 (→1,2) and 1 (→0).
        assert_eq!(fanout.count(2), 1);
        assert_eq!(fanout.count(1), 1);
    }
}
