//! Multi-window measurement pipeline.
//!
//! Section II-A: each window `t` yields a pooled distribution
//! `D_t(d_i)`; "the corresponding mean and standard deviation of
//! `D_t(d_i)` over many different consecutive values of t for a given
//! data set are denoted `D(d_i)` and `σ(d_i)`". Every Figure 3 panel is
//! one [`PooledDistribution`] produced by this pipeline.
//!
//! Windows ARE processed in parallel here —
//! [`Pipeline::pool_observatory_parallel`] shards the expensive
//! synthesize → window → histogram → bin stages across
//! `std::thread::scope` workers, one contiguous batch of windows per
//! worker, with each window drawing from its own splittable RNG stream
//! ([`palu_stats::rng::SeedSequence::window_rng`]). The per-window
//! [`BinStats`] results are then merged on the calling thread
//! *deterministically in window order* via `BinStats::merge` (whose
//! single-window path replays the exact float-op sequence of a serial
//! push), so the pooled result is **bit-identical** to the serial fold
//! for any thread count.

use crate::fault::{
    FailurePolicy, FaultAction, FaultRecord, FaultReport, InjectedFault, Injector, PipelineError,
    WindowFault, WindowOutcome,
};
use crate::journal::{Journal, Recovery, WindowEntry, WindowResult};
use crate::metrics::{time_stage, Metrics, Stage};
use crate::observatory::Observatory;
use crate::window::PacketWindow;
use palu_sparse::quantities::NetworkQuantity;
use palu_stats::histogram::DegreeHistogram;
use palu_stats::logbin::DifferentialCumulative;
use palu_stats::summary::BinStats;

/// Which degree-like measurement the pipeline pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measurement {
    /// One of the five directed Figure 1 quantities.
    Quantity(NetworkQuantity),
    /// The undirected host degree (distinct partners) — the quantity
    /// the PALU model's analysis describes.
    UndirectedDegree,
    /// The *weighted* undirected degree: total packets a host touched
    /// (sent + received). The paper's future-work weighted-edge view,
    /// "where potential weights could be the number of packets …
    /// sent over a link".
    NodeVolume,
}

impl Measurement {
    /// Extract this measurement's histogram from a window.
    pub fn histogram(&self, w: &PacketWindow) -> palu_stats::histogram::DegreeHistogram {
        match self {
            Measurement::Quantity(q) => q.histogram(w.matrix()),
            Measurement::UndirectedDegree => w.undirected_degree_histogram(),
            Measurement::NodeVolume => w.node_volume_histogram(),
        }
    }
}

/// The pooled multi-window result: `D(d_i)`, `σ(d_i)`, and support
/// metadata.
#[derive(Debug, Clone)]
pub struct PooledDistribution {
    /// Per-bin mean `D(d_i)`.
    pub mean: DifferentialCumulative,
    /// Per-bin standard deviation `σ(d_i)`.
    pub sigma: Vec<f64>,
    /// Number of windows pooled.
    pub windows: u64,
    /// Largest degree observed in any window (`d_max`, Equation 1).
    pub d_max: u64,
}

impl PooledDistribution {
    /// Inverse-variance weights for weighted fitting. Constant bins
    /// get `default_weight`.
    ///
    /// When *every* bin has zero sigma — a single pooled window, or
    /// bit-identical windows — there is no variance information at
    /// all, and the weights degenerate to uniform `1.0` (not
    /// `default_weight`), so a weighted fit coincides exactly with the
    /// unweighted one instead of silently scaling its objective by an
    /// arbitrary constant.
    pub fn weights(&self, default_weight: f64) -> Vec<f64> {
        if self.sigma.iter().all(|&s| s <= 0.0) {
            return vec![1.0; self.sigma.len()];
        }
        self.sigma
            .iter()
            .map(|&s| {
                if s > 0.0 {
                    1.0 / (s * s)
                } else {
                    default_weight
                }
            })
            .collect()
    }
}

/// Accumulates windows into a pooled distribution for one measurement.
#[derive(Debug, Clone)]
pub struct Pipeline {
    measurement: Measurement,
    stats: BinStats,
    d_max: u64,
}

impl Pipeline {
    /// Create a pipeline pooling `measurement`.
    pub fn new(measurement: Measurement) -> Self {
        Pipeline {
            measurement,
            stats: BinStats::new(),
            d_max: 0,
        }
    }

    /// The measurement being pooled.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Fold in one window.
    pub fn push_window(&mut self, w: &PacketWindow) {
        let h = self.measurement.histogram(w);
        self.push_binned(&DifferentialCumulative::from_histogram(&h), h.d_max());
    }

    /// Fold in one window's already-binned distribution `D_t(d_i)`
    /// plus that window's largest observed degree.
    /// [`Pipeline::push_window`] is exactly `push_binned` of the
    /// window's own histogram; the parallel pipeline bins on worker
    /// threads and replays this fold in window order, which is why its
    /// output is bit-identical to the serial path.
    pub fn push_binned(&mut self, binned: &DifferentialCumulative, d_max: Option<u64>) {
        if let Some(d) = d_max {
            self.d_max = self.d_max.max(d);
        }
        self.stats.push(binned);
    }

    /// Fold in many windows.
    pub fn push_windows(&mut self, windows: &[PacketWindow]) {
        for w in windows {
            self.push_window(w);
        }
    }

    /// Number of windows folded in so far.
    pub fn windows(&self) -> u64 {
        self.stats.windows()
    }

    /// Finish: the pooled `D(d_i) ± σ(d_i)`.
    pub fn finish(&self) -> PooledDistribution {
        PooledDistribution {
            mean: self.stats.mean_distribution(),
            sigma: self.stats.std_devs(),
            windows: self.stats.windows(),
            d_max: self.d_max,
        }
    }

    /// One-shot convenience: pool `windows` for `measurement`.
    pub fn pool(measurement: Measurement, windows: &[PacketWindow]) -> PooledDistribution {
        let mut p = Pipeline::new(measurement);
        p.push_windows(windows);
        p.finish()
    }

    /// Pool several measurements over the same windows concurrently
    /// (one scoped thread per measurement).
    pub fn pool_many(
        measurements: &[Measurement],
        windows: &[PacketWindow],
    ) -> Vec<PooledDistribution> {
        let mut results: Vec<Option<PooledDistribution>> = vec![None; measurements.len()];
        std::thread::scope(|s| {
            for (slot, &m) in results.iter_mut().zip(measurements) {
                s.spawn(move || {
                    *slot = Some(Pipeline::pool(m, windows));
                });
            }
        });
        // The scope joined every worker, so each slot is filled.
        let results: Vec<PooledDistribution> = results.into_iter().flatten().collect();
        assert_eq!(
            results.len(),
            measurements.len(),
            "every slot filled by a joined worker"
        );
        results
    }

    /// Pool the next `n` consecutive windows of `obs` with the
    /// synthesize → window → histogram → bin stages sharded across
    /// `threads` scoped workers (one contiguous batch of windows per
    /// worker). Worker count is clamped to `[1, n]`.
    ///
    /// Each window draws from its own splittable RNG stream
    /// ([`palu_stats::rng::SeedSequence::window_rng`]), and the
    /// per-window binned results are merged on the calling thread in
    /// window order through [`BinStats::merge`], whose single-window
    /// path replays the exact float-op sequence of a serial
    /// [`Pipeline::push_window`]. The result is therefore
    /// **bit-identical** to [`Pipeline::pool`] over
    /// [`Observatory::windows`] for *any* thread count — the contract
    /// pinned by `parallel_pool_bit_identical_to_serial` here and by
    /// `tests/parallel_pipeline.rs` at the workspace level. The
    /// observatory's window counter advances exactly as if the windows
    /// had been captured serially.
    ///
    /// `metrics`, when supplied, accumulates per-stage wall-times
    /// (summed across workers) and packet/window/thread counters.
    pub fn pool_observatory_parallel(
        measurement: Measurement,
        obs: &mut Observatory,
        n: usize,
        threads: usize,
        metrics: Option<&Metrics>,
    ) -> PooledDistribution {
        match Pipeline::pool_observatory_checked(
            measurement,
            obs,
            n,
            threads,
            metrics,
            &FailurePolicy::strict(),
            None,
        ) {
            Ok(ft) => ft.pooled,
            // Legacy contract: n = 0 silently pooled zero windows.
            Err(PipelineError::ZeroWindows) => Pipeline::new(measurement).finish(),
            Err(e) => panic!("pipeline failure: {e}"),
        }
    }

    /// The fault-tolerant engine behind
    /// [`Pipeline::pool_observatory_parallel`] (DESIGN.md §4e).
    ///
    /// Each window's synthesize → window → histogram → bin stage runs
    /// isolated on its worker: panics are contained with
    /// `catch_unwind`, typed [`WindowFault`]s are captured, and a
    /// failed window is retried up to `policy.max_retries` times —
    /// retry `k` of window `t` always draws from the same derived seed
    /// ([`Observatory::packets_at_retry`]), so recovery is replayable
    /// for any thread count. A window that exhausts its budget is
    /// disposed of per `policy.on_fault`: abort the run, quarantine
    /// (drop) the window, or substitute one clean re-synthesis.
    ///
    /// The surviving windows merge on the calling thread strictly in
    /// window order, so the pooled result over the survivors is
    /// **bit-identical** across thread counts and reruns; with no
    /// injector and no faults it is byte-identical to
    /// [`Pipeline::pool_observatory_parallel`]'s pre-fault-tolerance
    /// output.
    ///
    /// `injector`, when supplied, deterministically plants faults per
    /// its [`crate::fault::InjectionSpec`] — the fault-injection
    /// harness that exercises this machinery in tests and CI.
    ///
    /// # Errors
    ///
    /// [`PipelineError::ZeroWindows`] when `n == 0`;
    /// [`PipelineError::WindowAborted`] under [`FaultAction::Abort`];
    /// [`PipelineError::QuarantineOverflow`] when the quarantined
    /// fraction exceeds `policy.quarantine_threshold`.
    pub fn pool_observatory_checked(
        measurement: Measurement,
        obs: &mut Observatory,
        n: usize,
        threads: usize,
        metrics: Option<&Metrics>,
        policy: &FailurePolicy,
        injector: Option<&Injector>,
    ) -> Result<FaultTolerantPool, PipelineError> {
        Pipeline::pool_engine(
            measurement,
            obs,
            n,
            threads,
            metrics,
            policy,
            injector,
            None,
            None,
        )
    }

    /// [`Pipeline::pool_observatory_checked`] with durable
    /// checkpoint/resume (DESIGN.md §4f).
    ///
    /// With `journal` supplied, every finished window (recovered,
    /// quarantined, or clean — everything except an abort) is appended
    /// to the write-ahead journal as it completes, so a killed process
    /// loses at most the windows in flight. With `recovery` supplied
    /// (from [`Journal::resume`]), journaled windows are *replayed*
    /// instead of recomputed: their byte-exact [`BinStats`]/histogram
    /// state drops straight into the window-ordered merge.
    ///
    /// **Crash equivalence.** The resumed pooled result is
    /// bit-identical to an uninterrupted run at any thread count and
    /// any kill point, because (a) per-window RNG streams are
    /// splittable by `(window, attempt)`, so recomputed windows do not
    /// depend on which windows were replayed, (b) the journal stores
    /// window state as raw IEEE-754 bits, and (c) the merge is
    /// strictly window-ordered on one thread. The one exception is
    /// documented: stall verdicts depend on the wall clock, so a
    /// watchdog-armed run is only crash-equivalent when no stall fires
    /// (an injected [`InjectedFault::Stall`] is deterministic in
    /// *which* windows it delays, keeping the CI smoke reproducible).
    ///
    /// # Errors
    ///
    /// Those of [`Pipeline::pool_observatory_checked`], plus
    /// [`PipelineError::Journal`] when an append fails — the capture
    /// never silently continues without durability.
    #[allow(clippy::too_many_arguments)]
    pub fn pool_observatory_durable(
        measurement: Measurement,
        obs: &mut Observatory,
        n: usize,
        threads: usize,
        metrics: Option<&Metrics>,
        policy: &FailurePolicy,
        injector: Option<&Injector>,
        journal: Option<&Journal>,
        recovery: Option<&Recovery>,
    ) -> Result<FaultTolerantPool, PipelineError> {
        Pipeline::pool_engine(
            measurement,
            obs,
            n,
            threads,
            metrics,
            policy,
            injector,
            journal,
            recovery,
        )
    }

    /// The engine behind both checked entry points; `journal` and
    /// `recovery` are `None` on the non-durable path.
    #[allow(clippy::too_many_arguments)]
    fn pool_engine(
        measurement: Measurement,
        obs: &mut Observatory,
        n: usize,
        threads: usize,
        metrics: Option<&Metrics>,
        policy: &FailurePolicy,
        injector: Option<&Injector>,
        journal: Option<&Journal>,
        recovery: Option<&Recovery>,
    ) -> Result<FaultTolerantPool, PipelineError> {
        if n == 0 {
            return Err(PipelineError::ZeroWindows);
        }
        let start_t = obs.advance(n);
        let threads = threads.clamp(1, n);
        if let Some(m) = metrics {
            m.set_threads(threads as u64);
            m.add_windows(n as u64);
        }
        // One slot per window: workers fill the expensive per-window
        // results; the merge below reads them in window order.
        let mut slots: Vec<Option<WindowSlot>> = (0..n).map(|_| None).collect();
        // Replay journaled windows up front: their slots are filled
        // from the recovered byte-exact state, and the workers below
        // skip them, computing only the complement.
        if let Some(rec) = recovery {
            let mut replayed = 0u64;
            for (i, slot) in slots.iter_mut().enumerate() {
                if let Some(entry) = rec.windows.get(&(start_t + i as u64)) {
                    *slot = Some(WindowSlot::from_entry(entry));
                    replayed += 1;
                }
            }
            if let Some(m) = metrics {
                m.add_windows_recovered(replayed);
                m.add_journal_bytes_replayed(rec.bytes_replayed);
                m.add_journal_torn_dropped(rec.torn_records_dropped);
            }
        }
        let chunk = n.div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for (c, piece) in slots.chunks_mut(chunk).enumerate() {
                let obs = &*obs;
                s.spawn(move || {
                    for (i, slot) in piece.iter_mut().enumerate() {
                        if slot.is_some() {
                            // Replayed from the journal.
                            continue;
                        }
                        let t = start_t + (c * chunk + i) as u64;
                        let computed =
                            process_window(measurement, obs, t, metrics, policy, injector);
                        if let Some(j) = journal {
                            // Aborted windows are never journaled: the
                            // run fails, and a resume must recompute
                            // the window to reach the same verdict.
                            // Append errors are latched inside the
                            // journal and surfaced after the scope
                            // joins.
                            if computed.abort_fault.is_none() {
                                let _ = j.append(&computed.to_entry(t));
                            }
                        }
                        *slot = Some(computed);
                    }
                });
            }
        });
        if let Some(j) = journal {
            if let Some(fault) = j.take_fault() {
                return Err(PipelineError::Journal(fault));
            }
        }
        // Deterministic merge: strictly in window order, on one
        // thread, skipping quarantined windows. The scope above joined
        // every worker, so each slot is filled.
        debug_assert!(slots.iter().all(Option::is_some));
        let mut p = Pipeline::new(measurement);
        let mut merged = DegreeHistogram::new();
        let mut report = FaultReport::new(n as u64);
        report.survivors = 0;
        let mut abort: Option<(u64, u32, WindowFault)> = None;
        time_stage(metrics, Stage::Merge, || {
            for slot in slots.into_iter().flatten() {
                report.injected += slot.injected;
                report.retries += slot.retries;
                if let Some(rec) = slot.record {
                    match rec.outcome {
                        WindowOutcome::Recovered => report.recovered += 1,
                        WindowOutcome::Quarantined => report.quarantined += 1,
                        WindowOutcome::Substituted => report.substituted += 1,
                        WindowOutcome::Aborted => {
                            if abort.is_none() {
                                if let Some(fault) = slot.abort_fault {
                                    abort = Some((rec.window, rec.attempts, fault));
                                }
                            }
                        }
                    }
                    report.records.push(rec);
                }
                if let Some((one, d_max, h)) = slot.result {
                    report.survivors += 1;
                    if let Some(d) = d_max {
                        p.d_max = p.d_max.max(d);
                    }
                    p.stats.merge(&one);
                    for (d, c) in h.iter() {
                        merged.increment(d, c);
                    }
                }
            }
        });
        if let Some((window, attempts, fault)) = abort {
            return Err(PipelineError::WindowAborted {
                window,
                attempts,
                fault,
            });
        }
        if policy.overflows(report.quarantined, n as u64) {
            return Err(PipelineError::QuarantineOverflow {
                quarantined: report.quarantined,
                windows: n as u64,
                threshold: policy.quarantine_threshold,
            });
        }
        if let Some(m) = metrics {
            m.add_retries(report.retries);
            m.add_quarantined(report.quarantined);
        }
        Ok(FaultTolerantPool {
            pooled: p.finish(),
            report,
            histogram: merged,
        })
    }
}

/// The outcome of a fault-tolerant pipeline run
/// ([`Pipeline::pool_observatory_checked`]).
#[derive(Debug, Clone)]
pub struct FaultTolerantPool {
    /// Pooled `D(d_i) ± σ(d_i)` over the surviving windows.
    pub pooled: PooledDistribution,
    /// Per-window fault accounting (empty records on a clean run).
    pub report: FaultReport,
    /// Degree histogram summed over the surviving windows in window
    /// order — the input for downstream tail fits.
    pub histogram: DegreeHistogram,
}

/// One window's result as filled in by a worker: the binned stats (or
/// `None` when quarantined/aborted) plus its fault accounting.
struct WindowSlot {
    result: Option<(BinStats, Option<u64>, DegreeHistogram)>,
    record: Option<FaultRecord>,
    injected: u64,
    retries: u64,
    abort_fault: Option<WindowFault>,
}

impl WindowSlot {
    /// Rehydrate a slot from a journaled window: the byte-exact state
    /// drops into the merge exactly as if the window had just been
    /// computed.
    fn from_entry(entry: &WindowEntry) -> WindowSlot {
        WindowSlot {
            result: entry
                .result
                .as_ref()
                .map(|r| (r.stats.clone(), r.d_max, r.histogram.clone())),
            record: entry.record.clone(),
            injected: entry.injected,
            retries: entry.retries,
            abort_fault: None,
        }
    }

    /// The journal record for this slot's window.
    fn to_entry(&self, window: u64) -> WindowEntry {
        WindowEntry {
            window,
            injected: self.injected,
            retries: self.retries,
            record: self.record.clone(),
            result: self.result.as_ref().map(|(stats, d_max, h)| WindowResult {
                stats: stats.clone(),
                d_max: *d_max,
                histogram: h.clone(),
            }),
        }
    }
}

/// Drive one window through its attempt loop and dispose of it per the
/// policy. Pure in `(t, attempt)` given the observatory seed and the
/// injector, so the outcome is independent of thread placement.
fn process_window(
    measurement: Measurement,
    obs: &Observatory,
    t: u64,
    metrics: Option<&Metrics>,
    policy: &FailurePolicy,
    injector: Option<&Injector>,
) -> WindowSlot {
    let mut last_fault: Option<WindowFault> = None;
    let mut injected = 0u64;
    let mut attempts = 0u32;
    let mut result: Option<(BinStats, Option<u64>, DegreeHistogram)> = None;
    let deadline_ms = policy.window_deadline_ms;
    for attempt in 0..=policy.max_retries {
        let plan = injector.and_then(|inj| inj.plan(t, attempt));
        if plan.is_some() {
            injected += 1;
        }
        attempts += 1;
        // Stall watchdog: an armed deadline races the monotonic clock
        // against each attempt. Scoped threads cannot be killed, so
        // the verdict lands when the attempt returns — an attempt that
        // *succeeded* but overran is demoted to a Stalled fault and
        // flows through the normal retry/quarantine machinery; a
        // failed attempt keeps its original, more specific fault.
        // Observability-style clock read, never feeds a numerical
        // result. lint:allow(R2)
        let started = std::time::Instant::now();
        let outcome = attempt_window(measurement, obs, t, attempt, plan, deadline_ms, metrics);
        let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let outcome = match (outcome, deadline_ms) {
            (Ok(_), Some(deadline)) if elapsed_ms > deadline => Err(WindowFault::Stalled {
                elapsed_ms,
                deadline_ms: deadline,
            }),
            (o, _) => o,
        };
        match outcome {
            Ok(r) => {
                result = Some(r);
                break;
            }
            Err(f) => last_fault = Some(f),
        }
    }
    if let Some(r) = result {
        // Clean first attempt ⇒ no record at all; a rescued window is
        // recorded with the fault its failed attempt(s) exhibited.
        let record = if attempts > 1 {
            last_fault.as_ref().map(|f| FaultRecord {
                window: t,
                kind: f.kind(),
                attempts,
                outcome: WindowOutcome::Recovered,
            })
        } else {
            None
        };
        return WindowSlot {
            result: Some(r),
            record,
            injected,
            retries: (attempts - 1) as u64,
            abort_fault: None,
        };
    }
    // Retry budget exhausted: dispose per policy. The loop ran at
    // least once and every attempt failed, so a fault was captured.
    let fault = match last_fault {
        Some(f) => f,
        None => WindowFault::EmptyHistogram,
    };
    match policy.on_fault {
        FaultAction::Abort => WindowSlot {
            result: None,
            record: Some(FaultRecord {
                window: t,
                kind: fault.kind(),
                attempts,
                outcome: WindowOutcome::Aborted,
            }),
            injected,
            retries: (attempts - 1) as u64,
            abort_fault: Some(fault),
        },
        FaultAction::Quarantine => WindowSlot {
            result: None,
            record: Some(FaultRecord {
                window: t,
                kind: fault.kind(),
                attempts,
                outcome: WindowOutcome::Quarantined,
            }),
            injected,
            retries: (attempts - 1) as u64,
            abort_fault: None,
        },
        FaultAction::Substitute => {
            // One extra deterministic re-synthesis, never injected and
            // never watchdogged — it is the last resort.
            attempts += 1;
            match attempt_window(
                measurement,
                obs,
                t,
                policy.max_retries + 1,
                None,
                None,
                metrics,
            ) {
                Ok(r) => WindowSlot {
                    result: Some(r),
                    record: Some(FaultRecord {
                        window: t,
                        kind: fault.kind(),
                        attempts,
                        outcome: WindowOutcome::Substituted,
                    }),
                    injected,
                    retries: (attempts - 1) as u64,
                    abort_fault: None,
                },
                Err(f2) => WindowSlot {
                    result: None,
                    record: Some(FaultRecord {
                        window: t,
                        kind: f2.kind(),
                        attempts,
                        outcome: WindowOutcome::Quarantined,
                    }),
                    injected,
                    retries: (attempts - 1) as u64,
                    abort_fault: None,
                },
            }
        }
    }
}

/// One panic-contained attempt at a window.
fn attempt_window(
    measurement: Measurement,
    obs: &Observatory,
    t: u64,
    attempt: u32,
    plan: Option<InjectedFault>,
    deadline_ms: Option<u64>,
    metrics: Option<&Metrics>,
) -> Result<(BinStats, Option<u64>, DegreeHistogram), WindowFault> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_window_attempt(measurement, obs, t, attempt, plan, deadline_ms, metrics)
    })) {
        Ok(r) => r,
        Err(payload) => Err(WindowFault::Panic {
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The synthesize → window → histogram → bin stages for one attempt at
/// window `t`, with fault classification and (optional) injection.
/// With `plan = None` and a healthy window this replays the exact
/// float-op sequence of the pre-fault-tolerance worker, preserving the
/// bit-identity contract.
fn run_window_attempt(
    measurement: Measurement,
    obs: &Observatory,
    t: u64,
    attempt: u32,
    plan: Option<InjectedFault>,
    deadline_ms: Option<u64>,
    metrics: Option<&Metrics>,
) -> Result<(BinStats, Option<u64>, DegreeHistogram), WindowFault> {
    if plan == Some(InjectedFault::Stall) {
        // Oversleep the watchdog deadline so the attempt is classified
        // Stalled; with no deadline armed the delay is benign (the
        // window still completes correctly), mirroring a real slow
        // worker under an unwatched capture.
        let ms = deadline_ms.map_or(30, |d| d.saturating_add(25));
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    let mut packets = time_stage(metrics, Stage::Synthesize, || {
        obs.packets_at_retry(t, attempt)
    })?;
    if let Some(m) = metrics {
        m.add_packets(packets.len() as u64);
    }
    match plan {
        Some(InjectedFault::Truncate) => {
            let keep = packets.len() / 2;
            packets.truncate(keep);
        }
        Some(InjectedFault::DuplicateStorm) => {
            if let Some(&first) = packets.first() {
                for p in packets.iter_mut() {
                    *p = first;
                }
            }
        }
        _ => {}
    }
    let n_v = obs.config().n_v;
    if packets.len() as u64 != n_v {
        return Err(WindowFault::Truncated {
            expected: n_v,
            actual: packets.len() as u64,
        });
    }
    if plan == Some(InjectedFault::WorkerPanic) {
        panic!("injected fault: worker panic in window {t} (attempt {attempt})");
    }
    let w = time_stage(metrics, Stage::Window, || {
        PacketWindow::from_packets(t, &packets)
    });
    let h = time_stage(metrics, Stage::Histogram, || measurement.histogram(&w));
    if w.n_v() > 0 && h.is_empty() {
        return Err(WindowFault::EmptyHistogram);
    }
    // Support-collapse heuristic: a real window of ≥ 16 packets never
    // concentrates on ≤ 2 histogram entries; a duplicate-edge storm
    // does.
    if w.n_v() >= 16 && h.total() <= 2 {
        return Err(WindowFault::Degenerate { support: h.total() });
    }
    let one = time_stage(metrics, Stage::Bin, || -> Result<BinStats, WindowFault> {
        let mut dc = DifferentialCumulative::from_histogram(&h);
        if plan == Some(InjectedFault::NanBin) && dc.n_bins() > 0 {
            let mut values: Vec<f64> = (0..dc.n_bins()).map(|i| dc.value(i)).collect();
            let poison = t as usize % values.len();
            values[poison] = f64::NAN;
            dc = DifferentialCumulative::from_values(values);
        }
        for i in 0..dc.n_bins() {
            if !dc.value(i).is_finite() {
                return Err(WindowFault::NonFiniteBin { bin: i });
            }
        }
        let mut one = BinStats::new();
        one.push(&dc);
        Ok(one)
    })?;
    Ok((one, h.d_max(), h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, InjectionSpec};
    use crate::journal::JournalHeader;
    use crate::observatory::{Observatory, ObservatoryConfig};
    use crate::packets::{EdgeIntensity, Packet};
    use palu_graph::palu_gen::PaluGenerator;

    fn observatory(seed: u64) -> Observatory {
        Observatory::new(
            ObservatoryConfig {
                name: "pipeline-test".into(),
                date: "2026-07-06".into(),
                n_v: 4_000,
            },
            &PaluGenerator::new(2_000, 600, 400, 2.0, 1.5).unwrap(),
            EdgeIntensity::Uniform,
            seed,
        )
    }

    #[test]
    fn pooled_mass_is_one() {
        let mut obs = observatory(1);
        let windows = obs.windows(8);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        assert_eq!(pooled.windows, 8);
        assert!((pooled.mean.total_mass() - 1.0).abs() < 1e-9);
        assert!(pooled.d_max >= 1);
        assert_eq!(pooled.sigma.len(), pooled.mean.n_bins());
    }

    #[test]
    fn sigma_is_zero_for_single_window() {
        let mut obs = observatory(2);
        let windows = obs.windows(1);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        assert!(pooled.sigma.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn sigma_positive_for_varying_windows() {
        let mut obs = observatory(3);
        let windows = obs.windows(10);
        let pooled = Pipeline::pool(
            Measurement::Quantity(NetworkQuantity::SourceFanOut),
            &windows,
        );
        assert!(
            pooled.sigma.iter().any(|&s| s > 0.0),
            "some bin must fluctuate across windows"
        );
    }

    #[test]
    fn incremental_equals_batch() {
        let mut obs = observatory(4);
        let windows = obs.windows(5);
        let batch = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        let mut inc = Pipeline::new(Measurement::UndirectedDegree);
        for w in &windows {
            inc.push_window(w);
        }
        let inc = inc.finish();
        assert_eq!(batch.mean, inc.mean);
        assert_eq!(batch.sigma, inc.sigma);
        assert_eq!(batch.d_max, inc.d_max);
    }

    #[test]
    fn pool_many_matches_individual() {
        let mut obs = observatory(5);
        let windows = obs.windows(4);
        let ms = [
            Measurement::UndirectedDegree,
            Measurement::Quantity(NetworkQuantity::LinkPackets),
            Measurement::Quantity(NetworkQuantity::DestinationFanIn),
        ];
        let many = Pipeline::pool_many(&ms, &windows);
        for (m, pooled) in ms.iter().zip(&many) {
            let single = Pipeline::pool(*m, &windows);
            assert_eq!(single.mean, pooled.mean);
            assert_eq!(single.sigma, pooled.sigma);
        }
    }

    #[test]
    fn degree_one_bin_dominates_palu_traffic() {
        // PALU traffic at moderate p has its largest pooled mass in the
        // d = 1 bin (leaves + unattached links) — the headline
        // observation of the paper.
        let mut obs = observatory(6);
        let windows = obs.windows(6);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        let d1 = pooled.mean.value(0);
        for i in 1..pooled.mean.n_bins() {
            assert!(d1 >= pooled.mean.value(i), "bin {i} exceeds the d=1 bin");
        }
        assert!(d1 > 0.2, "d=1 mass {d1} suspiciously small");
    }

    #[test]
    fn weights_invert_variance() {
        let pooled = PooledDistribution {
            mean: palu_stats::logbin::DifferentialCumulative::from_values(vec![0.5, 0.5]),
            sigma: vec![0.1, 0.0],
            windows: 2,
            d_max: 2,
        };
        let w = pooled.weights(7.0);
        assert!((w[0] - 100.0).abs() < 1e-9);
        assert_eq!(w[1], 7.0);
    }

    #[test]
    fn weights_degenerate_to_uniform_when_all_sigma_zero() {
        // Regression: a single pooled window has sigma = 0 in every
        // bin; the weights must be uniform 1.0, not default_weight.
        let mut obs = observatory(7);
        let windows = obs.windows(1);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        assert!(pooled.sigma.iter().all(|&s| s == 0.0));
        let w = pooled.weights(100.0);
        assert!(!w.is_empty());
        assert!(w.iter().all(|&x| x == 1.0), "weights {w:?}");
        // Multi-window pooling keeps the inverse-variance behavior:
        // fluctuating bins get 1/σ², constant bins the default.
        let windows = obs.windows(10);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        let w = pooled.weights(100.0);
        let varying = pooled
            .sigma
            .iter()
            .zip(&w)
            .filter(|&(&s, _)| s > 0.0)
            .count();
        assert!(varying > 0, "fixture must have fluctuating bins");
        for (&s, &wi) in pooled.sigma.iter().zip(&w) {
            if s > 0.0 {
                assert!((wi - 1.0 / (s * s)).abs() < 1e-9);
            } else {
                assert_eq!(wi, 100.0);
            }
        }
    }

    #[test]
    fn parallel_pool_bit_identical_to_serial() {
        // The tentpole contract: pooled mean, sigma, d_max, and window
        // count are bitwise equal to the serial fold for any thread
        // count, including thread counts that do not divide the window
        // count and exceed it.
        let mut serial_obs = observatory(8);
        let windows = serial_obs.windows(13);
        let serial = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        for threads in [1, 2, 3, 5, 8, 32] {
            let mut par_obs = observatory(8);
            let parallel = Pipeline::pool_observatory_parallel(
                Measurement::UndirectedDegree,
                &mut par_obs,
                13,
                threads,
                None,
            );
            assert_eq!(parallel.windows, serial.windows, "threads {threads}");
            assert_eq!(parallel.d_max, serial.d_max, "threads {threads}");
            assert_eq!(
                parallel.mean.n_bins(),
                serial.mean.n_bins(),
                "threads {threads}"
            );
            for i in 0..serial.mean.n_bins() {
                assert_eq!(
                    parallel.mean.value(i).to_bits(),
                    serial.mean.value(i).to_bits(),
                    "mean bin {i}, threads {threads}"
                );
                assert_eq!(
                    parallel.sigma[i].to_bits(),
                    serial.sigma[i].to_bits(),
                    "sigma bin {i}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_pool_advances_the_observatory_like_serial() {
        let mut a = observatory(9);
        let mut b = observatory(9);
        let _ = a.windows(6);
        let _ =
            Pipeline::pool_observatory_parallel(Measurement::UndirectedDegree, &mut b, 6, 4, None);
        // Both observatories are now positioned at window 6.
        assert_eq!(a.next_window().matrix(), b.next_window().matrix());
    }

    #[test]
    fn parallel_pool_records_metrics() {
        let mut obs = observatory(10);
        let metrics = crate::metrics::Metrics::new();
        let pooled = Pipeline::pool_observatory_parallel(
            Measurement::UndirectedDegree,
            &mut obs,
            4,
            2,
            Some(&metrics),
        );
        assert_eq!(pooled.windows, 4);
        let snap = metrics.snapshot();
        assert_eq!(snap.windows, 4);
        assert_eq!(snap.threads, 2);
        assert_eq!(snap.packets, 4 * 4_000);
        // Every expensive stage ran and was timed.
        assert!(snap.synthesize_ns > 0, "{snap:?}");
        assert!(snap.histogram_ns > 0, "{snap:?}");
    }

    #[test]
    fn checked_engine_clean_run_matches_legacy_bitwise() {
        let mut serial_obs = observatory(11);
        let windows = serial_obs.windows(7);
        let serial = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        let mut obs = observatory(11);
        let ft = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            7,
            3,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap();
        assert!(ft.report.is_clean());
        assert_eq!(ft.report.survivors, 7);
        assert_eq!(ft.pooled.windows, serial.windows);
        assert_eq!(ft.pooled.d_max, serial.d_max);
        for i in 0..serial.mean.n_bins() {
            assert_eq!(
                ft.pooled.mean.value(i).to_bits(),
                serial.mean.value(i).to_bits(),
                "mean bin {i}"
            );
            assert_eq!(
                ft.pooled.sigma[i].to_bits(),
                serial.sigma[i].to_bits(),
                "sigma bin {i}"
            );
        }
        // The merged histogram is the sum of the survivors' histograms.
        let total: u64 = windows
            .iter()
            .map(|w| w.undirected_degree_histogram().total())
            .sum();
        assert_eq!(ft.histogram.total(), total);
    }

    #[test]
    fn checked_engine_rejects_zero_windows() {
        let mut obs = observatory(12);
        let err = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            0,
            4,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap_err();
        assert_eq!(err, PipelineError::ZeroWindows);
        // The legacy wrapper preserves the old silent-empty contract.
        let pooled = Pipeline::pool_observatory_parallel(
            Measurement::UndirectedDegree,
            &mut obs,
            0,
            4,
            None,
        );
        assert_eq!(pooled.windows, 0);
    }

    #[test]
    fn abort_policy_surfaces_the_first_faulted_window() {
        let mut obs = observatory(13);
        let inj = Injector::new(
            InjectionSpec {
                truncate: 1.0,
                ..InjectionSpec::none()
            },
            5,
        );
        let err = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            6,
            2,
            None,
            &FailurePolicy::strict(),
            Some(&inj),
        )
        .unwrap_err();
        match err {
            PipelineError::WindowAborted {
                window,
                attempts,
                fault,
            } => {
                assert_eq!(window, 0, "first faulted window in window order");
                assert_eq!(attempts, 1);
                assert!(matches!(fault, WindowFault::Truncated { .. }), "{fault:?}");
            }
            other => panic!("expected WindowAborted, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_overflow_respects_the_threshold() {
        let inj = Injector::new(InjectionSpec::uniform(1.0), 6);
        let tight = FailurePolicy {
            quarantine_threshold: 0.25,
            ..FailurePolicy::quarantine(0)
        };
        let mut obs = observatory(14);
        let err = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            4,
            None,
            &tight,
            Some(&inj),
        )
        .unwrap_err();
        assert!(
            matches!(err, PipelineError::QuarantineOverflow { .. }),
            "{err:?}"
        );
    }

    fn assert_bitwise_equal(a: &PooledDistribution, b: &PooledDistribution, what: &str) {
        assert_eq!(a.windows, b.windows, "{what}: windows");
        assert_eq!(a.d_max, b.d_max, "{what}: d_max");
        assert_eq!(a.mean.n_bins(), b.mean.n_bins(), "{what}: bins");
        for i in 0..a.mean.n_bins() {
            assert_eq!(
                a.mean.value(i).to_bits(),
                b.mean.value(i).to_bits(),
                "{what}: mean bin {i}"
            );
            assert_eq!(
                a.sigma[i].to_bits(),
                b.sigma[i].to_bits(),
                "{what}: sigma bin {i}"
            );
        }
    }

    #[test]
    fn durable_capture_resumes_bit_identical() {
        let dir = std::env::temp_dir().join("palu-pipeline-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("durable.journal");
        let header = JournalHeader {
            seed: 21,
            n_v: 4_000,
            windows: 8,
            fingerprint: 0xABC,
        };
        let mut obs = observatory(21);
        let baseline = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            3,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap();
        // Durable run writing the journal from scratch.
        let mut obs = observatory(21);
        let j = Journal::create(&path, header).unwrap();
        let full = Pipeline::pool_observatory_durable(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            3,
            None,
            &FailurePolicy::strict(),
            None,
            Some(&j),
            None,
        )
        .unwrap();
        drop(j);
        assert_bitwise_equal(&full.pooled, &baseline.pooled, "durable full run");
        // Simulate a kill: chop the journal mid-record and resume at a
        // different thread count.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();
        let (j2, rec) = Journal::resume(&path, header).unwrap();
        let replayed = rec.windows.len() as u64;
        assert!(replayed > 0 && replayed < 8, "replayed {replayed}");
        let metrics = Metrics::new();
        let mut obs = observatory(21);
        let resumed = Pipeline::pool_observatory_durable(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            5,
            Some(&metrics),
            &FailurePolicy::strict(),
            None,
            Some(&j2),
            Some(&rec),
        )
        .unwrap();
        assert_bitwise_equal(&resumed.pooled, &baseline.pooled, "resumed run");
        assert_eq!(resumed.histogram.total(), baseline.histogram.total());
        let snap = metrics.snapshot();
        assert_eq!(snap.windows_recovered, replayed);
        assert!(snap.journal_bytes_replayed > 0);
        // After the resumed run the journal holds all 8 windows again.
        drop(j2);
        let bytes = std::fs::read(&path).unwrap();
        let rec = crate::journal::Journal::recover_bytes(&bytes, &header).unwrap();
        assert_eq!(rec.windows.len(), 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stall_watchdog_classifies_and_recovers() {
        let mut obs = observatory(22);
        let inj = Injector::new(
            InjectionSpec {
                stall: 0.7,
                ..InjectionSpec::none()
            },
            9,
        );
        let policy = FailurePolicy {
            quarantine_threshold: 1.0,
            ..FailurePolicy::quarantine(2)
        }
        .with_deadline_ms(100);
        let ft = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            6,
            3,
            None,
            &policy,
            Some(&inj),
        )
        .unwrap();
        let stalled: Vec<_> = ft
            .report
            .records
            .iter()
            .filter(|r| r.kind == FaultKind::Stalled)
            .collect();
        assert!(!stalled.is_empty(), "no stalls with a 0.7 injection rate");
        for r in &stalled {
            assert!(
                matches!(
                    r.outcome,
                    WindowOutcome::Recovered | WindowOutcome::Quarantined
                ),
                "{r:?}"
            );
        }
        assert!(ft.report.retries > 0);
    }

    #[test]
    fn unwatched_stall_injection_is_benign() {
        // Without --window-deadline-ms the stall only delays; results
        // stay bit-identical to a clean run.
        let mut obs = observatory(23);
        let clean = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            3,
            2,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap();
        let inj = Injector::new(
            InjectionSpec {
                stall: 1.0,
                ..InjectionSpec::none()
            },
            9,
        );
        let mut obs = observatory(23);
        let stalled = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            3,
            2,
            None,
            &FailurePolicy::strict(),
            Some(&inj),
        )
        .unwrap();
        assert_bitwise_equal(&stalled.pooled, &clean.pooled, "unwatched stall");
        assert_eq!(stalled.report.survivors, 3);
    }

    #[test]
    fn measurement_histograms_dispatch() {
        let packets = vec![
            Packet { src: 0, dst: 1 },
            Packet { src: 1, dst: 0 },
            Packet { src: 0, dst: 2 },
        ];
        let w = PacketWindow::from_packets(0, &packets);
        let und = Measurement::UndirectedDegree.histogram(&w);
        // Partners: 0↔{1,2}, 1↔{0}, 2↔{0}.
        assert_eq!(und.count(2), 1);
        assert_eq!(und.count(1), 2);
        let fanout = Measurement::Quantity(NetworkQuantity::SourceFanOut).histogram(&w);
        // Sources 0 (→1,2) and 1 (→0).
        assert_eq!(fanout.count(2), 1);
        assert_eq!(fanout.count(1), 1);
    }
}
