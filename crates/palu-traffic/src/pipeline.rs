//! Multi-window measurement pipeline.
//!
//! Section II-A: each window `t` yields a pooled distribution
//! `D_t(d_i)`; "the corresponding mean and standard deviation of
//! `D_t(d_i)` over many different consecutive values of t for a given
//! data set are denoted `D(d_i)` and `σ(d_i)`". Every Figure 3 panel is
//! one [`PooledDistribution`] produced by this pipeline.
//!
//! Windows ARE processed in parallel here —
//! [`Pipeline::pool_observatory_parallel`] shards the expensive
//! synthesize → window → histogram → bin stages across
//! `std::thread::scope` workers, one contiguous batch of windows per
//! worker, with each window drawing from its own splittable RNG stream
//! ([`palu_stats::rng::SeedSequence::window_rng`]). The per-window
//! [`BinStats`] results are then merged on the calling thread
//! *deterministically in window order* via `BinStats::merge` (whose
//! single-window path replays the exact float-op sequence of a serial
//! push), so the pooled result is **bit-identical** to the serial fold
//! for any thread count.

use crate::budget::{
    coarsen_degree, coarsen_histogram, CostModel, DegradationEvent, DegradationRung, Governor,
    ResourceBudget, BALLAST_WINDOW_MULTIPLIER,
};
use crate::fault::{
    FailurePolicy, FaultAction, FaultKind, FaultRecord, FaultReport, InjectedFault, Injector,
    PipelineError, WindowFault, WindowOutcome,
};
use crate::journal::{Journal, Recovery, WindowEntry, WindowResult};
use crate::metrics::{time_stage, Metrics, Stage};
use crate::observatory::Observatory;
use crate::window::PacketWindow;
use palu_sparse::quantities::NetworkQuantity;
use palu_stats::histogram::DegreeHistogram;
use palu_stats::logbin::DifferentialCumulative;
use palu_stats::summary::BinStats;

/// Which degree-like measurement the pipeline pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measurement {
    /// One of the five directed Figure 1 quantities.
    Quantity(NetworkQuantity),
    /// The undirected host degree (distinct partners) — the quantity
    /// the PALU model's analysis describes.
    UndirectedDegree,
    /// The *weighted* undirected degree: total packets a host touched
    /// (sent + received). The paper's future-work weighted-edge view,
    /// "where potential weights could be the number of packets …
    /// sent over a link".
    NodeVolume,
}

impl Measurement {
    /// Extract this measurement's histogram from a window.
    pub fn histogram(&self, w: &PacketWindow) -> palu_stats::histogram::DegreeHistogram {
        match self {
            Measurement::Quantity(q) => q.histogram(w.matrix()),
            Measurement::UndirectedDegree => w.undirected_degree_histogram(),
            Measurement::NodeVolume => w.node_volume_histogram(),
        }
    }

    /// Extract this measurement's histogram through reusable scratch
    /// buffers. Produces a histogram **equal** to
    /// [`Measurement::histogram`] — the scratch paths are exact
    /// drop-in replacements — but performs no steady-state heap
    /// allocation, which is what lets a pipeline worker process
    /// windows back-to-back without serializing on the allocator.
    pub fn histogram_with(
        &self,
        w: &PacketWindow,
        scratch: &mut palu_sparse::DegreeScratch,
    ) -> palu_stats::histogram::DegreeHistogram {
        match self {
            Measurement::Quantity(q) => scratch.quantity_histogram(*q, w.matrix()),
            Measurement::UndirectedDegree => w.undirected_degree_histogram_with(scratch),
            Measurement::NodeVolume => w.node_volume_histogram_with(scratch),
        }
    }
}

/// Per-worker reusable buffers for the hot synthesize → window →
/// histogram path. Each pipeline worker owns exactly one arena for its
/// whole lifetime and threads it through every window (and retry
/// attempt) it processes, so the steady state allocates nothing: the
/// packet buffer, the COO staging triplets, the CSR conversion and
/// output arrays, and the histogram accumulators are all recycled.
///
/// Crossing a `catch_unwind` boundary with the arena is sound: a
/// panicked attempt can only leave stale buffer contents behind (never
/// a broken invariant), and every stage clears or resets its buffers
/// before reading them.
#[derive(Debug, Default)]
struct WorkerArena {
    /// Synthesized packets for the current attempt.
    packets: Vec<crate::packets::Packet>,
    /// COO staging triplets, cleared per window.
    coo: palu_sparse::CooMatrix,
    /// CSR conversion buffers plus recycled output arrays.
    csr: palu_sparse::CsrScratch,
    /// Degree-histogram extraction buffers.
    degree: palu_sparse::DegreeScratch,
}

impl WorkerArena {
    fn new() -> Self {
        Self::default()
    }
}

/// The pooled multi-window result: `D(d_i)`, `σ(d_i)`, and support
/// metadata.
#[derive(Debug, Clone)]
pub struct PooledDistribution {
    /// Per-bin mean `D(d_i)`.
    pub mean: DifferentialCumulative,
    /// Per-bin standard deviation `σ(d_i)`.
    pub sigma: Vec<f64>,
    /// Number of windows pooled.
    pub windows: u64,
    /// Largest degree observed in any window (`d_max`, Equation 1).
    pub d_max: u64,
}

impl PooledDistribution {
    /// Inverse-variance weights for weighted fitting. Constant bins
    /// get `default_weight`.
    ///
    /// When *every* bin has zero sigma — a single pooled window, or
    /// bit-identical windows — there is no variance information at
    /// all, and the weights degenerate to uniform `1.0` (not
    /// `default_weight`), so a weighted fit coincides exactly with the
    /// unweighted one instead of silently scaling its objective by an
    /// arbitrary constant.
    pub fn weights(&self, default_weight: f64) -> Vec<f64> {
        if self.sigma.iter().all(|&s| s <= 0.0) {
            return vec![1.0; self.sigma.len()];
        }
        self.sigma
            .iter()
            .map(|&s| {
                if s > 0.0 {
                    1.0 / (s * s)
                } else {
                    default_weight
                }
            })
            .collect()
    }
}

/// Accumulates windows into a pooled distribution for one measurement.
#[derive(Debug, Clone)]
pub struct Pipeline {
    measurement: Measurement,
    stats: BinStats,
    d_max: u64,
}

impl Pipeline {
    /// Create a pipeline pooling `measurement`.
    pub fn new(measurement: Measurement) -> Self {
        Pipeline {
            measurement,
            stats: BinStats::new(),
            d_max: 0,
        }
    }

    /// The measurement being pooled.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Fold in one window.
    pub fn push_window(&mut self, w: &PacketWindow) {
        let h = self.measurement.histogram(w);
        self.push_binned(&DifferentialCumulative::from_histogram(&h), h.d_max());
    }

    /// Fold in one window's already-binned distribution `D_t(d_i)`
    /// plus that window's largest observed degree.
    /// [`Pipeline::push_window`] is exactly `push_binned` of the
    /// window's own histogram; the parallel pipeline bins on worker
    /// threads and replays this fold in window order, which is why its
    /// output is bit-identical to the serial path.
    pub fn push_binned(&mut self, binned: &DifferentialCumulative, d_max: Option<u64>) {
        if let Some(d) = d_max {
            self.d_max = self.d_max.max(d);
        }
        self.stats.push(binned);
    }

    /// Fold in many windows.
    pub fn push_windows(&mut self, windows: &[PacketWindow]) {
        for w in windows {
            self.push_window(w);
        }
    }

    /// Number of windows folded in so far.
    pub fn windows(&self) -> u64 {
        self.stats.windows()
    }

    /// Finish: the pooled `D(d_i) ± σ(d_i)`.
    pub fn finish(&self) -> PooledDistribution {
        PooledDistribution {
            mean: self.stats.mean_distribution(),
            sigma: self.stats.std_devs(),
            windows: self.stats.windows(),
            d_max: self.d_max,
        }
    }

    /// One-shot convenience: pool `windows` for `measurement`.
    pub fn pool(measurement: Measurement, windows: &[PacketWindow]) -> PooledDistribution {
        let mut p = Pipeline::new(measurement);
        p.push_windows(windows);
        p.finish()
    }

    /// Pool several measurements over the same windows concurrently
    /// (one scoped thread per measurement).
    pub fn pool_many(
        measurements: &[Measurement],
        windows: &[PacketWindow],
    ) -> Vec<PooledDistribution> {
        let mut results: Vec<Option<PooledDistribution>> = vec![None; measurements.len()];
        std::thread::scope(|s| {
            for (slot, &m) in results.iter_mut().zip(measurements) {
                s.spawn(move || {
                    *slot = Some(Pipeline::pool(m, windows));
                });
            }
        });
        // The scope joined every worker, so each slot is filled.
        let results: Vec<PooledDistribution> = results.into_iter().flatten().collect();
        assert_eq!(
            results.len(),
            measurements.len(),
            "every slot filled by a joined worker"
        );
        results
    }

    /// Pool the next `n` consecutive windows of `obs` with the
    /// synthesize → window → histogram → bin stages sharded across
    /// `threads` scoped workers (one contiguous batch of windows per
    /// worker). Worker count is clamped to `[1, n]`.
    ///
    /// Each window draws from its own splittable RNG stream
    /// ([`palu_stats::rng::SeedSequence::window_rng`]), and the
    /// per-window binned results are merged on the calling thread in
    /// window order through [`BinStats::merge`], whose single-window
    /// path replays the exact float-op sequence of a serial
    /// [`Pipeline::push_window`]. The result is therefore
    /// **bit-identical** to [`Pipeline::pool`] over
    /// [`Observatory::windows`] for *any* thread count — the contract
    /// pinned by `parallel_pool_bit_identical_to_serial` here and by
    /// `tests/parallel_pipeline.rs` at the workspace level. The
    /// observatory's window counter advances exactly as if the windows
    /// had been captured serially.
    ///
    /// `metrics`, when supplied, accumulates per-stage wall-times
    /// (summed across workers) and packet/window/thread counters.
    pub fn pool_observatory_parallel(
        measurement: Measurement,
        obs: &mut Observatory,
        n: usize,
        threads: usize,
        metrics: Option<&Metrics>,
    ) -> PooledDistribution {
        match Pipeline::pool_observatory_checked(
            measurement,
            obs,
            n,
            threads,
            metrics,
            &FailurePolicy::strict(),
            None,
        ) {
            Ok(ft) => ft.pooled,
            // Legacy contract: n = 0 silently pooled zero windows.
            Err(PipelineError::ZeroWindows) => Pipeline::new(measurement).finish(),
            Err(e) => panic!("pipeline failure: {e}"),
        }
    }

    /// The fault-tolerant engine behind
    /// [`Pipeline::pool_observatory_parallel`] (DESIGN.md §4e).
    ///
    /// Each window's synthesize → window → histogram → bin stage runs
    /// isolated on its worker: panics are contained with
    /// `catch_unwind`, typed [`WindowFault`]s are captured, and a
    /// failed window is retried up to `policy.max_retries` times —
    /// retry `k` of window `t` always draws from the same derived seed
    /// ([`Observatory::packets_at_retry`]), so recovery is replayable
    /// for any thread count. A window that exhausts its budget is
    /// disposed of per `policy.on_fault`: abort the run, quarantine
    /// (drop) the window, or substitute one clean re-synthesis.
    ///
    /// The surviving windows merge on the calling thread strictly in
    /// window order, so the pooled result over the survivors is
    /// **bit-identical** across thread counts and reruns; with no
    /// injector and no faults it is byte-identical to
    /// [`Pipeline::pool_observatory_parallel`]'s pre-fault-tolerance
    /// output.
    ///
    /// `injector`, when supplied, deterministically plants faults per
    /// its [`crate::fault::InjectionSpec`] — the fault-injection
    /// harness that exercises this machinery in tests and CI.
    ///
    /// # Errors
    ///
    /// [`PipelineError::ZeroWindows`] when `n == 0`;
    /// [`PipelineError::WindowAborted`] under [`FaultAction::Abort`];
    /// [`PipelineError::QuarantineOverflow`] when the quarantined
    /// fraction exceeds `policy.quarantine_threshold`.
    pub fn pool_observatory_checked(
        measurement: Measurement,
        obs: &mut Observatory,
        n: usize,
        threads: usize,
        metrics: Option<&Metrics>,
        policy: &FailurePolicy,
        injector: Option<&Injector>,
    ) -> Result<FaultTolerantPool, PipelineError> {
        Pipeline::pool_engine(
            measurement,
            obs,
            n,
            threads,
            metrics,
            policy,
            injector,
            None,
            None,
            None,
        )
    }

    /// [`Pipeline::pool_observatory_checked`] with durable
    /// checkpoint/resume (DESIGN.md §4f).
    ///
    /// With `journal` supplied, every finished window (recovered,
    /// quarantined, or clean — everything except an abort) is appended
    /// to the write-ahead journal as it completes, so a killed process
    /// loses at most the windows in flight. With `recovery` supplied
    /// (from [`Journal::resume`]), journaled windows are *replayed*
    /// instead of recomputed: their byte-exact [`BinStats`]/histogram
    /// state drops straight into the window-ordered merge.
    ///
    /// **Crash equivalence.** The resumed pooled result is
    /// bit-identical to an uninterrupted run at any thread count and
    /// any kill point, because (a) per-window RNG streams are
    /// splittable by `(window, attempt)`, so recomputed windows do not
    /// depend on which windows were replayed, (b) the journal stores
    /// window state as raw IEEE-754 bits, and (c) the merge is
    /// strictly window-ordered on one thread. The one exception is
    /// documented: stall verdicts depend on the wall clock, so a
    /// watchdog-armed run is only crash-equivalent when no stall fires
    /// (an injected [`InjectedFault::Stall`] is deterministic in
    /// *which* windows it delays, keeping the CI smoke reproducible).
    ///
    /// # Errors
    ///
    /// Those of [`Pipeline::pool_observatory_checked`], plus
    /// [`PipelineError::Journal`] when an append fails — the capture
    /// never silently continues without durability.
    #[allow(clippy::too_many_arguments)]
    pub fn pool_observatory_durable(
        measurement: Measurement,
        obs: &mut Observatory,
        n: usize,
        threads: usize,
        metrics: Option<&Metrics>,
        policy: &FailurePolicy,
        injector: Option<&Injector>,
        journal: Option<&Journal>,
        recovery: Option<&Recovery>,
    ) -> Result<FaultTolerantPool, PipelineError> {
        Pipeline::pool_engine(
            measurement,
            obs,
            n,
            threads,
            metrics,
            policy,
            injector,
            journal,
            recovery,
            None,
        )
    }

    /// [`Pipeline::pool_observatory_durable`] under a resource-budget
    /// [`Governor`] (DESIGN.md §4g) — the full engine surface.
    ///
    /// With `governor` supplied the engine runs *governed*: admission
    /// control projects the peak accounted footprint from the window
    /// geometry before any window is synthesized (refusing infeasible
    /// configurations with [`BudgetFault::AdmissionRefused`]
    /// (crate::budget::BudgetFault)), every batch of in-flight windows
    /// acquires its projected transient footprint from the budget
    /// ledger, and soft-watermark breaches engage the
    /// [`DegradationRung`] ladder — coarsen the merged histogram's
    /// log-binning, shrink the in-flight width, spill completed slots
    /// into the merge — each engagement recorded as a typed
    /// [`DegradationEvent`] in the report. A hard-watermark breach that
    /// survives draining everything drainable aborts the capture with
    /// a clean typed [`PipelineError::Budget`], never an OOM kill.
    ///
    /// **Determinism.** The ledger is touched only by the coordinating
    /// thread at window boundaries, so rung engagement is a pure
    /// function of `(configuration, budget, threads)` — reruns at a
    /// fixed budget reproduce the same schedule and the same events.
    /// The merge stays strictly window-ordered regardless of batching,
    /// and the pooled `BinStats` is never coarsened, so the *pooled*
    /// distribution is bit-identical across thread counts even when
    /// the rung history differs — and bit-identical to the ungoverned
    /// engine whenever the budget is ample (or `governor` is `None`,
    /// which routes to the ungoverned engine unchanged).
    ///
    /// # Errors
    ///
    /// Those of [`Pipeline::pool_observatory_durable`], plus
    /// [`PipelineError::Budget`] on admission refusal or a hard
    /// watermark breach.
    #[allow(clippy::too_many_arguments)]
    pub fn pool_observatory_governed(
        measurement: Measurement,
        obs: &mut Observatory,
        n: usize,
        threads: usize,
        metrics: Option<&Metrics>,
        policy: &FailurePolicy,
        injector: Option<&Injector>,
        journal: Option<&Journal>,
        recovery: Option<&Recovery>,
        governor: Option<&Governor<'_>>,
    ) -> Result<FaultTolerantPool, PipelineError> {
        Pipeline::pool_engine(
            measurement,
            obs,
            n,
            threads,
            metrics,
            policy,
            injector,
            journal,
            recovery,
            governor,
        )
    }

    /// The engine behind the checked entry points; `journal` and
    /// `recovery` are `None` on the non-durable path, `governor` is
    /// `None` everywhere except [`Pipeline::pool_observatory_governed`].
    // lint:hot
    #[allow(clippy::too_many_arguments)]
    fn pool_engine(
        measurement: Measurement,
        obs: &mut Observatory,
        n: usize,
        threads: usize,
        metrics: Option<&Metrics>,
        policy: &FailurePolicy,
        injector: Option<&Injector>,
        journal: Option<&Journal>,
        recovery: Option<&Recovery>,
        governor: Option<&Governor<'_>>,
    ) -> Result<FaultTolerantPool, PipelineError> {
        if n == 0 {
            return Err(PipelineError::ZeroWindows);
        }
        // Wall-clock over the whole capture, feeding the packets/sec
        // throughput metric. Observability only — the reading never
        // influences a numerical result. lint:allow(R2)
        let capture_start = std::time::Instant::now();
        let threads = threads.clamp(1, n);
        // Admission control (DESIGN.md §4g): project the peak
        // accounted footprint from the window geometry and refuse an
        // infeasible capture *before* the observatory advances or any
        // window is synthesized.
        let model = governor.map(|_| CostModel {
            n_v: obs.config().n_v,
            n_nodes: obs.underlying().n_nodes() as u64,
            windows: n as u64,
            threads: threads as u64,
        });
        if let (Some(gov), Some(model)) = (governor, &model) {
            let estimate = model
                .admit(gov.budget, gov.strict_admission)
                .map_err(PipelineError::Budget)?;
            if let Some(m) = metrics {
                m.set_admission_estimate_bytes(estimate);
            }
        }
        let start_t = obs.advance(n);
        if let Some(m) = metrics {
            m.set_threads(threads as u64);
            m.add_windows(n as u64);
        }
        // One slot per window: workers fill the expensive per-window
        // results; the merge below reads them in window order.
        let mut slots: Vec<Option<WindowSlot>> = (0..n).map(|_| None).collect();
        // Replay journaled windows up front: their slots are filled
        // from the recovered byte-exact state, and the workers below
        // skip them, computing only the complement.
        if let Some(rec) = recovery {
            let mut replayed = 0u64;
            for (i, slot) in slots.iter_mut().enumerate() {
                if let Some(entry) = rec.windows.get(&(start_t + i as u64)) {
                    *slot = Some(WindowSlot::from_entry(entry));
                    replayed += 1;
                }
            }
            if let Some(m) = metrics {
                m.add_windows_recovered(replayed);
                m.add_journal_bytes_replayed(rec.bytes_replayed);
                m.add_journal_torn_dropped(rec.torn_records_dropped);
            }
        }
        // A configured budget routes to the governed engine; `None`
        // keeps the ungoverned path below byte-for-byte as before.
        if let (Some(gov), Some(model)) = (governor, model.as_ref()) {
            return governed_capture(
                measurement,
                obs,
                n,
                start_t,
                threads,
                metrics,
                policy,
                injector,
                journal,
                slots,
                gov,
                model,
                capture_start,
            );
        }
        // Work-stealing schedule: the windows still to compute (journal
        // replays excluded) form a shared queue drained through an
        // atomic cursor. Each worker owns one long-lived
        // [`WorkerArena`] and claims the next window the moment it
        // finishes one, so an expensive window (retries, a stall, a
        // fault plan) never idles the rest of the pool the way the
        // historical contiguous-chunk split did. Scheduling freedom is
        // safe because each window's outcome is pure in `t` and the
        // merge below is strictly window-ordered — which is also why
        // the worker count can be capped at the machine's effective
        // parallelism without changing any output: oversubscribed
        // workers on a small host only add context-switch and arena
        // cost (the historical engine spawned all of them and ran
        // *slower* than serial). The floor of 2 keeps genuinely
        // concurrent execution even on a single-core host so
        // scheduling-sensitive contracts stay exercised. The governed
        // engine is exempt: its batch width is part of the
        // deterministic `(configuration, budget, threads)` ledger
        // schedule and must not depend on the machine.
        let workers = threads.min(
            std::thread::available_parallelism()
                .map(|p| p.get().max(2))
                .unwrap_or(threads),
        );
        let todo: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect();
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let todo = &todo;
                    let obs = &*obs;
                    s.spawn(move || {
                        // Arena and result list live for the worker's
                        // whole lifetime — one allocation set per
                        // worker, not per window. lint:allow(R10)
                        let mut out: Vec<(usize, WindowSlot)> = Vec::new();
                        let mut arena = WorkerArena::new();
                        loop {
                            let k = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&i) = todo.get(k) else { break };
                            let t = start_t + i as u64;
                            let computed = process_window(
                                measurement,
                                obs,
                                t,
                                metrics,
                                policy,
                                injector,
                                &mut arena,
                            );
                            if let Some(j) = journal {
                                // Aborted windows are never journaled:
                                // the run fails, and a resume must
                                // recompute the window to reach the
                                // same verdict. Append errors are
                                // latched inside the journal and
                                // surfaced after the scope joins.
                                if computed.abort_fault.is_none() {
                                    let _ = j.append(&computed.to_entry(t));
                                }
                            }
                            out.push((i, computed));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                let out = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
                for (i, computed) in out {
                    if let Some(slot) = slots.get_mut(i) {
                        *slot = Some(computed);
                    }
                }
            }
        });
        if let Some(j) = journal {
            if let Some(fault) = j.take_fault() {
                return Err(PipelineError::Journal(fault));
            }
        }
        // Deterministic merge: strictly in window order, on one
        // thread, skipping quarantined windows. The scope above joined
        // every worker, so each slot is filled.
        debug_assert!(slots.iter().all(Option::is_some));
        let mut acc = MergeAcc::new(measurement, n);
        time_stage(metrics, Stage::Merge, || {
            for slot in slots.into_iter().flatten() {
                acc.fold(slot);
            }
        });
        if let Some(m) = metrics {
            m.add_capture_wall_ns(
                u64::try_from(capture_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        acc.finish(policy, n, metrics)
    }
}

/// The outcome of a fault-tolerant pipeline run
/// ([`Pipeline::pool_observatory_checked`]).
#[derive(Debug, Clone)]
pub struct FaultTolerantPool {
    /// Pooled `D(d_i) ± σ(d_i)` over the surviving windows.
    pub pooled: PooledDistribution,
    /// Per-window fault accounting (empty records on a clean run).
    pub report: FaultReport,
    /// Degree histogram summed over the surviving windows in window
    /// order — the input for downstream tail fits.
    pub histogram: DegreeHistogram,
}

/// One window's result as filled in by a worker: the binned stats (or
/// `None` when quarantined/aborted) plus its fault accounting.
pub(crate) struct WindowSlot {
    result: Option<(BinStats, Option<u64>, DegreeHistogram)>,
    record: Option<FaultRecord>,
    injected: u64,
    retries: u64,
    abort_fault: Option<WindowFault>,
}

impl WindowSlot {
    /// Rehydrate a slot from a journaled window: the byte-exact state
    /// drops into the merge exactly as if the window had just been
    /// computed.
    pub(crate) fn from_entry(entry: &WindowEntry) -> WindowSlot {
        WindowSlot {
            result: entry
                .result
                .as_ref()
                .map(|r| (r.stats.clone(), r.d_max, r.histogram.clone())),
            record: entry.record.clone(),
            injected: entry.injected,
            retries: entry.retries,
            abort_fault: None,
        }
    }

    /// A synthetic slot for a window no shard delivered: quarantined
    /// with a [`FaultKind::ShardLost`] record, so the federation
    /// merge recounts lost windows through the exact same fold as
    /// capture-time quarantines.
    pub(crate) fn shard_lost(window: u64) -> WindowSlot {
        WindowSlot {
            result: None,
            record: Some(FaultRecord {
                window,
                kind: FaultKind::ShardLost,
                attempts: 0,
                outcome: WindowOutcome::Quarantined,
            }),
            injected: 0,
            retries: 0,
            abort_fault: None,
        }
    }

    /// The journal record for this slot's window.
    fn to_entry(&self, window: u64) -> WindowEntry {
        WindowEntry {
            window,
            injected: self.injected,
            retries: self.retries,
            record: self.record.clone(),
            result: self.result.as_ref().map(|(stats, d_max, h)| WindowResult {
                stats: stats.clone(),
                d_max: *d_max,
                histogram: h.clone(),
            }),
        }
    }
}

/// The strictly window-ordered merge fold shared by the ungoverned
/// and governed engines. Folding slots one at a time in window order
/// replays the exact statement sequence of the historical merge loop,
/// so both engines produce bit-identical pooled output for the same
/// slots regardless of how the windows were scheduled.
pub(crate) struct MergeAcc {
    p: Pipeline,
    merged: DegreeHistogram,
    report: FaultReport,
    abort: Option<(u64, u32, WindowFault)>,
    /// Set when the `CoarsenBins` degradation rung engages: subsequent
    /// folds collapse merged-histogram keys to their log-bin
    /// representatives. The pooled `BinStats` is never coarsened.
    coarsen: bool,
}

impl MergeAcc {
    pub(crate) fn new(measurement: Measurement, n: usize) -> MergeAcc {
        let mut report = FaultReport::new(n as u64);
        report.survivors = 0;
        MergeAcc {
            p: Pipeline::new(measurement),
            merged: DegreeHistogram::new(),
            report,
            abort: None,
            coarsen: false,
        }
    }

    /// Fold one completed window into the pooled state and the fault
    /// report — the historical per-slot merge body, verbatim.
    pub(crate) fn fold(&mut self, slot: WindowSlot) {
        self.report.injected += slot.injected;
        self.report.retries += slot.retries;
        if let Some(rec) = slot.record {
            match rec.outcome {
                WindowOutcome::Recovered => self.report.recovered += 1,
                WindowOutcome::Quarantined => self.report.quarantined += 1,
                WindowOutcome::Substituted => self.report.substituted += 1,
                WindowOutcome::Aborted => {
                    if self.abort.is_none() {
                        if let Some(fault) = slot.abort_fault {
                            self.abort = Some((rec.window, rec.attempts, fault));
                        }
                    }
                }
            }
            self.report.records.push(rec);
        }
        if let Some((one, d_max, h)) = slot.result {
            self.report.survivors += 1;
            if let Some(d) = d_max {
                self.p.d_max = self.p.d_max.max(d);
            }
            self.p.stats.merge(&one);
            for (d, c) in h.iter() {
                let key = if self.coarsen { coarsen_degree(d) } else { d };
                self.merged.increment(key, c);
            }
        }
    }

    /// The historical post-merge tail: surface an abort, check the
    /// quarantine threshold, flush counters, package the pool.
    pub(crate) fn finish(
        self,
        policy: &FailurePolicy,
        n: usize,
        metrics: Option<&Metrics>,
    ) -> Result<FaultTolerantPool, PipelineError> {
        if let Some((window, attempts, fault)) = self.abort {
            return Err(PipelineError::WindowAborted {
                window,
                attempts,
                fault,
            });
        }
        if policy.overflows(self.report.quarantined, n as u64) {
            return Err(PipelineError::QuarantineOverflow {
                quarantined: self.report.quarantined,
                windows: n as u64,
                threshold: policy.quarantine_threshold,
            });
        }
        if let Some(m) = metrics {
            m.add_retries(self.report.retries);
            m.add_quarantined(self.report.quarantined);
        }
        Ok(FaultTolerantPool {
            pooled: self.p.finish(),
            report: self.report,
            histogram: self.merged,
        })
    }
}

/// Measured bytes a completed slot retains until it drains into the
/// merge: the binned stats plus the (possibly coarsened) histogram.
/// Always dominated by [`CostModel::slot_bytes`] — the histogram
/// support obeys the distinct-value bound and the `BinStats` vector
/// the 64-bin cap — which is what makes the admission estimate an
/// upper bound on the accounted peak.
fn slot_measured_bytes(slot: &WindowSlot) -> u64 {
    const SLOT_HEADER_BYTES: u64 = 256;
    match &slot.result {
        Some((stats, _, h)) => SLOT_HEADER_BYTES
            .saturating_add(stats.approx_bytes())
            .saturating_add(h.approx_bytes()),
        None => SLOT_HEADER_BYTES,
    }
}

/// Fold every contiguous completed slot from the front of the capture
/// into the merge, releasing its retained bytes. The merge stays
/// strictly window-ordered: only the prefix up to the first
/// still-computing window can drain.
fn drain_prefix(
    acc: &mut MergeAcc,
    slots: &mut [Option<WindowSlot>],
    retained: &mut [u64],
    next_merge: &mut usize,
    budget: &ResourceBudget,
    metrics: Option<&Metrics>,
) {
    time_stage(metrics, Stage::Merge, || {
        while *next_merge < slots.len() {
            let Some(slot) = slots[*next_merge].take() else {
                break;
            };
            acc.fold(slot);
            budget.release(retained[*next_merge]);
            retained[*next_merge] = 0;
            *next_merge += 1;
        }
    });
}

/// Acquire `bytes` from the ledger; on a hard-watermark refusal drain
/// the mergeable prefix to free retained slots and retry once. The
/// second refusal is final — the typed fault propagates and the
/// capture aborts cleanly instead of overcommitting.
#[allow(clippy::too_many_arguments)]
fn acquire_with_drain(
    bytes: u64,
    window: u64,
    budget: &ResourceBudget,
    acc: &mut MergeAcc,
    slots: &mut [Option<WindowSlot>],
    retained: &mut [u64],
    next_merge: &mut usize,
    metrics: Option<&Metrics>,
) -> Result<(), PipelineError> {
    if budget.try_acquire(bytes, window).is_ok() {
        return Ok(());
    }
    drain_prefix(acc, slots, retained, next_merge, budget, metrics);
    budget
        .try_acquire(bytes, window)
        .map(|_| ())
        .map_err(PipelineError::Budget)
}

/// While the soft watermark is breached, engage the next un-engaged
/// [`DegradationRung`] (in ladder order), recording each engagement as
/// a typed event. Once `SpillPooled` has engaged the capture stays in
/// drain mode: every checkpoint folds the completed prefix.
#[allow(clippy::too_many_arguments)]
fn budget_checkpoint(
    window: u64,
    width: &mut usize,
    engaged: &mut [bool; 3],
    budget: &ResourceBudget,
    acc: &mut MergeAcc,
    slots: &mut [Option<WindowSlot>],
    retained: &mut [u64],
    next_merge: &mut usize,
    metrics: Option<&Metrics>,
) {
    while budget.soft_breached() {
        let Some(pos) = engaged.iter().position(|e| !e) else {
            break;
        };
        engaged[pos] = true;
        let rung = DegradationRung::ALL[pos];
        acc.report.degradations.push(DegradationEvent {
            rung,
            window,
            accounted_bytes: budget.accounted(),
        });
        if let Some(m) = metrics {
            m.add_budget_degradation();
        }
        match rung {
            DegradationRung::CoarsenBins => {
                acc.coarsen = true;
                acc.merged = coarsen_histogram(&acc.merged);
                // Coarsen retained, not-yet-drained slot histograms in
                // place and release the shrinkage. Coarsening commutes
                // with summation and is idempotent, so the final
                // merged histogram is independent of *when* this rung
                // engaged. Journal entries are written before any
                // checkpoint runs, so the journal always stores the
                // fine-grained state.
                for (slot, ret) in slots.iter_mut().zip(retained.iter_mut()) {
                    if let Some(s) = slot.as_mut() {
                        if let Some((_, _, h)) = s.result.as_mut() {
                            *h = coarsen_histogram(h);
                        }
                        let now = slot_measured_bytes(s);
                        if now < *ret {
                            budget.release(*ret - now);
                            *ret = now;
                        }
                    }
                }
            }
            DegradationRung::ShrinkWorkers => {
                *width = (*width / 2).max(1);
            }
            DegradationRung::SpillPooled => {
                drain_prefix(acc, slots, retained, next_merge, budget, metrics);
            }
        }
    }
    // Drain mode: once slots spill, they keep spilling.
    if engaged[2] {
        drain_prefix(acc, slots, retained, next_merge, budget, metrics);
    }
}

/// The governed engine (DESIGN.md §4g): width-limited batches of
/// windows acquire their projected transient footprint before any
/// worker spawns, completed slots are accounted at their measured
/// size until they drain into the strictly window-ordered merge, and
/// soft-watermark checkpoints between batches walk the degradation
/// ladder. All ledger traffic happens on this coordinating thread at
/// window boundaries, so the schedule — and every recorded event — is
/// deterministic for a fixed `(configuration, budget, threads)`.
#[allow(clippy::too_many_arguments)]
// lint:hot
fn governed_capture(
    measurement: Measurement,
    obs: &Observatory,
    n: usize,
    start_t: u64,
    threads: usize,
    metrics: Option<&Metrics>,
    policy: &FailurePolicy,
    injector: Option<&Injector>,
    journal: Option<&Journal>,
    mut slots: Vec<Option<WindowSlot>>,
    gov: &Governor<'_>,
    model: &CostModel,
    // Capture wall-clock start, observability only. lint:allow(R2)
    capture_start: std::time::Instant,
) -> Result<FaultTolerantPool, PipelineError> {
    let budget = gov.budget;
    let window_bytes = model.window_bytes();
    let mut width = threads;
    let mut engaged = [false; 3];
    let mut next_merge = 0usize;
    let mut retained: Vec<u64> = vec![0u64; n];
    let mut merged_accounted = 0u64;
    let mut acc = MergeAcc::new(measurement, n);
    // Account journal-replayed slots before computing anything: a
    // `--resume` of a huge journal under a tight budget must degrade
    // (or abort cleanly) exactly like a live capture would.
    for b in 0..n {
        let bytes = match &slots[b] {
            Some(s) => slot_measured_bytes(s),
            None => continue,
        };
        let t = start_t + b as u64;
        acquire_with_drain(
            bytes,
            t,
            budget,
            &mut acc,
            &mut slots,
            &mut retained,
            &mut next_merge,
            metrics,
        )?;
        if next_merge > b {
            // The fallback drain folded this very slot; nothing is
            // retained.
            budget.release(bytes);
        } else {
            retained[b] = bytes;
        }
    }
    if budget.soft_breached() {
        budget_checkpoint(
            start_t,
            &mut width,
            &mut engaged,
            budget,
            &mut acc,
            &mut slots,
            &mut retained,
            &mut next_merge,
            metrics,
        );
    }
    let mut i = 0usize;
    // Batch bookkeeping reused across iterations: cleared (capacity
    // kept) each round instead of reallocated per batch.
    let mut batch: Vec<usize> = Vec::new();
    let mut results: Vec<Option<WindowSlot>> = Vec::new();
    // One arena per worker slot, hoisted out of the batch loop so the
    // hot per-window buffers survive across batches. A batch never
    // exceeds `width ≤ threads` windows, so zipping batch indices with
    // arenas always has an arena for every worker.
    let mut arenas: Vec<WorkerArena> = (0..threads).map(|_| WorkerArena::new()).collect();
    while i < n {
        // Collect the next batch: up to `width` not-yet-computed
        // windows (replayed slots are skipped — already accounted).
        batch.clear();
        let mut j = i;
        while j < n && batch.len() < width {
            if slots[j].is_none() {
                batch.push(j);
            }
            j += 1;
        }
        i = j;
        if batch.is_empty() {
            continue;
        }
        // Acquire the batch's projected transient footprint up front.
        // A ballast-injected window accounts for extra multiples of
        // the window footprint — simulated memory pressure that
        // exercises the ladder without allocating. Under hard
        // pressure the batch *shrinks* instead of aborting: the
        // admission floor guaranteed that at least one window at a
        // time fits, so only a genuinely overcommitted ledger (e.g. a
        // replay-heavy resume) can still abort here.
        let projected = |batch: &[usize]| -> u64 {
            let mut transient = 0u64;
            for &b in batch {
                let t = start_t + b as u64;
                let mult = match injector.and_then(|inj| inj.plan(t, 0)) {
                    Some(InjectedFault::Ballast) => 1 + BALLAST_WINDOW_MULTIPLIER,
                    _ => 1,
                };
                transient = transient.saturating_add(window_bytes.saturating_mul(mult));
            }
            transient
        };
        let t0 = start_t + batch[0] as u64;
        let transient = loop {
            let transient = projected(&batch);
            if budget.try_acquire(transient, t0).is_ok() {
                break transient;
            }
            drain_prefix(
                &mut acc,
                &mut slots,
                &mut retained,
                &mut next_merge,
                budget,
                metrics,
            );
            if budget.try_acquire(transient, t0).is_ok() {
                break transient;
            }
            match batch.pop() {
                // Backpressure: defer the batch's tail window to a
                // later batch and retry with fewer in flight.
                Some(popped) if !batch.is_empty() => i = popped,
                _ => {
                    return Err(PipelineError::Budget(
                        crate::budget::BudgetFault::HardWatermark {
                            accounted: budget.accounted().saturating_add(transient),
                            limit: budget.hard().unwrap_or(0),
                            window: t0,
                        },
                    ));
                }
            }
        };
        // The batch may have shrunk under pressure; re-anchor the
        // checkpoint position to its actual tail.
        let Some(&last_b) = batch.last() else {
            continue;
        };
        // Compute the batch: one worker per window, joined before any
        // ledger or journal traffic resumes.
        results.clear();
        results.resize_with(batch.len(), || None);
        std::thread::scope(|s| {
            for ((slot, &b), arena) in results.iter_mut().zip(&batch).zip(arenas.iter_mut()) {
                let t = start_t + b as u64;
                s.spawn(move || {
                    // The governed path spawns one worker per batch
                    // window; each borrows a long-lived arena, so the
                    // hot buffers are reused across the window's retry
                    // attempts *and* across batches.
                    *slot = Some(process_window(
                        measurement,
                        obs,
                        t,
                        metrics,
                        policy,
                        injector,
                        arena,
                    ));
                });
            }
        });
        // Journal on the coordinating thread, in window order, before
        // any degradation checkpoint can coarsen slot state — the
        // journal always stores fine-grained histograms, so a resume
        // under a different budget stays byte-exact.
        for (computed, &b) in results.drain(..).zip(&batch) {
            let Some(computed) = computed else { continue };
            if let Some(j) = journal {
                if computed.abort_fault.is_none() {
                    let _ = j.append(&computed.to_entry(start_t + b as u64));
                }
            }
            slots[b] = Some(computed);
        }
        if let Some(j) = journal {
            if let Some(fault) = j.take_fault() {
                return Err(PipelineError::Journal(fault));
            }
        }
        // Checkpoint while the batch's transient footprint is still
        // accounted — the soft watermark must see the pressure the
        // batch actually exerted, or the ladder would never engage
        // (transients dominate the retained state).
        budget_checkpoint(
            start_t + last_b as u64,
            &mut width,
            &mut engaged,
            budget,
            &mut acc,
            &mut slots,
            &mut retained,
            &mut next_merge,
            metrics,
        );
        budget.release(transient);
        // Swap the transient footprint for each slot's measured
        // retained size.
        for &b in &batch {
            let bytes = match &slots[b] {
                Some(s) => slot_measured_bytes(s),
                None => continue,
            };
            acquire_with_drain(
                bytes,
                start_t + b as u64,
                budget,
                &mut acc,
                &mut slots,
                &mut retained,
                &mut next_merge,
                metrics,
            )?;
            if next_merge > b {
                budget.release(bytes);
            } else {
                retained[b] = bytes;
            }
        }
        // Re-account the merge-side state the checkpoint and drains
        // may have grown.
        let merged_now = acc
            .merged
            .approx_bytes()
            .saturating_add(acc.p.stats.approx_bytes());
        if merged_now > merged_accounted {
            acquire_with_drain(
                merged_now - merged_accounted,
                start_t + last_b as u64,
                budget,
                &mut acc,
                &mut slots,
                &mut retained,
                &mut next_merge,
                metrics,
            )?;
        } else {
            budget.release(merged_accounted - merged_now);
        }
        merged_accounted = merged_now;
        if let Some(m) = metrics {
            m.record_peak_accounted_bytes(budget.peak());
        }
    }
    // Every slot is filled, so the final drain folds the whole
    // capture in window order.
    drain_prefix(
        &mut acc,
        &mut slots,
        &mut retained,
        &mut next_merge,
        budget,
        metrics,
    );
    debug_assert_eq!(next_merge, n);
    budget.release(merged_accounted);
    if let Some(m) = metrics {
        m.record_peak_accounted_bytes(budget.peak());
        m.add_capture_wall_ns(
            u64::try_from(capture_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
    acc.finish(policy, n, metrics)
}

/// Drive one window through its attempt loop and dispose of it per the
/// policy. Pure in `(t, attempt)` given the observatory seed and the
/// injector, so the outcome is independent of thread placement.
/// `arena` is the worker's reusable buffer set — every attempt clears
/// and refills what it uses, so its incoming contents never matter.
// lint:hot
fn process_window(
    measurement: Measurement,
    obs: &Observatory,
    t: u64,
    metrics: Option<&Metrics>,
    policy: &FailurePolicy,
    injector: Option<&Injector>,
    arena: &mut WorkerArena,
) -> WindowSlot {
    let mut last_fault: Option<WindowFault> = None;
    let mut injected = 0u64;
    let mut attempts = 0u32;
    let mut result: Option<(BinStats, Option<u64>, DegreeHistogram)> = None;
    let deadline_ms = policy.window_deadline_ms;
    for attempt in 0..=policy.max_retries {
        let plan = injector.and_then(|inj| inj.plan(t, attempt));
        if plan.is_some() {
            injected += 1;
        }
        attempts += 1;
        // Stall watchdog: an armed deadline races the monotonic clock
        // against each attempt. Scoped threads cannot be killed, so
        // the verdict lands when the attempt returns — an attempt that
        // *succeeded* but overran is demoted to a Stalled fault and
        // flows through the normal retry/quarantine machinery; a
        // failed attempt keeps its original, more specific fault.
        // Observability-style clock read, never feeds a numerical
        // result. lint:allow(R2)
        let started = std::time::Instant::now();
        let outcome = attempt_window(
            measurement,
            obs,
            t,
            attempt,
            plan,
            deadline_ms,
            metrics,
            arena,
        );
        let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let outcome = match (outcome, deadline_ms) {
            (Ok(_), Some(deadline)) if elapsed_ms > deadline => Err(WindowFault::Stalled {
                elapsed_ms,
                deadline_ms: deadline,
            }),
            (o, _) => o,
        };
        match outcome {
            Ok(r) => {
                result = Some(r);
                break;
            }
            Err(f) => last_fault = Some(f),
        }
    }
    if let Some(r) = result {
        // Clean first attempt ⇒ no record at all; a rescued window is
        // recorded with the fault its failed attempt(s) exhibited.
        let record = if attempts > 1 {
            last_fault.as_ref().map(|f| FaultRecord {
                window: t,
                kind: f.kind(),
                attempts,
                outcome: WindowOutcome::Recovered,
            })
        } else {
            None
        };
        return WindowSlot {
            result: Some(r),
            record,
            injected,
            retries: (attempts - 1) as u64,
            abort_fault: None,
        };
    }
    // Retry budget exhausted: dispose per policy. The loop ran at
    // least once and every attempt failed, so a fault was captured.
    let fault = match last_fault {
        Some(f) => f,
        None => WindowFault::EmptyHistogram,
    };
    match policy.on_fault {
        FaultAction::Abort => WindowSlot {
            result: None,
            record: Some(FaultRecord {
                window: t,
                kind: fault.kind(),
                attempts,
                outcome: WindowOutcome::Aborted,
            }),
            injected,
            retries: (attempts - 1) as u64,
            abort_fault: Some(fault),
        },
        FaultAction::Quarantine => WindowSlot {
            result: None,
            record: Some(FaultRecord {
                window: t,
                kind: fault.kind(),
                attempts,
                outcome: WindowOutcome::Quarantined,
            }),
            injected,
            retries: (attempts - 1) as u64,
            abort_fault: None,
        },
        FaultAction::Substitute => {
            // One extra deterministic re-synthesis, never injected and
            // never watchdogged — it is the last resort.
            attempts += 1;
            match attempt_window(
                measurement,
                obs,
                t,
                policy.max_retries + 1,
                None,
                None,
                metrics,
                arena,
            ) {
                Ok(r) => WindowSlot {
                    result: Some(r),
                    record: Some(FaultRecord {
                        window: t,
                        kind: fault.kind(),
                        attempts,
                        outcome: WindowOutcome::Substituted,
                    }),
                    injected,
                    retries: (attempts - 1) as u64,
                    abort_fault: None,
                },
                Err(f2) => WindowSlot {
                    result: None,
                    record: Some(FaultRecord {
                        window: t,
                        kind: f2.kind(),
                        attempts,
                        outcome: WindowOutcome::Quarantined,
                    }),
                    injected,
                    retries: (attempts - 1) as u64,
                    abort_fault: None,
                },
            }
        }
    }
}

/// One panic-contained attempt at a window. The arena crossing the
/// `catch_unwind` boundary is sound: a panicked attempt can only
/// leave stale buffer contents behind (never a broken invariant), and
/// every stage clears or resets its buffers before reading them.
#[allow(clippy::too_many_arguments)]
fn attempt_window(
    measurement: Measurement,
    obs: &Observatory,
    t: u64,
    attempt: u32,
    plan: Option<InjectedFault>,
    deadline_ms: Option<u64>,
    metrics: Option<&Metrics>,
    arena: &mut WorkerArena,
) -> Result<(BinStats, Option<u64>, DegreeHistogram), WindowFault> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_window_attempt(
            measurement,
            obs,
            t,
            attempt,
            plan,
            deadline_ms,
            metrics,
            arena,
        )
    })) {
        Ok(r) => r,
        Err(payload) => Err(WindowFault::Panic {
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The synthesize → window → histogram → bin stages for one attempt at
/// window `t`, with fault classification and (optional) injection.
/// With `plan = None` and a healthy window this replays the exact
/// float-op sequence of the pre-fault-tolerance worker, preserving the
/// bit-identity contract.
// lint:hot
#[allow(clippy::too_many_arguments)]
fn run_window_attempt(
    measurement: Measurement,
    obs: &Observatory,
    t: u64,
    attempt: u32,
    plan: Option<InjectedFault>,
    deadline_ms: Option<u64>,
    metrics: Option<&Metrics>,
    arena: &mut WorkerArena,
) -> Result<(BinStats, Option<u64>, DegreeHistogram), WindowFault> {
    if plan == Some(InjectedFault::Stall) {
        // Oversleep the watchdog deadline so the attempt is classified
        // Stalled; with no deadline armed the delay is benign (the
        // window still completes correctly), mirroring a real slow
        // worker under an unwatched capture.
        let ms = deadline_ms.map_or(30, |d| d.saturating_add(25));
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    time_stage(metrics, Stage::Synthesize, || {
        obs.packets_at_retry_into(t, attempt, &mut arena.packets)
    })?;
    let packets = &mut arena.packets;
    if let Some(m) = metrics {
        m.add_packets(packets.len() as u64);
    }
    match plan {
        Some(InjectedFault::Truncate) => {
            let keep = packets.len() / 2;
            packets.truncate(keep);
        }
        Some(InjectedFault::DuplicateStorm) => {
            if let Some(&first) = packets.first() {
                for p in packets.iter_mut() {
                    *p = first;
                }
            }
        }
        _ => {}
    }
    let n_v = obs.config().n_v;
    if packets.len() as u64 != n_v {
        return Err(WindowFault::Truncated {
            expected: n_v,
            actual: packets.len() as u64,
        });
    }
    if plan == Some(InjectedFault::WorkerPanic) {
        // Deliberate fault injection: contained by `attempt_window`'s
        // `catch_unwind` and classified as `WindowFault::Panic`.
        // lint:allow(R8)
        panic!("injected fault: worker panic in window {t} (attempt {attempt})");
    }
    let w = time_stage(metrics, Stage::Window, || {
        PacketWindow::from_packets_with(t, &arena.packets, &mut arena.coo, &mut arena.csr)
    })?;
    let h = time_stage(metrics, Stage::Histogram, || {
        measurement.histogram_with(&w, &mut arena.degree)
    });
    if w.n_v() > 0 && h.is_empty() {
        return Err(WindowFault::EmptyHistogram);
    }
    // Support-collapse heuristic: a real window of ≥ 16 packets never
    // concentrates on ≤ 2 histogram entries; a duplicate-edge storm
    // does.
    if w.n_v() >= 16 && h.total() <= 2 {
        return Err(WindowFault::Degenerate { support: h.total() });
    }
    // The window is spent: every later stage reads only `h`. Hand its
    // backing arrays back so the next window builds into them.
    w.recycle(&mut arena.csr);
    let one = time_stage(metrics, Stage::Bin, || -> Result<BinStats, WindowFault> {
        let mut dc = DifferentialCumulative::from_histogram(&h);
        if plan == Some(InjectedFault::NanBin) && dc.n_bins() > 0 {
            let mut values: Vec<f64> = (0..dc.n_bins()).map(|i| dc.value(i)).collect();
            let poison = t as usize % values.len();
            values[poison] = f64::NAN;
            dc = DifferentialCumulative::from_values(values);
        }
        for i in 0..dc.n_bins() {
            if !dc.value(i).is_finite() {
                return Err(WindowFault::NonFiniteBin { bin: i });
            }
        }
        let mut one = BinStats::new();
        one.push(&dc);
        Ok(one)
    })?;
    Ok((one, h.d_max(), h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, InjectionSpec};
    use crate::journal::JournalHeader;
    use crate::observatory::{Observatory, ObservatoryConfig};
    use crate::packets::{EdgeIntensity, Packet};
    use palu_graph::palu_gen::PaluGenerator;

    fn observatory(seed: u64) -> Observatory {
        Observatory::new(
            ObservatoryConfig {
                name: "pipeline-test".into(),
                date: "2026-07-06".into(),
                n_v: 4_000,
            },
            &PaluGenerator::new(2_000, 600, 400, 2.0, 1.5).unwrap(),
            EdgeIntensity::Uniform,
            seed,
        )
    }

    #[test]
    fn pooled_mass_is_one() {
        let mut obs = observatory(1);
        let windows = obs.windows(8);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        assert_eq!(pooled.windows, 8);
        assert!((pooled.mean.total_mass() - 1.0).abs() < 1e-9);
        assert!(pooled.d_max >= 1);
        assert_eq!(pooled.sigma.len(), pooled.mean.n_bins());
    }

    #[test]
    fn sigma_is_zero_for_single_window() {
        let mut obs = observatory(2);
        let windows = obs.windows(1);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        assert!(pooled.sigma.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn sigma_positive_for_varying_windows() {
        let mut obs = observatory(3);
        let windows = obs.windows(10);
        let pooled = Pipeline::pool(
            Measurement::Quantity(NetworkQuantity::SourceFanOut),
            &windows,
        );
        assert!(
            pooled.sigma.iter().any(|&s| s > 0.0),
            "some bin must fluctuate across windows"
        );
    }

    #[test]
    fn incremental_equals_batch() {
        let mut obs = observatory(4);
        let windows = obs.windows(5);
        let batch = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        let mut inc = Pipeline::new(Measurement::UndirectedDegree);
        for w in &windows {
            inc.push_window(w);
        }
        let inc = inc.finish();
        assert_eq!(batch.mean, inc.mean);
        assert_eq!(batch.sigma, inc.sigma);
        assert_eq!(batch.d_max, inc.d_max);
    }

    #[test]
    fn pool_many_matches_individual() {
        let mut obs = observatory(5);
        let windows = obs.windows(4);
        let ms = [
            Measurement::UndirectedDegree,
            Measurement::Quantity(NetworkQuantity::LinkPackets),
            Measurement::Quantity(NetworkQuantity::DestinationFanIn),
        ];
        let many = Pipeline::pool_many(&ms, &windows);
        for (m, pooled) in ms.iter().zip(&many) {
            let single = Pipeline::pool(*m, &windows);
            assert_eq!(single.mean, pooled.mean);
            assert_eq!(single.sigma, pooled.sigma);
        }
    }

    #[test]
    fn degree_one_bin_dominates_palu_traffic() {
        // PALU traffic at moderate p has its largest pooled mass in the
        // d = 1 bin (leaves + unattached links) — the headline
        // observation of the paper.
        let mut obs = observatory(6);
        let windows = obs.windows(6);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        let d1 = pooled.mean.value(0);
        for i in 1..pooled.mean.n_bins() {
            assert!(d1 >= pooled.mean.value(i), "bin {i} exceeds the d=1 bin");
        }
        assert!(d1 > 0.2, "d=1 mass {d1} suspiciously small");
    }

    #[test]
    fn weights_invert_variance() {
        let pooled = PooledDistribution {
            mean: palu_stats::logbin::DifferentialCumulative::from_values(vec![0.5, 0.5]),
            sigma: vec![0.1, 0.0],
            windows: 2,
            d_max: 2,
        };
        let w = pooled.weights(7.0);
        assert!((w[0] - 100.0).abs() < 1e-9);
        assert_eq!(w[1], 7.0);
    }

    #[test]
    fn weights_degenerate_to_uniform_when_all_sigma_zero() {
        // Regression: a single pooled window has sigma = 0 in every
        // bin; the weights must be uniform 1.0, not default_weight.
        let mut obs = observatory(7);
        let windows = obs.windows(1);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        assert!(pooled.sigma.iter().all(|&s| s == 0.0));
        let w = pooled.weights(100.0);
        assert!(!w.is_empty());
        assert!(w.iter().all(|&x| x == 1.0), "weights {w:?}");
        // Multi-window pooling keeps the inverse-variance behavior:
        // fluctuating bins get 1/σ², constant bins the default.
        let windows = obs.windows(10);
        let pooled = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        let w = pooled.weights(100.0);
        let varying = pooled
            .sigma
            .iter()
            .zip(&w)
            .filter(|&(&s, _)| s > 0.0)
            .count();
        assert!(varying > 0, "fixture must have fluctuating bins");
        for (&s, &wi) in pooled.sigma.iter().zip(&w) {
            if s > 0.0 {
                assert!((wi - 1.0 / (s * s)).abs() < 1e-9);
            } else {
                assert_eq!(wi, 100.0);
            }
        }
    }

    #[test]
    fn parallel_pool_bit_identical_to_serial() {
        // The tentpole contract: pooled mean, sigma, d_max, and window
        // count are bitwise equal to the serial fold for any thread
        // count, including thread counts that do not divide the window
        // count and exceed it.
        let mut serial_obs = observatory(8);
        let windows = serial_obs.windows(13);
        let serial = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        for threads in [1, 2, 3, 5, 7, 8, 32] {
            let mut par_obs = observatory(8);
            let parallel = Pipeline::pool_observatory_parallel(
                Measurement::UndirectedDegree,
                &mut par_obs,
                13,
                threads,
                None,
            );
            assert_eq!(parallel.windows, serial.windows, "threads {threads}");
            assert_eq!(parallel.d_max, serial.d_max, "threads {threads}");
            assert_eq!(
                parallel.mean.n_bins(),
                serial.mean.n_bins(),
                "threads {threads}"
            );
            for i in 0..serial.mean.n_bins() {
                assert_eq!(
                    parallel.mean.value(i).to_bits(),
                    serial.mean.value(i).to_bits(),
                    "mean bin {i}, threads {threads}"
                );
                assert_eq!(
                    parallel.sigma[i].to_bits(),
                    serial.sigma[i].to_bits(),
                    "sigma bin {i}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_pool_advances_the_observatory_like_serial() {
        let mut a = observatory(9);
        let mut b = observatory(9);
        let _ = a.windows(6);
        let _ =
            Pipeline::pool_observatory_parallel(Measurement::UndirectedDegree, &mut b, 6, 4, None);
        // Both observatories are now positioned at window 6.
        assert_eq!(a.next_window().matrix(), b.next_window().matrix());
    }

    #[test]
    fn parallel_pool_records_metrics() {
        let mut obs = observatory(10);
        let metrics = crate::metrics::Metrics::new();
        let pooled = Pipeline::pool_observatory_parallel(
            Measurement::UndirectedDegree,
            &mut obs,
            4,
            2,
            Some(&metrics),
        );
        assert_eq!(pooled.windows, 4);
        let snap = metrics.snapshot();
        assert_eq!(snap.windows, 4);
        assert_eq!(snap.threads, 2);
        assert_eq!(snap.packets, 4 * 4_000);
        // Every expensive stage ran and was timed.
        assert!(snap.synthesize_ns > 0, "{snap:?}");
        assert!(snap.histogram_ns > 0, "{snap:?}");
    }

    #[test]
    fn checked_engine_clean_run_matches_legacy_bitwise() {
        let mut serial_obs = observatory(11);
        let windows = serial_obs.windows(7);
        let serial = Pipeline::pool(Measurement::UndirectedDegree, &windows);
        let mut obs = observatory(11);
        let ft = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            7,
            3,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap();
        assert!(ft.report.is_clean());
        assert_eq!(ft.report.survivors, 7);
        assert_eq!(ft.pooled.windows, serial.windows);
        assert_eq!(ft.pooled.d_max, serial.d_max);
        for i in 0..serial.mean.n_bins() {
            assert_eq!(
                ft.pooled.mean.value(i).to_bits(),
                serial.mean.value(i).to_bits(),
                "mean bin {i}"
            );
            assert_eq!(
                ft.pooled.sigma[i].to_bits(),
                serial.sigma[i].to_bits(),
                "sigma bin {i}"
            );
        }
        // The merged histogram is the sum of the survivors' histograms.
        let total: u64 = windows
            .iter()
            .map(|w| w.undirected_degree_histogram().total())
            .sum();
        assert_eq!(ft.histogram.total(), total);
    }

    #[test]
    fn checked_engine_rejects_zero_windows() {
        let mut obs = observatory(12);
        let err = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            0,
            4,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap_err();
        assert_eq!(err, PipelineError::ZeroWindows);
        // The legacy wrapper preserves the old silent-empty contract.
        let pooled = Pipeline::pool_observatory_parallel(
            Measurement::UndirectedDegree,
            &mut obs,
            0,
            4,
            None,
        );
        assert_eq!(pooled.windows, 0);
    }

    #[test]
    fn abort_policy_surfaces_the_first_faulted_window() {
        let mut obs = observatory(13);
        let inj = Injector::new(
            InjectionSpec {
                truncate: 1.0,
                ..InjectionSpec::none()
            },
            5,
        );
        let err = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            6,
            2,
            None,
            &FailurePolicy::strict(),
            Some(&inj),
        )
        .unwrap_err();
        match err {
            PipelineError::WindowAborted {
                window,
                attempts,
                fault,
            } => {
                assert_eq!(window, 0, "first faulted window in window order");
                assert_eq!(attempts, 1);
                assert!(matches!(fault, WindowFault::Truncated { .. }), "{fault:?}");
            }
            other => panic!("expected WindowAborted, got {other:?}"),
        }
    }

    #[test]
    fn stealing_schedule_matches_ordered_run_under_heavy_faults() {
        // The work-stealing queue hands windows to workers in a
        // timing-dependent order; under a 50% injection rate the
        // per-window costs vary wildly (retries, substitutions), which
        // is exactly when schedules diverge most. The pooled output,
        // merged histogram, and the full fault report (record order
        // included) must still be identical to the single-threaded
        // ordered run at every thread count.
        let run = |threads: usize| {
            let mut obs = observatory(33);
            let inj = Injector::new(InjectionSpec::uniform(0.5), 33);
            Pipeline::pool_observatory_checked(
                Measurement::UndirectedDegree,
                &mut obs,
                12,
                threads,
                None,
                &FailurePolicy::quarantine(1),
                Some(&inj),
            )
            .unwrap()
        };
        let ordered = run(1);
        assert!(
            ordered.report.injected > 0,
            "the spec must actually fire: {:?}",
            ordered.report
        );
        for threads in [2, 3, 5, 8, 16] {
            let stolen = run(threads);
            assert_bitwise_equal(
                &stolen.pooled,
                &ordered.pooled,
                &format!("threads {threads}"),
            );
            assert_eq!(stolen.histogram, ordered.histogram, "threads {threads}");
            assert_eq!(stolen.report, ordered.report, "threads {threads}");
        }
    }

    #[test]
    fn quarantine_overflow_respects_the_threshold() {
        let inj = Injector::new(InjectionSpec::uniform(1.0), 6);
        let tight = FailurePolicy {
            quarantine_threshold: 0.25,
            ..FailurePolicy::quarantine(0)
        };
        let mut obs = observatory(14);
        let err = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            4,
            None,
            &tight,
            Some(&inj),
        )
        .unwrap_err();
        assert!(
            matches!(err, PipelineError::QuarantineOverflow { .. }),
            "{err:?}"
        );
    }

    fn assert_bitwise_equal(a: &PooledDistribution, b: &PooledDistribution, what: &str) {
        assert_eq!(a.windows, b.windows, "{what}: windows");
        assert_eq!(a.d_max, b.d_max, "{what}: d_max");
        assert_eq!(a.mean.n_bins(), b.mean.n_bins(), "{what}: bins");
        for i in 0..a.mean.n_bins() {
            assert_eq!(
                a.mean.value(i).to_bits(),
                b.mean.value(i).to_bits(),
                "{what}: mean bin {i}"
            );
            assert_eq!(
                a.sigma[i].to_bits(),
                b.sigma[i].to_bits(),
                "{what}: sigma bin {i}"
            );
        }
    }

    #[test]
    fn durable_capture_resumes_bit_identical() {
        let dir = std::env::temp_dir().join("palu-pipeline-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("durable.journal");
        let header = JournalHeader {
            seed: 21,
            n_v: 4_000,
            windows: 8,
            fingerprint: 0xABC,
            params: vec![],
        };
        let mut obs = observatory(21);
        let baseline = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            3,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap();
        // Durable run writing the journal from scratch.
        let mut obs = observatory(21);
        let j = Journal::create(&path, header.clone()).unwrap();
        let full = Pipeline::pool_observatory_durable(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            3,
            None,
            &FailurePolicy::strict(),
            None,
            Some(&j),
            None,
        )
        .unwrap();
        drop(j);
        assert_bitwise_equal(&full.pooled, &baseline.pooled, "durable full run");
        // Simulate a kill: chop the journal mid-record and resume at a
        // different thread count.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();
        let (j2, rec) = Journal::resume(&path, header.clone()).unwrap();
        let replayed = rec.windows.len() as u64;
        assert!(replayed > 0 && replayed < 8, "replayed {replayed}");
        let metrics = Metrics::new();
        let mut obs = observatory(21);
        let resumed = Pipeline::pool_observatory_durable(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            5,
            Some(&metrics),
            &FailurePolicy::strict(),
            None,
            Some(&j2),
            Some(&rec),
        )
        .unwrap();
        assert_bitwise_equal(&resumed.pooled, &baseline.pooled, "resumed run");
        assert_eq!(resumed.histogram.total(), baseline.histogram.total());
        let snap = metrics.snapshot();
        assert_eq!(snap.windows_recovered, replayed);
        assert!(snap.journal_bytes_replayed > 0);
        // After the resumed run the journal holds all 8 windows again.
        drop(j2);
        let bytes = std::fs::read(&path).unwrap();
        let rec = crate::journal::Journal::recover_bytes(&bytes, &header).unwrap();
        assert_eq!(rec.windows.len(), 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stall_watchdog_classifies_and_recovers() {
        let mut obs = observatory(22);
        let inj = Injector::new(
            InjectionSpec {
                stall: 0.7,
                ..InjectionSpec::none()
            },
            9,
        );
        let policy = FailurePolicy {
            quarantine_threshold: 1.0,
            ..FailurePolicy::quarantine(2)
        }
        .with_deadline_ms(100);
        let ft = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            6,
            3,
            None,
            &policy,
            Some(&inj),
        )
        .unwrap();
        let stalled: Vec<_> = ft
            .report
            .records
            .iter()
            .filter(|r| r.kind == FaultKind::Stalled)
            .collect();
        assert!(!stalled.is_empty(), "no stalls with a 0.7 injection rate");
        for r in &stalled {
            assert!(
                matches!(
                    r.outcome,
                    WindowOutcome::Recovered | WindowOutcome::Quarantined
                ),
                "{r:?}"
            );
        }
        assert!(ft.report.retries > 0);
    }

    #[test]
    fn unwatched_stall_injection_is_benign() {
        // Without --window-deadline-ms the stall only delays; results
        // stay bit-identical to a clean run.
        let mut obs = observatory(23);
        let clean = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            3,
            2,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap();
        let inj = Injector::new(
            InjectionSpec {
                stall: 1.0,
                ..InjectionSpec::none()
            },
            9,
        );
        let mut obs = observatory(23);
        let stalled = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            3,
            2,
            None,
            &FailurePolicy::strict(),
            Some(&inj),
        )
        .unwrap();
        assert_bitwise_equal(&stalled.pooled, &clean.pooled, "unwatched stall");
        assert_eq!(stalled.report.survivors, 3);
    }

    fn governed(
        seed: u64,
        threads: usize,
        budget: &ResourceBudget,
        injector: Option<&Injector>,
        metrics: Option<&Metrics>,
    ) -> Result<FaultTolerantPool, PipelineError> {
        let mut obs = observatory(seed);
        let gov = Governor {
            budget,
            strict_admission: false,
        };
        Pipeline::pool_observatory_governed(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            threads,
            metrics,
            &FailurePolicy::strict(),
            injector,
            None,
            None,
            Some(&gov),
        )
    }

    fn governed_cost_model(threads: u64) -> CostModel {
        let obs = observatory(0);
        CostModel {
            n_v: obs.config().n_v,
            n_nodes: obs.underlying().n_nodes() as u64,
            windows: 8,
            threads,
        }
    }

    #[test]
    fn governed_ample_budget_is_bit_identical_to_ungoverned() {
        let mut obs = observatory(31);
        let baseline = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            4,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap();
        let budget = ResourceBudget::with_limit(1 << 40);
        let metrics = Metrics::new();
        let ft = governed(31, 4, &budget, None, Some(&metrics)).unwrap();
        assert_bitwise_equal(&ft.pooled, &baseline.pooled, "governed ample");
        assert_eq!(ft.histogram, baseline.histogram, "merged histogram");
        assert!(ft.report.degradations.is_empty(), "no rungs under ample");
        let snap = metrics.snapshot();
        assert!(snap.peak_accounted_bytes > 0, "accounting ran");
        assert!(
            snap.admission_estimate_bytes >= snap.peak_accounted_bytes,
            "estimate {} < actual peak {}",
            snap.admission_estimate_bytes,
            snap.peak_accounted_bytes
        );
        assert_eq!(budget.accounted(), 0, "ledger fully released");
    }

    #[test]
    fn tight_budget_degrades_deterministically_and_completes() {
        let model = governed_cost_model(4);
        // Between the fully degraded floor and the undegraded peak:
        // admission passes, the ladder must engage.
        let limit = model.floor_bytes() + model.window_bytes();
        assert!(limit < model.peak_bytes(4), "budget genuinely tight");
        let mut obs = observatory(32);
        let baseline = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            4,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap();
        let budget = ResourceBudget::with_limit(limit);
        let ft = governed(32, 4, &budget, None, None).unwrap();
        assert!(
            !ft.report.degradations.is_empty(),
            "tight budget must engage the ladder"
        );
        // The pooled BinStats is never coarsened, so the pooled
        // distribution survives degradation bit-identically.
        assert_bitwise_equal(&ft.pooled, &baseline.pooled, "governed tight");
        // Reruns at the same budget reproduce the same events.
        let budget2 = ResourceBudget::with_limit(limit);
        let ft2 = governed(32, 4, &budget2, None, None).unwrap();
        assert_eq!(ft.report.degradations, ft2.report.degradations);
        assert_eq!(budget.peak(), budget2.peak());
        // Pooled output is thread-count independent even under
        // pressure (rung histories may differ; the pool may not).
        for threads in [1usize, 2, 8] {
            let b = ResourceBudget::with_limit(limit);
            let ft_t = governed(32, threads, &b, None, None).unwrap();
            assert_bitwise_equal(
                &ft_t.pooled,
                &baseline.pooled,
                &format!("governed tight, {threads} threads"),
            );
        }
    }

    #[test]
    fn infeasible_budget_is_refused_before_the_observatory_advances() {
        let model = governed_cost_model(4);
        let budget = ResourceBudget::with_limit(model.floor_bytes() / 2);
        let err = governed(33, 4, &budget, None, None).unwrap_err();
        match err {
            PipelineError::Budget(crate::budget::BudgetFault::AdmissionRefused {
                floor,
                limit,
                ..
            }) => {
                assert!(floor > limit, "refused because the floor exceeds the limit");
            }
            other => panic!("expected AdmissionRefused, got {other:?}"),
        }
        // The refusal happened before any window was synthesized: the
        // same observatory still produces the full capture from t = 0.
        let mut obs = observatory(33);
        let gov = Governor {
            budget: &budget,
            strict_admission: false,
        };
        let refused = Pipeline::pool_observatory_governed(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            4,
            None,
            &FailurePolicy::strict(),
            None,
            None,
            None,
            Some(&gov),
        );
        assert!(refused.is_err());
        let after = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut obs,
            8,
            4,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap();
        let mut fresh = observatory(33);
        let fresh_run = Pipeline::pool_observatory_checked(
            Measurement::UndirectedDegree,
            &mut fresh,
            8,
            4,
            None,
            &FailurePolicy::strict(),
            None,
        )
        .unwrap();
        assert_bitwise_equal(
            &after.pooled,
            &fresh_run.pooled,
            "window counter untouched by the refusal",
        );
    }

    #[test]
    fn ballast_injection_pressures_the_ladder_without_corrupting_data() {
        let model = governed_cost_model(4);
        // Soft watermark well above a clean 4-wide batch (≈ 4 window
        // footprints) but well below a ballasted one (≈ 16): the clean
        // capture never degrades, the ballasted one must.
        let wb = model.window_bytes();
        let soft = wb * 6;
        let hard = model.peak_bytes(4) * 4;
        let clean_budget = ResourceBudget::with_watermarks(Some(soft), Some(hard));
        let clean = governed(34, 4, &clean_budget, None, None).unwrap();
        assert!(clean.report.degradations.is_empty(), "clean run fits");
        // Certain ballast quadruples every window's accounted
        // transient, forcing the ladder.
        let inj = Injector::new(
            InjectionSpec {
                ballast: 1.0,
                ..InjectionSpec::none()
            },
            5,
        );
        let ballast_budget = ResourceBudget::with_watermarks(Some(soft), Some(hard));
        let metrics = Metrics::new();
        let ft = governed(34, 4, &ballast_budget, Some(&inj), Some(&metrics)).unwrap();
        assert!(
            !ft.report.degradations.is_empty(),
            "ballast must engage the ladder"
        );
        assert_eq!(
            metrics.snapshot().budget_degradations,
            ft.report.degradations.len() as u64
        );
        // Ballast is pure accounting pressure — the measured data is
        // untouched.
        assert_bitwise_equal(&ft.pooled, &clean.pooled, "ballast run");
        assert!(ft.report.injected > 0, "ballast plans are counted");
        assert_eq!(ft.report.survivors, 8);
    }

    #[test]
    fn measurement_histograms_dispatch() {
        let packets = vec![
            Packet { src: 0, dst: 1 },
            Packet { src: 1, dst: 0 },
            Packet { src: 0, dst: 2 },
        ];
        let w = PacketWindow::from_packets(0, &packets);
        let und = Measurement::UndirectedDegree.histogram(&w);
        // Partners: 0↔{1,2}, 1↔{0}, 2↔{0}.
        assert_eq!(und.count(2), 1);
        assert_eq!(und.count(1), 2);
        let fanout = Measurement::Quantity(NetworkQuantity::SourceFanOut).histogram(&w);
        // Sources 0 (→1,2) and 1 (→0).
        assert_eq!(fanout.count(2), 1);
        assert_eq!(fanout.count(1), 1);
    }
}
