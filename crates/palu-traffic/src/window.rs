//! Fixed-`N_V` packet windows.
//!
//! "An essential step for increasing the accuracy of the statistical
//! measures of Internet traffic is using windows with the same number
//! of valid packets `N_V`" (Section II). A [`PacketWindow`] aggregates
//! exactly `N_V` packets into a sparse matrix `A_t` and exposes the
//! Table I aggregates and Figure 1 quantity histograms.

use crate::fault::WindowFault;
use crate::packets::Packet;
use palu_sparse::aggregates::Aggregates;
use palu_sparse::coo::CooMatrix;
use palu_sparse::csr::CsrMatrix;
use palu_sparse::quantities::QuantityHistograms;
use palu_sparse::scratch::{CsrScratch, DegreeScratch};

/// One aggregated packet window `A_t`.
#[derive(Debug, Clone)]
pub struct PacketWindow {
    matrix: CsrMatrix,
    n_v: u64,
    /// Window index `t` in the stream.
    t: u64,
}

impl PacketWindow {
    /// Aggregate a slice of packets (the window's `N_V` is the slice
    /// length) with window index `t`.
    pub fn from_packets(t: u64, packets: &[Packet]) -> Self {
        let mut coo = CooMatrix::with_capacity(palu_sparse::admitted_capacity(packets.len()));
        for p in packets {
            coo.push_packet(p.src, p.dst);
        }
        let matrix = coo.to_csr();
        PacketWindow {
            matrix,
            n_v: packets.len() as u64,
            t,
        }
    }

    /// [`PacketWindow::from_packets`] on reusable per-worker buffers:
    /// the COO builder and the CSR conversion scratch are cleared and
    /// refilled instead of reallocated, so a worker assembling one
    /// window after another performs no steady-state heap allocation
    /// here. Produces a window whose matrix is **equal** to
    /// [`PacketWindow::from_packets`]'s on the same packets — the
    /// pipeline's bit-identity contract rests on that equality.
    ///
    /// # Errors
    ///
    /// [`WindowFault::BudgetUnrepresentable`] when CSR buffer sizing
    /// overflows (the allocating path would panic instead; both are
    /// unreachable for admitted window geometries).
    pub fn from_packets_with(
        t: u64,
        packets: &[Packet],
        coo: &mut CooMatrix,
        csr: &mut CsrScratch,
    ) -> Result<Self, WindowFault> {
        coo.clear();
        for p in packets {
            coo.push_packet(p.src, p.dst);
        }
        let matrix = coo
            .try_to_csr_with(csr)
            .map_err(|_| WindowFault::BudgetUnrepresentable {
                n_v: packets.len() as u64,
            })?;
        Ok(PacketWindow {
            matrix,
            n_v: packets.len() as u64,
            t,
        })
    }

    /// Recycle this window's matrix allocations into `csr` for the
    /// next [`PacketWindow::from_packets_with`] call.
    pub fn recycle(self, csr: &mut CsrScratch) {
        csr.recycle(self.matrix);
    }

    /// Aggregate packets whose host ids are sparse in `u32` (e.g.
    /// anonymized addresses): ids are densely re-labeled in order of
    /// first appearance before aggregation. Every statistic the
    /// pipeline computes is invariant under this relabeling.
    ///
    /// # Errors
    ///
    /// [`WindowFault::HostIdOverflow`] if the window holds more
    /// distinct host ids than `u32` can relabel — a typed fault the
    /// pipeline's quarantine machinery can classify, rather than a
    /// panic. (The map holds at most one entry per distinct `u32` id,
    /// so in practice the relabeling always fits; the check replaces a
    /// silent truncation, not a reachable panic.)
    pub fn from_packets_compacted(t: u64, packets: &[Packet]) -> Result<Self, WindowFault> {
        // Lookup-only relabel map, never iterated; labels are assigned in
        // packet order (first appearance), so the output is deterministic.
        // lint:allow(R2)
        type IdMap = std::collections::HashMap<u32, u32>;
        let mut ids = IdMap::new();
        let compact = |id: u32, ids: &mut IdMap| -> Result<u32, WindowFault> {
            if let Some(&label) = ids.get(&id) {
                return Ok(label);
            }
            let next = u32::try_from(ids.len()).map_err(|_| WindowFault::HostIdOverflow {
                distinct: ids.len() as u64,
            })?;
            ids.insert(id, next);
            Ok(next)
        };
        let mut coo = CooMatrix::with_capacity(palu_sparse::admitted_capacity(packets.len()));
        for p in packets {
            let s = compact(p.src, &mut ids)?;
            let d = compact(p.dst, &mut ids)?;
            coo.push_packet(s, d);
        }
        Ok(PacketWindow {
            matrix: coo.to_csr(),
            n_v: packets.len() as u64,
            t,
        })
    }

    /// The sparse matrix `A_t`.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// The window's valid-packet count `N_V`.
    pub fn n_v(&self) -> u64 {
        self.n_v
    }

    /// Window index `t`.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// Table I aggregates of this window.
    pub fn aggregates(&self) -> Aggregates {
        Aggregates::compute(&self.matrix)
    }

    /// All five Figure 1 quantity histograms.
    pub fn quantities(&self) -> QuantityHistograms {
        QuantityHistograms::compute(&self.matrix)
    }

    /// Per-host traffic *volume*: total packets the host sent or
    /// received in the window — the weighted-degree view of the
    /// paper's future-work section (link weight = packet count).
    /// Every packet contributes to exactly two hosts, so the
    /// histogram's degree-sum is `2·N_V`.
    pub fn node_volume_histogram(&self) -> palu_stats::histogram::DegreeHistogram {
        self.node_volume_histogram_with(&mut DegreeScratch::new())
    }

    /// [`PacketWindow::node_volume_histogram`] on a reusable scratch —
    /// the worker hot path; identical output.
    pub fn node_volume_histogram_with(
        &self,
        scratch: &mut DegreeScratch,
    ) -> palu_stats::histogram::DegreeHistogram {
        scratch.node_volume_histogram(&self.matrix)
    }

    /// The *undirected degree* histogram of the window: for each
    /// visible host, the number of distinct partners it exchanged
    /// packets with (union of fan-in and fan-out neighbor sets,
    /// de-duplicated). This is the quantity the PALU model's degree
    /// distribution describes, since the model is undirected.
    /// The historical implementation built a
    /// `BTreeMap<u32, BTreeSet<u32>>` of partner sets per window — one
    /// heap node per insert, which serialized parallel workers on the
    /// allocator. The scratch path (sort-based edge dedup + touched
    /// counts) produces an equal histogram allocation-free; see
    /// `palu_sparse::scratch` and the equivalence test there.
    pub fn undirected_degree_histogram(&self) -> palu_stats::histogram::DegreeHistogram {
        self.undirected_degree_histogram_with(&mut DegreeScratch::new())
    }

    /// [`PacketWindow::undirected_degree_histogram`] on a reusable
    /// scratch — the worker hot path; identical output.
    pub fn undirected_degree_histogram_with(
        &self,
        scratch: &mut DegreeScratch,
    ) -> palu_stats::histogram::DegreeHistogram {
        scratch.undirected_degree_histogram(&self.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::Packet;

    fn packets() -> Vec<Packet> {
        // 0→1 ×2, 1→0 ×1, 0→2 ×1, 3→2 ×1.
        vec![
            Packet { src: 0, dst: 1 },
            Packet { src: 0, dst: 1 },
            Packet { src: 1, dst: 0 },
            Packet { src: 0, dst: 2 },
            Packet { src: 3, dst: 2 },
        ]
    }

    #[test]
    fn window_matrix_counts_packets() {
        let w = PacketWindow::from_packets(7, &packets());
        assert_eq!(w.n_v(), 5);
        assert_eq!(w.t(), 7);
        assert_eq!(w.matrix().get(0, 1), 2);
        assert_eq!(w.matrix().get(1, 0), 1);
        assert_eq!(w.matrix().get(3, 2), 1);
        assert_eq!(w.matrix().total(), 5);
    }

    #[test]
    fn aggregates_of_window() {
        let w = PacketWindow::from_packets(0, &packets());
        let a = w.aggregates();
        assert_eq!(a.valid_packets, 5);
        assert_eq!(a.unique_links, 4); // (0,1),(1,0),(0,2),(3,2)
        assert_eq!(a.unique_sources, 3); // 0, 1, 3
        assert_eq!(a.unique_destinations, 3); // 1, 0, 2
    }

    #[test]
    fn quantities_of_window() {
        let w = PacketWindow::from_packets(0, &packets());
        let q = w.quantities();
        // Source packets: node 0 sent 3, node 1 sent 1, node 3 sent 1.
        assert_eq!(q.source_packets.count(3), 1);
        assert_eq!(q.source_packets.count(1), 2);
        // Link packets: weights 2,1,1,1.
        assert_eq!(q.link_packets.count(2), 1);
        assert_eq!(q.link_packets.count(1), 3);
    }

    #[test]
    fn undirected_degrees_merge_directions() {
        let w = PacketWindow::from_packets(0, &packets());
        let h = w.undirected_degree_histogram();
        // Partners: 0↔{1,2}, 1↔{0}, 2↔{0,3}, 3↔{2}.
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(2), 2); // nodes 0 and 2
        assert_eq!(h.count(1), 2); // nodes 1 and 3
    }

    #[test]
    fn node_volume_sums_to_twice_nv() {
        let w = PacketWindow::from_packets(0, &packets());
        let h = w.node_volume_histogram();
        // Volumes: node 0 = 3+1 = 4, node 1 = 1+2 = 3, node 2 = 2,
        // node 3 = 1. Each packet counted at both endpoints.
        assert_eq!(h.degree_sum(), 2 * w.n_v());
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn compacted_window_matches_dense_stats() {
        // Spread the fixture's ids across u32; compaction must give the
        // same statistics as the dense original.
        let sparse: Vec<Packet> = packets()
            .iter()
            .map(|p| Packet {
                src: p.src * 1_000_003 + 17,
                dst: p.dst * 1_000_003 + 17,
            })
            .collect();
        let dense = PacketWindow::from_packets(0, &packets());
        let compact = PacketWindow::from_packets_compacted(0, &sparse).unwrap();
        assert_eq!(dense.aggregates(), compact.aggregates());
        assert_eq!(
            dense.undirected_degree_histogram(),
            compact.undirected_degree_histogram()
        );
        assert_eq!(
            dense.quantities().link_packets,
            compact.quantities().link_packets
        );
    }

    #[test]
    fn from_packets_with_matches_allocating_path() {
        let mut coo = CooMatrix::new();
        let mut csr = CsrScratch::new();
        // Two different windows through one reused builder+scratch.
        let a = PacketWindow::from_packets(3, &packets());
        let b = PacketWindow::from_packets_with(3, &packets(), &mut coo, &mut csr).unwrap();
        assert_eq!(a.matrix(), b.matrix());
        assert_eq!(a.n_v(), b.n_v());
        assert_eq!(a.t(), b.t());
        b.recycle(&mut csr);
        let other = vec![Packet { src: 9, dst: 9 }, Packet { src: 1, dst: 4 }];
        let c = PacketWindow::from_packets(4, &other);
        let d = PacketWindow::from_packets_with(4, &other, &mut coo, &mut csr).unwrap();
        assert_eq!(c.matrix(), d.matrix());
        assert_eq!(
            c.undirected_degree_histogram(),
            d.undirected_degree_histogram_with(&mut DegreeScratch::new())
        );
    }

    #[test]
    fn scratch_histograms_match_plain_ones() {
        let w = PacketWindow::from_packets(0, &packets());
        let mut s = DegreeScratch::new();
        assert_eq!(
            w.undirected_degree_histogram(),
            w.undirected_degree_histogram_with(&mut s)
        );
        assert_eq!(
            w.node_volume_histogram(),
            w.node_volume_histogram_with(&mut s)
        );
    }

    #[test]
    fn empty_window() {
        let w = PacketWindow::from_packets(0, &[]);
        assert_eq!(w.n_v(), 0);
        assert_eq!(w.aggregates().valid_packets, 0);
        assert!(w.undirected_degree_histogram().is_empty());
    }
}
