//! Streaming-traffic substrate: the synthetic observatory.
//!
//! The paper fits distributions measured from CAIDA/MAWI trunk-line
//! captures: streams of packets cut into windows of exactly `N_V`
//! valid packets, each aggregated into a sparse matrix `A_t`
//! (Section II). Those captures are proprietary, so this crate
//! *simulates the observatory*: it synthesizes packet streams from a
//! PALU underlying network and runs the identical measurement pipeline
//! — windowing, sparse aggregation, the five Figure 1 quantities,
//! binary logarithmic pooling, and per-bin mean/σ across consecutive
//! windows. See DESIGN.md ("Data substitution") for why this preserves
//! the paper-relevant behaviour.
//!
//! * [`packets`] — packet synthesis from a network's edge set, with
//!   uniform or heavy-tailed per-link intensities.
//! * [`window`] — fixed-`N_V` windows aggregated into CSR matrices.
//! * [`anonymize`] — the id-scrambling step real captures apply.
//! * [`observatory`] — a named vantage point producing consecutive
//!   windows (the Figure 3 panels are six of these).
//! * [`pipeline`] — multi-window pooled distributions `D(d_i) ± σ(d_i)`
//!   for any network quantity, serial or sharded across scoped threads
//!   with a bit-identical deterministic merge.
//! * [`metrics`] — zero-dependency per-stage instrumentation of the
//!   pipeline (wall-times and packet/window counters).
//! * [`fault`] — the typed window-failure taxonomy, retry/quarantine
//!   policies, and the seeded deterministic fault injector behind the
//!   pipeline's fault tolerance (DESIGN.md §4e).
//! * [`journal`] — the durable write-ahead capture journal behind
//!   checkpoint/resume: CRC32-framed window records, torn-tail
//!   recovery, and typed refusal of corrupt or mismatched journals
//!   (DESIGN.md §4f).
//! * [`budget`] — the resource-budget governor: admission control from
//!   per-stage cost models, accounted-bytes backpressure, and the
//!   graceful-degradation ladder for bounded-memory captures
//!   (DESIGN.md §4g).
//! * [`federation`] — fault-tolerant sharded capture: disjoint window
//!   ranges over one seed sequence, hierarchical journal merge
//!   bit-identical to a single-process run, typed shard-fault
//!   quarantine with a coverage threshold (DESIGN.md §4j).
//! * [`wire`] — the service wire protocol: journal-record framing on
//!   TCP, typed [`wire::ServiceFault`] taxonomy, and the seeded
//!   wire-fault injector (DESIGN.md §4k).
//! * [`service`] — federation service mode: the crash-tolerant
//!   shard-submission collector/server with rolling merged fits, and
//!   the retry/backoff submission client (DESIGN.md §4k).
#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

/// Deterministic keyed address anonymization (CryptoPAn-style prefix preservation).
pub mod anonymize;
/// Resource-budget governor: admission control, backpressure, and
/// graceful degradation for bounded-memory captures.
pub mod budget;
/// Federation dispatcher: lease-based shard supervision with
/// heartbeat liveness, fencing tokens, and deterministic re-dispatch.
pub mod dispatch;
/// Typed window-failure taxonomy, failure policies, and the seeded
/// deterministic fault injector.
pub mod fault;
/// Fault-tolerant sharded capture with hierarchical journal merge.
pub mod federation;
/// Durable write-ahead capture journal for checkpoint/resume.
pub mod journal;
/// Per-stage wall-time and volume instrumentation for the pipeline.
pub mod metrics;
/// A named vantage point producing consecutive observation windows.
pub mod observatory;
/// Synthetic packet/flow generation from a PALU topology.
pub mod packets;
/// Multi-window pooled distributions `D(d_i) ± σ(d_i)` per quantity.
pub mod pipeline;
/// Federation service mode: crash-tolerant shard-submission server
/// and retry/backoff submission client.
pub mod service;
/// The flow-record stream abstraction feeding window assembly.
pub mod stream;
/// Single-window accumulation of flows into per-node quantities.
pub mod window;
/// The federation service's wire protocol and fault injector.
pub mod wire;

pub use budget::{
    BudgetFault, CostModel, DegradationEvent, DegradationRung, Governor, ResourceBudget,
    SuggestedConfig,
};
pub use dispatch::{
    request_lease, resume_zombie, run_worker, send_heartbeat, send_work_done, worker_journal_name,
    DispatchConfig, DispatchFault, DispatchReport, DispatchServer, Dispatcher, WorkPhase,
    WorkerConfig, WorkerReport, ZombieOutcome,
};
pub use fault::{
    FailurePolicy, FaultAction, FaultKind, FaultRecord, FaultReport, InjectedFault, InjectionSpec,
    Injector, PipelineError, WindowFault, WindowOutcome,
};
pub use federation::{
    capture_shard, merge_shard_journals, FederatedMerge, FederationError, FederationReport,
    ShardFault, ShardPlan, ShardRange, ShardReport,
};
pub use journal::{Journal, JournalFault, JournalHeader, Recovery, WindowEntry, WindowResult};
pub use metrics::{Metrics, MetricsSnapshot, Stage};
pub use observatory::Observatory;
pub use packets::{EdgeIntensity, Packet, PacketSynthesizer};
pub use pipeline::{FaultTolerantPool, Pipeline, PooledDistribution};
pub use service::{
    query_fit, request_shutdown, submit_journal, Collector, RetryPolicy, Server, ServiceConfig,
    ServiceReport, SubmitOutcome,
};
pub use window::PacketWindow;
pub use wire::{
    FitSnapshot, LeaseOffer, LeaseTicket, RefusalClass, ServiceFault, ShardTornRow, WireFault,
    WireInjector, WireSpec,
};
