//! Packet synthesis from an underlying network.
//!
//! Each edge of the underlying network is a *conversation*: a pair of
//! hosts that in general "feel like talking" (Section I). A packet is
//! one observed datagram on one conversation, in one direction. The
//! synthesizer draws packets by sampling conversations from an
//! intensity distribution; a window of `N_V` packets then contains a
//! conversation with probability `1 − (1 − w_e)^{N_V}` — which is how
//! the model's abstract edge-retention probability `p` emerges from a
//! concrete packet budget.

use crate::fault::WindowFault;
use palu_graph::graph::Graph;
use palu_stats::rng::Rng;

/// One observed packet: a directed source → destination datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Source host id.
    pub src: u32,
    /// Destination host id.
    pub dst: u32,
}

/// Per-conversation traffic intensity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeIntensity {
    /// Every conversation equally likely per packet. The cleanest
    /// realization of the paper's unweighted model.
    Uniform,
    /// Heavy-tailed per-conversation rates: `w_e ∝ Pareto(shape)`.
    /// Produces the heavy-tailed *link packets* distribution of
    /// Figure 1 (per-link packet counts are themselves power-law in
    /// real traffic).
    Pareto {
        /// Pareto shape (smaller = heavier tail); must be > 0.
        shape: f64,
    },
}

/// Draws packets from a network's conversations.
#[derive(Debug, Clone)]
pub struct PacketSynthesizer {
    /// Conversation endpoints (one per underlying edge).
    conversations: Vec<(u32, u32)>,
    /// Cumulative intensity table for weighted sampling.
    cumulative: Vec<f64>,
    intensity: EdgeIntensity,
}

impl PacketSynthesizer {
    /// Build a synthesizer over `g`'s edges.
    ///
    /// For [`EdgeIntensity::Pareto`], per-edge weights are drawn once
    /// here (they are a property of the underlying network, constant
    /// across windows — the paper's premise that the underlying network
    /// is fixed while windows vary).
    ///
    /// # Panics
    ///
    /// Panics if `g` has no edges (no traffic to synthesize) or the
    /// Pareto shape is not positive.
    pub fn new<R: Rng + ?Sized>(g: &Graph, intensity: EdgeIntensity, rng: &mut R) -> Self {
        assert!(
            g.n_edges() > 0,
            "cannot synthesize traffic from an edgeless network"
        );
        let conversations: Vec<(u32, u32)> = g.edges().to_vec();
        let weights: Vec<f64> = match intensity {
            EdgeIntensity::Uniform => vec![1.0; conversations.len()],
            EdgeIntensity::Pareto { shape } => {
                assert!(shape > 0.0, "Pareto shape must be positive");
                (0..conversations.len())
                    .map(|_| {
                        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                        u.powf(-1.0 / shape) // Pareto(scale=1, shape)
                    })
                    .collect()
            }
        };
        let mut cumulative = Vec::with_capacity(palu_sparse::admitted_capacity(weights.len()));
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cumulative.push(acc);
        }
        PacketSynthesizer {
            conversations,
            cumulative,
            intensity,
        }
    }

    /// Number of conversations (underlying edges).
    pub fn n_conversations(&self) -> usize {
        self.conversations.len()
    }

    /// The intensity model in use.
    pub fn intensity(&self) -> EdgeIntensity {
        self.intensity
    }

    /// Draw one packet: pick a conversation by intensity, orient it
    /// uniformly (internet links carry traffic both ways; the paper's
    /// model is undirected so direction is symmetric noise).
    ///
    /// # Errors
    ///
    /// [`WindowFault::EmptySynthesizer`] when there are no
    /// conversations to draw from — a typed fault the pipeline's
    /// quarantine machinery can classify, rather than a panic.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Packet, WindowFault> {
        let Some(&total) = self.cumulative.last() else {
            return Err(WindowFault::EmptySynthesizer);
        };
        let x = rng.gen::<f64>() * total;
        let idx = self
            .cumulative
            .partition_point(|&c| c < x)
            .min(self.conversations.len() - 1);
        let (u, v) = self.conversations[idx];
        Ok(if rng.gen::<bool>() {
            Packet { src: u, dst: v }
        } else {
            Packet { src: v, dst: u }
        })
    }

    /// Draw `n` packets into a vector.
    ///
    /// # Errors
    ///
    /// Propagates [`PacketSynthesizer::draw`]'s fault.
    pub fn draw_many<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
    ) -> Result<Vec<Packet>, WindowFault> {
        let mut out = Vec::new();
        self.draw_many_into(rng, n, &mut out)?;
        Ok(out)
    }

    /// Draw `n` packets into a caller-provided buffer, clearing it
    /// first. Consumes the RNG in exactly the same order as
    /// [`PacketSynthesizer::draw_many`], so a worker that reuses one
    /// buffer across windows produces bit-identical packets to one
    /// that allocates fresh vectors. On a fault the buffer holds the
    /// packets drawn so far; callers must not read it after an `Err`.
    ///
    /// # Errors
    ///
    /// Propagates [`PacketSynthesizer::draw`]'s fault.
    pub fn draw_many_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        out: &mut Vec<Packet>,
    ) -> Result<(), WindowFault> {
        out.clear();
        out.reserve(palu_sparse::admitted_capacity(n));
        for _ in 0..n {
            out.push(self.draw(rng)?);
        }
        Ok(())
    }

    /// The effective edge-retention probability `p` a window of `n_v`
    /// packets realizes under *uniform* intensity:
    /// `p = 1 − (1 − 1/E)^{N_V} ≈ 1 − e^{−N_V/E}`.
    ///
    /// This is the bridge between the packet-budget view of Section II
    /// and the `p`-parameter view of Sections III–V.
    pub fn effective_p_uniform(&self, n_v: u64) -> f64 {
        let e = self.n_conversations() as f64;
        1.0 - (-(n_v as f64) / e).exp()
    }

    /// Number of packets needed for a target retention probability `p`
    /// under uniform intensity: `N_V = −E·ln(1 − p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn packets_for_p(&self, p: f64) -> u64 {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
        let e = self.n_conversations() as f64;
        (-e * (1.0 - p).ln()).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palu_graph::graph::Graph;
    use palu_stats::rng::Xoshiro256pp;

    fn ring(n: u32) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    #[should_panic(expected = "edgeless")]
    fn edgeless_network_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        PacketSynthesizer::new(&Graph::with_nodes(5), EdgeIntensity::Uniform, &mut rng);
    }

    #[test]
    fn packets_use_real_conversations() {
        let g = ring(10);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let syn = PacketSynthesizer::new(&g, EdgeIntensity::Uniform, &mut rng);
        assert_eq!(syn.n_conversations(), 10);
        let edges: std::collections::HashSet<(u32, u32)> = g
            .edges()
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        for _ in 0..1000 {
            let p = syn.draw(&mut rng).unwrap();
            assert!(edges.contains(&(p.src, p.dst)), "{p:?} not an edge");
        }
    }

    #[test]
    fn uniform_intensity_is_uniform() {
        let g = ring(8);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let syn = PacketSynthesizer::new(&g, EdgeIntensity::Uniform, &mut rng);
        let n = 80_000;
        let mut counts = [0u32; 8];
        for p in syn.draw_many(&mut rng, n).unwrap() {
            // Identify the ring edge by its lower endpoint (mod wrap).
            let key = if (p.src + 1) % 8 == p.dst {
                p.src
            } else {
                p.dst
            };
            counts[key as usize] += 1;
        }
        let expected = n as f64 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            let se = (expected * (1.0 - 1.0 / 8.0)).sqrt();
            assert!(
                (c as f64 - expected).abs() < 5.0 * se,
                "edge {i}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn draw_many_into_matches_draw_many_and_clears() {
        let g = ring(16);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let syn = PacketSynthesizer::new(&g, EdgeIntensity::Uniform, &mut rng);
        let mut a = Xoshiro256pp::seed_from_u64(10);
        let mut b = Xoshiro256pp::seed_from_u64(10);
        let fresh = syn.draw_many(&mut a, 500).unwrap();
        let mut reused = vec![Packet { src: 0, dst: 0 }; 7];
        syn.draw_many_into(&mut b, 500, &mut reused).unwrap();
        assert_eq!(fresh, reused);
        // Reuse across calls stays seed-determined, stale contents
        // never leak through.
        let mut c = Xoshiro256pp::seed_from_u64(10);
        syn.draw_many_into(&mut c, 500, &mut reused).unwrap();
        assert_eq!(fresh, reused);
    }

    #[test]
    fn both_directions_occur() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let syn = PacketSynthesizer::new(&g, EdgeIntensity::Uniform, &mut rng);
        let packets = syn.draw_many(&mut rng, 1000).unwrap();
        let forward = packets.iter().filter(|p| p.src == 0).count();
        assert!(forward > 400 && forward < 600, "forward {forward}");
    }

    #[test]
    fn pareto_intensity_skews_link_counts() {
        let g = ring(1000);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let uni = PacketSynthesizer::new(&g, EdgeIntensity::Uniform, &mut rng);
        let par = PacketSynthesizer::new(&g, EdgeIntensity::Pareto { shape: 1.2 }, &mut rng);
        let count_max = |syn: &PacketSynthesizer, rng: &mut Xoshiro256pp| {
            let mut counts = std::collections::HashMap::new();
            for p in syn.draw_many(rng, 50_000).unwrap() {
                *counts
                    .entry((p.src.min(p.dst), p.src.max(p.dst)))
                    .or_insert(0u32) += 1;
            }
            counts.values().copied().max().unwrap()
        };
        let m_uni = count_max(&uni, &mut rng);
        let m_par = count_max(&par, &mut rng);
        assert!(
            m_par > 3 * m_uni,
            "pareto max link count {m_par} should dwarf uniform {m_uni}"
        );
    }

    #[test]
    #[should_panic(expected = "Pareto shape")]
    fn pareto_shape_validated() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        PacketSynthesizer::new(&ring(4), EdgeIntensity::Pareto { shape: 0.0 }, &mut rng);
    }

    #[test]
    fn effective_p_round_trips_packet_budget() {
        let g = ring(5000);
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let syn = PacketSynthesizer::new(&g, EdgeIntensity::Uniform, &mut rng);
        for &p in &[0.1, 0.5, 0.9] {
            let n_v = syn.packets_for_p(p);
            let realized = syn.effective_p_uniform(n_v);
            assert!((realized - p).abs() < 0.01, "p {p}: realized {realized}");
        }
    }

    #[test]
    fn effective_p_matches_empirical_coverage() {
        // Draw a window and check the fraction of distinct
        // conversations seen matches 1 − e^{−N_V/E}.
        let g = ring(2000);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let syn = PacketSynthesizer::new(&g, EdgeIntensity::Uniform, &mut rng);
        let n_v = 3000u64;
        let packets = syn.draw_many(&mut rng, n_v as usize).unwrap();
        let distinct: std::collections::HashSet<_> = packets
            .iter()
            .map(|p| (p.src.min(p.dst), p.src.max(p.dst)))
            .collect();
        let coverage = distinct.len() as f64 / 2000.0;
        let predicted = syn.effective_p_uniform(n_v);
        assert!(
            (coverage - predicted).abs() < 0.03,
            "coverage {coverage} vs predicted {predicted}"
        );
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn packets_for_p_validates() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let syn = PacketSynthesizer::new(&ring(4), EdgeIntensity::Uniform, &mut rng);
        syn.packets_for_p(1.0);
    }
}
