//! Wire protocol for the federation service (DESIGN.md §4k).
//!
//! The service moves shard journals over TCP using the *journal
//! record framing itself*: every message is one
//! `len:u32 LE | crc32(payload):u32 LE | payload[len]` record
//! ([`crate::journal`]), and a submitted shard's header/window
//! records travel byte-verbatim — the payload a client puts on the
//! wire is the exact payload its on-disk journal holds, so an
//! accepted submission is byte-identical to the shard journal it came
//! from. Control messages (submission handshake, fit queries,
//! shutdown) use payload type bytes ≥ 16, disjoint from the journal's
//! types 0 (header) and 1 (window) by construction.
//!
//! ```text
//! frame   := len:u32 LE | crc32(payload):u32 LE | payload[len]
//! payload := type:u8 body
//!
//! type  0  journal header record   (verbatim, see crate::journal)
//! type  1  journal window record   (verbatim, see crate::journal)
//! type 16  SubmitBegin  shard:u64 shards:u64 windows:u64
//! type 17  BeginAck     n:u64 (window:u64)*          — already persisted
//! type 18  SubmitEnd    sent:u64
//! type 19  EndAck       accepted:u64 n:u64 (window:u64)*  — still missing
//! type 20  Reject       code:u8 len:u16 message[len]
//! type 21  FitRequest
//! type 22  FitResponse  windows:u64 covered:u64 min_coverage:f64bits
//!                       partial:u8 survivors:u64 quarantined:u64
//!                       pooled_windows:u64 d_max:u64
//!                       n:u64 (degree:u64 mean:f64bits sigma:f64bits)*
//! type 23  Shutdown                                  — admin drain
//! type 24  ShutdownAck
//! type 25  LeaseRequest worker:u64                   — dispatcher mode
//! type 26  LeaseGrant   status:u8 [ticket]           — 0 granted / 1 wait / 2 complete
//!                       ticket := worker:u64 shard:u64 shards:u64 windows:u64
//!                                 lo:u64 hi:u64 fence:u64 lease_ms:u64
//!                                 heartbeat_ms:u64 fingerprint:u64
//! type 27  Heartbeat    worker:u64 shard:u64 fence:u64
//! type 28  LeaseRenew   fence:u64 deadline_ms:u64
//! type 29  WorkDone     worker:u64 shard:u64 fence:u64
//! ```
//!
//! Every way a frame or a session can fail is a typed
//! [`ServiceFault`]; the server answers bad input with a `Reject`
//! frame carrying the fault's stable wire code, and a client
//! reconstructs it as [`ServiceFault::Remote`]. Torn frames (a
//! client killed mid-write) mirror the journal's torn-tail
//! classification: the complete prefix of a session stands, the torn
//! frame is dropped and the window resubmits on retry.
//!
//! The [`WireInjector`] is the transport twin of
//! [`crate::fault::Injector`]: seeded, per-(frame, attempt)
//! deterministic faults — drop / corrupt / duplicate / delay /
//! truncate — so the retry/idempotency machinery is exercised by
//! tests and CI at 50% rates, not just by theory.

use crate::journal::{self, crc32, JournalFault, MAX_RECORD_LEN};
use palu_stats::rng::{Rng, SeedSequence};
use std::io::{Read, Write};

/// Payload type byte for [`WireMessage::SubmitBegin`].
pub const TYPE_SUBMIT_BEGIN: u8 = 16;
/// Payload type byte for [`WireMessage::BeginAck`].
pub const TYPE_BEGIN_ACK: u8 = 17;
/// Payload type byte for [`WireMessage::SubmitEnd`].
pub const TYPE_SUBMIT_END: u8 = 18;
/// Payload type byte for [`WireMessage::EndAck`].
pub const TYPE_END_ACK: u8 = 19;
/// Payload type byte for [`WireMessage::Reject`].
pub const TYPE_REJECT: u8 = 20;
/// Payload type byte for [`WireMessage::FitRequest`].
pub const TYPE_FIT_REQUEST: u8 = 21;
/// Payload type byte for [`WireMessage::FitResponse`].
pub const TYPE_FIT_RESPONSE: u8 = 22;
/// Payload type byte for [`WireMessage::Shutdown`].
pub const TYPE_SHUTDOWN: u8 = 23;
/// Payload type byte for [`WireMessage::ShutdownAck`].
pub const TYPE_SHUTDOWN_ACK: u8 = 24;
/// Payload type byte for [`WireMessage::LeaseRequest`].
pub const TYPE_LEASE_REQUEST: u8 = 25;
/// Payload type byte for [`WireMessage::LeaseGrant`].
pub const TYPE_LEASE_GRANT: u8 = 26;
/// Payload type byte for [`WireMessage::Heartbeat`].
pub const TYPE_HEARTBEAT: u8 = 27;
/// Payload type byte for [`WireMessage::LeaseRenew`].
pub const TYPE_LEASE_RENEW: u8 = 28;
/// Payload type byte for [`WireMessage::WorkDone`].
pub const TYPE_WORK_DONE: u8 = 29;

/// Typed service failure taxonomy — every way a frame, a session, or
/// the service itself can fail. Mirrors [`JournalFault`]'s contract:
/// nothing on the wire path panics and nothing is silently dropped;
/// a fault either closes the session with a `Reject` frame (server)
/// or drives the retry loop (client).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceFault {
    /// An OS-level socket failure (connect, read, write).
    Io {
        /// The OS error message.
        detail: String,
    },
    /// The stream ended inside a frame — the signature of a peer
    /// killed mid-write. Like a journal torn tail, this is crash
    /// residue: everything before it stands, the torn frame resends.
    Torn {
        /// Bytes of the incomplete frame that were received.
        bytes: u64,
    },
    /// A complete length prefix outside `(0, MAX_RECORD_LEN]` —
    /// stream desync or corruption, never crash residue.
    Oversized {
        /// The declared payload length.
        len: u32,
    },
    /// A complete frame whose CRC32 does not match its payload.
    Checksum,
    /// A complete, checksummed frame with an unknown payload type.
    UnknownFrame {
        /// The unrecognized type byte.
        kind: u8,
    },
    /// A checksummed frame whose body is internally inconsistent.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// The per-connection read deadline elapsed with no frame.
    Deadline,
    /// A well-formed message at the wrong point in the session
    /// (window before `SubmitBegin`, ack from a client, …).
    Protocol {
        /// What was out of order.
        detail: String,
    },
    /// A submitted journal header's identity (seed, version,
    /// parameter fingerprint) does not match the service's capture —
    /// the same typed refusal as `pool --merge`, naming the skewed
    /// parameter.
    IdentitySkew {
        /// The underlying typed journal refusal.
        fault: JournalFault,
    },
    /// The service could not persist an accepted record through the
    /// journal layer.
    Journal {
        /// The underlying journal failure, rendered.
        detail: String,
    },
    /// A `SubmitBegin` addressed a shard outside the service's plan,
    /// or declared a different plan geometry.
    BadShard {
        /// The offending shard index (or shard count).
        shard: u64,
        /// Shards in the service's plan.
        shards: u64,
    },
    /// Two submissions delivered *different* contents for the same
    /// window — resubmission is idempotent only for byte-identical
    /// records, so this is data inconsistency, refused like journal
    /// corruption.
    WindowConflict {
        /// The contested window index.
        window: u64,
    },
    /// A fit was requested (or served) below the coverage threshold.
    /// The service still serves the partial pool — this marker rides
    /// on the snapshot so callers can refuse typed, like
    /// `pool --merge`'s coverage gate.
    PartialCoverage {
        /// Windows currently covered.
        covered: u64,
        /// Total windows in the capture.
        windows: u64,
        /// The configured minimum coverage fraction.
        min_coverage: f64,
    },
    /// The server is draining for shutdown and accepts no new
    /// submissions.
    Draining,
    /// The service could not be reached before the retry deadline —
    /// connect refusals and elapsed backoff budgets end up here.
    Unavailable {
        /// The last underlying failure.
        detail: String,
    },
    /// A lease-protocol frame carried a stale fencing token: the
    /// lease it belonged to expired (or the dispatcher restarted) and
    /// the range was re-dispatched under a newer fence. The zombie
    /// holder must stop; byte-idempotent resubmission keeps coverage
    /// safe regardless, this refusal makes the zombie *observable*.
    LeaseFenced {
        /// The worker presenting the stale token.
        worker: u64,
        /// The shard whose lease was fenced.
        shard: u64,
        /// The stale fencing token presented.
        fence: u64,
    },
    /// A refusal received from the peer as a `Reject` frame: `code`
    /// is the original fault's wire code, `message` its rendering.
    Remote {
        /// The originating fault's [`ServiceFault::code`].
        code: u8,
        /// The originating fault's display rendering.
        message: String,
    },
}

/// The CLI-exit-code class a terminal [`ServiceFault`] maps to,
/// matching the `pool --merge` convention: corruption, identity skew,
/// and coverage refusals keep their established codes, and transport
/// exhaustion gets its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalClass {
    /// Caller error: bad shard index, out-of-order protocol use.
    Usage,
    /// Data corruption or inconsistency (exit code 4's class).
    Corrupt,
    /// Capture identity mismatch (exit code 5's class).
    IdentitySkew,
    /// Below the coverage threshold (exit code 6's class).
    Coverage,
    /// The service could not be reached or the session could not
    /// complete (exit code 8's class).
    Unavailable,
    /// A stale fencing token — the presenting worker is a zombie and
    /// must stop (exit code 9's class).
    Fenced,
}

impl ServiceFault {
    /// Stable lowercase name, used as a JSON label.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceFault::Io { .. } => "io",
            ServiceFault::Torn { .. } => "torn",
            ServiceFault::Oversized { .. } => "oversized",
            ServiceFault::Checksum => "checksum",
            ServiceFault::UnknownFrame { .. } => "unknown_frame",
            ServiceFault::Malformed { .. } => "malformed",
            ServiceFault::Deadline => "deadline",
            ServiceFault::Protocol { .. } => "protocol",
            ServiceFault::IdentitySkew { .. } => "identity_skew",
            ServiceFault::Journal { .. } => "journal",
            ServiceFault::BadShard { .. } => "bad_shard",
            ServiceFault::WindowConflict { .. } => "window_conflict",
            ServiceFault::PartialCoverage { .. } => "partial_coverage",
            ServiceFault::Draining => "draining",
            ServiceFault::Unavailable { .. } => "unavailable",
            ServiceFault::LeaseFenced { .. } => "lease_fenced",
            ServiceFault::Remote { .. } => "remote",
        }
    }

    /// Stable wire code carried by `Reject` frames. A
    /// [`ServiceFault::Remote`] reports the code it was built from,
    /// so classification survives one hop.
    pub fn code(&self) -> u8 {
        match self {
            ServiceFault::Io { .. } => 1,
            ServiceFault::Torn { .. } => 2,
            ServiceFault::Oversized { .. } => 3,
            ServiceFault::Checksum => 4,
            ServiceFault::UnknownFrame { .. } => 5,
            ServiceFault::Malformed { .. } => 6,
            ServiceFault::Deadline => 7,
            ServiceFault::Protocol { .. } => 8,
            ServiceFault::IdentitySkew { .. } => 9,
            ServiceFault::Journal { .. } => 10,
            ServiceFault::BadShard { .. } => 11,
            ServiceFault::WindowConflict { .. } => 12,
            ServiceFault::PartialCoverage { .. } => 13,
            ServiceFault::Draining => 14,
            ServiceFault::Unavailable { .. } => 15,
            ServiceFault::LeaseFenced { .. } => 16,
            ServiceFault::Remote { code, .. } => *code,
        }
    }

    /// The exit-code class this fault refuses under when terminal.
    pub fn refusal(&self) -> RefusalClass {
        match self.code() {
            5 | 8 | 11 => RefusalClass::Usage,
            3 | 4 | 6 | 10 | 12 => RefusalClass::Corrupt,
            9 => RefusalClass::IdentitySkew,
            13 => RefusalClass::Coverage,
            16 => RefusalClass::Fenced,
            _ => RefusalClass::Unavailable,
        }
    }

    /// Whether a client may retry after this fault: transport
    /// trouble, deadlines, and drains are transient; identity skew,
    /// plan mismatches, data inconsistency, and fencing never heal by
    /// retry (a fenced lease stays fenced — a newer fence owns it).
    pub fn retryable(&self) -> bool {
        !matches!(
            self.refusal(),
            RefusalClass::Usage
                | RefusalClass::Corrupt
                | RefusalClass::IdentitySkew
                | RefusalClass::Fenced
        ) || matches!(self, ServiceFault::Checksum | ServiceFault::Torn { .. })
            || self.code() == 4
            || self.code() == 2
    }
}

impl std::fmt::Display for ServiceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceFault::Io { detail } => write!(f, "socket error: {detail}"),
            ServiceFault::Torn { bytes } => write!(
                f,
                "stream ended inside a frame ({bytes} byte(s) received) — peer died \
                 mid-write; complete frames stand, the torn frame resends"
            ),
            ServiceFault::Oversized { len } => write!(
                f,
                "frame declares length {len} outside (0, {MAX_RECORD_LEN}] — stream \
                 desync or corruption"
            ),
            ServiceFault::Checksum => {
                write!(
                    f,
                    "frame checksum mismatch — corrupted in transit, rejected"
                )
            }
            ServiceFault::UnknownFrame { kind } => write!(f, "unknown frame type {kind}"),
            ServiceFault::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            ServiceFault::Deadline => write!(f, "read deadline elapsed with no frame"),
            ServiceFault::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            ServiceFault::IdentitySkew { fault } => {
                write!(f, "identity skew — {fault}")
            }
            ServiceFault::Journal { detail } => {
                write!(f, "journal persistence failed: {detail}")
            }
            ServiceFault::BadShard { shard, shards } => {
                write!(f, "shard {shard} outside the service's {shards}-shard plan")
            }
            ServiceFault::WindowConflict { window } => write!(
                f,
                "window {window} resubmitted with different contents — refusing \
                 ambiguous data (resubmission is idempotent only byte-for-byte)"
            ),
            ServiceFault::PartialCoverage {
                covered,
                windows,
                min_coverage,
            } => write!(
                f,
                "coverage below threshold: {covered}/{windows} window(s) submitted, \
                 minimum coverage is {min_coverage}"
            ),
            ServiceFault::Draining => write!(f, "server is draining for shutdown"),
            ServiceFault::Unavailable { detail } => {
                write!(f, "service unavailable: {detail}")
            }
            ServiceFault::LeaseFenced {
                worker,
                shard,
                fence,
            } => write!(
                f,
                "lease fenced: worker {worker} presented stale fencing token {fence} \
                 for shard {shard} — the lease expired and the range was re-dispatched \
                 under a newer fence; stop working this range"
            ),
            ServiceFault::Remote { code, message } => {
                write!(f, "server refused (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ServiceFault {}

/// Classify a socket error: a timed-out read is the per-connection
/// deadline, everything else is transport failure.
pub(crate) fn io_fault(e: &std::io::Error) -> ServiceFault {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ServiceFault::Deadline,
        _ => ServiceFault::Io {
            detail: e.to_string(),
        },
    }
}

/// Read as much of `buf` as the stream will give: loops over short
/// reads, stops at EOF, retries interrupts. Returns bytes filled.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let (_, rest) = buf.split_at_mut(filled);
        match r.read(rest) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read one frame: `Ok(Some(payload))` for a complete, checksummed
/// frame, `Ok(None)` for a clean end-of-stream at a frame boundary.
///
/// # Errors
///
/// [`ServiceFault::Torn`] when the stream ends inside a frame,
/// [`ServiceFault::Oversized`] / [`ServiceFault::Checksum`] for
/// corruption, [`ServiceFault::Deadline`] when the read deadline
/// fires, [`ServiceFault::Io`] otherwise — exactly mirroring the
/// journal recovery state machine, frame by frame.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ServiceFault> {
    let mut prefix = [0u8; 8];
    let got = read_full(r, &mut prefix).map_err(|e| io_fault(&e))?;
    if got == 0 {
        return Ok(None);
    }
    if got < prefix.len() {
        return Err(ServiceFault::Torn { bytes: got as u64 });
    }
    let [l0, l1, l2, l3, c0, c1, c2, c3] = prefix;
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    let stored = u32::from_le_bytes([c0, c1, c2, c3]);
    if len == 0 || len > MAX_RECORD_LEN {
        return Err(ServiceFault::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload).map_err(|e| io_fault(&e))?;
    if got < payload.len() {
        return Err(ServiceFault::Torn {
            bytes: (8 + got) as u64,
        });
    }
    if crc32(&payload) != stored {
        return Err(ServiceFault::Checksum);
    }
    Ok(Some(payload))
}

/// Frame `payload` with the journal record framing and write it.
///
/// # Errors
///
/// [`ServiceFault::Io`] / [`ServiceFault::Deadline`] on socket
/// failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServiceFault> {
    let mut framed = Vec::with_capacity(payload.len() + 8);
    journal::frame_record(payload, &mut framed);
    w.write_all(&framed).map_err(|e| io_fault(&e))?;
    w.flush().map_err(|e| io_fault(&e))?;
    Ok(())
}

/// One row of a served fit: a bin's degree plus the pooled mean and
/// sigma as raw IEEE-754 bits, so a fit crosses the wire
/// bit-identically to the single-process pooled output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitRow {
    /// The bin's representative degree `d_i`.
    pub degree: u64,
    /// `D(d_i)` as `f64::to_bits`.
    pub mean_bits: u64,
    /// `σ(d_i)` as `f64::to_bits`.
    pub sigma_bits: u64,
}

/// Per-shard torn-tail accounting carried on a served fit, so
/// `fit --server` surfaces the same crash-residue counters as
/// `pool --merge` and `serve` do in their metrics JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTornRow {
    /// The shard index.
    pub shard: u64,
    /// Torn-tail records dropped recovering this shard's journal.
    pub torn_records_dropped: u64,
    /// Torn-tail bytes dropped recovering this shard's journal.
    pub torn_bytes_dropped: u64,
}

/// A served fit snapshot: the rolling merged pool at the coverage the
/// service currently holds, tagged with the coverage arithmetic and
/// the typed partial marker.
#[derive(Debug, Clone, PartialEq)]
pub struct FitSnapshot {
    /// Total windows in the capture.
    pub windows: u64,
    /// Windows currently persisted across all shards.
    pub covered: u64,
    /// The service's configured minimum coverage fraction.
    pub min_coverage: f64,
    /// True when `covered/windows` is below `min_coverage` — the
    /// typed `PartialCoverage` marker.
    pub partial: bool,
    /// Windows contributing results to the pooled output.
    pub survivors: u64,
    /// Windows quarantined in the pooled fold (missing windows count
    /// here as `ShardLost`, exactly like `pool --merge`).
    pub quarantined: u64,
    /// Windows pooled into the distribution (`pooled.windows`).
    pub pooled_windows: u64,
    /// Largest degree observed in any pooled window.
    pub d_max: u64,
    /// The pooled `D(d_i) ± σ` rows, bit-exact.
    pub rows: Vec<FitRow>,
    /// Per-shard torn-tail drop counts from the server's journal
    /// recoveries, shard-ordered.
    pub shard_torn: Vec<ShardTornRow>,
}

impl FitSnapshot {
    /// Coverage as a fraction of the capture's windows.
    pub fn coverage(&self) -> f64 {
        if self.windows == 0 {
            return 1.0;
        }
        self.covered as f64 / self.windows as f64
    }

    /// The typed coverage refusal when this snapshot is partial.
    pub fn partial_fault(&self) -> Option<ServiceFault> {
        if self.partial {
            Some(ServiceFault::PartialCoverage {
                covered: self.covered,
                windows: self.windows,
                min_coverage: self.min_coverage,
            })
        } else {
            None
        }
    }
}

/// One granted lease: everything a worker needs to capture a shard's
/// window range and prove it still owns the lease while doing so.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseTicket {
    /// The worker the lease was granted to.
    pub worker: u64,
    /// The leased shard index.
    pub shard: u64,
    /// Shards in the dispatcher's plan.
    pub shards: u64,
    /// Total windows in the capture.
    pub windows: u64,
    /// First window of the leased range (inclusive).
    pub lo: u64,
    /// One past the last window of the leased range.
    pub hi: u64,
    /// The fencing token: monotonically increasing per grant, echoed
    /// on every `Heartbeat`/`WorkDone` — a stale token is a typed
    /// [`ServiceFault::LeaseFenced`] refusal.
    pub fence: u64,
    /// Lease validity in milliseconds; missing a renewal past this
    /// deadline expires the lease and re-dispatches the range.
    pub lease_ms: u64,
    /// Heartbeat interval in milliseconds, jittered per lease by the
    /// dispatcher so a worker fleet's renewals do not synchronize.
    pub heartbeat_ms: u64,
    /// The capture identity fingerprint ([`JournalHeader`]'s) the
    /// worker must match — a mismatched worker refuses locally before
    /// capturing anything.
    pub fingerprint: u64,
}

/// The dispatcher's answer to a [`WireMessage::LeaseRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseOffer {
    /// A lease on one shard's window range.
    Granted(LeaseTicket),
    /// Nothing grantable right now (every incomplete range is leased
    /// to a live worker) — poll again after a backoff.
    Wait,
    /// Every range is durably complete; the worker may exit.
    Complete,
}

/// Every message the service protocol exchanges. Journal records
/// (types 0/1) are carried verbatim as [`WireMessage::Record`] — the
/// codec never re-encodes them, preserving byte identity with the
/// submitting shard's journal.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// A raw journal record payload (type 0 header or type 1 window),
    /// byte-verbatim from the submitting shard's journal.
    Record(Vec<u8>),
    /// Client → server: open a submission for one shard of a plan.
    SubmitBegin {
        /// The submitting shard's index.
        shard: u64,
        /// Shard count of the client's plan (must match the server).
        shards: u64,
        /// Total windows of the client's capture (must match).
        windows: u64,
    },
    /// Server → client: the windows already persisted for that shard,
    /// so a reconnecting client resumes mid-stream instead of
    /// resending everything.
    BeginAck {
        /// Window indices already persisted, ascending.
        have: Vec<u64>,
    },
    /// Client → server: the submission stream is complete.
    SubmitEnd {
        /// Window records the client believes it sent this session.
        sent: u64,
    },
    /// Server → client: submission accounting for the shard.
    EndAck {
        /// Windows persisted for the shard so far (all sessions).
        accepted: u64,
        /// Assigned windows still missing, ascending — the client's
        /// retry work-list.
        missing: Vec<u64>,
    },
    /// Server → client: a typed refusal; the session is closed.
    Reject {
        /// The refusing [`ServiceFault::code`].
        code: u8,
        /// The fault's display rendering.
        message: String,
    },
    /// Client → server: serve the rolling merged fit.
    FitRequest,
    /// Server → client: the fit snapshot.
    FitResponse(FitSnapshot),
    /// Client → server: drain and shut down (admin).
    Shutdown,
    /// Server → client: drain acknowledged.
    ShutdownAck,
    /// Worker → dispatcher: announce liveness and ask for a lease.
    LeaseRequest {
        /// The requesting worker's id.
        worker: u64,
    },
    /// Dispatcher → worker: the lease decision.
    LeaseGrant(LeaseOffer),
    /// Worker → dispatcher: proof of life for a held lease; the
    /// dispatcher answers with a [`WireMessage::LeaseRenew`] extending
    /// the deadline, or a `Reject` carrying
    /// [`ServiceFault::LeaseFenced`] for a stale fence.
    Heartbeat {
        /// The heartbeating worker's id.
        worker: u64,
        /// The shard the worker believes it holds.
        shard: u64,
        /// The fencing token from the worker's grant.
        fence: u64,
    },
    /// Dispatcher → worker: the lease deadline was extended (also the
    /// acknowledgement for a [`WireMessage::WorkDone`], with
    /// `deadline_ms` = 0).
    LeaseRenew {
        /// The fence being renewed/acknowledged.
        fence: u64,
        /// Milliseconds of validity from now (0 on a `WorkDone` ack).
        deadline_ms: u64,
    },
    /// Worker → dispatcher: the leased range is fully submitted
    /// through the collector; release the lease.
    WorkDone {
        /// The reporting worker's id.
        worker: u64,
        /// The completed shard.
        shard: u64,
        /// The fencing token from the worker's grant.
        fence: u64,
    },
}

/// Append a `u64` list (count prefix + elements) to `out`.
fn put_list(out: &mut Vec<u8>, items: &[u64]) {
    out.extend_from_slice(&(items.len() as u64).to_le_bytes());
    for w in items {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Parse a `u64` list written by [`put_list`].
fn take_list(cur: &mut journal::Cursor<'_>, what: &str) -> Result<Vec<u64>, JournalFault> {
    let n = cur.u64(what)?;
    if (n as u128) * 8 > cur.bytes.len() as u128 {
        return Err(cur.malformed(format!("declared {what} length extends past the frame")));
    }
    let mut items = Vec::with_capacity(palu_sparse::admitted_capacity(n as usize));
    for _ in 0..n {
        items.push(cur.u64(what)?);
    }
    Ok(items)
}

impl WireMessage {
    /// Encode this message as a frame payload (type byte + body).
    /// [`WireMessage::Record`] payloads pass through untouched.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            WireMessage::Record(payload) => payload.clone(),
            WireMessage::SubmitBegin {
                shard,
                shards,
                windows,
            } => {
                let mut out = vec![TYPE_SUBMIT_BEGIN];
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&shards.to_le_bytes());
                out.extend_from_slice(&windows.to_le_bytes());
                out
            }
            WireMessage::BeginAck { have } => {
                let mut out = vec![TYPE_BEGIN_ACK];
                put_list(&mut out, have);
                out
            }
            WireMessage::SubmitEnd { sent } => {
                let mut out = vec![TYPE_SUBMIT_END];
                out.extend_from_slice(&sent.to_le_bytes());
                out
            }
            WireMessage::EndAck { accepted, missing } => {
                let mut out = vec![TYPE_END_ACK];
                out.extend_from_slice(&accepted.to_le_bytes());
                put_list(&mut out, missing);
                out
            }
            WireMessage::Reject { code, message } => {
                let mut out = vec![TYPE_REJECT, *code];
                let raw = message.as_bytes();
                let len = raw.len().min(usize::from(u16::MAX)) as u16;
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(raw.get(..usize::from(len)).unwrap_or(raw));
                out
            }
            WireMessage::FitRequest => vec![TYPE_FIT_REQUEST],
            WireMessage::FitResponse(snap) => {
                let mut out = vec![TYPE_FIT_RESPONSE];
                out.extend_from_slice(&snap.windows.to_le_bytes());
                out.extend_from_slice(&snap.covered.to_le_bytes());
                out.extend_from_slice(&snap.min_coverage.to_bits().to_le_bytes());
                out.push(u8::from(snap.partial));
                out.extend_from_slice(&snap.survivors.to_le_bytes());
                out.extend_from_slice(&snap.quarantined.to_le_bytes());
                out.extend_from_slice(&snap.pooled_windows.to_le_bytes());
                out.extend_from_slice(&snap.d_max.to_le_bytes());
                out.extend_from_slice(&(snap.rows.len() as u64).to_le_bytes());
                for row in &snap.rows {
                    out.extend_from_slice(&row.degree.to_le_bytes());
                    out.extend_from_slice(&row.mean_bits.to_le_bytes());
                    out.extend_from_slice(&row.sigma_bits.to_le_bytes());
                }
                out.extend_from_slice(&(snap.shard_torn.len() as u64).to_le_bytes());
                for row in &snap.shard_torn {
                    out.extend_from_slice(&row.shard.to_le_bytes());
                    out.extend_from_slice(&row.torn_records_dropped.to_le_bytes());
                    out.extend_from_slice(&row.torn_bytes_dropped.to_le_bytes());
                }
                out
            }
            WireMessage::Shutdown => vec![TYPE_SHUTDOWN],
            WireMessage::ShutdownAck => vec![TYPE_SHUTDOWN_ACK],
            WireMessage::LeaseRequest { worker } => {
                let mut out = vec![TYPE_LEASE_REQUEST];
                out.extend_from_slice(&worker.to_le_bytes());
                out
            }
            WireMessage::LeaseGrant(offer) => {
                let mut out = vec![TYPE_LEASE_GRANT];
                match offer {
                    LeaseOffer::Granted(t) => {
                        out.push(0);
                        for v in [
                            t.worker,
                            t.shard,
                            t.shards,
                            t.windows,
                            t.lo,
                            t.hi,
                            t.fence,
                            t.lease_ms,
                            t.heartbeat_ms,
                            t.fingerprint,
                        ] {
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                    LeaseOffer::Wait => out.push(1),
                    LeaseOffer::Complete => out.push(2),
                }
                out
            }
            WireMessage::Heartbeat {
                worker,
                shard,
                fence,
            } => {
                let mut out = vec![TYPE_HEARTBEAT];
                out.extend_from_slice(&worker.to_le_bytes());
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&fence.to_le_bytes());
                out
            }
            WireMessage::LeaseRenew { fence, deadline_ms } => {
                let mut out = vec![TYPE_LEASE_RENEW];
                out.extend_from_slice(&fence.to_le_bytes());
                out.extend_from_slice(&deadline_ms.to_le_bytes());
                out
            }
            WireMessage::WorkDone {
                worker,
                shard,
                fence,
            } => {
                let mut out = vec![TYPE_WORK_DONE];
                out.extend_from_slice(&worker.to_le_bytes());
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&fence.to_le_bytes());
                out
            }
        }
    }

    /// Decode a frame payload. Journal record types (0/1) come back
    /// as [`WireMessage::Record`] carrying the verbatim payload.
    ///
    /// # Errors
    ///
    /// [`ServiceFault::Malformed`] for truncated or inconsistent
    /// bodies, [`ServiceFault::UnknownFrame`] for unknown type bytes.
    pub fn decode(payload: &[u8]) -> Result<WireMessage, ServiceFault> {
        let Some((&kind, body)) = payload.split_first() else {
            return Err(ServiceFault::Malformed {
                detail: "empty frame payload".to_string(),
            });
        };
        if kind <= 1 {
            return Ok(WireMessage::Record(payload.to_vec()));
        }
        let mut cur = journal::Cursor {
            bytes: body,
            record_offset: 0,
        };
        let malformed = |fault: JournalFault| ServiceFault::Malformed {
            detail: fault.to_string(),
        };
        match kind {
            TYPE_SUBMIT_BEGIN => {
                let shard = cur.u64("shard index").map_err(malformed)?;
                let shards = cur.u64("shard count").map_err(malformed)?;
                let windows = cur.u64("window count").map_err(malformed)?;
                Ok(WireMessage::SubmitBegin {
                    shard,
                    shards,
                    windows,
                })
            }
            TYPE_BEGIN_ACK => {
                let have = take_list(&mut cur, "have-list").map_err(malformed)?;
                Ok(WireMessage::BeginAck { have })
            }
            TYPE_SUBMIT_END => {
                let sent = cur.u64("sent count").map_err(malformed)?;
                Ok(WireMessage::SubmitEnd { sent })
            }
            TYPE_END_ACK => {
                let accepted = cur.u64("accepted count").map_err(malformed)?;
                let missing = take_list(&mut cur, "missing-list").map_err(malformed)?;
                Ok(WireMessage::EndAck { accepted, missing })
            }
            TYPE_REJECT => {
                let code = cur.u8("reject code").map_err(malformed)?;
                let len = cur.u16("message length").map_err(malformed)?;
                let raw = cur
                    .take(usize::from(len), "reject message")
                    .map_err(malformed)?;
                let message = String::from_utf8_lossy(raw).into_owned();
                Ok(WireMessage::Reject { code, message })
            }
            TYPE_FIT_REQUEST => Ok(WireMessage::FitRequest),
            TYPE_FIT_RESPONSE => {
                let windows = cur.u64("fit windows").map_err(malformed)?;
                let covered = cur.u64("fit covered").map_err(malformed)?;
                let min_coverage = f64::from_bits(cur.u64("fit min coverage").map_err(malformed)?);
                let partial = cur.u8("fit partial flag").map_err(malformed)? != 0;
                let survivors = cur.u64("fit survivors").map_err(malformed)?;
                let quarantined = cur.u64("fit quarantined").map_err(malformed)?;
                let pooled_windows = cur.u64("fit pooled windows").map_err(malformed)?;
                let d_max = cur.u64("fit d_max").map_err(malformed)?;
                let n = cur.u64("fit row count").map_err(malformed)?;
                if (n as u128) * 24 > cur.bytes.len() as u128 {
                    return Err(ServiceFault::Malformed {
                        detail: "declared fit row count extends past the frame".to_string(),
                    });
                }
                let mut rows = Vec::with_capacity(palu_sparse::admitted_capacity(n as usize));
                for _ in 0..n {
                    let degree = cur.u64("fit row degree").map_err(malformed)?;
                    let mean_bits = cur.u64("fit row mean").map_err(malformed)?;
                    let sigma_bits = cur.u64("fit row sigma").map_err(malformed)?;
                    rows.push(FitRow {
                        degree,
                        mean_bits,
                        sigma_bits,
                    });
                }
                let n_torn = cur.u64("fit shard-torn count").map_err(malformed)?;
                if (n_torn as u128) * 24 > cur.bytes.len() as u128 {
                    return Err(ServiceFault::Malformed {
                        detail: "declared shard-torn row count extends past the frame".to_string(),
                    });
                }
                let mut shard_torn = Vec::with_capacity(n_torn as usize);
                for _ in 0..n_torn {
                    let shard = cur.u64("torn row shard").map_err(malformed)?;
                    let torn_records_dropped = cur.u64("torn row records").map_err(malformed)?;
                    let torn_bytes_dropped = cur.u64("torn row bytes").map_err(malformed)?;
                    shard_torn.push(ShardTornRow {
                        shard,
                        torn_records_dropped,
                        torn_bytes_dropped,
                    });
                }
                Ok(WireMessage::FitResponse(FitSnapshot {
                    windows,
                    covered,
                    min_coverage,
                    partial,
                    survivors,
                    quarantined,
                    pooled_windows,
                    d_max,
                    rows,
                    shard_torn,
                }))
            }
            TYPE_SHUTDOWN => Ok(WireMessage::Shutdown),
            TYPE_SHUTDOWN_ACK => Ok(WireMessage::ShutdownAck),
            TYPE_LEASE_REQUEST => {
                let worker = cur.u64("lease worker").map_err(malformed)?;
                Ok(WireMessage::LeaseRequest { worker })
            }
            TYPE_LEASE_GRANT => {
                let status = cur.u8("lease grant status").map_err(malformed)?;
                match status {
                    0 => {
                        let worker = cur.u64("ticket worker").map_err(malformed)?;
                        let shard = cur.u64("ticket shard").map_err(malformed)?;
                        let shards = cur.u64("ticket shard count").map_err(malformed)?;
                        let windows = cur.u64("ticket window count").map_err(malformed)?;
                        let lo = cur.u64("ticket range lo").map_err(malformed)?;
                        let hi = cur.u64("ticket range hi").map_err(malformed)?;
                        let fence = cur.u64("ticket fence").map_err(malformed)?;
                        let lease_ms = cur.u64("ticket lease ms").map_err(malformed)?;
                        let heartbeat_ms = cur.u64("ticket heartbeat ms").map_err(malformed)?;
                        let fingerprint = cur.u64("ticket fingerprint").map_err(malformed)?;
                        Ok(WireMessage::LeaseGrant(LeaseOffer::Granted(LeaseTicket {
                            worker,
                            shard,
                            shards,
                            windows,
                            lo,
                            hi,
                            fence,
                            lease_ms,
                            heartbeat_ms,
                            fingerprint,
                        })))
                    }
                    1 => Ok(WireMessage::LeaseGrant(LeaseOffer::Wait)),
                    2 => Ok(WireMessage::LeaseGrant(LeaseOffer::Complete)),
                    other => Err(ServiceFault::Malformed {
                        detail: format!("unknown lease grant status {other}"),
                    }),
                }
            }
            TYPE_HEARTBEAT => {
                let worker = cur.u64("heartbeat worker").map_err(malformed)?;
                let shard = cur.u64("heartbeat shard").map_err(malformed)?;
                let fence = cur.u64("heartbeat fence").map_err(malformed)?;
                Ok(WireMessage::Heartbeat {
                    worker,
                    shard,
                    fence,
                })
            }
            TYPE_LEASE_RENEW => {
                let fence = cur.u64("renew fence").map_err(malformed)?;
                let deadline_ms = cur.u64("renew deadline ms").map_err(malformed)?;
                Ok(WireMessage::LeaseRenew { fence, deadline_ms })
            }
            TYPE_WORK_DONE => {
                let worker = cur.u64("work-done worker").map_err(malformed)?;
                let shard = cur.u64("work-done shard").map_err(malformed)?;
                let fence = cur.u64("work-done fence").map_err(malformed)?;
                Ok(WireMessage::WorkDone {
                    worker,
                    shard,
                    fence,
                })
            }
            other => Err(ServiceFault::UnknownFrame { kind: other }),
        }
    }
}

/// Client retry policy: a total deadline, jittered exponential
/// backoff between attempts, and per-socket I/O timeouts. The jitter
/// is seeded ([`SeedSequence`]) so a test's retry schedule is
/// reproducible. Shared by every wire client — `submit`'s journal
/// streamer and the dispatcher's `work` lease loop use the same
/// knobs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total budget across all attempts; [`ServiceFault::Unavailable`]
    /// when it elapses.
    pub deadline: std::time::Duration,
    /// Base backoff; attempt `k` waits `base · 2^k · jitter`.
    pub backoff_base: std::time::Duration,
    /// Backoff ceiling.
    pub backoff_cap: std::time::Duration,
    /// Per-socket read/write timeout.
    pub io_timeout: std::time::Duration,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy suited to loopback tests: tight timeouts, fast
    /// backoff, generous total deadline.
    pub fn fast(seed: u64) -> RetryPolicy {
        RetryPolicy {
            deadline: std::time::Duration::from_secs(30),
            backoff_base: std::time::Duration::from_millis(10),
            backoff_cap: std::time::Duration::from_millis(250),
            io_timeout: std::time::Duration::from_secs(5),
            seed,
        }
    }

    /// The wait before retry `attempt` (0-based): exponential with
    /// multiplicative jitter in `[0.5, 1.0)`, capped. Deterministic
    /// in `(seed, attempt)`.
    pub fn backoff(&self, attempt: u64) -> std::time::Duration {
        let factor = 1u64.checked_shl(attempt.min(16) as u32).unwrap_or(u64::MAX);
        let mut rng = SeedSequence::new(self.seed).rng(attempt);
        let u: f64 = rng.gen::<f64>();
        let jitter = 0.5 + 0.5 * u;
        let nanos = self.backoff_base.as_nanos() as f64 * factor as f64 * jitter;
        let capped = nanos.min(self.backoff_cap.as_nanos() as f64);
        std::time::Duration::from_nanos(capped as u64)
    }
}

/// One injected transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The frame is silently not sent.
    Drop,
    /// One payload byte is flipped (the CRC catches it server-side).
    Corrupt,
    /// The frame is sent twice (idempotency probe).
    Duplicate,
    /// The frame is sent after a short stall.
    Delay,
    /// Only a prefix of the frame is sent and the connection is
    /// abandoned — the mid-frame-kill signature.
    Truncate,
}

impl WireFault {
    /// Stable lowercase name, used in CLI specs and JSON labels.
    pub fn name(self) -> &'static str {
        match self {
            WireFault::Drop => "drop",
            WireFault::Corrupt => "corrupt",
            WireFault::Duplicate => "dup",
            WireFault::Delay => "delay",
            WireFault::Truncate => "truncate",
        }
    }
}

/// Per-frame wire-fault rates, each in `[0, 1]` with total ≤ 1 —
/// the transport twin of [`crate::fault::InjectionSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSpec {
    /// Probability a frame is dropped.
    pub drop: f64,
    /// Probability a frame is corrupted.
    pub corrupt: f64,
    /// Probability a frame is duplicated.
    pub duplicate: f64,
    /// Probability a frame is delayed.
    pub delay: f64,
    /// Probability a frame is truncated (connection abandoned).
    pub truncate: f64,
}

impl WireSpec {
    /// No injection at all.
    pub fn none() -> Self {
        WireSpec {
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            truncate: 0.0,
        }
    }

    /// Total rate `rate`, split evenly across all five fault kinds.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn uniform(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "wire fault rate must be in [0, 1], got {rate}"
        );
        WireSpec {
            drop: rate / 5.0,
            corrupt: rate / 5.0,
            duplicate: rate / 5.0,
            delay: rate / 5.0,
            truncate: rate / 5.0,
        }
    }

    /// Parse a CLI spec: either a bare total rate (`"0.5"`, split
    /// evenly across all five kinds) or comma-separated `kind=rate`
    /// pairs drawn from `drop`, `corrupt`, `dup`, `delay`,
    /// `truncate` (unnamed kinds default to 0).
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed input, rates outside
    /// `[0, 1]`, or totals above 1.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty wire fault spec".into());
        }
        if let Ok(rate) = s.parse::<f64>() {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("wire fault rate must be in [0, 1], got {rate}"));
            }
            return Ok(WireSpec::uniform(rate));
        }
        let mut spec = WireSpec::none();
        for part in s.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected kind=rate, got '{part}'"))?;
            let rate: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad rate '{value}' for '{key}'"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate for '{key}' must be in [0, 1], got {rate}"));
            }
            match key.trim() {
                "drop" => spec.drop = rate,
                "corrupt" => spec.corrupt = rate,
                "dup" => spec.duplicate = rate,
                "delay" => spec.delay = rate,
                "truncate" => spec.truncate = rate,
                other => {
                    return Err(format!(
                        "unknown wire fault kind '{other}' (expected drop, corrupt, dup, \
                         delay, truncate)"
                    ))
                }
            }
        }
        if spec.total() > 1.0 {
            return Err(format!("wire fault rates sum to {} > 1", spec.total()));
        }
        Ok(spec)
    }

    /// Sum of all the rates.
    pub fn total(&self) -> f64 {
        self.drop + self.corrupt + self.duplicate + self.delay + self.truncate
    }

    /// True when every rate is zero.
    pub fn is_none(&self) -> bool {
        self.total() == 0.0
    }
}

/// Deterministic seeded wire-fault injector: the decision for
/// `(frame, attempt)` is a pure function of the seed, exactly like
/// [`crate::fault::Injector::plan`] — retried frames see independent
/// draws, so an injected fault does not automatically recur.
#[derive(Debug, Clone)]
pub struct WireInjector {
    spec: WireSpec,
    seq: SeedSequence,
}

impl WireInjector {
    /// An injector planting wire faults per `spec`, deterministically
    /// derived from `seed`.
    pub fn new(spec: WireSpec, seed: u64) -> Self {
        WireInjector {
            spec,
            seq: SeedSequence::new(seed),
        }
    }

    /// The injection rates in force.
    pub fn spec(&self) -> &WireSpec {
        &self.spec
    }

    /// The fault (if any) to plant into send `attempt` of frame
    /// `frame`. Pure: same `(seed, frame, attempt)` ⇒ same answer.
    pub fn plan(&self, frame: u64, attempt: u64) -> Option<WireFault> {
        if self.spec.is_none() {
            return None;
        }
        let mut rng = SeedSequence::new(self.seq.child_seed(frame)).rng(attempt);
        let u: f64 = rng.gen::<f64>();
        let mut edge = self.spec.drop;
        if u < edge {
            return Some(WireFault::Drop);
        }
        edge += self.spec.corrupt;
        if u < edge {
            return Some(WireFault::Corrupt);
        }
        edge += self.spec.duplicate;
        if u < edge {
            return Some(WireFault::Duplicate);
        }
        edge += self.spec.delay;
        if u < edge {
            return Some(WireFault::Delay);
        }
        edge += self.spec.truncate;
        if u < edge {
            return Some(WireFault::Truncate);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: WireMessage) {
        let payload = msg.encode();
        let decoded = WireMessage::decode(&payload).unwrap();
        assert_eq!(decoded, msg);
        // And through the frame layer.
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = wire.as_slice();
        let got = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(got, payload);
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn control_messages_round_trip() {
        round_trip(WireMessage::SubmitBegin {
            shard: 2,
            shards: 4,
            windows: 64,
        });
        round_trip(WireMessage::BeginAck {
            have: vec![0, 1, 5, 9],
        });
        round_trip(WireMessage::SubmitEnd { sent: 12 });
        round_trip(WireMessage::EndAck {
            accepted: 10,
            missing: vec![11, 12],
        });
        round_trip(WireMessage::Reject {
            code: 9,
            message: "identity skew — seed mismatch".to_string(),
        });
        round_trip(WireMessage::FitRequest);
        round_trip(WireMessage::FitResponse(FitSnapshot {
            windows: 64,
            covered: 48,
            min_coverage: 0.9,
            partial: true,
            survivors: 47,
            quarantined: 17,
            pooled_windows: 47,
            d_max: 120,
            rows: vec![FitRow {
                degree: 1,
                mean_bits: 0.5f64.to_bits(),
                sigma_bits: 0.01f64.to_bits(),
            }],
            shard_torn: vec![ShardTornRow {
                shard: 2,
                torn_records_dropped: 1,
                torn_bytes_dropped: 37,
            }],
        }));
        round_trip(WireMessage::Shutdown);
        round_trip(WireMessage::ShutdownAck);
    }

    #[test]
    fn lease_messages_round_trip() {
        round_trip(WireMessage::LeaseRequest { worker: 7 });
        round_trip(WireMessage::LeaseGrant(LeaseOffer::Granted(LeaseTicket {
            worker: 7,
            shard: 2,
            shards: 4,
            windows: 64,
            lo: 32,
            hi: 48,
            fence: 11,
            lease_ms: 2000,
            heartbeat_ms: 400,
            fingerprint: 0xDEAD_BEEF,
        })));
        round_trip(WireMessage::LeaseGrant(LeaseOffer::Wait));
        round_trip(WireMessage::LeaseGrant(LeaseOffer::Complete));
        round_trip(WireMessage::Heartbeat {
            worker: 7,
            shard: 2,
            fence: 11,
        });
        round_trip(WireMessage::LeaseRenew {
            fence: 11,
            deadline_ms: 2000,
        });
        round_trip(WireMessage::WorkDone {
            worker: 7,
            shard: 2,
            fence: 11,
        });
        // An unknown grant status is malformed, not silently mapped.
        assert!(matches!(
            WireMessage::decode(&[TYPE_LEASE_GRANT, 9]),
            Err(ServiceFault::Malformed { .. })
        ));
    }

    #[test]
    fn journal_payloads_pass_through_verbatim() {
        let payload = vec![1u8, 7, 7, 7];
        match WireMessage::decode(&payload).unwrap() {
            WireMessage::Record(raw) => assert_eq!(raw, payload),
            other => panic!("expected Record, got {other:?}"),
        }
        assert_eq!(
            WireMessage::Record(payload.clone()).encode(),
            payload,
            "records must never be re-encoded"
        );
    }

    #[test]
    fn torn_and_corrupt_frames_are_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[16u8, 1, 2, 3]).unwrap();
        // Every strict prefix is torn (or clean-empty at 0).
        for cut in 0..wire.len() {
            let mut r = &wire[..cut];
            match read_frame(&mut r) {
                Ok(None) => assert_eq!(cut, 0, "only the empty prefix is a clean end"),
                Err(ServiceFault::Torn { bytes }) => {
                    assert_eq!(bytes, cut as u64, "cut at {cut}")
                }
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
        // Flip a payload byte: checksum refusal.
        let mut bad = wire.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert_eq!(read_frame(&mut bad.as_slice()), Err(ServiceFault::Checksum));
        // An absurd length prefix: oversized refusal.
        let mut huge = wire.clone();
        huge[3] = 0xFF;
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(ServiceFault::Oversized { .. })
        ));
    }

    #[test]
    fn unknown_frame_types_are_typed() {
        assert!(matches!(
            WireMessage::decode(&[200u8]),
            Err(ServiceFault::UnknownFrame { kind: 200 })
        ));
        assert!(matches!(
            WireMessage::decode(&[]),
            Err(ServiceFault::Malformed { .. })
        ));
    }

    #[test]
    fn wire_spec_parses_like_injection_spec() {
        let spec = WireSpec::parse("0.5").unwrap();
        assert!((spec.total() - 0.5).abs() < 1e-12);
        let spec = WireSpec::parse("drop=0.1,truncate=0.2").unwrap();
        assert_eq!(spec.drop, 0.1);
        assert_eq!(spec.truncate, 0.2);
        assert_eq!(spec.corrupt, 0.0);
        assert!(WireSpec::parse("drop=2").is_err());
        assert!(WireSpec::parse("bogus=0.1").is_err());
        assert!(WireSpec::parse("drop=0.9,corrupt=0.9").is_err());
        assert!(WireSpec::parse("").is_err());
    }

    #[test]
    fn injector_is_deterministic_and_rate_accurate() {
        let inj = WireInjector::new(WireSpec::uniform(0.5), 42);
        let again = WireInjector::new(WireSpec::uniform(0.5), 42);
        let mut hits = 0u64;
        const FRAMES: u64 = 4000;
        for f in 0..FRAMES {
            let a = inj.plan(f, 0);
            assert_eq!(a, again.plan(f, 0), "frame {f} must be deterministic");
            if a.is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / FRAMES as f64;
        assert!((0.4..0.6).contains(&rate), "empirical rate {rate}");
        // Retries draw independently.
        let differs = (0..200u64).any(|f| inj.plan(f, 0) != inj.plan(f, 1));
        assert!(differs, "attempts must see independent draws");
        assert!(WireInjector::new(WireSpec::none(), 1).plan(0, 0).is_none());
    }

    #[test]
    fn refusal_classes_match_cli_exit_convention() {
        let skew = ServiceFault::IdentitySkew {
            fault: JournalFault::SeedMismatch { journal: 1, run: 2 },
        };
        assert_eq!(skew.refusal(), RefusalClass::IdentitySkew);
        assert!(!skew.retryable());
        let cov = ServiceFault::PartialCoverage {
            covered: 3,
            windows: 8,
            min_coverage: 0.9,
        };
        assert_eq!(cov.refusal(), RefusalClass::Coverage);
        assert_eq!(
            ServiceFault::WindowConflict { window: 3 }.refusal(),
            RefusalClass::Corrupt
        );
        assert_eq!(
            ServiceFault::BadShard {
                shard: 9,
                shards: 4
            }
            .refusal(),
            RefusalClass::Usage
        );
        assert_eq!(
            ServiceFault::Unavailable { detail: "x".into() }.refusal(),
            RefusalClass::Unavailable
        );
        // Remote faults keep their origin's class across the hop.
        let remote = ServiceFault::Remote {
            code: skew.code(),
            message: skew.to_string(),
        };
        assert_eq!(remote.refusal(), RefusalClass::IdentitySkew);
        // Transport trouble retries; skew and conflicts never do.
        assert!(ServiceFault::Checksum.retryable());
        assert!(ServiceFault::Torn { bytes: 3 }.retryable());
        assert!(ServiceFault::Deadline.retryable());
        assert!(!ServiceFault::WindowConflict { window: 1 }.retryable());
        // Fencing is terminal: a zombie must stop, not retry.
        let fenced = ServiceFault::LeaseFenced {
            worker: 1,
            shard: 2,
            fence: 3,
        };
        assert_eq!(fenced.code(), 16);
        assert_eq!(fenced.refusal(), RefusalClass::Fenced);
        assert!(!fenced.retryable());
        let remote_fenced = ServiceFault::Remote {
            code: fenced.code(),
            message: fenced.to_string(),
        };
        assert_eq!(remote_fenced.refusal(), RefusalClass::Fenced);
        assert!(!remote_fenced.retryable());
    }

    #[test]
    fn retry_policy_backoff_is_deterministic_and_capped() {
        let retry = RetryPolicy::fast(42);
        let again = RetryPolicy::fast(42);
        for attempt in 0..12 {
            let wait = retry.backoff(attempt);
            assert_eq!(wait, again.backoff(attempt), "attempt {attempt}");
            assert!(wait <= retry.backoff_cap, "attempt {attempt} over cap");
        }
        let other = RetryPolicy::fast(43);
        assert!((0..12).any(|a| retry.backoff(a) != other.backoff(a)));
    }
}
