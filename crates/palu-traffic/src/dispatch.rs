//! Federation dispatcher: lease-based shard supervision (DESIGN.md §4l).
//!
//! PR 8 sharded the capture and the service layer (§4k) let shards
//! *submit themselves*, but nothing launched shard work, noticed a
//! dead worker, or reassigned its range. The [`Dispatcher`] closes
//! that gap: it owns the [`ShardPlan`], hands out window-range
//! **leases** to workers over the existing wire protocol (frame types
//! 25–29), monitors liveness with per-lease deadlines renewed by
//! jittered heartbeats, and **re-dispatches** expired leases to live
//! workers — deterministically, always the lowest-indexed incomplete
//! free shard.
//!
//! Safety against zombies comes from **fencing tokens**: every grant
//! carries a fence drawn from a monotonically increasing epoch
//! (`fence_epoch() + counter`), and a worker whose lease expired —
//! or that predates a dispatcher restart — presents a stale fence and
//! gets a typed [`ServiceFault::LeaseFenced`] refusal (wire code 16,
//! CLI exit 9) instead of corrupting anything. The deeper invariant
//! is structural: window state is a pure function of the capture
//! identity and the collector's `accept_window` is byte-idempotent,
//! so even a zombie that *resubmits* its journal cannot change
//! coverage — fencing adds typed observability and tells the zombie
//! to stop burning cycles, it is not load-bearing for correctness.
//!
//! The dispatcher *wraps* a [`Collector`] behind one listener: the
//! first frame of each connection routes the session — lease frames
//! are handled here, everything else (submission, fit, shutdown)
//! replays byte-exactly into [`Collector::handle`]. Workers therefore
//! submit through the PR 9 path unchanged, and the merged fit stays
//! bit-identical to single-process at any worker count and under any
//! kill schedule.
//!
//! Crash recovery is free by construction: lease state is *derived*
//! (which ranges are complete comes from the collector's per-shard
//! journals, which [`Collector::new`] resumes), so a dispatcher
//! SIGKILLed and restarted over the same journal directory rebuilds
//! its table and re-dispatches only what is genuinely incomplete.
//!
//! Every supervision event is a typed [`DispatchFault`]
//! (WorkerLost / LeaseExpired / LeaseFenced / RangeOrphaned /
//! DispatchStalled) that flows into the existing [`FaultReport`]
//! taxonomy with append-only wire codes 10–14 — the dispatcher's own
//! report, kept separate from the merged capture's report so the
//! latter stays bit-identical to a single-process run.

use crate::fault::{FaultKind, FaultRecord, FaultReport, WindowOutcome};
use crate::federation::{FederationError, ShardPlan, ShardRange};
use crate::journal::{Journal, JournalFault, JournalHeader};
use crate::service::{
    connect, frame_name, journal_fault_to_service, now, read_reply, submit_journal, Collector,
    SubmitOutcome,
};
use crate::wire::{
    read_frame, write_frame, LeaseOffer, LeaseTicket, RefusalClass, RetryPolicy, ServiceFault,
    WireInjector, WireMessage, TYPE_LEASE_REQUEST, TYPE_WORK_DONE,
};
use palu_stats::rng::{Rng, SeedSequence};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
// Liveness supervision is inherently wall-clock: lease deadlines and
// heartbeat intervals never reach a numerical result. lint:allow(R2)
use std::time::{Duration, Instant};

/// Detail rows kept per report (the counters stay exact).
const DISPATCH_FAULT_CAP: usize = 256;

/// The fencing epoch: wall-clock milliseconds at dispatcher
/// construction, scaled to leave room for a per-epoch grant counter.
/// A fence must be *unique across dispatcher restarts* — a zombie
/// holding a lease from a previous incarnation has to read as stale —
/// and derived lease state carries nothing across a SIGKILL, so a
/// monotone wall-clock epoch is the only zero-dependency source.
/// Observability/fencing only: the value never reaches a numerical
/// result. lint:allow(R2)
fn fence_epoch() -> u64 {
    // lint:allow(R2)
    let ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    // Room for 2^20 grants per epoch millisecond; saturate far past
    // any realistic clock instead of wrapping into an old epoch.
    ms.saturating_mul(1 << 20)
}

/// Dispatcher policy knobs.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Lease deadline: a worker that neither heartbeats nor completes
    /// within this window loses its range to re-dispatch.
    pub lease: Duration,
    /// Heartbeat interval handed to workers (they jitter around it).
    pub heartbeat: Duration,
    /// Keep serving after all shards complete (until a `Shutdown`
    /// frame) instead of exiting with the report.
    pub linger: bool,
    /// Declare [`DispatchFault::DispatchStalled`] and stop when no
    /// lease activity *and* no live lease exists for this long with
    /// coverage incomplete. `None` disables the watchdog.
    pub stall: Option<Duration>,
}

impl DispatchConfig {
    /// Defaults suited to loopback tests: short leases, fast beats.
    pub fn fast() -> DispatchConfig {
        DispatchConfig {
            lease: Duration::from_millis(2000),
            heartbeat: Duration::from_millis(200),
            linger: false,
            stall: None,
        }
    }
}

/// One typed supervision event. The payload-free classification flows
/// into [`FaultReport`] as [`FaultKind`] codes 10–14 (append-only);
/// the full variants are kept in the [`DispatchReport`] audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchFault {
    /// A leased worker stopped heartbeating before completing.
    WorkerLost {
        /// The silent worker.
        worker: u64,
        /// The shard it held.
        shard: u64,
    },
    /// A lease deadline elapsed; the range returns to the queue.
    LeaseExpired {
        /// The worker that held the lease.
        worker: u64,
        /// The reclaimed shard.
        shard: u64,
        /// The now-stale fencing token.
        fence: u64,
    },
    /// A zombie presented a stale fence and was refused.
    LeaseFenced {
        /// The zombie worker.
        worker: u64,
        /// The shard it believed it held.
        shard: u64,
        /// The stale token it presented.
        fence: u64,
    },
    /// `WorkDone` arrived for a range that is not fully persisted;
    /// its windows return to the dispatch queue.
    RangeOrphaned {
        /// The under-delivered shard.
        shard: u64,
        /// Windows actually persisted.
        persisted: u64,
        /// Windows the range owns.
        assigned: u64,
    },
    /// The stall watchdog fired: incomplete coverage, no live lease,
    /// no lease activity for the configured window.
    DispatchStalled {
        /// Shards complete at the stall.
        done: u64,
        /// Shards in the plan.
        shards: u64,
    },
}

impl DispatchFault {
    /// The payload-free classification recorded in [`FaultReport`].
    pub fn kind(&self) -> FaultKind {
        match self {
            DispatchFault::WorkerLost { .. } => FaultKind::WorkerLost,
            DispatchFault::LeaseExpired { .. } => FaultKind::LeaseExpired,
            DispatchFault::LeaseFenced { .. } => FaultKind::LeaseFenced,
            DispatchFault::RangeOrphaned { .. } => FaultKind::RangeOrphaned,
            DispatchFault::DispatchStalled { .. } => FaultKind::DispatchStalled,
        }
    }
}

impl std::fmt::Display for DispatchFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchFault::WorkerLost { worker, shard } => {
                write!(f, "worker {worker} lost while holding shard {shard}")
            }
            DispatchFault::LeaseExpired {
                worker,
                shard,
                fence,
            } => write!(
                f,
                "lease {fence} on shard {shard} (worker {worker}) expired — range re-dispatches"
            ),
            DispatchFault::LeaseFenced {
                worker,
                shard,
                fence,
            } => write!(
                f,
                "zombie worker {worker} fenced off shard {shard} (stale token {fence})"
            ),
            DispatchFault::RangeOrphaned {
                shard,
                persisted,
                assigned,
            } => write!(
                f,
                "shard {shard} orphaned: WorkDone with {persisted}/{assigned} windows persisted"
            ),
            DispatchFault::DispatchStalled { done, shards } => write!(
                f,
                "dispatch stalled at {done}/{shards} shard(s) with no live lease"
            ),
        }
    }
}

/// The dispatcher's final accounting: lease counters plus the typed
/// supervision audit trail. Distinct from the merged capture's
/// [`FaultReport`], which must stay bit-identical to single-process.
#[derive(Debug, Clone)]
pub struct DispatchReport {
    /// Shards in the plan.
    pub shards: u64,
    /// Windows in the capture.
    pub windows: u64,
    /// Shards fully persisted at report time.
    pub shards_done: u64,
    /// Leases granted.
    pub leases_granted: u64,
    /// Leases whose deadline elapsed.
    pub leases_expired: u64,
    /// Fenced zombie refusals issued.
    pub leases_fenced: u64,
    /// Grants that re-dispatched a previously expired range.
    pub leases_redispatched: u64,
    /// Heartbeats accepted.
    pub heartbeats: u64,
    /// Whether the stall watchdog fired.
    pub stalled: bool,
    /// Supervision events, in arrival order (bounded at
    /// `DISPATCH_FAULT_CAP`; the counters stay exact).
    pub events: Vec<DispatchFault>,
    /// The same events as [`FaultRecord`]s (kind codes 10–14), so
    /// dispatch supervision rides the existing fault taxonomy.
    pub faults: FaultReport,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Free,
    Leased,
    Done,
}

struct LeaseSlot {
    range: ShardRange,
    state: SlotState,
    worker: u64,
    fence: u64,
    // Liveness deadline, not data. lint:allow(R2)
    deadline: Instant,
    expired_before: bool,
}

struct DispatchState {
    slots: BTreeMap<u64, LeaseSlot>,
    fence_counter: u64,
    events: Vec<DispatchFault>,
    faults: FaultReport,
    stalled: bool,
    /// Last lease activity (grant / heartbeat / completion); drives
    /// the stall watchdog only.
    // lint:allow(R2)
    activity_at: Instant,
}

struct DispatchShared {
    config: DispatchConfig,
    fence_base: u64,
    state: Mutex<DispatchState>,
}

/// The lease supervisor wrapping a [`Collector`] behind one listener.
/// Cheap to clone (shared state behind `Arc`s), one instance per
/// connection thread.
#[derive(Clone)]
pub struct Dispatcher {
    collector: Collector,
    shared: Arc<DispatchShared>,
}

impl Dispatcher {
    /// Wrap `collector` with lease supervision. Completion state is
    /// *derived*: any shard the collector's resumed journals already
    /// cover is marked done up front, which is exactly what makes a
    /// dispatcher restart over the same journal directory recover.
    ///
    /// # Errors
    ///
    /// [`ServiceFault::BadShard`] when the collector's shard/window
    /// geometry does not form a valid plan (cannot happen for a
    /// collector that constructed successfully).
    pub fn new(collector: Collector, config: DispatchConfig) -> Result<Dispatcher, ServiceFault> {
        let windows = collector.config().expect.windows;
        let shards = collector.config().shards;
        let plan = ShardPlan::new(windows, shards)
            .map_err(|_| ServiceFault::BadShard { shard: 0, shards })?;
        let progress = collector.shard_progress();
        let mut slots = BTreeMap::new();
        for range in plan.ranges() {
            let persisted = progress.get(&range.shard).copied().unwrap_or(0);
            let state = if persisted >= range.window_count() {
                SlotState::Done
            } else {
                SlotState::Free
            };
            slots.insert(
                range.shard,
                LeaseSlot {
                    range,
                    state,
                    worker: 0,
                    fence: 0,
                    deadline: now(),
                    expired_before: false,
                },
            );
        }
        Ok(Dispatcher {
            collector,
            shared: Arc::new(DispatchShared {
                config,
                fence_base: fence_epoch(),
                state: Mutex::new(DispatchState {
                    slots,
                    fence_counter: 0,
                    events: Vec::new(),
                    faults: FaultReport::new(windows),
                    stalled: false,
                    activity_at: now(),
                }),
            }),
        })
    }

    /// The wrapped collector (submission path, fit snapshots,
    /// journals).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The dispatch policy in force.
    pub fn config(&self) -> &DispatchConfig {
        &self.shared.config
    }

    /// Same poisoning argument as [`Collector`]: every mutation
    /// completes before the lock drops, so recover the guard.
    fn lock(&self) -> MutexGuard<'_, DispatchState> {
        match self.shared.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Handle one connection: the first frame routes the session.
    /// Lease frames (types 25–29) are supervised here; anything else —
    /// including torn or corrupt first frames — replays byte-exactly
    /// into [`Collector::handle`], so the submission/fit/shutdown
    /// protocol is the PR 9 code path, not a reimplementation.
    pub fn handle<S: Read + Write>(&self, conn: &mut S) {
        let mut recorder = Recorder {
            inner: conn,
            seen: Vec::new(),
        };
        let first = read_frame(&mut recorder);
        let lease_payload = match first {
            Ok(Some(payload))
                if payload
                    .first()
                    .is_some_and(|k| (TYPE_LEASE_REQUEST..=TYPE_WORK_DONE).contains(k)) =>
            {
                Some(payload)
            }
            _ => None,
        };
        let seen = std::mem::take(&mut recorder.seen);
        match lease_payload {
            Some(payload) => self.lease_session(conn, payload),
            None => {
                // Replay every byte the router consumed, then hand the
                // live stream over: the collector sees the identical
                // byte sequence the client sent.
                let mut replay = Replay {
                    head: std::io::Cursor::new(seen),
                    inner: conn,
                };
                let _ = self.collector.handle(&mut replay);
            }
        }
    }

    /// One lease session: reply to each decoded lease frame until the
    /// peer closes. Faults answer with a `Reject` frame carrying the
    /// typed wire code (16 for fencing), mirroring the collector.
    fn lease_session<S: Read + Write>(&self, conn: &mut S, first: Vec<u8>) {
        let mut payload = first;
        loop {
            let reply = WireMessage::decode(&payload).and_then(|msg| self.on_lease_message(msg));
            let frame = match reply {
                Ok(message) => message,
                Err(fault) => WireMessage::Reject {
                    code: fault.code(),
                    message: fault.to_string(),
                },
            };
            if write_frame(conn, &frame.encode()).is_err() {
                break;
            }
            match read_frame(conn) {
                Ok(Some(next)) => payload = next,
                _ => break,
            }
        }
    }

    fn on_lease_message(&self, message: WireMessage) -> Result<WireMessage, ServiceFault> {
        match message {
            WireMessage::LeaseRequest { worker } => Ok(WireMessage::LeaseGrant(self.grant(worker))),
            WireMessage::Heartbeat {
                worker,
                shard,
                fence,
            } => self
                .heartbeat(worker, shard, fence)
                .map(|deadline_ms| WireMessage::LeaseRenew { fence, deadline_ms }),
            WireMessage::WorkDone {
                worker,
                shard,
                fence,
            } => self
                .work_done(worker, shard, fence)
                .map(|()| WireMessage::LeaseRenew {
                    fence,
                    deadline_ms: 0,
                }),
            other => Err(ServiceFault::Protocol {
                detail: format!("{} frame on a lease session", frame_name(&other)),
            }),
        }
    }

    fn record(&self, state: &mut DispatchState, fault: DispatchFault) {
        // The merged capture's own report stays untouched: dispatch
        // supervision audits into the dispatcher's report only.
        let window = match &fault {
            DispatchFault::WorkerLost { shard, .. }
            | DispatchFault::LeaseExpired { shard, .. }
            | DispatchFault::LeaseFenced { shard, .. }
            | DispatchFault::RangeOrphaned { shard, .. } => state
                .slots
                .get(shard)
                .map(|slot| slot.range.lo)
                .unwrap_or(0),
            DispatchFault::DispatchStalled { .. } => 0,
        };
        state.faults.records.push(FaultRecord {
            window,
            kind: fault.kind(),
            attempts: 1,
            outcome: WindowOutcome::Recovered,
        });
        if state.events.len() < DISPATCH_FAULT_CAP {
            state.events.push(fault);
        }
    }

    /// Reclaim every lease whose deadline has passed. Expiry is lazy —
    /// swept at each lease interaction and at the server's poll tick —
    /// so no supervision thread exists to die at an awkward moment.
    fn sweep(&self, state: &mut DispatchState) {
        let t = now();
        let expired: Vec<(u64, u64, u64)> = state
            .slots
            .values()
            .filter(|slot| slot.state == SlotState::Leased && slot.deadline <= t)
            .map(|slot| (slot.range.shard, slot.worker, slot.fence))
            .collect();
        for (shard, worker, fence) in expired {
            if let Some(slot) = state.slots.get_mut(&shard) {
                slot.state = SlotState::Free;
                slot.expired_before = true;
            }
            self.collector.metrics().add_leases_expired(1);
            self.record(state, DispatchFault::WorkerLost { worker, shard });
            self.record(
                state,
                DispatchFault::LeaseExpired {
                    worker,
                    shard,
                    fence,
                },
            );
        }
    }

    /// Mark every shard whose range the collector has fully persisted
    /// as done — regardless of who delivered it (a re-dispatched
    /// worker, a direct `submit`, or journals found at startup).
    fn refresh_done(&self, state: &mut DispatchState) {
        let progress = self.collector.shard_progress();
        let mut completed = false;
        for (shard, slot) in state.slots.iter_mut() {
            if slot.state != SlotState::Done
                && progress.get(shard).copied().unwrap_or(0) >= slot.range.window_count()
            {
                slot.state = SlotState::Done;
                completed = true;
            }
        }
        if completed {
            state.activity_at = now();
        }
    }

    /// Deterministic grant: the lowest-indexed incomplete free shard.
    fn grant(&self, worker: u64) -> LeaseOffer {
        let mut state = self.lock();
        self.sweep(&mut state);
        self.refresh_done(&mut state);
        if state
            .slots
            .values()
            .all(|slot| slot.state == SlotState::Done)
        {
            return LeaseOffer::Complete;
        }
        let Some(shard) = state
            .slots
            .iter()
            .find(|(_, slot)| slot.state == SlotState::Free)
            .map(|(shard, _)| *shard)
        else {
            return LeaseOffer::Wait;
        };
        state.fence_counter += 1;
        let fence = self.shared.fence_base.saturating_add(state.fence_counter);
        let config = self.collector.config();
        let lease_ms = self.shared.config.lease.as_millis() as u64;
        let heartbeat_ms = self.shared.config.heartbeat.as_millis() as u64;
        let (redispatch, ticket) = {
            let slot = match state.slots.get_mut(&shard) {
                Some(slot) => slot,
                None => return LeaseOffer::Wait,
            };
            slot.state = SlotState::Leased;
            slot.worker = worker;
            slot.fence = fence;
            slot.deadline = now() + self.shared.config.lease;
            (
                slot.expired_before,
                LeaseTicket {
                    worker,
                    shard,
                    shards: config.shards,
                    windows: config.expect.windows,
                    lo: slot.range.lo,
                    hi: slot.range.hi,
                    fence,
                    lease_ms,
                    heartbeat_ms,
                    fingerprint: config.expect.fingerprint,
                },
            )
        };
        state.activity_at = now();
        self.collector.metrics().add_leases_granted(1);
        if redispatch {
            self.collector.metrics().add_leases_redispatched(1);
        }
        LeaseOffer::Granted(ticket)
    }

    /// Validate `(worker, fence)` against the lease on `shard`; the
    /// error is the typed zombie refusal. A `Done` slot still accepts
    /// its *own* holder's token: `refresh_done` runs at every poll
    /// tick and marks a shard complete the instant the collector has
    /// its windows — often a beat before the holder's `WorkDone`
    /// frame arrives — and that holder is finishing, not a zombie.
    fn check_fence(
        &self,
        state: &mut DispatchState,
        worker: u64,
        shard: u64,
        fence: u64,
    ) -> Result<(), ServiceFault> {
        let live = state.slots.get(&shard).is_some_and(|slot| {
            matches!(slot.state, SlotState::Leased | SlotState::Done)
                && slot.worker == worker
                && slot.fence == fence
        });
        if live {
            return Ok(());
        }
        self.collector.metrics().add_leases_fenced(1);
        self.record(
            state,
            DispatchFault::LeaseFenced {
                worker,
                shard,
                fence,
            },
        );
        Err(ServiceFault::LeaseFenced {
            worker,
            shard,
            fence,
        })
    }

    /// A heartbeat renews the lease deadline; returns the remaining
    /// lease in milliseconds.
    fn heartbeat(&self, worker: u64, shard: u64, fence: u64) -> Result<u64, ServiceFault> {
        let mut state = self.lock();
        self.sweep(&mut state);
        self.check_fence(&mut state, worker, shard, fence)?;
        if let Some(slot) = state.slots.get_mut(&shard) {
            slot.deadline = now() + self.shared.config.lease;
        }
        state.activity_at = now();
        self.collector.metrics().add_heartbeats(1);
        Ok(self.shared.config.lease.as_millis() as u64)
    }

    /// `WorkDone` closes a lease *only* when the collector has the
    /// full range persisted; an under-delivered range is orphaned back
    /// to the queue with a typed refusal.
    fn work_done(&self, worker: u64, shard: u64, fence: u64) -> Result<(), ServiceFault> {
        let mut state = self.lock();
        self.sweep(&mut state);
        self.check_fence(&mut state, worker, shard, fence)?;
        let assigned = state
            .slots
            .get(&shard)
            .map(|slot| slot.range.window_count())
            .unwrap_or(0);
        let persisted = self
            .collector
            .shard_progress()
            .get(&shard)
            .copied()
            .unwrap_or(0);
        if persisted < assigned {
            if let Some(slot) = state.slots.get_mut(&shard) {
                slot.state = SlotState::Free;
                slot.expired_before = true;
            }
            self.record(
                &mut state,
                DispatchFault::RangeOrphaned {
                    shard,
                    persisted,
                    assigned,
                },
            );
            return Err(ServiceFault::Protocol {
                detail: format!(
                    "WorkDone for shard {shard} with {persisted}/{assigned} window(s) \
                     persisted — range returns to the dispatch queue"
                ),
            });
        }
        if let Some(slot) = state.slots.get_mut(&shard) {
            slot.state = SlotState::Done;
        }
        state.activity_at = now();
        Ok(())
    }

    /// True once every shard's range is fully persisted.
    pub fn all_done(&self) -> bool {
        let mut state = self.lock();
        self.sweep(&mut state);
        self.refresh_done(&mut state);
        state
            .slots
            .values()
            .all(|slot| slot.state == SlotState::Done)
    }

    /// Stall watchdog tick: fires (once) when coverage is incomplete,
    /// no lease is live, and nothing has happened for the configured
    /// window. Returns true when the dispatcher should give up.
    fn stalled(&self) -> bool {
        let Some(stall) = self.shared.config.stall else {
            return false;
        };
        let mut state = self.lock();
        if state.stalled {
            return true;
        }
        self.sweep(&mut state);
        self.refresh_done(&mut state);
        let done = state
            .slots
            .values()
            .filter(|slot| slot.state == SlotState::Done)
            .count() as u64;
        let all = state.slots.len() as u64;
        let live = state
            .slots
            .values()
            .any(|slot| slot.state == SlotState::Leased);
        if done < all && !live && state.activity_at.elapsed() >= stall {
            state.stalled = true;
            self.record(
                &mut state,
                DispatchFault::DispatchStalled { done, shards: all },
            );
            return true;
        }
        false
    }

    /// The dispatcher's accounting snapshot.
    pub fn report(&self) -> DispatchReport {
        let metrics = self.collector.metrics().snapshot();
        let mut state = self.lock();
        self.refresh_done(&mut state);
        let shards_done = state
            .slots
            .values()
            .filter(|slot| slot.state == SlotState::Done)
            .count() as u64;
        DispatchReport {
            shards: self.collector.config().shards,
            windows: self.collector.config().expect.windows,
            shards_done,
            leases_granted: metrics.leases_granted,
            leases_expired: metrics.leases_expired,
            leases_fenced: metrics.leases_fenced,
            leases_redispatched: metrics.leases_redispatched,
            heartbeats: metrics.heartbeats,
            stalled: state.stalled,
            events: state.events.clone(),
            faults: state.faults.clone(),
        }
    }
}

/// A stream wrapper that remembers every byte read, so the session
/// router can replay a consumed first frame into the collector.
struct Recorder<'a, S> {
    inner: &'a mut S,
    seen: Vec<u8>,
}

impl<S: Read> Read for Recorder<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        // n ≤ buf.len() by the Read contract. lint:allow(R8)
        self.seen.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

/// Head-then-stream reader: serves the recorded prefix first, then
/// the live connection; writes go straight through.
struct Replay<'a, S> {
    head: std::io::Cursor<Vec<u8>>,
    inner: &'a mut S,
}

impl<S: Read> Read for Replay<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = std::io::Read::read(&mut self.head, buf)?;
        if n > 0 {
            return Ok(n);
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for Replay<'_, S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The TCP face of the dispatcher: one listener serving both lease
/// sessions and the whole collector protocol. Exits when every shard
/// completes (unless `linger`), when a `Shutdown` frame drains the
/// collector, when the stall watchdog fires, or when the stop handle
/// is raised (the test harness's in-process SIGKILL: no drain, no
/// final joins beyond thread completion).
pub struct DispatchServer {
    listener: TcpListener,
    dispatcher: Dispatcher,
    stop: Arc<AtomicBool>,
}

impl DispatchServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral CI port).
    ///
    /// # Errors
    ///
    /// [`ServiceFault::Io`] when the bind fails.
    pub fn bind(addr: &str, dispatcher: Dispatcher) -> Result<DispatchServer, ServiceFault> {
        let listener = TcpListener::bind(addr).map_err(|e| ServiceFault::Io {
            detail: format!("bind {addr}: {e}"),
        })?;
        Ok(DispatchServer {
            listener,
            dispatcher,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves the real port after binding `:0`).
    ///
    /// # Errors
    ///
    /// [`ServiceFault::Io`] when the socket cannot report it.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, ServiceFault> {
        self.listener.local_addr().map_err(|e| ServiceFault::Io {
            detail: e.to_string(),
        })
    }

    /// The dispatcher this server fronts.
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }

    /// A flag that makes `run` exit at its next poll tick without
    /// draining — the in-process stand-in for SIGKILLing the
    /// dispatcher (all durable state is already in the collector's
    /// journals, which is the point of the recovery test).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Accept and route connections until done / drained / stalled /
    /// stopped, then return the dispatch report.
    ///
    /// # Errors
    ///
    /// [`ServiceFault::Io`] when the listener cannot be made
    /// nonblocking.
    pub fn run(self) -> Result<DispatchReport, ServiceFault> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServiceFault::Io {
                detail: e.to_string(),
            })?;
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            if self.dispatcher.collector().draining() {
                break;
            }
            if !self.dispatcher.config().linger && self.dispatcher.all_done() {
                break;
            }
            if self.dispatcher.stalled() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream
                        .set_read_timeout(Some(self.dispatcher.collector().config().read_timeout));
                    let dispatcher = self.dispatcher.clone();
                    handles.push(std::thread::spawn(move || {
                        let mut stream = stream;
                        dispatcher.handle(&mut stream);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        if !self.stop.load(Ordering::SeqCst) {
            for handle in handles {
                let _ = handle.join();
            }
        }
        Ok(self.dispatcher.report())
    }
}

// ---------------------------------------------------------------------------
// Worker client
// ---------------------------------------------------------------------------

/// Everything a worker needs to serve leases from one dispatcher.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Dispatcher address.
    pub addr: String,
    /// This worker's stable id (rides in every lease frame).
    pub worker: u64,
    /// Directory for the worker's local shard journals.
    pub journal_dir: PathBuf,
    /// The capture identity this worker is prepared to capture; a
    /// grant whose fingerprint disagrees is refused as identity skew.
    pub expect: JournalHeader,
    /// Transport retry policy (also seeds the heartbeat jitter).
    pub retry: RetryPolicy,
    /// Wait between `Wait` polls when all ranges are leased out.
    pub poll: Duration,
}

/// Where a chaos schedule kills the worker, simulating the observable
/// on-disk/wire state of a SIGKILL at that phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkPhase {
    /// Killed before requesting any lease: the dispatcher never hears
    /// from this worker at all.
    PreLease,
    /// Killed mid-capture: a partial local journal exists, no submit,
    /// no `WorkDone` — the lease expires and re-dispatches.
    MidCapture,
    /// Killed after capture, before submit: a complete local journal
    /// exists but the collector got nothing from it.
    PreSubmit,
}

/// A worker's final accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// The worker id.
    pub worker: u64,
    /// Shards completed (`WorkDone` acknowledged), in completion
    /// order.
    pub completed: Vec<u64>,
    /// Leases granted to this worker.
    pub leases: u64,
    /// Fenced refusals received (zombie detections).
    pub fenced: u64,
    /// The chaos phase that killed the worker, if any.
    pub killed: Option<WorkPhase>,
}

/// The name of a worker's local journal for one shard — stable so a
/// resumed or zombie worker finds its own bytes.
pub fn worker_journal_name(worker: u64, shards: u64, shard: u64) -> String {
    format!("worker-{worker}-shard-{shards}-{shard}.journal")
}

/// One framed request/reply round against the dispatcher, reporting a
/// refused connection distinctly from other transport trouble: the
/// dispatcher exits the moment every shard completes, so on a worker
/// that has already spoken to it, "connection refused" is the
/// signature of a *finished* dispatcher — not a slow one.
enum CallOutcome {
    Reply(WireMessage),
    Gone,
    Fault(ServiceFault),
}

fn call_once(addr: &str, retry: &RetryPolicy, frame: &WireMessage) -> CallOutcome {
    let mut stream = match std::net::TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => return CallOutcome::Gone,
        Err(e) => {
            return CallOutcome::Fault(ServiceFault::Io {
                detail: format!("connect {addr}: {e}"),
            })
        }
    };
    let _ = stream.set_read_timeout(Some(retry.io_timeout));
    let _ = stream.set_write_timeout(Some(retry.io_timeout));
    let _ = stream.set_nodelay(true);
    if let Err(fault) = write_frame(&mut stream, &frame.encode()) {
        return CallOutcome::Fault(fault);
    }
    match read_reply(&mut stream) {
        Ok(reply) => CallOutcome::Reply(reply),
        Err(fault) => CallOutcome::Fault(fault),
    }
}

/// Ask the dispatcher for a lease, retrying transport faults until
/// the policy deadline.
///
/// # Errors
///
/// Non-retryable refusals immediately; [`ServiceFault::Unavailable`]
/// when the deadline elapses.
pub fn request_lease(
    addr: &str,
    retry: &RetryPolicy,
    worker: u64,
) -> Result<LeaseOffer, ServiceFault> {
    lease_round(addr, retry, worker, false)
}

/// The retry loop behind [`request_lease`]. With `contacted` set — the
/// worker has completed at least one round against this dispatcher —
/// a refused connection resolves to [`LeaseOffer::Complete`]: the
/// dispatcher exits once every shard's range is persisted, all
/// captured state is durable in journals either way, and a worker
/// whose supervisor vanished has nothing left to do but stop.
fn lease_round(
    addr: &str,
    retry: &RetryPolicy,
    worker: u64,
    contacted: bool,
) -> Result<LeaseOffer, ServiceFault> {
    let start = now();
    let mut attempt = 0u64;
    loop {
        let fault = match call_once(addr, retry, &WireMessage::LeaseRequest { worker }) {
            CallOutcome::Reply(WireMessage::LeaseGrant(offer)) => return Ok(offer),
            CallOutcome::Reply(other) => ServiceFault::Protocol {
                detail: format!("expected LeaseGrant, got {}", frame_name(&other)),
            },
            CallOutcome::Gone if contacted => return Ok(LeaseOffer::Complete),
            CallOutcome::Gone => ServiceFault::Io {
                detail: format!("connect {addr}: connection refused"),
            },
            CallOutcome::Fault(fault) => fault,
        };
        if !fault.retryable() {
            return Err(fault);
        }
        if start.elapsed() >= retry.deadline {
            return Err(ServiceFault::Unavailable {
                detail: format!("retry deadline elapsed; last fault: {fault}"),
            });
        }
        std::thread::sleep(retry.backoff(attempt));
        attempt += 1;
    }
}

/// One heartbeat: single attempt (a missed beat is recoverable by the
/// next one; only fencing is terminal). Returns the renewed lease in
/// milliseconds.
///
/// # Errors
///
/// [`ServiceFault::Remote`] with wire code 16 (refusal class
/// [`RefusalClass::Fenced`]) when the lease was fenced; transport
/// faults otherwise.
pub fn send_heartbeat(
    addr: &str,
    retry: &RetryPolicy,
    worker: u64,
    shard: u64,
    fence: u64,
) -> Result<u64, ServiceFault> {
    let mut stream = connect(addr, retry)?;
    write_frame(
        &mut stream,
        &WireMessage::Heartbeat {
            worker,
            shard,
            fence,
        }
        .encode(),
    )?;
    match read_reply(&mut stream)? {
        WireMessage::LeaseRenew { deadline_ms, .. } => Ok(deadline_ms),
        other => Err(ServiceFault::Protocol {
            detail: format!("expected LeaseRenew, got {}", frame_name(&other)),
        }),
    }
}

/// Tell the dispatcher a leased range is fully submitted, retrying
/// transport faults until the policy deadline.
///
/// # Errors
///
/// The fenced refusal and other non-retryable faults immediately;
/// [`ServiceFault::Unavailable`] when the deadline elapses.
pub fn send_work_done(
    addr: &str,
    retry: &RetryPolicy,
    worker: u64,
    shard: u64,
    fence: u64,
) -> Result<(), ServiceFault> {
    work_done_round(addr, retry, worker, shard, fence, false)
}

/// The retry loop behind [`send_work_done`]. With `submitted` set —
/// the caller's journal submission already succeeded — a refused
/// connection resolves to `Ok(())`: the windows are durable
/// server-side (that acceptance is what let the dispatcher finish and
/// exit), and `WorkDone` only transfers completion credit.
fn work_done_round(
    addr: &str,
    retry: &RetryPolicy,
    worker: u64,
    shard: u64,
    fence: u64,
    submitted: bool,
) -> Result<(), ServiceFault> {
    let start = now();
    let mut attempt = 0u64;
    loop {
        let frame = WireMessage::WorkDone {
            worker,
            shard,
            fence,
        };
        let fault = match call_once(addr, retry, &frame) {
            CallOutcome::Reply(WireMessage::LeaseRenew { .. }) => return Ok(()),
            CallOutcome::Reply(other) => ServiceFault::Protocol {
                detail: format!("expected WorkDone ack, got {}", frame_name(&other)),
            },
            CallOutcome::Gone if submitted => return Ok(()),
            CallOutcome::Gone => ServiceFault::Io {
                detail: format!("connect {addr}: connection refused"),
            },
            CallOutcome::Fault(fault) => fault,
        };
        if !fault.retryable() {
            return Err(fault);
        }
        if start.elapsed() >= retry.deadline {
            return Err(ServiceFault::Unavailable {
                detail: format!("retry deadline elapsed; last fault: {fault}"),
            });
        }
        std::thread::sleep(retry.backoff(attempt));
        attempt += 1;
    }
}

/// Serve leases until the dispatcher reports the capture complete.
///
/// Per lease: open (or resume) the worker's local journal for the
/// granted range, heartbeat on a jittered interval from a background
/// scope thread while `capture` fills the journal, then submit the
/// journal through the PR 9 collector path and close with `WorkDone`.
/// A fenced heartbeat stops the lease (no submit, no `WorkDone`) —
/// the range now belongs to someone else. `on_grant` runs right after
/// each grant (the CLI persists its zombie-resume state there).
///
/// `capture` receives the ticket, the journal, and an optional window
/// cap (used by the [`WorkPhase::MidCapture`] chaos schedule to leave
/// the exact partial-journal state of a mid-capture SIGKILL).
///
/// # Errors
///
/// Identity skew between `cfg.expect` and a granted ticket, capture
/// failures, and transport exhaustion. Fencing is *not* an error —
/// it is counted in the report and the worker moves on.
pub fn run_worker<C, G>(
    cfg: &WorkerConfig,
    injector: &WireInjector,
    chaos: Option<WorkPhase>,
    mut capture: C,
    mut on_grant: G,
) -> Result<WorkerReport, ServiceFault>
where
    C: FnMut(&LeaseTicket, &Journal, Option<u64>) -> Result<(), FederationError>,
    G: FnMut(&LeaseTicket),
{
    let mut report = WorkerReport {
        worker: cfg.worker,
        completed: Vec::new(),
        leases: 0,
        fenced: 0,
        killed: None,
    };
    if chaos == Some(WorkPhase::PreLease) {
        report.killed = Some(WorkPhase::PreLease);
        return Ok(report);
    }
    let start = now();
    let mut contacted = false;
    loop {
        let offer = lease_round(&cfg.addr, &cfg.retry, cfg.worker, contacted)?;
        contacted = true;
        match offer {
            LeaseOffer::Complete => return Ok(report),
            LeaseOffer::Wait => {
                if start.elapsed() >= cfg.retry.deadline {
                    return Err(ServiceFault::Unavailable {
                        detail: "dispatcher kept the worker waiting past the retry deadline"
                            .to_string(),
                    });
                }
                std::thread::sleep(cfg.poll);
            }
            LeaseOffer::Granted(ticket) => {
                report.leases += 1;
                if ticket.fingerprint != cfg.expect.fingerprint {
                    return Err(ServiceFault::IdentitySkew {
                        fault: JournalFault::ConfigMismatch {
                            field: "fingerprint".to_string(),
                            journal: format!("{:#018x}", ticket.fingerprint),
                            run: format!("{:#018x}", cfg.expect.fingerprint),
                        },
                    });
                }
                on_grant(&ticket);
                match serve_lease(cfg, injector, chaos, &ticket, &mut capture)? {
                    LeaseEnd::Completed => report.completed.push(ticket.shard),
                    LeaseEnd::Fenced => report.fenced += 1,
                    LeaseEnd::Killed(phase) => {
                        report.killed = Some(phase);
                        return Ok(report);
                    }
                }
            }
        }
    }
}

enum LeaseEnd {
    Completed,
    Fenced,
    Killed(WorkPhase),
}

/// Run one granted lease to its end state.
fn serve_lease<C>(
    cfg: &WorkerConfig,
    injector: &WireInjector,
    chaos: Option<WorkPhase>,
    ticket: &LeaseTicket,
    capture: &mut C,
) -> Result<LeaseEnd, ServiceFault>
where
    C: FnMut(&LeaseTicket, &Journal, Option<u64>) -> Result<(), FederationError>,
{
    let path = cfg
        .journal_dir
        .join(worker_journal_name(cfg.worker, ticket.shards, ticket.shard));
    // Resume a journal a previous lease (or incarnation) left behind;
    // byte-idempotent submission makes overlap harmless.
    let journal = if path.exists() {
        Journal::resume(&path, cfg.expect.clone())
            .map(|(journal, _recovery)| journal)
            .map_err(journal_fault_to_service)?
    } else {
        Journal::create(&path, cfg.expect.clone()).map_err(journal_fault_to_service)?
    };
    // The mid-capture kill journals only half the range.
    let limit = (chaos == Some(WorkPhase::MidCapture))
        .then(|| (ticket.hi - ticket.lo) / 2)
        .filter(|n| *n > 0);
    let stop = AtomicBool::new(false);
    let fenced = AtomicBool::new(false);
    let captured: Result<(), FederationError> = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut rng = SeedSequence::new(cfg.retry.seed).rng(ticket.fence);
            let mut waited = Duration::ZERO;
            loop {
                // Jittered interval in [0.5, 1.0) × heartbeat_ms,
                // slept in small slices so shutdown is snappy.
                let beat = Duration::from_millis(ticket.heartbeat_ms)
                    .mul_f64(0.5 + 0.5 * rng.gen::<f64>());
                while waited < beat {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let slice = Duration::from_millis(10).min(beat - waited);
                    std::thread::sleep(slice);
                    waited += slice;
                }
                waited = Duration::ZERO;
                match send_heartbeat(
                    &cfg.addr,
                    &cfg.retry,
                    ticket.worker,
                    ticket.shard,
                    ticket.fence,
                ) {
                    Ok(_) => {}
                    Err(fault) if fault.refusal() == RefusalClass::Fenced => {
                        fenced.store(true, Ordering::SeqCst);
                        return;
                    }
                    // Transient transport trouble: the next beat (or
                    // the lease deadline) decides.
                    Err(_) => {}
                }
            }
        });
        let out = capture(ticket, &journal, limit);
        stop.store(true, Ordering::SeqCst);
        out
    });
    captured.map_err(|e| ServiceFault::Unavailable {
        detail: format!("shard capture failed: {e}"),
    })?;
    if matches!(chaos, Some(WorkPhase::MidCapture | WorkPhase::PreSubmit)) {
        // SIGKILL here: journal is on disk (partial for mid-capture),
        // nothing submitted, lease left to expire.
        return Ok(LeaseEnd::Killed(match chaos {
            Some(phase) => phase,
            None => WorkPhase::PreSubmit,
        }));
    }
    if fenced.load(Ordering::SeqCst) {
        return Ok(LeaseEnd::Fenced);
    }
    let _outcome: SubmitOutcome = submit_journal(
        &cfg.addr,
        &path,
        ticket.shard,
        ticket.shards,
        &cfg.expect,
        &cfg.retry,
        injector,
    )?;
    match work_done_round(
        &cfg.addr,
        &cfg.retry,
        ticket.worker,
        ticket.shard,
        ticket.fence,
        true,
    ) {
        Ok(()) => Ok(LeaseEnd::Completed),
        // Fenced between submit and WorkDone: the submitted bytes are
        // byte-idempotent with whoever now owns the range, so the only
        // loss is this worker's credit.
        Err(fault) if fault.refusal() == RefusalClass::Fenced => Ok(LeaseEnd::Fenced),
        Err(fault) => Err(fault),
    }
}

/// What a woken zombie achieved: the typed refusal it received, and
/// whether its local journal still resubmitted cleanly (it always
/// does — the collector's `accept_window` is byte-idempotent, which
/// is the structural reason a zombie cannot corrupt coverage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZombieOutcome {
    /// True when the dispatcher answered with the fenced refusal.
    pub fenced: bool,
    /// Windows the resubmission confirmed persisted server-side.
    pub resubmitted: u64,
}

/// Wake up as a zombie: heartbeat with a (presumably stale) fence,
/// then resubmit the local journal regardless. Used by the chaos
/// tests and `palu-cli work --resume-lease` to prove the
/// fencing/idempotency contract end to end.
///
/// # Errors
///
/// Transport exhaustion, local journal corruption, or identity skew;
/// a fenced refusal is the *expected* outcome, not an error.
pub fn resume_zombie(
    cfg: &WorkerConfig,
    injector: &WireInjector,
    shard: u64,
    shards: u64,
    fence: u64,
) -> Result<ZombieOutcome, ServiceFault> {
    let fenced = match send_heartbeat(&cfg.addr, &cfg.retry, cfg.worker, shard, fence) {
        Ok(_) => false,
        Err(fault) if fault.refusal() == RefusalClass::Fenced => true,
        Err(fault) => return Err(fault),
    };
    let path = cfg
        .journal_dir
        .join(worker_journal_name(cfg.worker, shards, shard));
    let resubmitted = if path.exists() {
        submit_journal(
            &cfg.addr,
            &path,
            shard,
            shards,
            &cfg.expect,
            &cfg.retry,
            injector,
        )?
        .accepted
    } else {
        0
    };
    Ok(ZombieOutcome {
        fenced,
        resubmitted,
    })
}
