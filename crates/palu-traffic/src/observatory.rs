//! A simulated trunk-line observatory.
//!
//! Figure 3 of the paper shows "measured differential cumulative
//! probabilities spanning different locations, dates, and packet
//! windows". An [`Observatory`] is one such vantage point: an
//! underlying PALU network, a traffic model, and a packet budget per
//! window. Consecutive calls to [`Observatory::next_window`] replay the
//! role of consecutive capture intervals `t`.

use crate::fault::WindowFault;
use crate::packets::{EdgeIntensity, PacketSynthesizer};
use crate::window::PacketWindow;
use palu_graph::palu_gen::{PaluGenerator, UnderlyingNetwork};
use palu_stats::rng::SeedSequence;
use palu_stats::StatsError;

/// Descriptive metadata for an observatory (mirrors the panel labels
/// of Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservatoryConfig {
    /// Vantage-point name, e.g. "Synthetic-Tokyo".
    pub name: String,
    /// Nominal capture date label.
    pub date: String,
    /// Packets per window (`N_V`).
    pub n_v: u64,
}

/// A synthetic vantage point producing consecutive packet windows.
///
/// Window `t` is generated from its own derived RNG stream, so windows
/// are *randomly accessible*: `window_at(t)` returns the same window
/// whether it is generated first, last, or in parallel with others.
pub struct Observatory {
    config: ObservatoryConfig,
    underlying: UnderlyingNetwork,
    synthesizer: PacketSynthesizer,
    packet_seq: SeedSequence,
    next_t: u64,
}

impl Observatory {
    /// Stand up an observatory over a freshly generated underlying
    /// network.
    ///
    /// `seed` drives three independent streams (network generation,
    /// per-edge intensities, packet arrivals) via [`SeedSequence`], so
    /// two observatories with the same arguments are bit-identical.
    pub fn new(
        config: ObservatoryConfig,
        generator: &PaluGenerator,
        intensity: EdgeIntensity,
        seed: u64,
    ) -> Self {
        let seq = SeedSequence::new(seed);
        let underlying = generator.generate(&mut seq.rng(palu_stats::rng::streams::CORE));
        let synthesizer = PacketSynthesizer::new(
            &underlying.graph,
            intensity,
            &mut seq.rng(palu_stats::rng::streams::FITTING),
        );
        Observatory {
            config,
            underlying,
            synthesizer,
            packet_seq: SeedSequence::new(seq.child_seed(palu_stats::rng::streams::PACKETS)),
            next_t: 0,
        }
    }

    /// The observatory's metadata.
    pub fn config(&self) -> &ObservatoryConfig {
        &self.config
    }

    /// The underlying network being observed.
    pub fn underlying(&self) -> &UnderlyingNetwork {
        &self.underlying
    }

    /// The packet synthesizer (for effective-`p` queries).
    pub fn synthesizer(&self) -> &PacketSynthesizer {
        &self.synthesizer
    }

    /// Effective edge-retention probability `p` of one window under
    /// uniform intensity.
    pub fn effective_p(&self) -> f64 {
        self.synthesizer.effective_p_uniform(self.config.n_v)
    }

    /// Synthesize the raw packets of window `t` — the synthesize stage
    /// of the pipeline, split out so parallel workers (and stage
    /// instrumentation) can run it separately from window assembly.
    /// Deterministic random access: window `t` draws from its own
    /// splittable RNG stream ([`SeedSequence::window_rng`]), so the
    /// result is independent of which other windows were generated,
    /// in what order, or on which thread.
    pub fn packets_at(&self, t: u64) -> Result<Vec<crate::packets::Packet>, WindowFault> {
        self.packets_at_retry(t, 0)
    }

    /// Synthesize window `t` from its `attempt`-th RNG sub-stream.
    ///
    /// Attempt `0` is exactly [`Observatory::packets_at`]. Attempt
    /// `k ≥ 1` draws from stream `k` of the `t`-th child of the
    /// dedicated retry stream
    /// ([`palu_stats::rng::streams::RETRY`]), so retry `k` of window
    /// `t` always consumes the same derived seed — the fault-tolerant
    /// pipeline's recovery is replayable regardless of which thread
    /// retries, in what order, or how many other windows faulted.
    ///
    /// # Errors
    ///
    /// Propagates the synthesizer's [`WindowFault`], and reports
    /// [`WindowFault::BudgetUnrepresentable`] when `N_V` exceeds this
    /// platform's `usize`.
    pub fn packets_at_retry(
        &self,
        t: u64,
        attempt: u32,
    ) -> Result<Vec<crate::packets::Packet>, WindowFault> {
        let mut out = Vec::new();
        self.packets_at_retry_into(t, attempt, &mut out)?;
        Ok(out)
    }

    /// [`Observatory::packets_at_retry`] into a caller-provided buffer
    /// (cleared first). The RNG stream derivation and draw order are
    /// identical, so a worker reusing one buffer across windows and
    /// retries preserves the bit-identity contract. After an `Err` the
    /// buffer's contents are unspecified.
    ///
    /// # Errors
    ///
    /// Same as [`Observatory::packets_at_retry`].
    pub fn packets_at_retry_into(
        &self,
        t: u64,
        attempt: u32,
        out: &mut Vec<crate::packets::Packet>,
    ) -> Result<(), WindowFault> {
        let mut rng = if attempt == 0 {
            self.packet_seq.window_rng(t)
        } else {
            let retry_seq =
                SeedSequence::new(self.packet_seq.child_seed(palu_stats::rng::streams::RETRY));
            SeedSequence::new(retry_seq.child_seed(t)).rng(attempt as u64)
        };
        let n_v =
            usize::try_from(self.config.n_v).map_err(|_| WindowFault::BudgetUnrepresentable {
                n_v: self.config.n_v,
            })?;
        self.synthesizer.draw_many_into(&mut rng, n_v, out)
    }

    /// The window at index `t` — deterministic random access: the same
    /// `(observatory seed, t)` always gives the same window.
    ///
    /// # Panics
    ///
    /// Panics on a synthesizer fault; use [`Observatory::packets_at`]
    /// plus [`PacketWindow::from_packets`] for the fault-classified
    /// path. (A constructed observatory always has a non-empty
    /// synthesizer, so this is unreachable in practice.)
    pub fn window_at(&self, t: u64) -> PacketWindow {
        let packets = self
            .packets_at(t)
            .unwrap_or_else(|e| panic!("window {t}: {e}"));
        PacketWindow::from_packets(t, &packets)
    }

    /// Reserve the next `n` consecutive window indices, returning the
    /// first. The observatory's window counter advances exactly as if
    /// the windows had been captured; callers (the parallel pipeline)
    /// generate the reserved windows themselves via
    /// [`Observatory::window_at`] / [`Observatory::packets_at`].
    pub fn advance(&mut self, n: usize) -> u64 {
        let start = self.next_t;
        self.next_t += n as u64;
        start
    }

    /// Reposition the window counter at index `t`. Window streams are
    /// splittable by index, so seeking is free — a journal resume (or
    /// the kill-point sweep test) rewinds one observatory instead of
    /// rebuilding the synthesizer per replay.
    pub fn seek(&mut self, t: u64) {
        self.next_t = t;
    }

    /// Capture the next consecutive window of `N_V` packets.
    pub fn next_window(&mut self) -> PacketWindow {
        let t = self.next_t;
        self.next_t += 1;
        self.window_at(t)
    }

    /// Capture `n` consecutive windows.
    pub fn windows(&mut self, n: usize) -> Vec<PacketWindow> {
        (0..n).map(|_| self.next_window()).collect()
    }

    /// Capture `n` consecutive windows concurrently on up to `threads`
    /// scoped workers (clamped to `1..=n`), each stealing the next
    /// window index from a shared atomic cursor. Produces exactly the
    /// same windows as [`Observatory::windows`], since each window
    /// owns an independent RNG stream; the caller picks the thread
    /// count instead of this method guessing from
    /// `available_parallelism`, so benchmarks and pipelines control
    /// their own oversubscription.
    ///
    /// # Errors
    ///
    /// [`StatsError::Domain`] when `n == 0`: an explicit zero-window
    /// capture is a configuration bug and is rejected, never silently
    /// coerced to one window. A synthesizer fault on any window is
    /// classified and surfaced as [`StatsError::Domain`] too — the
    /// historical path routed workers through the panicking
    /// [`Observatory::window_at`], turning a classifiable fault into a
    /// worker-thread abort.
    pub fn windows_parallel(
        &mut self,
        n: usize,
        threads: usize,
    ) -> Result<Vec<PacketWindow>, StatsError> {
        if n == 0 {
            return Err(StatsError::domain(
                "windows_parallel",
                "explicit zero-window capture",
            ));
        }
        // The caller's count is an upper bound; oversubscribing a
        // small host only adds context-switch cost (the windows are
        // output-invariant under scheduling), so cap at the effective
        // parallelism, keeping a floor of 2 so concurrent execution
        // is still exercised on single-core hosts.
        let threads = threads.clamp(1, n).min(
            std::thread::available_parallelism()
                .map(|p| p.get().max(2))
                .unwrap_or(threads),
        );
        let start = self.advance(n);
        let mut slots: Vec<Option<PacketWindow>> = (0..n).map(|_| None).collect();
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut first_fault: Option<StatsError> = None;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let this = &*self;
                    s.spawn(move || {
                        let mut out: Vec<(usize, PacketWindow)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let t = start + i as u64;
                            match this.packets_at(t) {
                                Ok(packets) => {
                                    out.push((i, PacketWindow::from_packets(t, &packets)));
                                }
                                Err(fault) => {
                                    return Err(StatsError::domain(
                                        "windows_parallel",
                                        format!("window {t}: {fault}"),
                                    ));
                                }
                            }
                        }
                        Ok(out)
                    })
                })
                .collect();
            for h in handles {
                match h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)) {
                    Ok(out) => {
                        for (i, w) in out {
                            if let Some(slot) = slots.get_mut(i) {
                                *slot = Some(w);
                            }
                        }
                    }
                    Err(e) => {
                        if first_fault.is_none() {
                            first_fault = Some(e);
                        }
                    }
                }
            }
        });
        if let Some(e) = first_fault {
            return Err(e);
        }
        // The scope joined every worker, so each slot is filled.
        let windows: Vec<PacketWindow> = slots.into_iter().flatten().collect();
        assert_eq!(windows.len(), n, "every slot filled by a joined worker");
        Ok(windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_generator() -> PaluGenerator {
        PaluGenerator::new(2_000, 500, 300, 2.0, 1.5).unwrap()
    }

    fn make(seed: u64, n_v: u64) -> Observatory {
        Observatory::new(
            ObservatoryConfig {
                name: "test".into(),
                date: "2026-07-06".into(),
                n_v,
            },
            &small_generator(),
            EdgeIntensity::Uniform,
            seed,
        )
    }

    #[test]
    fn windows_have_exact_packet_budget() {
        let mut obs = make(1, 5_000);
        let w = obs.next_window();
        assert_eq!(w.n_v(), 5_000);
        assert_eq!(w.aggregates().valid_packets, 5_000);
        assert_eq!(w.t(), 0);
        let w2 = obs.next_window();
        assert_eq!(w2.t(), 1);
    }

    #[test]
    fn consecutive_windows_differ_but_share_structure() {
        let mut obs = make(2, 5_000);
        let ws = obs.windows(3);
        assert_eq!(ws.len(), 3);
        // Different packets per window…
        assert_ne!(ws[0].matrix(), ws[1].matrix());
        // …but similar aggregate scale (same underlying network).
        let l0 = ws[0].aggregates().unique_links as f64;
        let l1 = ws[1].aggregates().unique_links as f64;
        assert!((l0 - l1).abs() / l0 < 0.1, "links {l0} vs {l1}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = make(3, 2_000);
        let mut b = make(3, 2_000);
        assert_eq!(a.next_window().matrix(), b.next_window().matrix());
        let mut c = make(4, 2_000);
        assert_ne!(a.next_window().matrix(), c.next_window().matrix());
    }

    #[test]
    fn window_at_is_random_access() {
        let obs = make(10, 2_000);
        let w5_first = obs.window_at(5);
        let w0 = obs.window_at(0);
        let w5_again = obs.window_at(5);
        assert_eq!(w5_first.matrix(), w5_again.matrix());
        assert_ne!(w0.matrix(), w5_first.matrix());
        assert_eq!(w5_first.t(), 5);
    }

    #[test]
    fn parallel_windows_match_sequential() {
        let mut seq = make(11, 2_000);
        let mut par = make(11, 2_000);
        let ws = seq.windows(6);
        let wp = par.windows_parallel(6, 3).unwrap();
        assert_eq!(ws.len(), wp.len());
        for (a, b) in ws.iter().zip(&wp) {
            assert_eq!(a.matrix(), b.matrix());
            assert_eq!(a.t(), b.t());
        }
        // The counters advanced identically: the next window agrees.
        assert_eq!(seq.next_window().matrix(), par.next_window().matrix());
    }

    #[test]
    fn packets_at_is_the_synthesize_stage_of_window_at() {
        let obs = make(12, 2_000);
        let packets = obs.packets_at(3).unwrap();
        assert_eq!(packets.len(), 2_000);
        let assembled = PacketWindow::from_packets(3, &packets);
        assert_eq!(assembled.matrix(), obs.window_at(3).matrix());
    }

    #[test]
    fn parallel_windows_are_thread_count_independent() {
        let mut one = make(13, 1_000);
        let mut many = make(13, 1_000);
        let a = one.windows_parallel(5, 1).unwrap();
        // Oversubscribed: more workers than windows is benign — the
        // extra workers find the cursor exhausted and exit.
        let b = many.windows_parallel(5, 64).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.matrix(), y.matrix());
            assert_eq!(x.t(), y.t());
        }
    }

    #[test]
    fn zero_window_parallel_capture_is_a_domain_error() {
        // Regression: n = 0 used to fall into a chunks_mut(0) panic /
        // silent one-window coercion; it must be an explicit error.
        let mut obs = make(14, 1_000);
        let err = obs.windows_parallel(0, 4).unwrap_err();
        assert!(
            matches!(err, StatsError::Domain { .. }),
            "expected Domain, got {err:?}"
        );
        // The failed call must not have consumed window indices.
        assert_eq!(obs.next_window().t(), 0);
    }

    #[test]
    fn retry_streams_are_deterministic_and_distinct() {
        let obs = make(15, 2_000);
        // Attempt 0 is exactly packets_at.
        assert_eq!(
            obs.packets_at_retry(4, 0).unwrap(),
            obs.packets_at(4).unwrap()
        );
        // Retry k of window t is replayable…
        let r1 = obs.packets_at_retry(4, 1).unwrap();
        assert_eq!(r1, obs.packets_at_retry(4, 1).unwrap());
        assert_eq!(r1.len(), 2_000);
        // …distinct from the primary draw and from other attempts…
        assert_ne!(r1, obs.packets_at(4).unwrap());
        assert_ne!(r1, obs.packets_at_retry(4, 2).unwrap());
        // …and distinct across windows.
        assert_ne!(r1, obs.packets_at_retry(5, 1).unwrap());
    }

    #[test]
    fn packets_at_retry_into_matches_allocating_path() {
        let obs = make(15, 2_000);
        let mut buf = Vec::new();
        // Reuse one buffer across windows and retries; every fill must
        // match the allocating variant bit-for-bit.
        for (t, attempt) in [(0, 0), (4, 1), (4, 2), (5, 1), (0, 0)] {
            obs.packets_at_retry_into(t, attempt, &mut buf).unwrap();
            assert_eq!(
                buf,
                obs.packets_at_retry(t, attempt).unwrap(),
                "({t},{attempt})"
            );
        }
    }

    #[test]
    fn advance_reserves_consecutive_indices() {
        let mut obs = make(13, 1_000);
        assert_eq!(obs.advance(4), 0);
        assert_eq!(obs.advance(0), 4);
        assert_eq!(obs.advance(2), 4);
        // The next captured window lands after the reservation.
        assert_eq!(obs.next_window().t(), 6);
    }

    #[test]
    fn effective_p_grows_with_window_size() {
        let small = make(5, 1_000);
        let large = make(5, 50_000);
        assert!(small.effective_p() < large.effective_p());
        assert!(large.effective_p() <= 1.0);
        assert!(small.effective_p() > 0.0);
    }

    #[test]
    fn observed_hosts_are_real_hosts() {
        let mut obs = make(6, 3_000);
        let w = obs.next_window();
        let n = obs.underlying().graph.n_nodes();
        assert!(w.matrix().n_rows() <= n);
        assert!(w.matrix().n_cols() <= n);
    }
}
