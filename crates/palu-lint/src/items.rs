//! Phase-1 item parser: from a [`SourceFile`]'s code-token stream to
//! a flat list of function items with enough structure for the
//! cross-function rules (R8–R10).
//!
//! This is deliberately *not* a Rust parser. It recognises the item
//! skeleton — `impl`/`trait`/`mod` scopes and `fn` bodies found by
//! brace matching — and records, per function:
//!
//! * its qualifier (the enclosing `impl`/`trait` self type),
//! * the call sites inside its body (`name(`, `Type::name(`,
//!   turbofish `name::<T>(`),
//! * whether the body spawns threads (`spawn` ident anywhere),
//! * whether the fn carries a `// lint:hot` tag (on the signature
//!   line or up to two lines above it),
//! * whether it lives in `#[cfg(test)]` code.
//!
//! The skeleton is conservative: where the token heuristics cannot
//! decide, they over-approximate (an extra call edge, an extra
//! candidate fn) — safe for reachability rules, which only ever widen
//! the reachable set and therefore never miss a real violation.

use crate::lexer::{Tok, Token};
use crate::source::SourceFile;

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// The last path qualifier before the name (`BinStats` in
    /// `BinStats::merge(...)`), if any.
    pub qual: Option<String>,
    /// The called name (`merge`).
    pub name: String,
    /// 1-based source line of the call.
    pub line: u32,
}

/// One `fn` item with the context the cross-function rules need.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the owning file in the slice the graph was built from.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` self type, if any.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared `pub` (any visibility form: `pub`, `pub(crate)`, …).
    pub is_pub: bool,
    /// Half-open code-token range of the body (inside the braces).
    pub body: (usize, usize),
    /// Half-open code-token range of the parameter list (inside the
    /// parens), for signature-level type scans.
    pub sig: (usize, usize),
    /// Call sites found in the body.
    pub calls: Vec<Call>,
    /// Body mentions `spawn`.
    pub spawns: bool,
    /// Tagged `// lint:hot` on or just above the signature.
    pub hot: bool,
    /// Lives inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

impl FnItem {
    /// `Type::name` when qualified, else `name` — the key used in
    /// R9's allowlist and in diagnostics.
    pub fn qual_name(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that can precede `(` or `[` without being a call or an
/// index expression, and that never name a called function.
pub fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Parse every `fn` item in `file` (including test fns, which are
/// flagged `in_test` so rules can skip them).
pub fn parse_items(file_idx: usize, file: &SourceFile) -> Vec<FnItem> {
    let hot_lines = hot_tag_lines(file);
    let mut out = Vec::new();
    let mut i = 0usize;
    scan_scope(
        file,
        file_idx,
        &hot_lines,
        &mut i,
        file.code.len(),
        None,
        &mut out,
    );
    out
}

/// Lines carrying a `// lint:hot` tag.
fn hot_tag_lines(file: &SourceFile) -> Vec<u32> {
    file.all
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Comment(text) if text.contains("lint:hot") => Some(t.line),
            _ => None,
        })
        .collect()
}

/// Walk one brace scope `[*i, end)` collecting fns; recurses into
/// `impl`/`trait`/`mod` bodies with the right qualifier.
fn scan_scope(
    file: &SourceFile,
    file_idx: usize,
    hot_lines: &[u32],
    i: &mut usize,
    end: usize,
    qual: Option<&str>,
    out: &mut Vec<FnItem>,
) {
    let code = &file.code;
    let mut saw_pub = false;
    while *i < end {
        match &code[*i].tok {
            Tok::Ident(name) if name == "pub" => {
                saw_pub = true;
                *i += 1;
                // Skip a visibility scope like `pub(crate)`.
                if *i < end && code[*i].tok == Tok::Punct('(') {
                    *i = match_close(code, *i, end, '(', ')');
                }
            }
            Tok::Ident(name) if name == "fn" => {
                let fn_line = code[*i].line;
                *i += 1;
                let Some(Tok::Ident(fn_name)) = code.get(*i).map(|t| &t.tok) else {
                    // `fn(u32) -> u32` pointer type, not an item.
                    saw_pub = false;
                    continue;
                };
                let fn_name = fn_name.clone();
                *i += 1;
                let (sig, body_open) = scan_signature(code, *i, end);
                match body_open {
                    Some(open) => {
                        let close = match_close(code, open, end, '{', '}');
                        let body = (open + 1, close.saturating_sub(1).max(open + 1));
                        let (calls, spawns) = extract_calls(code, body.0, body.1);
                        out.push(FnItem {
                            file: file_idx,
                            name: fn_name,
                            qual: qual.map(str::to_owned),
                            line: fn_line,
                            is_pub: saw_pub,
                            body,
                            sig,
                            calls,
                            spawns,
                            hot: hot_lines
                                .iter()
                                .any(|&l| l <= fn_line && fn_line.saturating_sub(l) <= 2),
                            in_test: file.in_test_code(fn_line),
                        });
                        // Recurse for nested fns (their calls are also
                        // attributed to the outer fn — a safe
                        // over-approximation).
                        let mut j = body.0;
                        scan_scope(file, file_idx, hot_lines, &mut j, body.1, qual, out);
                        *i = close;
                    }
                    None => {
                        // Trait method declaration `fn f(...);`.
                        out.push(FnItem {
                            file: file_idx,
                            name: fn_name,
                            qual: qual.map(str::to_owned),
                            line: fn_line,
                            is_pub: saw_pub,
                            body: (sig.1, sig.1),
                            sig,
                            calls: Vec::new(),
                            spawns: false,
                            hot: false,
                            in_test: file.in_test_code(fn_line),
                        });
                        *i = sig.1;
                    }
                }
                saw_pub = false;
            }
            Tok::Ident(name) if name == "impl" || name == "trait" => {
                let (self_type, body_open) = scan_impl_header(code, *i + 1, end);
                match body_open {
                    Some(open) => {
                        let close = match_close(code, open, end, '{', '}');
                        let mut j = open + 1;
                        scan_scope(
                            file,
                            file_idx,
                            hot_lines,
                            &mut j,
                            close.saturating_sub(1).max(open + 1),
                            self_type.as_deref(),
                            out,
                        );
                        *i = close;
                    }
                    None => *i += 1,
                }
                saw_pub = false;
            }
            Tok::Ident(name) if name == "mod" => {
                // `mod x { … }` — recurse with no qualifier; `mod x;`
                // is skipped by the `;` arm below.
                *i += 1;
                saw_pub = false;
            }
            Tok::Punct('#') if code.get(*i + 1).map(|t| &t.tok) == Some(&Tok::Punct('[')) => {
                *i = match_close(code, *i + 1, end, '[', ']');
            }
            Tok::Punct('{') => {
                // Some other braced item (struct, enum, const body,
                // mod body). Recurse — it may contain fns — keeping
                // the current qualifier out of it.
                let close = match_close(code, *i, end, '{', '}');
                let mut j = *i + 1;
                scan_scope(
                    file,
                    file_idx,
                    hot_lines,
                    &mut j,
                    close.saturating_sub(1).max(*i + 1),
                    None,
                    out,
                );
                *i = close;
                saw_pub = false;
            }
            Tok::Punct(';') => {
                saw_pub = false;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// From just past the fn name, find the parameter-list range and the
/// body's opening `{` (or `None` for a semicolon-terminated
/// declaration). Handles generics (`<` depth with `->` skipped) and
/// `where` clauses.
fn scan_signature(code: &[Token], start: usize, end: usize) -> ((usize, usize), Option<usize>) {
    let mut j = start;
    // Optional generic parameter list before the parens.
    let mut angle = 0i32;
    let mut sig = (start, start);
    while j < end {
        match &code[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => {
                // `->` inside a generic default (`F = fn() -> u32`).
                if j > 0 && code[j - 1].tok == Tok::Punct('-') {
                    j += 1;
                    continue;
                }
                angle -= 1;
            }
            Tok::Punct('(') if angle <= 0 => {
                let close = match_close(code, j, end, '(', ')');
                sig = (j + 1, close.saturating_sub(1).max(j + 1));
                j = close;
                break;
            }
            Tok::Punct('{') | Tok::Punct(';') if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    // Return type / where clause up to `{` or `;`.
    while j < end {
        match &code[j].tok {
            Tok::Punct('{') => return (sig, Some(j)),
            Tok::Punct(';') => return (sig, None),
            _ => j += 1,
        }
    }
    (sig, None)
}

/// Parse an `impl`/`trait` header from just past the keyword: returns
/// the self-type name (last plain ident at angle-depth 0 before the
/// body, preferring the segment after `for`) and the body's `{`.
fn scan_impl_header(code: &[Token], start: usize, end: usize) -> (Option<String>, Option<usize>) {
    let mut j = start;
    let mut angle = 0i32;
    let mut candidate: Option<String> = None;
    let mut in_where = false;
    while j < end {
        match &code[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => {
                if j > 0 && code[j - 1].tok == Tok::Punct('-') {
                    j += 1;
                    continue;
                }
                angle -= 1;
            }
            Tok::Ident(name) if name == "where" && angle <= 0 => in_where = true,
            Tok::Ident(name) if name == "for" && angle <= 0 => candidate = None,
            Tok::Ident(name) if angle <= 0 && !in_where && !is_keyword(name) => {
                candidate = Some(name.clone());
            }
            Tok::Punct('{') if angle <= 0 => return (candidate, Some(j)),
            Tok::Punct(';') if angle <= 0 => return (candidate, None),
            _ => {}
        }
        j += 1;
    }
    (candidate, None)
}

/// Index of the token *after* the group opened at `open` (which must
/// hold the opening delimiter); saturates at `end`.
pub(crate) fn match_close(code: &[Token], open: usize, end: usize, lo: char, hi: char) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        if code[j].tok == Tok::Punct(lo) {
            depth += 1;
        } else if code[j].tok == Tok::Punct(hi) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

/// Collect call sites (and the `spawn` flag) inside `[lo, hi)`.
fn extract_calls(code: &[Token], lo: usize, hi: usize) -> (Vec<Call>, bool) {
    let mut calls = Vec::new();
    let mut spawns = false;
    for j in lo..hi {
        let Tok::Ident(name) = &code[j].tok else {
            continue;
        };
        if name == "spawn" {
            spawns = true;
        }
        if is_keyword(name) {
            continue;
        }
        // Definition, not a call.
        if j > lo && code[j - 1].tok == Tok::Ident("fn".into()) {
            continue;
        }
        // `name(` — possibly with a turbofish `name::<T>(` between.
        let mut k = j + 1;
        if code.get(k).map(|t| &t.tok) == Some(&Tok::Punct(':'))
            && code.get(k + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
            && code.get(k + 2).map(|t| &t.tok) == Some(&Tok::Punct('<'))
        {
            k = skip_angle_group(code, k + 2, hi);
        }
        // A macro invocation `name!(` never matches here: the `!`
        // sits where the `(` is expected.
        if code.get(k).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
            continue;
        }
        let qual =
            if j >= 3 && code[j - 1].tok == Tok::Punct(':') && code[j - 2].tok == Tok::Punct(':') {
                match &code[j - 3].tok {
                    Tok::Ident(q) if !is_keyword(q) => Some(q.clone()),
                    _ => None,
                }
            } else {
                None
            };
        calls.push(Call {
            qual,
            name: name.clone(),
            line: code[j].line,
        });
    }
    (calls, spawns)
}

/// From an opening `<` at `open`, index just past its matching `>`
/// (with `->` pairs ignored); saturates at `end`.
pub(crate) fn skip_angle_group(code: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        match &code[j].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                if j > 0 && code[j - 1].tok == Tok::Punct('-') {
                    j += 1;
                    continue;
                }
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_items(0, &SourceFile::parse("src/x.rs", src))
    }

    #[test]
    fn free_and_impl_fns_with_quals() {
        let src = "pub fn free() {}\n\
                   struct S;\n\
                   impl S {\n    pub fn method(&self) {}\n    fn private(&self) {}\n}\n\
                   impl Clone for S {\n    fn clone(&self) -> S { S }\n}\n";
        let fns = parse(src);
        let names: Vec<String> = fns.iter().map(FnItem::qual_name).collect();
        assert_eq!(names, ["free", "S::method", "S::private", "S::clone"]);
        assert!(fns[0].is_pub);
        assert!(fns[1].is_pub);
        assert!(!fns[2].is_pub);
    }

    #[test]
    fn generic_impl_and_where_clause() {
        let src = "impl<T: Ord> Stack<T> where T: Clone {\n    fn pop(&mut self) {}\n}\n";
        let fns = parse(src);
        assert_eq!(fns[0].qual_name(), "Stack::pop");
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let src = "struct H { cb: fn(u32) -> u32 }\nfn real() {}\n";
        let fns = parse(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn calls_plain_qualified_turbofish_not_macros() {
        let src = "fn f() {\n    helper();\n    BinStats::merge(a, b);\n    \
                   parse::<u32>(s);\n    panic!(\"no\");\n    x.method(1);\n}\n";
        let fns = parse(src);
        let calls: Vec<(Option<&str>, &str)> = fns[0]
            .calls
            .iter()
            .map(|c| (c.qual.as_deref(), c.name.as_str()))
            .collect();
        assert!(calls.contains(&(None, "helper")));
        assert!(calls.contains(&(Some("BinStats"), "merge")));
        assert!(calls.contains(&(None, "parse")));
        assert!(calls.contains(&(None, "method")));
        assert!(!calls.iter().any(|(_, n)| *n == "panic"));
    }

    #[test]
    fn generic_fn_signature_with_arrow_in_bounds() {
        let src = "fn time<T, F: FnOnce() -> T>(f: F) -> T { f() }\nfn after() {}\n";
        let fns = parse(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "time");
        assert_eq!(fns[1].name, "after");
        assert!(fns[0].calls.iter().any(|c| c.name == "f"));
    }

    #[test]
    fn spawn_and_hot_flags() {
        let src = "// lint:hot\nfn worker() {\n    std::thread::spawn(|| {});\n}\n\
                   fn cold() {}\n";
        let fns = parse(src);
        assert!(fns[0].spawns);
        assert!(fns[0].hot);
        assert!(!fns[1].spawns);
        assert!(!fns[1].hot);
    }

    #[test]
    fn hot_tag_reaches_two_lines_down_only() {
        let src = "// lint:hot\n#[inline]\nfn tagged() {}\n\n\nfn far() {}\n";
        let fns = parse(src);
        assert!(fns[0].hot, "tag two lines above still applies");
        assert!(!fns[1].hot);
    }

    #[test]
    fn test_fns_flagged() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n";
        let fns = parse(src);
        assert!(!fns[0].in_test);
        assert!(fns[1].in_test);
    }

    #[test]
    fn trait_method_declarations_have_empty_bodies() {
        let src =
            "trait T {\n    fn required(&self);\n    fn provided(&self) { self.required() }\n}\n";
        let fns = parse(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].qual_name(), "T::required");
        assert_eq!(fns[0].body.0, fns[0].body.1);
        assert!(fns[1].calls.iter().any(|c| c.name == "required"));
    }

    #[test]
    fn nested_fn_calls_attributed_to_both() {
        let src = "fn outer() {\n    fn inner() { leaf(); }\n    inner();\n}\n";
        let fns = parse(src);
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
        assert!(inner.calls.iter().any(|c| c.name == "leaf"));
    }

    #[test]
    fn sig_range_covers_params() {
        let src = "fn f(m: &HashMap<u32, u32>, n: usize) {}\n";
        let fns = parse(src);
        let f = &fns[0];
        let file = SourceFile::parse("src/x.rs", src);
        let has_hash = file.code[f.sig.0..f.sig.1]
            .iter()
            .any(|t| t.tok == Tok::Ident("HashMap".into()));
        assert!(has_hash);
    }
}
