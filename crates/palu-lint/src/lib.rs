//! palu-lint: the workspace's static-analysis gate.
//!
//! A zero-dependency lint engine enforcing the hermeticity and
//! determinism policies this reproduction depends on (see DESIGN.md,
//! "Hermeticity & the lint gate"):
//!
//! * **R1 hermetic-deps** — manifests may only reference
//!   workspace-path crates; nothing resolves to a registry or git.
//! * **R2 no-nondeterminism** — core library code cannot read ambient
//!   entropy or wall-clock time, cannot iterate hash containers in
//!   result paths, and cannot seed its own RNG.
//! * **R3 float-hygiene** — no exact comparison against non-sentinel
//!   float literals; `.sqrt()`/`.ln()` in fit paths carry a visible
//!   domain guard.
//! * **R4 no-unwrap-in-lib** — unwrap/expect in non-test library code
//!   is budgeted by a shrink-only baseline.
//! * **R5 pub-doc** — public items need doc comments.
//! * **R6 journal-atomic** — durable writes in core crates go through
//!   `palu-traffic`'s journal and its atomic tmp-file+rename
//!   protocol; no direct file-write APIs elsewhere.
//! * **R7 budget-accounted** — capture-path buffers size their
//!   capacity through the resource-budget accountant
//!   (`admitted_capacity`); no raw `with_capacity`/`reserve` on
//!   window-geometry-derived sizes.
//!
//! Built on a hand-rolled comment/string-aware Rust lexer
//! ([`lexer`]) and a TOML-subset manifest parser ([`manifest`]) — no
//! `syn`, no `toml`, because the linter enforces the no-external-deps
//! rule and must not itself violate it. Findings can be suppressed
//! line-by-line with `// lint:allow(RULE)` pragmas (see
//! [`source::SourceFile::allowed`]).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod baseline;
pub mod diag;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod source;

use diag::{Diagnostic, Severity};
use graph::ItemGraph;
use manifest::{Manifest, Value};
use rules::{
    budget_accounted, float_hygiene, hermetic_deps, hot_loop_alloc, journal_atomic,
    merge_determinism, nondeterminism, panic_reach, pub_doc, unwrap_budget,
};
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The crates whose library code carries the model's numerical
/// results — R2–R5 apply to their `src/` trees, and R1 restricts
/// their dependency targets to workspace members.
pub const CORE_CRATES: &[&str] = &[
    "palu-stats",
    "palu-sparse",
    "palu-graph",
    "palu-traffic",
    "palu",
];

/// Workspace-relative location of the R4 baseline.
pub const R4_BASELINE: &str = "lint/unwrap_baseline.txt";

/// Workspace-relative location of the R8 baseline.
pub use rules::panic_reach::R8_BASELINE;

/// Workspace-relative location of the R9 allowlist.
pub use rules::merge_determinism::R9_ALLOWLIST;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding the root `Cargo.toml`).
    pub root: PathBuf,
}

impl LintConfig {
    /// Configuration rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LintConfig { root: root.into() }
    }
}

/// Run every rule. Returns all diagnostics (the gate fails on any
/// [`Severity::Error`]); `Err` means the engine itself could not run
/// (unreadable tree, malformed manifest).
pub fn run_all(cfg: &LintConfig) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    let members = workspace_members(&cfg.root)?;

    // R1 over the root and every crate manifest.
    let root_manifest = read_manifest(&cfg.root, Path::new("Cargo.toml"))?;
    hermetic_deps::check_workspace_root(
        Path::new("Cargo.toml"),
        &root_manifest,
        &members,
        &mut diags,
    );
    for (name, dir) in crate_dirs(&cfg.root)? {
        let rel = dir.join("Cargo.toml");
        let manifest = read_manifest(&cfg.root, &rel)?;
        let is_core = CORE_CRATES.contains(&name.as_str());
        hermetic_deps::check_manifest(&rel, &manifest, &members, is_core, &mut diags);
    }

    // R2/R3/R5 per file and R4 counts over the core crates' src trees.
    let files = core_source_files(cfg)?;
    let mut r4_counts: BTreeMap<String, u32> = BTreeMap::new();
    for file in &files {
        nondeterminism::check(file, &mut diags);
        float_hygiene::check(file, &mut diags);
        pub_doc::check(file, &mut diags);
        journal_atomic::check(file, &mut diags);
        budget_accounted::check(file, &mut diags);
        r4_counts.insert(
            file.path.to_string_lossy().into_owned(),
            unwrap_budget::count(file),
        );
    }

    // R4 against the checked-in baseline.
    let baseline_path = cfg.root.join(R4_BASELINE);
    match std::fs::read_to_string(&baseline_path) {
        Ok(src) => {
            let baseline = unwrap_budget::parse_baseline(&src)?;
            unwrap_budget::compare(&r4_counts, &baseline, R4_BASELINE, &mut diags);
        }
        Err(_) => diags.push(Diagnostic::error(
            R4_BASELINE,
            0,
            "R4",
            "baseline file missing; run `cargo run -p palu-lint -- --write-baseline`",
        )),
    }

    // Phase 2: cross-function rules over the item graph (R8–R10).
    let graph = ItemGraph::build(&files);

    // R8 against its shrink-only baseline. Every scanned file gets an
    // entry (zero included) so stale baseline rows are caught.
    let r8_counts = measure_r8(&files, &graph);
    let r8_path = cfg.root.join(R8_BASELINE);
    match std::fs::read_to_string(&r8_path) {
        Ok(src) => {
            let baseline = baseline::parse(&src)?;
            panic_reach::compare(&r8_counts, &baseline, R8_BASELINE, &mut diags);
        }
        Err(_) => diags.push(Diagnostic::error(
            R8_BASELINE,
            0,
            "R8",
            "baseline file missing; run `cargo run -p palu-lint -- --write-baseline`",
        )),
    }

    // R9 with its allowlist (missing file = empty allowlist; a stale
    // entry is an error so the list cannot rot).
    let allow = match std::fs::read_to_string(cfg.root.join(R9_ALLOWLIST)) {
        Ok(src) => merge_determinism::parse_allowlist(&src)?,
        Err(_) => Vec::new(),
    };
    for (path, name) in merge_determinism::unmatched_entries(&files, &graph, &allow) {
        diags.push(Diagnostic::error(
            R9_ALLOWLIST,
            0,
            "R9",
            format!("allowlist entry `{path} {name}` matches no fn; remove it"),
        ));
    }
    merge_determinism::check(&files, &graph, &allow, &mut diags);

    // R10 over `// lint:hot`-tagged fns.
    hot_loop_alloc::check(&files, &graph, &mut diags);

    Ok(diags)
}

/// List every reachable R8 panic site (for `palu-lint --r8-sites`,
/// the developer view for shrinking the baseline).
pub fn r8_sites(cfg: &LintConfig) -> Result<Vec<rules::panic_reach::PanicSite>, String> {
    let files = core_source_files(cfg)?;
    let graph = ItemGraph::build(&files);
    let roots = panic_reach::default_roots(&files, &graph);
    Ok(panic_reach::sites(&files, &graph, &roots))
}

/// R8 per-file reachable-panic counts, with explicit zeros for every
/// scanned file.
fn measure_r8(files: &[SourceFile], graph: &ItemGraph) -> BTreeMap<String, u32> {
    let mut counts: BTreeMap<String, u32> = files
        .iter()
        .map(|f| (f.path.to_string_lossy().replace('\\', "/"), 0u32))
        .collect();
    let roots = panic_reach::default_roots(files, graph);
    for site in panic_reach::sites(files, graph, &roots) {
        *counts.entry(site.file).or_insert(0) += 1;
    }
    counts
}

/// Measure current R4 and R8 counts and (re)write both baseline
/// files. Returns the written paths.
pub fn write_baselines(cfg: &LintConfig) -> Result<Vec<PathBuf>, String> {
    let files = core_source_files(cfg)?;
    let mut r4_counts: BTreeMap<String, u32> = BTreeMap::new();
    for file in &files {
        r4_counts.insert(
            file.path.to_string_lossy().into_owned(),
            unwrap_budget::count(file),
        );
    }
    let graph = ItemGraph::build(&files);
    let r8_counts = measure_r8(&files, &graph);

    let mut written = Vec::new();
    for (rel, content) in [
        (R4_BASELINE, unwrap_budget::render_baseline(&r4_counts)),
        (R8_BASELINE, panic_reach::render_baseline(&r8_counts)),
    ] {
        let path = cfg.root.join(rel);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        std::fs::write(&path, content).map_err(|e| format!("write {}: {e}", path.display()))?;
        written.push(path);
    }
    Ok(written)
}

/// True if `diags` contains any gate-failing finding.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// All lexed+annotated `.rs` files under the core crates' `src/`
/// trees, in sorted path order.
fn core_source_files(cfg: &LintConfig) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    for name in CORE_CRATES {
        let src_dir = cfg.root.join("crates").join(name).join("src");
        collect_rs_files(&src_dir, &mut paths)?;
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(&cfg.root).unwrap_or(&path).to_path_buf();
        files.push(SourceFile::parse(rel, &src));
    }
    Ok(files)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `(package name, workspace-relative dir)` for each `crates/*` crate.
fn crate_dirs(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let crates = root.join("crates");
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("read dir {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let dir = entry.path();
        if !dir.join("Cargo.toml").exists() {
            continue;
        }
        let rel = dir.strip_prefix(root).unwrap_or(&dir).to_path_buf();
        let manifest = read_manifest(root, &rel.join("Cargo.toml"))?;
        let name = match manifest.get(&["package", "name"]) {
            Some(Value::Str(s)) => s.clone(),
            _ => dir
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_default(),
        };
        out.push((name, rel));
    }
    out.sort();
    Ok(out)
}

/// Workspace member package names (for R1's member check).
fn workspace_members(root: &Path) -> Result<Vec<String>, String> {
    Ok(crate_dirs(root)?.into_iter().map(|(n, _)| n).collect())
}

fn read_manifest(root: &Path, rel: &Path) -> Result<Manifest, String> {
    let path = root.join(rel);
    let src =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Manifest::parse(&src).map_err(|e| format!("{}: {e}", rel.display()))
}
