//! A hand-rolled Rust lexer: just enough tokenization for linting.
//!
//! The goal is not a full grammar — it is to be *comment- and
//! string-aware*, so that rules never fire on text inside a string
//! literal or a comment, and to classify the tokens rules care about:
//! identifiers, numeric literals (float vs integer), punctuation, and
//! doc comments. Handles the lexical corners that break naive
//! scanners: nested block comments, raw strings with `#` fences, byte
//! and C strings, char literals vs lifetimes, and floats vs ranges
//! (`1.0` vs `1..10`).

/// Token classification. String/char contents are discarded — rules
/// only need to know "a literal was here". Comment text is kept so the
/// engine can find `lint:allow(...)` pragmas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal with its raw text and a float/integer flag.
    Num {
        /// Raw literal text, suffix included (`1.0f64`).
        text: String,
        /// True for floating-point literals.
        is_float: bool,
    },
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character or byte-character literal.
    CharLit,
    /// A lifetime such as `'a` (or the label form `'outer:`).
    Lifetime,
    /// Single punctuation character.
    Punct(char),
    /// Doc comment: `///` / `/** */` (outer) or `//!` / `/*! */` (inner).
    DocComment {
        /// True for `//!` / `/*! */` inner docs.
        inner: bool,
    },
    /// Ordinary comment; text kept for pragma scanning.
    Comment(String),
}

/// A token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

/// Tokenize `src`. Never fails: unrecognized bytes become `Punct`,
/// unterminated literals consume to end-of-file. Robustness matters
/// more than strictness — the linter must not crash on weird-but-valid
/// code, and invalid code is rustc's problem, not ours.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, line: u32, tok: Tok) {
        self.out.push(Token { line, tok });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_body(line);
                }
                'r' if matches!(self.peek(1), Some('"' | '#')) && self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string_body(line);
                }
                'b' | 'c' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.bump();
                    self.string_body(line);
                }
                'c' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string_body(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.bump();
                    self.char_body(line);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string_body(line);
                }
                '\'' => self.quote(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                _ => {
                    self.bump();
                    self.push(line, Tok::Punct(c));
                }
            }
        }
        self.out
    }

    /// True if position `at` starts `#*"` — the fence of a raw string
    /// (the caller has already matched the `r` / `br` prefix).
    fn raw_string_ahead(&self, at: usize) -> bool {
        let mut i = at;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        // Classify: `///` doc, `//!` inner doc, `//` plain. `////…` is
        // plain per the reference.
        let doc = self.peek(2) == Some('/') && self.peek(3) != Some('/');
        let inner = self.peek(2) == Some('!');
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if doc || inner {
            self.push(line, Tok::DocComment { inner });
        } else {
            self.push(line, Tok::Comment(text));
        }
    }

    fn block_comment(&mut self, line: u32) {
        // `/** */` doc, `/*! */` inner doc; `/**/` and `/***…` plain.
        let doc = self.peek(2) == Some('*') && !matches!(self.peek(3), Some('*' | '/'));
        let inner = self.peek(2) == Some('!');
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        if doc || inner {
            self.push(line, Tok::DocComment { inner });
        } else {
            self.push(line, Tok::Comment(text));
        }
    }

    /// Body of a `"…"` string; the opening quote (and any `b`/`c`
    /// prefix) is already consumed.
    fn string_body(&mut self, line: u32) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(line, Tok::Str);
    }

    /// Body of a raw string: consumes `#…#"…"#…#` (the `r` prefix is
    /// already consumed). No escapes; closes on `"` followed by the
    /// same number of `#` as the opener.
    fn raw_string_body(&mut self, line: u32) {
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..fence {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..fence {
                    self.bump();
                }
                break;
            }
        }
        self.push(line, Tok::Str);
    }

    /// Body of a char literal after the opening `'` was consumed.
    fn char_body(&mut self, line: u32) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(line, Tok::CharLit);
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime): a quote starts
    /// a lifetime iff it is followed by an identifier char that is NOT
    /// then closed by another quote. `'\\n'` and `' '` are chars.
    fn quote(&mut self, line: u32) {
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_lifetime = match c1 {
            Some(c) if c == '_' || c.is_alphabetic() => c2 != Some('\''),
            _ => false,
        };
        self.bump(); // the quote
        if is_lifetime {
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(line, Tok::Lifetime);
        } else {
            self.char_body(line);
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut is_float = false;
        // Radix prefixes never contain a float.
        let radix = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        text.push(self.bump().unwrap());
        if radix {
            text.push(self.bump().unwrap());
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(line, Tok::Num { text, is_float });
            return;
        }
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_digit() || c == '_' => {
                    text.push(c);
                    self.bump();
                }
                // A dot continues the number only for `1.5`-style
                // fractions: exactly one dot, followed by a digit.
                // `1..10` (range) and `1.max(2)` (method call) leave
                // the dot as punctuation.
                Some('.') if !is_float && self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                    is_float = true;
                    text.push('.');
                    self.bump();
                }
                // Exponent: `1e9`, `2.5E-3`.
                Some('e' | 'E')
                    if self.peek(1).is_some_and(|c| c.is_ascii_digit())
                        || (matches!(self.peek(1), Some('+' | '-'))
                            && self.peek(2).is_some_and(|c| c.is_ascii_digit())) =>
                {
                    is_float = true;
                    text.push(self.bump().unwrap());
                    if matches!(self.peek(0), Some('+' | '-')) {
                        text.push(self.bump().unwrap());
                    }
                }
                // Type suffix: `1.0f64`, `3usize`.
                Some(c) if c == '_' || c.is_alphabetic() => {
                    let mut suffix = String::new();
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            suffix.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if suffix.starts_with('f') {
                        is_float = true;
                    }
                    text.push_str(&suffix);
                    break;
                }
                _ => break,
            }
        }
        self.push(line, Tok::Num { text, is_float });
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, Tok::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // Nothing inside a string may leak out as a token.
        assert_eq!(
            idents(r#"let s = "HashMap == unwrap // not a comment";"#),
            ["let", "s"]
        );
        assert_eq!(kinds(r#""a\"b""#), [Tok::Str]);
    }

    #[test]
    fn raw_strings_with_fences() {
        assert_eq!(kinds(r##"r"plain""##), [Tok::Str]);
        assert_eq!(kinds("r#\"has \" quote\"#"), [Tok::Str]);
        assert_eq!(kinds("r##\"fence \"# inside\"##"), [Tok::Str]);
        // Identifier starting with r is not a raw string, and a raw
        // identifier `r#type` lexes as tokens, not as a string.
        assert_eq!(idents("rng"), ["rng"]);
        assert_eq!(idents("r#type"), ["r", "type"]);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(kinds(r#"b"bytes""#), [Tok::Str]);
        assert_eq!(kinds(r#"c"cstr""#), [Tok::Str]);
        assert_eq!(kinds("br#\"raw bytes\"#"), [Tok::Str]);
        assert_eq!(kinds(r"b'x'"), [Tok::CharLit]);
    }

    #[test]
    fn comments_line_and_block() {
        assert_eq!(
            kinds("x // trailing\ny"),
            [
                Tok::Ident("x".into()),
                Tok::Comment("// trailing".into()),
                Tok::Ident("y".into())
            ]
        );
        // Nested block comments close correctly.
        assert_eq!(idents("a /* outer /* inner */ still */ b"), ["a", "b"]);
        // An unterminated comment consumes to EOF without panicking.
        assert_eq!(idents("a /* open"), ["a"]);
    }

    #[test]
    fn doc_comments_classified() {
        assert_eq!(kinds("/// outer"), [Tok::DocComment { inner: false }]);
        assert_eq!(kinds("//! inner"), [Tok::DocComment { inner: true }]);
        assert_eq!(
            kinds("/** block doc */"),
            [Tok::DocComment { inner: false }]
        );
        // Four slashes is a plain comment, as is /**/.
        assert!(matches!(kinds("//// nope")[0], Tok::Comment(_)));
        assert!(matches!(kinds("/**/")[0], Tok::Comment(_)));
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'"), [Tok::CharLit]);
        assert_eq!(kinds(r"'\n'"), [Tok::CharLit]);
        assert_eq!(kinds(r"'\''"), [Tok::CharLit]);
        assert_eq!(
            kinds("&'a str"),
            [Tok::Punct('&'), Tok::Lifetime, Tok::Ident("str".into())]
        );
        assert_eq!(kinds("'outer: loop")[0], Tok::Lifetime);
    }

    #[test]
    fn numbers_float_vs_integer() {
        let float = |src: &str| match &kinds(src)[0] {
            Tok::Num { is_float, .. } => *is_float,
            other => panic!("{src} lexed as {other:?}"),
        };
        assert!(float("1.5"));
        assert!(float("1e9"));
        assert!(float("2.5E-3"));
        assert!(float("1f64"));
        assert!(!float("42"));
        assert!(!float("1_000_000u64"));
        assert!(!float("0xFF"));
        assert!(!float("0b1010"));
    }

    #[test]
    fn ranges_and_method_calls_on_literals() {
        // `1..10` is Num, Punct('.'), Punct('.'), Num.
        assert_eq!(
            kinds("1..10"),
            [
                Tok::Num {
                    text: "1".into(),
                    is_float: false
                },
                Tok::Punct('.'),
                Tok::Punct('.'),
                Tok::Num {
                    text: "10".into(),
                    is_float: false
                },
            ]
        );
        // `1.0f64.sqrt()`: float literal, then a method call.
        let k = kinds("1.0f64.sqrt()");
        assert_eq!(
            k[0],
            Tok::Num {
                text: "1.0f64".into(),
                is_float: true
            }
        );
        assert_eq!(k[1], Tok::Punct('.'));
        assert_eq!(k[2], Tok::Ident("sqrt".into()));
    }

    #[test]
    fn raw_string_partial_fences_do_not_terminate() {
        // A `"#` inside an `r##"…"##` string is content, not a close.
        assert_eq!(kinds("r##\"a\"#b\"##"), [Tok::Str]);
        assert_eq!(idents("r##\"a\"#b\"## x"), ["x"]);
        // Empty raw strings at each fence depth.
        assert_eq!(kinds("r\"\""), [Tok::Str]);
        assert_eq!(kinds("r#\"\"#"), [Tok::Str]);
        // An unterminated raw string consumes to EOF without panicking.
        assert_eq!(idents("a r#\"open"), ["a"]);
    }

    #[test]
    fn c_raw_strings() {
        assert_eq!(kinds("cr#\"c raw\"#"), [Tok::Str]);
        assert_eq!(idents("cr#\"HashMap inside\"# after"), ["after"]);
        // `cr` not followed by a raw-string opener stays an identifier.
        assert_eq!(idents("cr crx"), ["cr", "crx"]);
    }

    #[test]
    fn deeply_nested_block_comments() {
        assert_eq!(idents("a /* 1 /* 2 /* 3 */ 2 */ 1 */ b"), ["a", "b"]);
        // Unbalanced nesting consumes to EOF.
        assert_eq!(idents("a /* /* never closed */"), ["a"]);
    }

    #[test]
    fn line_numbers_across_multiline_raw_strings() {
        let toks = lex("a\nr#\"l2\nl3\nl4\"#\nb");
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.tok == Tok::Ident(name.into()))
                .unwrap()
                .line
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 5);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let toks = lex("a\n\"multi\nline\"\nb /* c\nd */ e");
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.tok == Tok::Ident(name.into()))
                .unwrap()
                .line
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("e"), 5);
    }
}
