//! R6 — journal-atomic.
//!
//! The capture journal's crash-equivalence guarantee (DESIGN.md §4f)
//! rests on every durable write going through one protocol: appends
//! are length-prefixed and checksummed, and whole-file rewrites go
//! through temp-file + `rename` so a kill can never leave a
//! half-written segment behind. That protocol lives in
//! `palu-traffic/src/journal.rs` — and only there. Core library code
//! anywhere else must not open files for writing at all: a stray
//! `File::create` / `OpenOptions` / `fs::write` on a capture path is
//! exactly the non-atomic write the journal exists to prevent.
//!
//! Non-core crates (the CLI, benches) write reports and plots freely;
//! this rule only runs over the core crates' `src/` trees, like
//! R2–R5. Test code is exempt, and deliberate exceptions can carry a
//! `lint:allow(R6)` pragma with a justification.

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::SourceFile;

/// Qualified write APIs (`base::method`) that bypass the journal's
/// atomic protocol.
const BANNED_PATHS: &[(&str, &str)] = &[
    ("File", "create"),
    ("File", "options"),
    ("fs", "write"),
    ("fs", "rename"),
];

/// Bare identifiers that always mean "opening a file for writing".
const BANNED_IDENTS: &[&str] = &["OpenOptions"];

/// Run R6 over one core-crate source file.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if file.path.file_name().is_some_and(|f| f == "journal.rs") {
        return;
    }
    for (i, t) in file.code.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if file.in_test_code(t.line) || file.allowed("R6", t.line) {
            continue;
        }
        if BANNED_IDENTS.contains(&name.as_str()) {
            diags.push(diag(file, t.line, name));
            continue;
        }
        // `base :: method` — three tokens back from the method name.
        let qualified = BANNED_PATHS.iter().any(|(base, method)| {
            method == name
                && i >= 3
                && matches!(&file.code[i - 3].tok, Tok::Ident(b) if b == base)
                && matches!(file.code[i - 2].tok, Tok::Punct(':'))
                && matches!(file.code[i - 1].tok, Tok::Punct(':'))
        });
        if qualified {
            let base = match &file.code[i - 3].tok {
                Tok::Ident(b) => b.clone(),
                _ => unreachable!("matched Ident above"),
            };
            diags.push(diag(file, t.line, &format!("{base}::{name}")));
        }
    }
}

fn diag(file: &SourceFile, line: u32, what: &str) -> Diagnostic {
    Diagnostic::error(
        &file.path,
        line,
        "R6",
        format!(
            "`{what}` writes a file without the journal's atomic tmp-file+rename \
             protocol; durable state in core crates goes through \
             palu_traffic::journal (or annotate `// lint:allow(R6)` for \
             non-durable output)"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut diags = Vec::new();
        check(&f, &mut diags);
        diags
    }

    #[test]
    fn direct_file_create_fails() {
        let diags = run(
            "crates/palu-traffic/src/pipeline.rs",
            "fn f() { let _ = std::fs::File::create(\"x.journal\"); }\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "R6");
        assert!(diags[0].message.contains("File::create"), "{diags:?}");
    }

    #[test]
    fn fs_write_and_rename_and_openoptions_fail() {
        assert_eq!(
            run(
                "src/a.rs",
                "fn f() { std::fs::write(\"p\", b\"x\").unwrap(); }"
            )
            .len(),
            1
        );
        assert_eq!(
            run(
                "src/a.rs",
                "fn f() { std::fs::rename(\"a\", \"b\").unwrap(); }"
            )
            .len(),
            1
        );
        assert_eq!(
            run(
                "src/a.rs",
                "fn f() { let o = std::fs::OpenOptions::new(); }"
            )
            .len(),
            1
        );
    }

    #[test]
    fn journal_module_is_the_sanctioned_home() {
        let diags = run(
            "crates/palu-traffic/src/journal.rs",
            "fn f() { let _ = std::fs::File::create(\"x\"); std::fs::rename(\"a\", \"b\").unwrap(); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_code_and_pragmas_are_exempt() {
        let diags = run(
            "src/a.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(\"p\", b\"x\").unwrap(); }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        let diags = run(
            "src/a.rs",
            "// plot output, not durable state — lint:allow(R6)\nfn f() { std::fs::write(\"p\", b\"x\").unwrap(); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unrelated_create_and_write_idents_pass() {
        let diags = run(
            "src/a.rs",
            "fn f(w: &mut impl std::io::Write) { create(); buf.write(b\"x\"); map.rename(); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mentions_in_strings_and_comments_ignored() {
        let diags = run(
            "src/a.rs",
            "// File::create would be wrong here\nfn f() -> &'static str { \"fs::write OpenOptions\" }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
