//! R7 — budget-accounted.
//!
//! The resource-budget governor (DESIGN.md §4g) can only bound a
//! capture's footprint if the capture path's buffers size themselves
//! through it. A raw `Vec::with_capacity(n_v)` (or `reserve`) on a
//! window-geometry-derived size reserves unaccounted memory the
//! admission estimate never saw — exactly the allocation the governor
//! exists to police. On the scoped capture-path files, capacity hints
//! must flow through the sanctioned clamp
//! (`palu_sparse::admitted_capacity`, re-exported as
//! `palu_traffic::budget::admitted_capacity`) or through the checked
//! sparse constructors that validate sizes first.
//!
//! The rule is deliberately narrow: it runs only over the files that
//! allocate proportionally to window geometry, not the whole
//! workspace. `budget.rs` itself is the accountant and is exempt by
//! name; constant-size or already-validated hints carry a
//! `lint:allow(R7)` pragma with a justification; test code is exempt
//! like every other source rule.

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::SourceFile;

/// Capacity APIs that reserve memory from a caller-supplied size.
const BANNED_IDENTS: &[&str] = &["with_capacity", "reserve", "reserve_exact"];

/// The capture-path files whose allocations scale with window
/// geometry — the only place R7 looks.
const SCOPED_FILES: &[&str] = &[
    "palu-traffic/src/pipeline.rs",
    "palu-traffic/src/window.rs",
    "palu-traffic/src/stream.rs",
    "palu-traffic/src/packets.rs",
    "palu-traffic/src/observatory.rs",
    "palu-traffic/src/journal.rs",
    "palu-sparse/src/coo.rs",
    "palu-sparse/src/parallel.rs",
];

/// How many tokens past the opening `(` the sanctioned
/// `admitted_capacity` marker may appear (covers a qualified path
/// like `crate::budget::admitted_capacity(...)`).
const MARKER_WINDOW: usize = 8;

/// Run R7 over one core-crate source file.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let path = file.path.to_string_lossy().replace('\\', "/");
    if !SCOPED_FILES.iter().any(|s| path.ends_with(s)) {
        return;
    }
    for (i, t) in file.code.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if !BANNED_IDENTS.contains(&name.as_str()) {
            continue;
        }
        if file.in_test_code(t.line) || file.allowed("R7", t.line) {
            continue;
        }
        // A definition (`fn with_capacity(...)`) is the sanctioned
        // constructor itself, not a call site.
        if i >= 1 && matches!(&file.code[i - 1].tok, Tok::Ident(k) if k == "fn") {
            continue;
        }
        // Only calls: the next token must open the argument list.
        if !matches!(file.code.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue;
        }
        // Sanctioned: the size flows through `admitted_capacity(...)`
        // right inside the argument list.
        let sanctioned = file.code[i + 2..]
            .iter()
            .take(MARKER_WINDOW)
            .any(|t| matches!(&t.tok, Tok::Ident(m) if m == "admitted_capacity"));
        if sanctioned {
            continue;
        }
        diags.push(diag(file, t.line, name));
    }
}

fn diag(file: &SourceFile, line: u32, what: &str) -> Diagnostic {
    Diagnostic::error(
        &file.path,
        line,
        "R7",
        format!(
            "`{what}` reserves capacity on a capture path without the budget \
             accountant; size the hint through `admitted_capacity(..)` (or \
             annotate `// lint:allow(R7)` for constant or pre-validated sizes)"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut diags = Vec::new();
        check(&f, &mut diags);
        diags
    }

    #[test]
    fn raw_with_capacity_on_a_capture_path_fails() {
        let diags = run(
            "crates/palu-traffic/src/window.rs",
            "fn f(n_v: usize) { let _ = Vec::<u8>::with_capacity(n_v); }\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "R7");
        assert!(diags[0].message.contains("with_capacity"), "{diags:?}");
        let diags = run(
            "crates/palu-sparse/src/coo.rs",
            "fn f(v: &mut Vec<u8>, n: usize) { v.reserve(n); }\n",
        );
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn admitted_capacity_sizes_are_sanctioned() {
        let diags = run(
            "crates/palu-traffic/src/stream.rs",
            "fn f(n_v: usize) { let _ = Vec::<u8>::with_capacity(admitted_capacity(n_v)); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        let diags = run(
            "crates/palu-traffic/src/packets.rs",
            "fn f(n: usize) { let _ = Vec::<u8>::with_capacity(palu_sparse::admitted_capacity(n)); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn out_of_scope_files_and_the_accountant_are_exempt() {
        let src = "fn f(n: usize) { let _ = Vec::<u8>::with_capacity(n); }\n";
        assert!(run("crates/palu-stats/src/summary.rs", src).is_empty());
        assert!(run("crates/palu-traffic/src/budget.rs", src).is_empty());
        assert!(run("crates/palu-graph/src/census.rs", src).is_empty());
    }

    #[test]
    fn definitions_pragmas_and_test_code_are_exempt() {
        let diags = run(
            "crates/palu-sparse/src/coo.rs",
            "pub fn with_capacity(nnz: usize) -> Self { todo!() }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        let diags = run(
            "crates/palu-traffic/src/journal.rs",
            "// constant frame size. lint:allow(R7)\nfn f() { let _ = Vec::<u8>::with_capacity(64); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        let diags = run(
            "crates/palu-traffic/src/pipeline.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(n: usize) { let _ = Vec::<u8>::with_capacity(n); }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mentions_in_strings_and_comments_ignored() {
        let diags = run(
            "crates/palu-traffic/src/window.rs",
            "// with_capacity would be wrong here\nfn f() -> &'static str { \"reserve\" }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn non_call_uses_pass() {
        let diags = run(
            "crates/palu-traffic/src/window.rs",
            "fn f() { let g = Vec::<u8>::with_capacity; let _ = g; }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
