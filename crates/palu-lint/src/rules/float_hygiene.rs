//! R3 — float-hygiene.
//!
//! Two checks on non-test library code:
//!
//! * **Float equality**: `==` / `!=` with a float-literal operand is
//!   flagged unless the literal is an exact-representable sentinel
//!   (`0.0` or `1.0`) — comparing against those is the established
//!   way to test "unset"/degenerate branches, while `x == 0.3`-style
//!   comparisons are always bugs.
//! * **Domain guards in fit paths**: in the fitting modules, `.sqrt()`
//!   and `.ln()` must have a *visibly guarded* receiver — a guard
//!   method (`abs`, `max`, `exp`, …), a literal, or a line-level
//!   assert/branch. NaN born inside an optimizer propagates to fitted
//!   parameters silently; the guard (or a `lint:allow(R3)` with a
//!   domain argument) keeps the proof obligation next to the call.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, Token};
use crate::source::SourceFile;

/// File names (not paths) that constitute the fit path.
const FIT_FILES: &[&str] = &[
    "zm_fit.rs",
    "estimate.rs",
    "mle.rs",
    "regression.rs",
    "model_select.rs",
    "solve.rs",
    "optimize.rs",
];

/// Receiver-producing calls that guarantee a non-negative (or
/// positive) domain for the following `.sqrt()`/`.ln()`.
const GUARD_FNS: &[&str] = &[
    "abs", "max", "min", "exp", "powi", "powf", "sqrt", "hypot", "mul_add", "clamp", "ln_1p",
    "exp_m1", "recip",
];

/// Sentinel float literals allowed in equality comparisons.
fn is_sentinel(text: &str) -> bool {
    let t = text
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    matches!(t, "0.0" | "1.0" | "0." | "1.")
}

/// Run R3 over one source file.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    float_equality(file, diags);
    if file
        .path
        .file_name()
        .and_then(|f| f.to_str())
        .is_some_and(|f| FIT_FILES.contains(&f))
    {
        domain_guards(file, diags);
    }
}

fn float_equality(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let code = &file.code;
    for i in 0..code.len().saturating_sub(1) {
        let is_eq = code[i].tok == Tok::Punct('=') && code[i + 1].tok == Tok::Punct('=');
        let is_ne = code[i].tok == Tok::Punct('!') && code[i + 1].tok == Tok::Punct('=');
        if !is_eq && !is_ne {
            continue;
        }
        // `a == b`: ensure this is a comparison, not `==` inside `===`
        // (not Rust) or a `x <= y` (the `<` would sit at i, not `=`).
        // Look at the immediate operand tokens on both sides.
        let line = code[i].line;
        if file.in_test_code(line) || file.allowed("R3", line) {
            continue;
        }
        let before = i.checked_sub(1).map(|j| &code[j].tok);
        // Skip a unary minus on the right operand: `x == -0.3`.
        let after_idx = if code.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('-')) {
            i + 3
        } else {
            i + 2
        };
        let after = code.get(after_idx).map(|t| &t.tok);
        for operand in [before, after].into_iter().flatten() {
            if let Tok::Num {
                text,
                is_float: true,
            } = operand
            {
                if !is_sentinel(text) {
                    diags.push(Diagnostic::error(
                        &file.path,
                        line,
                        "R3",
                        format!(
                            "float {} against `{text}`: exact comparison with a \
                             non-sentinel float literal; compare with a tolerance",
                            if is_eq { "==" } else { "!=" }
                        ),
                    ));
                }
            }
        }
    }
}

fn domain_guards(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let code = &file.code;
    for i in 2..code.len() {
        // Pattern: `.` (sqrt|ln) `(` `)`.
        let Tok::Ident(name) = &code[i].tok else {
            continue;
        };
        if name != "sqrt" && name != "ln" {
            continue;
        }
        if code[i - 1].tok != Tok::Punct('.')
            || code.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('('))
            || code.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct(')'))
        {
            continue;
        }
        let line = code[i].line;
        if file.in_test_code(line) || file.allowed("R3", line) {
            continue;
        }
        if receiver_is_guarded(code, i - 2) || line_has_guard(file, line) {
            continue;
        }
        diags.push(Diagnostic::error(
            &file.path,
            line,
            "R3",
            format!(
                "unguarded `.{name}()` in a fit path; guard the domain (e.g. `.max(…)`, \
                 `.abs()`, an assert) or annotate `// lint:allow(R3)` with the domain \
                 argument"
            ),
        ));
    }
}

/// True if the receiver ending at token index `end` is visibly
/// non-negative: a float/int literal, or a call to a guard function
/// (`x.abs()`, `(a - b).powi(2)`, `y.max(1e-12)`).
fn receiver_is_guarded(code: &[Token], end: usize) -> bool {
    match &code[end].tok {
        Tok::Num { .. } => true,
        Tok::Punct(')') => {
            // Match back to the opening paren, then look for
            // `ident (` immediately before — a guard method call —
            // or treat a bare parenthesized expression as unguarded.
            let mut depth = 1usize;
            let mut j = end;
            while j > 0 && depth > 0 {
                j -= 1;
                match &code[j].tok {
                    Tok::Punct(')') => depth += 1,
                    Tok::Punct('(') => depth -= 1,
                    _ => {}
                }
            }
            if j == 0 {
                return false;
            }
            match &code[j - 1].tok {
                Tok::Ident(f) => GUARD_FNS.contains(&f.as_str()),
                _ => false,
            }
        }
        _ => false,
    }
}

/// Same-line guard context: an assert or an explicit positivity
/// branch on the line keeps the domain proof visible.
fn line_has_guard(file: &SourceFile, line: u32) -> bool {
    file.code.iter().filter(|t| t.line == line).any(|t| {
        matches!(
            &t.tok,
            Tok::Ident(name) if name == "assert" || name == "debug_assert" || name == "assert_ne"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut diags = Vec::new();
        check(&f, &mut diags);
        diags
    }

    #[test]
    fn non_sentinel_float_equality_fails() {
        let diags = run("src/a.rs", "fn f(x: f64) -> bool { x == 0.3 }\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "R3");
        let diags = run("src/a.rs", "fn f(x: f64) -> bool { 2.5 != x }\n");
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn sentinel_zero_and_one_pass() {
        assert!(run("src/a.rs", "fn f(x: f64) -> bool { x == 0.0 }\n").is_empty());
        assert!(run("src/a.rs", "fn f(x: f64) -> bool { x != 1.0 }\n").is_empty());
        assert!(run("src/a.rs", "fn f(x: f64) -> bool { x == 1.0f64 }\n").is_empty());
    }

    #[test]
    fn integer_equality_is_not_float_business() {
        assert!(run("src/a.rs", "fn f(x: u64) -> bool { x == 3 }\n").is_empty());
    }

    #[test]
    fn le_ge_are_not_equality() {
        assert!(run(
            "src/a.rs",
            "fn f(x: f64) -> bool { x <= 0.3 && x >= 0.1 }\n"
        )
        .is_empty());
    }

    #[test]
    fn unguarded_ln_in_fit_file_fails() {
        let diags = run("src/mle.rs", "fn f(x: f64) -> f64 { x.ln() }\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unguarded"));
    }

    #[test]
    fn guarded_receivers_pass() {
        assert!(run("src/mle.rs", "fn f(x: f64) -> f64 { x.abs().sqrt() }\n").is_empty());
        assert!(run("src/mle.rs", "fn f(x: f64) -> f64 { x.max(1e-300).ln() }\n").is_empty());
        assert!(run(
            "src/mle.rs",
            "fn f(a: f64, b: f64) -> f64 { (a - b).powi(2).sqrt() }\n"
        )
        .is_empty());
        assert!(run("src/mle.rs", "fn f() -> f64 { 2.0.ln() }\n").is_empty());
    }

    #[test]
    fn same_line_assert_counts_as_guard() {
        assert!(run(
            "src/mle.rs",
            "fn f(x: f64) -> f64 { assert!(x > 0.0); x.ln() }\n"
        )
        .iter()
        .all(|d| d.line != 1));
    }

    #[test]
    fn non_fit_files_skip_the_domain_check() {
        assert!(run("src/render.rs", "fn f(x: f64) -> f64 { x.ln() }\n").is_empty());
    }

    #[test]
    fn allow_pragma_suppresses_domain_check() {
        let diags = run(
            "src/mle.rs",
            "// d ≥ 1 by construction — lint:allow(R3)\nfn f(d: f64) -> f64 { d.ln() }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
