//! R2 — no-nondeterminism.
//!
//! Core library code must produce bit-identical results for a given
//! seed. Three classes of violation, all in non-test code:
//!
//! * ambient entropy / wall-clock: `thread_rng`, `from_entropy`,
//!   `getrandom`, `SystemTime`, `Instant`;
//! * iteration-order hazards: `HashMap` / `HashSet` (use
//!   `BTreeMap`/`BTreeSet`, or `lint:allow(R2)` with a justification
//!   when the usage is provably order-insensitive);
//! * ad-hoc seeding: `seed_from_u64` outside `rng.rs` — library code
//!   takes an `&mut impl Rng` or derives streams through
//!   `SeedSequence`, it never conjures its own generator.

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::SourceFile;

/// Identifiers that read ambient state and are never acceptable in
/// core result paths.
const BANNED: &[(&str, &str)] = &[
    ("thread_rng", "ambient entropy"),
    ("from_entropy", "ambient entropy"),
    ("getrandom", "ambient entropy"),
    ("SystemTime", "wall-clock time"),
    ("Instant", "wall-clock time"),
];

/// Hash collections whose iteration order is randomized.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Run R2 over one core-crate source file.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let in_rng_module = file.path.file_name().is_some_and(|f| f == "rng.rs");
    for t in &file.code {
        let Tok::Ident(name) = &t.tok else { continue };
        if file.in_test_code(t.line) || file.allowed("R2", t.line) {
            continue;
        }
        if let Some((_, why)) = BANNED.iter().find(|(b, _)| b == name) {
            diags.push(Diagnostic::error(
                &file.path,
                t.line,
                "R2",
                format!("`{name}` reads {why}; core results must be seed-deterministic"),
            ));
        } else if HASH_TYPES.contains(&name.as_str()) {
            diags.push(Diagnostic::error(
                &file.path,
                t.line,
                "R2",
                format!(
                    "`{name}` has randomized iteration order; use BTreeMap/BTreeSet or \
                     annotate `// lint:allow(R2)` if order cannot reach results"
                ),
            ));
        } else if name == "seed_from_u64" && !in_rng_module {
            diags.push(Diagnostic::error(
                &file.path,
                t.line,
                "R2",
                "library code must not seed its own generator; take `&mut impl Rng` or \
                 derive a stream via `SeedSequence`"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let mut diags = Vec::new();
        check(&f, &mut diags);
        diags
    }

    #[test]
    fn hashmap_in_lib_code_fails() {
        let diags = run(
            "src/lib.rs",
            "fn f() { let m = std::collections::HashMap::new(); }\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "R2");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn hashmap_in_test_module_passes() {
        let diags = run(
            "src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { let m = std::collections::HashMap::new(); }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_pragma_suppresses() {
        let diags = run(
            "src/lib.rs",
            "// membership only, never iterated — lint:allow(R2)\nfn f() { let s = std::collections::HashSet::new(); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wall_clock_and_entropy_fail() {
        assert_eq!(
            run(
                "src/a.rs",
                "fn f() { let t = std::time::SystemTime::now(); }"
            )
            .len(),
            1
        );
        assert_eq!(
            run("src/a.rs", "fn f() { let t = Instant::now(); }").len(),
            1
        );
        assert_eq!(run("src/a.rs", "fn f() { let r = thread_rng(); }").len(), 1);
    }

    #[test]
    fn seeding_banned_outside_rng_module() {
        let src = "fn f() { let r = Xoshiro256pp::seed_from_u64(7); }";
        assert_eq!(run("src/fit.rs", src).len(), 1);
        assert!(run("src/rng.rs", src).is_empty());
    }

    #[test]
    fn mentions_in_strings_and_comments_ignored() {
        let diags = run(
            "src/a.rs",
            "// HashMap would be wrong here\nfn f() -> &'static str { \"SystemTime thread_rng\" }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
