//! R5 — pub-doc.
//!
//! Every `pub` item in library code needs a doc comment. The check
//! walks the full token stream (comments included): a `pub` followed
//! by an item keyword must be preceded — skipping attributes and
//! other doc lines — by a doc comment. `pub(crate)`/`pub(super)` are
//! not public API and are skipped, as are `pub use` re-exports (the
//! referent carries the docs) and struct fields.

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::SourceFile;

/// Item keywords that may follow `pub` (possibly after modifiers).
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
];

/// Modifiers allowed between `pub` and the item keyword.
const MODIFIERS: &[&str] = &["async", "unsafe", "extern", "const"];

/// Run R5 over one source file.
pub fn check(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let all = &file.all;
    for i in 0..all.len() {
        if all[i].tok != Tok::Ident("pub".into()) {
            continue;
        }
        let line = all[i].line;
        if file.in_test_code(line) || file.allowed("R5", line) {
            continue;
        }
        // Skip restricted visibility: `pub(crate)` etc.
        let mut j = i + 1;
        if all.get(j).map(|t| &t.tok) == Some(&Tok::Punct('(')) {
            continue;
        }
        // Allow modifiers, then require an item keyword. `pub use` and
        // fields fall out naturally (not in the keyword set).
        let mut kw: Option<&str> = None;
        while let Some(t) = all.get(j) {
            match &t.tok {
                Tok::Ident(name) if MODIFIERS.contains(&name.as_str()) => {
                    // `pub const NAME` is an item; `pub const fn` has
                    // `const` as modifier. Distinguish by the next
                    // token: an identifier keyword continues, anything
                    // else means `const` was the item keyword itself.
                    if name == "const" {
                        match all.get(j + 1).map(|t| &t.tok) {
                            Some(Tok::Ident(next)) if ITEM_KEYWORDS.contains(&next.as_str()) => {}
                            _ => {
                                kw = Some("const");
                                break;
                            }
                        }
                    }
                    j += 1;
                }
                Tok::Ident(name) if ITEM_KEYWORDS.contains(&name.as_str()) => {
                    kw = Some(match name.as_str() {
                        "fn" => "fn",
                        "struct" => "struct",
                        "enum" => "enum",
                        "trait" => "trait",
                        "const" => "const",
                        "static" => "static",
                        "type" => "type",
                        "mod" => "mod",
                        _ => "union",
                    });
                    break;
                }
                _ => break,
            }
        }
        let Some(kw) = kw else { continue };

        // Walk backwards over attributes to find the preceding doc
        // comment (or its absence).
        if !has_preceding_doc(all, i) {
            let name = all
                .get(j + 1)
                .and_then(|t| match &t.tok {
                    Tok::Ident(n) => Some(n.clone()),
                    _ => None,
                })
                .unwrap_or_default();
            diags.push(Diagnostic::error(
                &file.path,
                line,
                "R5",
                format!("public {kw} `{name}` has no doc comment"),
            ));
        }
    }
}

/// True if, walking backwards from token `i` and skipping attribute
/// groups `#[…]`, the previous token is an outer doc comment.
fn has_preceding_doc(all: &[crate::lexer::Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &all[j].tok {
            Tok::DocComment { inner: false } => return true,
            // Skip plain comments between docs and the item.
            Tok::Comment(_) => continue,
            // Skip an attribute group: `]` back to its `#[`.
            Tok::Punct(']') => {
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match &all[j].tok {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
                // Step over the `#`.
                if j > 0 && all[j - 1].tok == Tok::Punct('#') {
                    j -= 1;
                }
            }
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("src/a.rs", src);
        let mut diags = Vec::new();
        check(&f, &mut diags);
        diags
    }

    #[test]
    fn undocumented_pub_fn_fails() {
        let diags = run("pub fn naked() {}\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`naked`"));
    }

    #[test]
    fn documented_items_pass() {
        assert!(run("/// Documented.\npub fn ok() {}\n").is_empty());
        assert!(run("/// Docs.\n#[derive(Debug)]\npub struct S;\n").is_empty());
        assert!(run("/// Docs.\n#[derive(Debug)]\n#[repr(C)]\npub enum E { A }\n").is_empty());
    }

    #[test]
    fn restricted_visibility_and_reexports_skipped() {
        assert!(run("pub(crate) fn internal() {}\n").is_empty());
        assert!(run("pub use other::Thing;\n").is_empty());
    }

    #[test]
    fn struct_fields_are_not_items() {
        // `pub core: f64` — `core` is not an item keyword.
        assert!(run("/// S.\npub struct S {\n    pub core: f64,\n}\n").is_empty());
    }

    #[test]
    fn modifiers_between_pub_and_fn() {
        assert_eq!(run("pub const fn f() {}\n").len(), 1);
        assert_eq!(run("pub const X: u8 = 1;\n").len(), 1);
        assert!(run("/// Docs.\npub const fn f() {}\n").is_empty());
        assert!(run("/// Docs.\npub const X: u8 = 1;\n").is_empty());
    }

    #[test]
    fn test_code_and_pragmas_skip() {
        assert!(run("#[cfg(test)]\nmod t {\n    pub fn helper() {}\n}\n").is_empty());
        assert!(run("// lint:allow(R5)\npub fn shim() {}\n").is_empty());
    }
}
