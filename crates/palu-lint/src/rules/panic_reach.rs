//! R8 — panic-reachability.
//!
//! The capture/merge path promises typed `WindowFault`/`JournalFault`
//! errors, not aborts: a panic inside a worker tears down the pool
//! and forfeits the journal's resume guarantee. This rule walks the
//! conservative call graph from the capture/merge roots — every `pub`
//! fn in `palu-traffic`'s `pipeline.rs`/`journal.rs`/`budget.rs`/
//! `fault.rs`/`federation.rs`/`service.rs`/`wire.rs` plus the `merge`
//! fns in `palu-stats` — and counts the
//! panic sites (`panic!`/`unreachable!`/`todo!`/`unimplemented!`,
//! `.unwrap()`/`.expect()`, `[]`-indexing) reachable from them
//! outside `#[cfg(test)]`. Counts are gated by a shrink-only baseline
//! (`lint/panic_baseline.txt`), ratcheted exactly like R4.
//!
//! `assert!`/`debug_assert!` are deliberately *not* counted: they
//! state invariants, and banning them would push checks out of the
//! code entirely.

use crate::diag::Diagnostic;
use crate::graph::ItemGraph;
use crate::items::is_keyword;
use crate::lexer::Tok;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Workspace-relative location of the R8 baseline.
pub const R8_BASELINE: &str = "lint/panic_baseline.txt";

/// The files whose `pub` fns seed the reachability walk.
const ROOT_FILES: &[&str] = &[
    "crates/palu-traffic/src/pipeline.rs",
    "crates/palu-traffic/src/journal.rs",
    "crates/palu-traffic/src/budget.rs",
    "crates/palu-traffic/src/fault.rs",
    "crates/palu-traffic/src/federation.rs",
    "crates/palu-traffic/src/service.rs",
    "crates/palu-traffic/src/wire.rs",
    "crates/palu-traffic/src/dispatch.rs",
];

/// Crate whose `merge` fns are additional roots.
const MERGE_ROOT_PREFIX: &str = "crates/palu-stats/";

/// One reachable panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Workspace-relative path of the file holding the site.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What kind of site (`panic!`, `.unwrap()`, `[]-index`, …).
    pub what: &'static str,
    /// Qualified name of the fn containing the site.
    pub in_fn: String,
    /// Qualified name of the root it is reachable from.
    pub root: String,
}

/// Indices of the default capture/merge-path roots.
pub fn default_roots(files: &[SourceFile], graph: &ItemGraph) -> Vec<usize> {
    let mut roots = Vec::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let path = files[f.file].path.to_string_lossy();
        let path = path.replace('\\', "/");
        if f.is_pub && ROOT_FILES.iter().any(|r| path == *r) {
            roots.push(idx);
        } else if f.name == "merge" && path.starts_with(MERGE_ROOT_PREFIX) {
            roots.push(idx);
        }
    }
    roots
}

/// All panic sites in non-test code of fns reachable from `roots`,
/// in (file, line) order. `lint:allow(R8)` suppresses a site.
pub fn sites(files: &[SourceFile], graph: &ItemGraph, roots: &[usize]) -> Vec<PanicSite> {
    let reach = graph.reachable(roots);
    let mut out = Vec::new();
    for (&fn_idx, &root_idx) in &reach {
        let f = &graph.fns[fn_idx];
        let file = &files[f.file];
        let path = file.path.to_string_lossy().replace('\\', "/");
        let root = graph.fns[root_idx].qual_name();
        for (line, what) in sites_in_range(file, f.body.0, f.body.1) {
            out.push(PanicSite {
                file: path.clone(),
                line,
                what,
                in_fn: f.qual_name(),
                root: root.clone(),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.what == b.what);
    out
}

/// Panic sites in the code-token range `[lo, hi)` of `file`,
/// excluding test code and `lint:allow(R8)` lines.
fn sites_in_range(file: &SourceFile, lo: usize, hi: usize) -> Vec<(u32, &'static str)> {
    let code = &file.code;
    let mut out = Vec::new();
    for j in lo..hi.min(code.len()) {
        let line = code[j].line;
        if file.in_test_code(line) || file.allowed("R8", line) {
            continue;
        }
        match &code[j].tok {
            Tok::Ident(name) if code.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('!')) => {
                let what = match name.as_str() {
                    "panic" => "panic!",
                    "unreachable" => "unreachable!",
                    "todo" => "todo!",
                    "unimplemented" => "unimplemented!",
                    _ => continue,
                };
                out.push((line, what));
            }
            Tok::Ident(name)
                if (name == "unwrap" || name == "expect")
                    && j > 0
                    && code[j - 1].tok == Tok::Punct('.')
                    && code.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')) =>
            {
                out.push((
                    line,
                    if name == "unwrap" {
                        ".unwrap()"
                    } else {
                        ".expect()"
                    },
                ));
            }
            Tok::Punct('[') if j > lo => {
                // `expr[i]` indexing: `[` after an expression tail.
                let indexing = match &code[j - 1].tok {
                    Tok::Ident(prev) => !is_keyword(prev),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
                if indexing {
                    out.push((line, "[]-index"));
                }
            }
            _ => {}
        }
    }
    out
}

/// Per-file counts of `sites`, keyed by workspace-relative path.
pub fn counts(sites: &[PanicSite]) -> BTreeMap<String, u32> {
    let mut map: BTreeMap<String, u32> = BTreeMap::new();
    for s in sites {
        *map.entry(s.file.clone()).or_insert(0) += 1;
    }
    map
}

/// Render the R8 baseline file.
pub fn render_baseline(counts: &BTreeMap<String, u32>) -> String {
    crate::baseline::render(
        "R8 reachable-panic budget per library file (non-test code).\n\
         Counts panic!/unreachable!/todo!/unimplemented!, .unwrap()/.expect(),\n\
         and []-indexing in fns reachable from the capture/merge roots\n\
         (pub fns of palu-traffic's pipeline/journal/budget/fault modules and\n\
         palu-stats merge fns). Shrink-only, like the R4 unwrap budget:\n\
         re-run `cargo run -p palu-lint -- --write-baseline` after improving.",
        counts,
    )
}

/// Gate measured counts against the checked-in baseline. The measured
/// map must contain an entry (possibly 0) for every file that *could*
/// hold sites, so stale baseline entries are caught by the missing-
/// file check in [`crate::baseline::compare`].
pub fn compare(
    measured: &BTreeMap<String, u32>,
    baseline: &BTreeMap<String, u32>,
    baseline_path: &str,
    diags: &mut Vec<Diagnostic>,
) {
    crate::baseline::compare(
        "R8",
        "reachable panic sites",
        measured,
        baseline,
        baseline_path,
        diags,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(srcs: &[(&str, &str)], root_names: &[&str]) -> Vec<PanicSite> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(*p, s)).collect();
        let graph = ItemGraph::build(&files);
        let roots: Vec<usize> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| root_names.contains(&f.qual_name().as_str()))
            .map(|(i, _)| i)
            .collect();
        sites(&files, &graph, &roots)
    }

    #[test]
    fn transitive_panic_found_with_origin() {
        let srcs = [(
            "src/a.rs",
            "pub fn entry() { helper(); }\n\
             fn helper() { panic!(\"boom\"); }\n\
             fn unrelated() { panic!(\"never seen\"); }\n",
        )];
        let s = run(&srcs, &["entry"]);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].line, 2);
        assert_eq!(s[0].what, "panic!");
        assert_eq!(s[0].in_fn, "helper");
        assert_eq!(s[0].root, "entry");
    }

    #[test]
    fn unwrap_expect_and_indexing_counted() {
        let srcs = [(
            "src/a.rs",
            "pub fn entry(v: &[u64], i: usize) -> u64 {\n    \
             let x = maybe().unwrap();\n    \
             let y = maybe().expect(\"y\");\n    \
             v[i] + x + y\n}\n\
             fn maybe() -> Option<u64> { None }\n",
        )];
        let s = run(&srcs, &["entry"]);
        let whats: Vec<&str> = s.iter().map(|x| x.what).collect();
        assert_eq!(whats, [".unwrap()", ".expect()", "[]-index"]);
    }

    #[test]
    fn slice_types_and_patterns_are_not_indexing() {
        let srcs = [(
            "src/a.rs",
            "pub fn entry(v: &mut [u64]) -> Vec<[f64; 2]> {\n    \
             let [a, b] = [1.0, 2.0];\n    vec![[a, b]]\n}\n",
        )];
        let s = run(&srcs, &["entry"]);
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn test_code_and_allows_suppressed() {
        let srcs = [(
            "src/a.rs",
            "pub fn entry() {\n    \
             helper(); // lint:allow(R8) — message formatting cannot fail\n    \
             inner().unwrap(); // lint:allow(R8)\n}\n\
             fn helper() {}\n\
             fn inner() -> Option<u32> { None }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { entry(); panic!(\"x\"); }\n}\n",
        )];
        let s = run(&srcs, &["entry"]);
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn asserts_not_counted() {
        let srcs = [(
            "src/a.rs",
            "pub fn entry(n: usize) { assert!(n > 0); debug_assert_eq!(n, n); }\n",
        )];
        assert!(run(&srcs, &["entry"]).is_empty());
    }

    #[test]
    fn unreachable_fn_panics_ignored() {
        let srcs = [
            ("src/a.rs", "pub fn entry() { safe(); }\nfn safe() {}\n"),
            ("src/b.rs", "pub fn legacy() { x.unwrap(); }\n"),
        ];
        assert!(run(&srcs, &["entry"]).is_empty());
    }

    #[test]
    fn default_roots_select_pub_capture_fns_and_stats_merges() {
        let files: Vec<SourceFile> = vec![
            SourceFile::parse(
                "crates/palu-traffic/src/pipeline.rs",
                "pub fn run() {}\nfn private() {}\n",
            ),
            SourceFile::parse(
                "crates/palu-stats/src/summary.rs",
                "impl W { pub fn merge(&mut self, o: &W) {} fn other(&self) {} }\nstruct W;\n",
            ),
            SourceFile::parse("crates/palu-graph/src/lib.rs", "pub fn not_a_root() {}\n"),
        ];
        let graph = ItemGraph::build(&files);
        let roots = default_roots(&files, &graph);
        let names: Vec<String> = roots.iter().map(|&i| graph.fns[i].qual_name()).collect();
        assert_eq!(names, ["run", "W::merge"]);
    }
}
