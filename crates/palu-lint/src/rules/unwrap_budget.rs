//! R4 — no-unwrap-in-lib.
//!
//! `unwrap`/`expect` in non-test library code is technical debt: the
//! panic message points at the callee, not the caller's broken
//! invariant. Banning them outright would make this PR a rewrite, so
//! the rule is a **ratchet**: a checked-in baseline records today's
//! per-file counts, the gate fails when any file *exceeds* its
//! baseline, and when a file improves the baseline must be re-written
//! (shrink-only) so the gain is locked in. `unwrap_or`,
//! `unwrap_or_else`, etc. are distinct identifiers and never counted.

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Count `.unwrap(` / `.expect(` calls in non-test code.
pub fn count(file: &SourceFile) -> u32 {
    let code = &file.code;
    let mut n = 0u32;
    for i in 1..code.len() {
        let Tok::Ident(name) = &code[i].tok else {
            continue;
        };
        if name != "unwrap" && name != "expect" {
            continue;
        }
        if code[i - 1].tok != Tok::Punct('.')
            || code.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('('))
        {
            continue;
        }
        if file.in_test_code(code[i].line) {
            continue;
        }
        n += 1;
    }
    n
}

/// Parse a baseline file: `<count> <path>` per line, `#` comments.
pub fn parse_baseline(src: &str) -> Result<BTreeMap<String, u32>, String> {
    crate::baseline::parse(src)
}

/// Render per-file counts as a baseline file (zero-count files are
/// omitted — absence means budget 0).
pub fn render_baseline(counts: &BTreeMap<String, u32>) -> String {
    crate::baseline::render(
        "R4 unwrap/expect budget per library file (non-test code).\n\
         Shrink-only: the lint gate fails if any file exceeds its line here,\n\
         and demands a rewrite (cargo run -p palu-lint -- --write-baseline)\n\
         when a file improves, so the budget only ratchets down.",
        counts,
    )
}

/// Compare measured counts against the baseline and emit diagnostics.
pub fn compare(
    measured: &BTreeMap<String, u32>,
    baseline: &BTreeMap<String, u32>,
    baseline_path: &str,
    diags: &mut Vec<Diagnostic>,
) {
    crate::baseline::compare(
        "R4",
        "unwrap/expect calls",
        measured,
        baseline,
        baseline_path,
        diags,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counted(src: &str) -> u32 {
        count(&SourceFile::parse("src/a.rs", src))
    }

    #[test]
    fn counts_unwrap_and_expect_calls() {
        assert_eq!(counted("fn f() { x.unwrap(); y.expect(\"msg\"); }"), 2);
    }

    #[test]
    fn unwrap_or_family_not_counted() {
        assert_eq!(
            counted("fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }"),
            0
        );
    }

    #[test]
    fn test_code_not_counted() {
        assert_eq!(
            counted("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); } }\n"),
            0
        );
    }

    #[test]
    fn comments_and_strings_not_counted() {
        assert_eq!(
            counted("// x.unwrap()\nfn f() -> &'static str { \".unwrap()\" }"),
            0
        );
    }

    #[test]
    fn baseline_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("crates/a/src/lib.rs".to_string(), 3u32);
        m.insert("crates/b/src/lib.rs".to_string(), 0u32);
        let rendered = render_baseline(&m);
        let parsed = parse_baseline(&rendered).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed["crates/a/src/lib.rs"], 3);
    }

    #[test]
    fn over_budget_fails_under_budget_demands_rewrite() {
        let measured: BTreeMap<String, u32> =
            [("a.rs".to_string(), 5u32), ("b.rs".to_string(), 1u32)].into();
        let baseline: BTreeMap<String, u32> =
            [("a.rs".to_string(), 3u32), ("b.rs".to_string(), 2u32)].into();
        let mut diags = Vec::new();
        compare(&measured, &baseline, "lint/base.txt", &mut diags);
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.contains("budget is 3"));
        assert!(diags[1].message.contains("stale budget"));
    }

    #[test]
    fn matching_budget_is_clean() {
        let measured: BTreeMap<String, u32> = [("a.rs".to_string(), 2u32)].into();
        let baseline = measured.clone();
        let mut diags = Vec::new();
        compare(&measured, &baseline, "lint/base.txt", &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
