//! The rule registry.
//!
//! Each rule has a stable id (`R1`…`R6`), a short name, and an
//! implementation. Source rules run per file on a [`SourceFile`];
//! R1 runs on manifests and R4 aggregates per-file counts against a
//! checked-in baseline — both are driven by the engine.

pub mod budget_accounted;
pub mod float_hygiene;
pub mod hermetic_deps;
pub mod hot_loop_alloc;
pub mod journal_atomic;
pub mod merge_determinism;
pub mod nondeterminism;
pub mod panic_reach;
pub mod pub_doc;
pub mod unwrap_budget;

/// Static description of one rule, for `--rules` listings and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier used in diagnostics and `lint:allow(...)`.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
}

/// Every rule the engine knows, in execution order.
pub const REGISTRY: &[RuleInfo] = &[
    RuleInfo {
        id: "R1",
        name: "hermetic-deps",
        description: "crate manifests may only depend on workspace-path crates; \
                      no registry, git, or version-resolved dependencies",
    },
    RuleInfo {
        id: "R2",
        name: "no-nondeterminism",
        description: "core library code must be reproducible: no thread_rng/SystemTime/\
                      Instant, no HashMap/HashSet in result paths, RNG flows through \
                      palu_stats::rng::SeedSequence",
    },
    RuleInfo {
        id: "R3",
        name: "float-hygiene",
        description: "no ==/!= against non-sentinel float literals; .sqrt()/.ln() in \
                      fit paths need a visible domain guard",
    },
    RuleInfo {
        id: "R4",
        name: "no-unwrap-in-lib",
        description: "unwrap/expect in non-test library code is budgeted by a baseline \
                      that may only shrink",
    },
    RuleInfo {
        id: "R5",
        name: "pub-doc",
        description: "public items in library crates need doc comments",
    },
    RuleInfo {
        id: "R6",
        name: "journal-atomic",
        description: "durable writes in core crates go through palu-traffic's journal \
                      (atomic tmp-file+rename); no direct File::create/OpenOptions/\
                      fs::write elsewhere",
    },
    RuleInfo {
        id: "R7",
        name: "budget-accounted",
        description: "capture-path buffers size their capacity through the budget \
                      accountant (admitted_capacity) or carry a justification; no raw \
                      with_capacity/reserve on window-geometry-derived sizes",
    },
    RuleInfo {
        id: "R8",
        name: "panic-reachability",
        description: "fns reachable from the capture/merge roots (pipeline/journal/\
                      budget/fault pub fns, palu-stats merges) must not reach panic!/\
                      unwrap/[]-index outside tests; budgeted by a shrink-only baseline",
    },
    RuleInfo {
        id: "R9",
        name: "merge-determinism",
        description: "hash-container iteration and thread-order reductions are \
                      forbidden outside the blessed window-ordered merge allowlist \
                      (lint/merge_allowlist.txt)",
    },
    RuleInfo {
        id: "R10",
        name: "hot-loop-alloc",
        description: "no Vec::new/vec!/with_capacity/collect inside loop bodies of \
                      `// lint:hot`-tagged fns; hoist and reuse per-worker buffers",
    },
];

/// Look up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    REGISTRY.iter().find(|r| r.id == id)
}
