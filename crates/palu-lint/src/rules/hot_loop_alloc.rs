//! R10 — hot-loop allocation-hygiene.
//!
//! The per-window worker stages run once per captured window — at
//! observatory scale, millions of times — so a `Vec` allocated inside
//! their loops is pure churn the "make parallelism pay" work keeps
//! paying for. Functions opt in with a `// lint:hot` tag on (or just
//! above) the signature; inside their loop bodies, allocation
//! idioms — `Vec::new()`, `vec![...]`, `with_capacity(...)`,
//! `.collect()` — are flagged. Hoist the buffer out of the loop and
//! reuse it (`clear()`/`drain(..)`), or justify the allocation with
//! `lint:allow(R10)`.

use crate::diag::Diagnostic;
use crate::graph::ItemGraph;
use crate::items::{match_close, skip_angle_group};
use crate::lexer::Tok;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Run R10 over every `// lint:hot`-tagged non-test fn.
pub fn check(files: &[SourceFile], graph: &ItemGraph, diags: &mut Vec<Diagnostic>) {
    for f in &graph.fns {
        if f.in_test || !f.hot {
            continue;
        }
        let file = &files[f.file];
        let path = file.path.to_string_lossy().replace('\\', "/");
        let code = &file.code;
        let hi = f.body.1.min(code.len());
        // Union of all loop-body token indices in this fn.
        let mut in_loop: BTreeSet<usize> = BTreeSet::new();
        let mut j = f.body.0;
        while j < hi {
            if let Tok::Ident(kw) = &code[j].tok {
                if kw == "for" || kw == "while" || kw == "loop" {
                    if let Some(open) = loop_body_open(code, j, hi) {
                        let close = match_close(code, open, hi, '{', '}');
                        in_loop.extend(open + 1..close.saturating_sub(1));
                        // Continue scanning *inside* for nested loops.
                        j = open + 1;
                        continue;
                    }
                }
            }
            j += 1;
        }
        let mut seen_lines: BTreeSet<(u32, &'static str)> = BTreeSet::new();
        for &j in &in_loop {
            let Some((what, line)) = alloc_site(code, j, hi) else {
                continue;
            };
            if file.in_test_code(line) || file.allowed("R10", line) {
                continue;
            }
            if !seen_lines.insert((line, what)) {
                continue;
            }
            diags.push(Diagnostic::error(
                &path,
                line,
                "R10",
                format!(
                    "{}: `{what}` inside a hot loop allocates per iteration; hoist \
                     the buffer out of the loop and reuse it, or justify with \
                     lint:allow(R10)",
                    f.qual_name()
                ),
            ));
        }
    }
}

/// For a `for`/`while`/`loop` keyword at `kw`, the index of the
/// loop-body `{` (first `{` past the header at bracket depth 0).
fn loop_body_open(code: &[crate::lexer::Token], kw: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = kw + 1;
    while k < hi {
        match &code[k].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') if depth <= 0 => return Some(k),
            Tok::Punct(';') if depth <= 0 => return None,
            _ => {}
        }
        k += 1;
    }
    None
}

/// If the token at `j` starts an allocation idiom, its label and line.
fn alloc_site(code: &[crate::lexer::Token], j: usize, hi: usize) -> Option<(&'static str, u32)> {
    let line = code[j].line;
    match &code[j].tok {
        Tok::Ident(name) if name == "Vec" => {
            // `Vec::new(` / `Vec::with_capacity(` handled via the
            // path; flag at the `Vec` token.
            if code.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                && code.get(j + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
            {
                match code.get(j + 3).map(|t| &t.tok) {
                    Some(Tok::Ident(m)) if m == "new" => return Some(("Vec::new", line)),
                    Some(Tok::Ident(m)) if m == "with_capacity" => {
                        return Some(("with_capacity", line))
                    }
                    _ => {}
                }
            }
            None
        }
        Tok::Ident(name)
            if name == "vec" && code.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('!')) =>
        {
            Some(("vec!", line))
        }
        Tok::Ident(name)
            if name == "with_capacity"
                && (j == 0 || code[j - 1].tok != Tok::Punct(':'))
                && code.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')) =>
        {
            // `.with_capacity(` or bare — the `Type::with_capacity`
            // form is handled above (skip here to avoid a double).
            Some(("with_capacity", line))
        }
        Tok::Ident(name) if name == "collect" && j > 0 && code[j - 1].tok == Tok::Punct('.') => {
            let mut k = j + 1;
            if code.get(k).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                && code.get(k + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                && code.get(k + 2).map(|t| &t.tok) == Some(&Tok::Punct('<'))
            {
                k = skip_angle_group(code, k + 2, hi);
            }
            if code.get(k).map(|t| &t.tok) == Some(&Tok::Punct('(')) {
                Some(("collect", line))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let files = vec![SourceFile::parse("src/a.rs", src)];
        let graph = ItemGraph::build(&files);
        let mut diags = Vec::new();
        check(&files, &graph, &mut diags);
        diags
    }

    #[test]
    fn alloc_in_hot_loop_fires() {
        let src = "// lint:hot\nfn worker(n: usize) {\n    for i in 0..n {\n        \
                   let buf: Vec<u64> = Vec::new();\n        let v = vec![0u8; 4];\n        \
                   let c: Vec<u32> = (0..i).collect();\n    }\n}\n";
        let diags = run(src);
        let whats: Vec<&str> = diags
            .iter()
            .map(|d| {
                if d.message.contains("Vec::new") {
                    "Vec::new"
                } else if d.message.contains("vec!") {
                    "vec!"
                } else {
                    "collect"
                }
            })
            .collect();
        assert_eq!(whats.len(), 3, "{diags:?}");
        assert!(whats.contains(&"Vec::new"));
        assert!(whats.contains(&"vec!"));
        assert!(whats.contains(&"collect"));
        assert!(diags.iter().all(|d| d.rule == "R10"));
    }

    #[test]
    fn untagged_fn_is_ignored() {
        let src =
            "fn cold(n: usize) {\n    for i in 0..n {\n        let v = vec![0u8; 4];\n    }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn alloc_outside_loop_is_clean() {
        let src =
            "// lint:hot\nfn worker(n: usize) {\n    let mut buf: Vec<u64> = Vec::new();\n    \
                   for i in 0..n {\n        buf.clear();\n        buf.push(i as u64);\n    }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn with_capacity_and_turbofish_collect_fire() {
        let src = "// lint:hot\nfn worker(n: usize) {\n    while n > 0 {\n        \
                   let a = Vec::with_capacity(n);\n        \
                   let b = (0..n).collect::<Vec<u32>>();\n    }\n}\n";
        let diags = run(src);
        assert_eq!(diags.len(), 2, "{diags:?}");
    }

    #[test]
    fn nested_loop_allocs_fire_once_each() {
        let src = "// lint:hot\nfn worker(n: usize) {\n    for i in 0..n {\n        \
                   for j in 0..i {\n            let v = vec![j];\n        }\n    }\n}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn allow_pragma_justifies_alloc() {
        let src = "// lint:hot\nfn worker(n: usize) {\n    for i in 0..n {\n        \
                   // lint:allow(R10) — one alloc per worker, amortised\n        \
                   let v = vec![i];\n    }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn loop_keyword_body_detected() {
        let src = "// lint:hot\nfn worker() {\n    loop {\n        let v: Vec<u8> = Vec::new();\n        break;\n    }\n}\n";
        assert_eq!(run(src).len(), 1);
    }
}
