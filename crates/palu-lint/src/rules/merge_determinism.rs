//! R9 — merge-determinism.
//!
//! The pipeline's headline guarantee is that pooled output is
//! bit-identical to serial at any thread count. Two code shapes can
//! silently break that: iterating a hash container (observation
//! order follows the hasher, not the data) and reducing over
//! worker-produced results in completion order (float addition is
//! not associative). This rule flags both shapes in non-test fns:
//!
//! * **hash-order iteration** — `.iter()`/`.keys()`/`.values()`/
//!   `.drain()`/`.retain()`/`.into_iter()` on, or `for … in` over, a
//!   binding whose declaration or parameter type mentions
//!   `HashMap`/`HashSet`;
//! * **thread-order reduction** — a fn that spawns threads *and*
//!   calls `.sum()`/`.product()`/`.fold()`/`.reduce()`.
//!
//! Blessed window-ordered merge fns are listed in
//! `lint/merge_allowlist.txt` (`<path> <Type::fn>` per line); an
//! entry matching no fn is itself an error so the allowlist cannot
//! rot. Membership-only hash use (`get`/`insert`/`contains_key`)
//! never fires.

use crate::diag::Diagnostic;
use crate::graph::ItemGraph;
use crate::items::{is_keyword, FnItem};
use crate::lexer::Tok;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Workspace-relative location of the R9 allowlist.
pub const R9_ALLOWLIST: &str = "lint/merge_allowlist.txt";

/// Hash containers whose iteration order is nondeterministic.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that observe container order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Methods that reduce a sequence — order-sensitive for floats.
const REDUCE_METHODS: &[&str] = &["sum", "product", "fold", "reduce"];

/// Parse the allowlist: `<path> <qual_name>` per line, `#` comments.
pub fn parse_allowlist(src: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (path, name) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("allowlist line {}: expected `<path> <Type::fn>`", i + 1))?;
        out.push((path.to_string(), name.trim().to_string()));
    }
    Ok(out)
}

/// Allowlist entries that match no fn in the graph (stale entries).
pub fn unmatched_entries(
    files: &[SourceFile],
    graph: &ItemGraph,
    allow: &[(String, String)],
) -> Vec<(String, String)> {
    allow
        .iter()
        .filter(|(path, name)| graph.find_in_file(files, path, name).is_none())
        .cloned()
        .collect()
}

/// Run R9 over every non-test fn.
pub fn check(
    files: &[SourceFile],
    graph: &ItemGraph,
    allow: &[(String, String)],
    diags: &mut Vec<Diagnostic>,
) {
    for f in &graph.fns {
        if f.in_test {
            continue;
        }
        let file = &files[f.file];
        let path = file.path.to_string_lossy().replace('\\', "/");
        if allow.iter().any(|(p, n)| *p == path && *n == f.qual_name()) {
            continue;
        }
        check_hash_iteration(file, &path, f, diags);
        check_thread_reduction(file, &path, f, diags);
    }
}

/// Bindings in `f` (params + `let`s) whose type or initialiser
/// mentions a hash container.
fn hash_bindings(file: &SourceFile, f: &FnItem) -> BTreeSet<String> {
    let code = &file.code;
    let mut out = BTreeSet::new();
    // Parameters: `name: …HashMap…` up to the next `,` at depth 0.
    let mut j = f.sig.0;
    let mut pending: Option<String> = None;
    while j < f.sig.1.min(code.len()) {
        match &code[j].tok {
            Tok::Ident(name)
                if code.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && code.get(j + 2).map(|t| &t.tok) != Some(&Tok::Punct(':'))
                    && !is_keyword(name) =>
            {
                pending = Some(name.clone());
            }
            Tok::Ident(name) if HASH_TYPES.contains(&name.as_str()) => {
                if let Some(p) = pending.take() {
                    out.insert(p);
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Lets: `let [mut] name … = …HashMap…;`.
    let mut j = f.body.0;
    while j < f.body.1.min(code.len()) {
        if code[j].tok != Tok::Ident("let".into()) {
            j += 1;
            continue;
        }
        let mut k = j + 1;
        if code.get(k).map(|t| &t.tok) == Some(&Tok::Ident("mut".into())) {
            k += 1;
        }
        let Some(Tok::Ident(name)) = code.get(k).map(|t| &t.tok) else {
            j += 1;
            continue;
        };
        let name = name.clone();
        // Scan the statement (to the `;` at brace depth 0) for a hash
        // type in the annotation or initialiser.
        let mut depth = 0i32;
        let mut m = k + 1;
        while m < f.body.1.min(code.len()) {
            match &code[m].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                Tok::Punct(';') if depth <= 0 => break,
                Tok::Ident(t) if HASH_TYPES.contains(&t.as_str()) => {
                    out.insert(name.clone());
                }
                _ => {}
            }
            m += 1;
        }
        j = k + 1;
    }
    out
}

fn check_hash_iteration(file: &SourceFile, path: &str, f: &FnItem, diags: &mut Vec<Diagnostic>) {
    let code = &file.code;
    let hashes = hash_bindings(file, f);
    let hi = f.body.1.min(code.len());
    for j in f.body.0..hi {
        let line = code[j].line;
        if file.in_test_code(line) || file.allowed("R9", line) {
            continue;
        }
        match &code[j].tok {
            // `for … in <expr mentioning a hash binding> {`
            Tok::Ident(kw) if kw == "for" => {
                let mut k = j + 1;
                let mut depth = 0i32;
                let mut fired = false;
                while k < hi {
                    match &code[k].tok {
                        Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct('{') if depth <= 0 => break,
                        Tok::Ident(name)
                            if hashes.contains(name.as_str())
                                || HASH_TYPES.contains(&name.as_str()) =>
                        {
                            fired = true;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if fired {
                    diags.push(Diagnostic::error(
                        path,
                        line,
                        "R9",
                        format!(
                            "{}: `for` over a hash container observes hash order; \
                             iterate a sorted/window-ordered structure or bless the fn \
                             in {R9_ALLOWLIST}",
                            f.qual_name()
                        ),
                    ));
                }
            }
            // `<hash binding> . iter() …` — receiver within a short
            // lookback of the order-observing method.
            Tok::Ident(m)
                if ITER_METHODS.contains(&m.as_str())
                    && j > f.body.0
                    && code[j - 1].tok == Tok::Punct('.')
                    && code.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')) =>
            {
                let lookback = j.saturating_sub(6).max(f.body.0);
                let mut from_hash = false;
                for b in (lookback..j).rev() {
                    match &code[b].tok {
                        Tok::Ident(name)
                            if hashes.contains(name.as_str())
                                || HASH_TYPES.contains(&name.as_str()) =>
                        {
                            from_hash = true;
                            break;
                        }
                        Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') | Tok::Punct('=') => {
                            break
                        }
                        _ => {}
                    }
                }
                if from_hash {
                    diags.push(Diagnostic::error(
                        path,
                        line,
                        "R9",
                        format!(
                            "{}: `.{m}()` on a hash container observes hash order; \
                             use a BTree container or bless the fn in {R9_ALLOWLIST}",
                            f.qual_name()
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

fn check_thread_reduction(file: &SourceFile, path: &str, f: &FnItem, diags: &mut Vec<Diagnostic>) {
    if !f.spawns {
        return;
    }
    let code = &file.code;
    let hi = f.body.1.min(code.len());
    for j in f.body.0..hi {
        let Tok::Ident(m) = &code[j].tok else {
            continue;
        };
        if !REDUCE_METHODS.contains(&m.as_str()) {
            continue;
        }
        if j == 0 || code[j - 1].tok != Tok::Punct('.') {
            continue;
        }
        // Allow a turbofish between the method and its parens.
        let mut k = j + 1;
        if code.get(k).map(|t| &t.tok) == Some(&Tok::Punct(':'))
            && code.get(k + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
            && code.get(k + 2).map(|t| &t.tok) == Some(&Tok::Punct('<'))
        {
            k = crate::items::skip_angle_group(code, k + 2, hi);
        }
        if code.get(k).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
            continue;
        }
        let line = code[j].line;
        if file.in_test_code(line) || file.allowed("R9", line) {
            continue;
        }
        diags.push(Diagnostic::error(
            path,
            line,
            "R9",
            format!(
                "{}: `.{m}()` in a thread-spawning fn can reduce in completion \
                 order; merge in window order (see MergeAcc) or bless the fn in \
                 {R9_ALLOWLIST}",
                f.qual_name()
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, allow: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files = vec![SourceFile::parse("src/a.rs", src)];
        let graph = ItemGraph::build(&files);
        let allow: Vec<(String, String)> = allow
            .iter()
            .map(|(p, n)| (p.to_string(), n.to_string()))
            .collect();
        let mut diags = Vec::new();
        check(&files, &graph, &allow, &mut diags);
        diags
    }

    #[test]
    fn hash_iteration_fires_on_let_binding() {
        // lint:allow(R2) — fixture text, not core code.
        let src = "fn f() {\n    let m = HashMap::new();\n    for (k, v) in m.iter() {}\n}\n";
        let diags = run(src, &[]);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.rule == "R9"));
    }

    #[test]
    fn hash_param_for_loop_fires() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n    for k in m {}\n}\n";
        let diags = run(src, &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn membership_only_use_is_clean() {
        let src = "fn f(m: &mut HashMap<u32, u32>) {\n    m.insert(1, 2);\n    \
                   let _ = m.get(&1);\n    let _ = m.contains_key(&1);\n}\n";
        assert!(run(src, &[]).is_empty());
    }

    #[test]
    fn btree_iteration_is_clean() {
        let src = "fn f(m: &BTreeMap<u32, u32>) {\n    for (k, v) in m.iter() {}\n    \
                   let s: u32 = m.values().sum();\n}\n";
        assert!(run(src, &[]).is_empty());
    }

    #[test]
    fn spawn_plus_reduction_fires() {
        let src = "fn f(xs: &[f64]) -> f64 {\n    std::thread::spawn(|| {});\n    \
                   xs.iter().sum::<f64>()\n}\n";
        let diags = run(src, &[]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("sum"));
    }

    #[test]
    fn reduction_without_spawn_is_clean() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        assert!(run(src, &[]).is_empty());
    }

    #[test]
    fn allowlisted_fn_is_exempt() {
        let src = "impl P {\n    fn engine(&self) {\n        std::thread::spawn(|| {});\n        \
                   let acc = (0..4).fold(0u64, |a, b| a + b);\n    }\n}\nstruct P;\n";
        assert_eq!(run(src, &[]).len(), 1);
        assert!(run(src, &[("src/a.rs", "P::engine")]).is_empty());
    }

    #[test]
    fn allow_pragma_suppresses_site() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n    \
                   // lint:allow(R9) — sorted copy below\n    for k in m {}\n}\n";
        assert!(run(src, &[]).is_empty());
    }

    #[test]
    fn stale_allowlist_entries_detected() {
        let src = "fn real() {}\n";
        let files = vec![SourceFile::parse("src/a.rs", src)];
        let graph = ItemGraph::build(&files);
        let allow = vec![
            ("src/a.rs".to_string(), "real".to_string()),
            ("src/a.rs".to_string(), "gone".to_string()),
        ];
        let stale = unmatched_entries(&files, &graph, &allow);
        assert_eq!(stale, vec![("src/a.rs".to_string(), "gone".to_string())]);
    }

    #[test]
    fn allowlist_parse_and_comments() {
        let src = "# blessed merges\ncrates/x/src/p.rs Pipeline::pool_engine\n\n";
        let allow = parse_allowlist(src).unwrap();
        assert_eq!(
            allow,
            vec![(
                "crates/x/src/p.rs".to_string(),
                "Pipeline::pool_engine".to_string()
            )]
        );
        assert!(parse_allowlist("justoneword\n").is_err());
    }
}
