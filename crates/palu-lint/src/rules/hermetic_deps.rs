//! R1 — hermetic-deps.
//!
//! Every dependency in every workspace manifest must resolve inside
//! the workspace: either `path = "…"` or `workspace = true` (with the
//! root `[workspace.dependencies]` entry itself being a path dep).
//! Anything that would reach a registry or a git remote — a bare
//! version string, or a table with `version`/`git`/`registry` and no
//! `path` — is a violation. For the core model crates the target must
//! additionally be a workspace member, so `palu-stats` cannot grow a
//! path dep pointing outside the repo.

use crate::diag::Diagnostic;
use crate::manifest::{Manifest, Value};
use std::path::Path;

/// Dependency sections checked in each manifest.
const DEP_SECTIONS: &[&str] = &["dependencies", "dev-dependencies", "build-dependencies"];

/// Check one crate manifest. `members` is the set of workspace crate
/// names; `is_core` additionally restricts dep targets to members.
pub fn check_manifest(
    rel_path: &Path,
    manifest: &Manifest,
    members: &[String],
    is_core: bool,
    diags: &mut Vec<Diagnostic>,
) {
    for section in DEP_SECTIONS {
        check_section(rel_path, manifest, &[section], members, is_core, diags);
    }
}

/// Check the workspace root: `[workspace.dependencies]` must be all
/// path deps (this is where `workspace = true` references land).
pub fn check_workspace_root(
    rel_path: &Path,
    manifest: &Manifest,
    members: &[String],
    diags: &mut Vec<Diagnostic>,
) {
    check_section(
        rel_path,
        manifest,
        &["workspace", "dependencies"],
        members,
        false,
        diags,
    );
    // The root package's own dep tables follow the same rules.
    for section in DEP_SECTIONS {
        check_section(rel_path, manifest, &[section], members, false, diags);
    }
}

fn check_section(
    rel_path: &Path,
    manifest: &Manifest,
    prefix: &[&str],
    members: &[String],
    is_core: bool,
    diags: &mut Vec<Diagnostic>,
) {
    // Group flattened entries by dependency name (the path segment
    // right after the prefix): `a.workspace = true` and
    // `a = { path = ".." }` both become dep `a`.
    let mut seen: Vec<String> = Vec::new();
    for entry in manifest.under(prefix) {
        let dep = entry.path[prefix.len()].clone();
        if seen.contains(&dep) {
            continue;
        }
        seen.push(dep.clone());

        // Collect this dep's spec keys from both layouts.
        let mut keys: Vec<(String, &Value)> = Vec::new();
        let mut bare: Option<(&Value, u32)> = None;
        let line = entry.line;
        for e in manifest.under(prefix) {
            if e.path[prefix.len()] != dep {
                continue;
            }
            if e.path.len() == prefix.len() + 1 {
                match &e.value {
                    Value::Table(pairs) => {
                        for (k, v) in pairs {
                            keys.push((k.clone(), v));
                        }
                    }
                    other => bare = Some((other, e.line)),
                }
            } else {
                keys.push((e.path[prefix.len() + 1].clone(), &e.value));
            }
        }

        if let Some((value, line)) = bare {
            diags.push(Diagnostic::error(
                rel_path,
                line,
                "R1",
                format!(
                    "dependency `{dep}` uses a registry spec ({value:?}); hermetic builds \
                     require `path = \"…\"` or `workspace = true`"
                ),
            ));
            continue;
        }

        let has_path = keys.iter().any(|(k, _)| k == "path");
        let has_workspace = keys
            .iter()
            .any(|(k, v)| k == "workspace" && **v == Value::Bool(true));
        let external: Vec<&str> = keys
            .iter()
            .filter(|(k, _)| {
                matches!(
                    k.as_str(),
                    "version" | "git" | "registry" | "branch" | "rev" | "tag"
                )
            })
            .map(|(k, _)| k.as_str())
            .collect();

        if !external.is_empty() {
            diags.push(Diagnostic::error(
                rel_path,
                line,
                "R1",
                format!(
                    "dependency `{dep}` has non-hermetic keys {external:?}; only \
                     `path`/`workspace` deps are allowed"
                ),
            ));
            continue;
        }
        if !has_path && !has_workspace {
            diags.push(Diagnostic::error(
                rel_path,
                line,
                "R1",
                format!("dependency `{dep}` has neither `path` nor `workspace = true`"),
            ));
            continue;
        }
        if is_core && !members.iter().any(|m| *m == dep) {
            diags.push(Diagnostic::error(
                rel_path,
                line,
                "R1",
                format!(
                    "core crate depends on `{dep}`, which is not a workspace member; \
                     core crates may only depend on sibling palu crates"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn members() -> Vec<String> {
        vec!["palu-stats".into(), "palu".into()]
    }

    fn run(src: &str, is_core: bool) -> Vec<Diagnostic> {
        let m = Manifest::parse(src).unwrap();
        let mut diags = Vec::new();
        check_manifest(
            &PathBuf::from("crates/x/Cargo.toml"),
            &m,
            &members(),
            is_core,
            &mut diags,
        );
        diags
    }

    #[test]
    fn workspace_and_path_deps_pass() {
        let diags = run(
            "[dependencies]\npalu-stats.workspace = true\npalu = { path = \"../palu\" }\n",
            true,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn version_string_dep_fails() {
        let diags = run("[dependencies]\nrand = \"0.8\"\n", true);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "R1");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn git_dep_fails_even_with_path_style_table() {
        let diags = run(
            "[dependencies]\nrand = { git = \"https://example.com/rand\" }\n",
            false,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("git"));
    }

    #[test]
    fn dev_dependencies_are_checked_too() {
        let diags = run("[dev-dependencies]\nproptest = \"1\"\n", true);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn core_crate_cannot_path_dep_outside_workspace() {
        let diags = run(
            "[dependencies]\nvendored = { path = \"../../vendor/thing\" }\n",
            true,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("workspace member"));
        // …but a non-core crate may (it is still hermetic).
        let diags = run(
            "[dependencies]\nvendored = { path = \"../../vendor/thing\" }\n",
            false,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn workspace_root_table_must_be_paths() {
        let m = Manifest::parse(
            "[workspace.dependencies]\npalu = { path = \"crates/palu\" }\nserde = { version = \"1\" }\n",
        )
        .unwrap();
        let mut diags = Vec::new();
        check_workspace_root(&PathBuf::from("Cargo.toml"), &m, &members(), &mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("serde") || diags[0].message.contains("version"));
    }
}
