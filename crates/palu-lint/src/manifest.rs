//! A TOML-subset parser for `Cargo.toml` manifests.
//!
//! Supports exactly what Cargo manifests in this workspace use:
//! `[section]` and `[dotted.section]` headers, `key = value` with
//! dotted and quoted keys, strings, booleans, numbers, arrays
//! (including multiline), and inline tables. Everything is flattened
//! into `(path, value, line)` entries, so `palu-stats.workspace =
//! true` under `[dependencies]` becomes the entry
//! `["dependencies", "palu-stats", "workspace"] = true`.

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Basic or literal string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// Integer or float, kept as raw text (the linter never does
    /// arithmetic on manifest numbers).
    Num(String),
    /// `[a, b, …]`.
    Array(Vec<Value>),
    /// `{ k = v, … }`.
    Table(Vec<(String, Value)>),
}

/// One flattened `key = value` assignment.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Full dotted path: section segments then key segments.
    pub path: Vec<String>,
    /// The assigned value.
    pub value: Value,
    /// 1-based line of the assignment.
    pub line: u32,
}

/// A parsed manifest: a flat list of assignments in document order.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// All assignments, flattened.
    pub entries: Vec<Entry>,
}

impl Manifest {
    /// Parse a manifest source. Errors carry the offending line.
    pub fn parse(src: &str) -> Result<Manifest, String> {
        let mut entries = Vec::new();
        let mut section: Vec<String> = Vec::new();
        let lines: Vec<&str> = src.lines().collect();
        let mut i = 0usize;
        while i < lines.len() {
            let start_line = (i + 1) as u32;
            let stripped = strip_comment(lines[i]);
            let trimmed = stripped.trim();
            if trimmed.is_empty() {
                i += 1;
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix('[') {
                // `[section]` or `[[array-of-tables]]`; treat the
                // latter as a plain section (good enough for dep
                // policy — this workspace only uses `[[bin]]`/`[[bench]]`).
                let rest = rest.strip_prefix('[').unwrap_or(rest);
                let name = rest.trim_end_matches(']').trim();
                section = split_dotted(name).map_err(|e| format!("line {start_line}: {e}"))?;
                i += 1;
                continue;
            }
            let eq = find_unquoted(trimmed, '=')
                .ok_or_else(|| format!("line {start_line}: expected `key = value`"))?;
            let key_part = trimmed[..eq].trim();
            let mut value_part = trimmed[eq + 1..].trim().to_string();
            // Multiline arrays: keep consuming lines until brackets
            // balance outside strings.
            while bracket_balance(&value_part) > 0 {
                i += 1;
                if i >= lines.len() {
                    return Err(format!("line {start_line}: unterminated array"));
                }
                value_part.push(' ');
                value_part.push_str(strip_comment(lines[i]).trim());
            }
            let keys = split_dotted(key_part).map_err(|e| format!("line {start_line}: {e}"))?;
            let value =
                parse_value(value_part.trim()).map_err(|e| format!("line {start_line}: {e}"))?;
            let mut path = section.clone();
            path.extend(keys);
            entries.push(Entry {
                path,
                value,
                line: start_line,
            });
            i += 1;
        }
        Ok(Manifest { entries })
    }

    /// All entries whose path starts with `prefix`.
    pub fn under<'a>(&'a self, prefix: &[&str]) -> impl Iterator<Item = &'a Entry> {
        let prefix: Vec<String> = prefix.iter().map(|s| s.to_string()).collect();
        self.entries
            .iter()
            .filter(move |e| e.path.len() > prefix.len() && e.path[..prefix.len()] == prefix[..])
    }

    /// The single value at exactly `path`, if assigned.
    pub fn get(&self, path: &[&str]) -> Option<&Value> {
        self.entries
            .iter()
            .find(|e| e.path.len() == path.len() && e.path.iter().zip(path).all(|(a, b)| a == b))
            .map(|e| &e.value)
    }
}

/// Remove a `#`-comment, respecting quotes. Unlike [`find_unquoted`],
/// nesting depth is irrelevant: a `#` outside a string is a comment
/// even inside an array (`members = [ # note`).
fn strip_comment(line: &str) -> &str {
    let mut in_str: Option<char> = None;
    for (i, c) in line.char_indices() {
        match in_str {
            Some(q) => {
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                '"' | '\'' => in_str = Some(c),
                '#' => return &line[..i],
                _ => {}
            },
        }
    }
    line
}

/// Index of the first unquoted occurrence of `target` at inline-table
/// depth 0 (so the `=` inside `{ workspace = true }` is not the
/// assignment's `=`).
fn find_unquoted(s: &str, target: char) -> Option<usize> {
    let mut in_str: Option<char> = None;
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match in_str {
            Some(q) => {
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                '"' | '\'' => in_str = Some(c),
                '{' | '[' => depth += 1,
                '}' | ']' => depth = depth.saturating_sub(1),
                c if c == target && depth == 0 => return Some(i),
                _ => {}
            },
        }
    }
    None
}

/// Net `[`/`{` minus `]`/`}` outside strings — positive means an
/// unterminated multiline value.
fn bracket_balance(s: &str) -> i32 {
    let mut in_str: Option<char> = None;
    let mut depth = 0i32;
    for c in s.chars() {
        match in_str {
            Some(q) => {
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                '"' | '\'' => in_str = Some(c),
                '[' | '{' => depth += 1,
                ']' | '}' => depth -= 1,
                _ => {}
            },
        }
    }
    depth
}

/// Split `a.b."c.d"` into `["a", "b", "c.d"]`.
fn split_dotted(s: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str: Option<char> = None;
    for c in s.chars() {
        match in_str {
            Some(q) => {
                if c == q {
                    in_str = None;
                } else {
                    cur.push(c);
                }
            }
            None => match c {
                '"' | '\'' => in_str = Some(c),
                '.' => {
                    out.push(std::mem::take(&mut cur).trim().to_string());
                }
                _ => cur.push(c),
            },
        }
    }
    if in_str.is_some() {
        return Err(format!("unterminated quoted key in `{s}`"));
    }
    out.push(cur.trim().to_string());
    if out.iter().any(|k| k.is_empty()) {
        return Err(format!("empty key segment in `{s}`"));
    }
    Ok(out)
}

/// Split the interior of an array/table on top-level commas.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str: Option<char> = None;
    let mut depth = 0usize;
    for c in s.chars() {
        match in_str {
            Some(q) => {
                cur.push(c);
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                '"' | '\'' => {
                    cur.push(c);
                    in_str = Some(c);
                }
                '[' | '{' => {
                    cur.push(c);
                    depth += 1;
                }
                ']' | '}' => {
                    cur.push(c);
                    depth -= 1;
                }
                ',' if depth == 0 => parts.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            },
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('"') {
        let body = body.strip_suffix('"').ok_or("unterminated string")?;
        return Ok(Value::Str(body.to_string()));
    }
    if let Some(body) = s.strip_prefix('\'') {
        let body = body.strip_suffix('\'').ok_or("unterminated string")?;
        return Ok(Value::Str(body.to_string()));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or("unterminated array")?;
        let items = split_top_level(body)
            .into_iter()
            .map(|p| parse_value(p.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Value::Array(items));
    }
    if let Some(body) = s.strip_prefix('{') {
        let body = body.strip_suffix('}').ok_or("unterminated inline table")?;
        let mut pairs = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let eq = find_unquoted(part, '=')
                .ok_or_else(|| format!("expected `k = v` in inline table, got `{part}`"))?;
            pairs.push((
                part[..eq].trim().to_string(),
                parse_value(part[eq + 1..].trim())?,
            ));
        }
        return Ok(Value::Table(pairs));
    }
    if s.chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+')
    {
        return Ok(Value::Num(s.to_string()));
    }
    Err(format!("unsupported value `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_and_dotted_keys_flatten() {
        let m = Manifest::parse(
            "[package]\nname = \"demo\"\n[dependencies]\npalu-stats.workspace = true\n",
        )
        .unwrap();
        assert_eq!(
            m.get(&["package", "name"]),
            Some(&Value::Str("demo".into()))
        );
        assert_eq!(
            m.get(&["dependencies", "palu-stats", "workspace"]),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn inline_tables_and_paths() {
        let m = Manifest::parse(
            "[workspace.dependencies]\npalu = { path = \"crates/palu\" }\nother = { version = \"1\", features = [\"std\"] }\n",
        )
        .unwrap();
        match m.get(&["workspace", "dependencies", "palu"]).unwrap() {
            Value::Table(pairs) => {
                assert_eq!(pairs[0], ("path".into(), Value::Str("crates/palu".into())));
            }
            v => panic!("expected table, got {v:?}"),
        }
        match m.get(&["workspace", "dependencies", "other"]).unwrap() {
            Value::Table(pairs) => assert_eq!(pairs.len(), 2),
            v => panic!("expected table, got {v:?}"),
        }
    }

    #[test]
    fn multiline_arrays_and_comments() {
        let m = Manifest::parse(
            "[workspace]\nmembers = [ # trailing comment\n  \"crates/a\",\n  \"crates/b\", # another\n]\n",
        )
        .unwrap();
        assert_eq!(
            m.get(&["workspace", "members"]),
            Some(&Value::Array(vec![
                Value::Str("crates/a".into()),
                Value::Str("crates/b".into())
            ]))
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let m = Manifest::parse("[package]\ndescription = \"uses # freely\"\n").unwrap();
        assert_eq!(
            m.get(&["package", "description"]),
            Some(&Value::Str("uses # freely".into()))
        );
    }

    #[test]
    fn array_of_tables_headers_parse() {
        let m = Manifest::parse("[[bin]]\nname = \"tool\"\npath = \"src/bin/tool.rs\"\n").unwrap();
        assert_eq!(m.get(&["bin", "name"]), Some(&Value::Str("tool".into())));
    }

    #[test]
    fn under_filters_by_prefix() {
        let m = Manifest::parse(
            "[dependencies]\na.workspace = true\nb = { path = \"../b\" }\n[dev-dependencies]\nc.workspace = true\n",
        )
        .unwrap();
        let deps: Vec<_> = m.under(&["dependencies"]).collect();
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].path[1], "a");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Manifest::parse("[deps]\nkey value\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
