//! Per-file source model: the token stream plus the two pieces of
//! context every rule needs — which lines are test-only code, and
//! which lines carry `lint:allow(...)` pragmas.

use crate::lexer::{lex, Tok, Token};
use std::path::PathBuf;

/// A lexed source file with lint context attached.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// Every token, comments included (document order).
    pub all: Vec<Token>,
    /// Code tokens only — comments and doc comments removed. Rules
    /// that pattern-match adjacent tokens use this view so an
    /// interleaved comment cannot split a pattern.
    pub code: Vec<Token>,
    /// `(line, rule)` pairs from `lint:allow(RULE)` pragmas.
    allows: Vec<(u32, String)>,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lex and annotate a source file.
    pub fn parse(path: impl Into<PathBuf>, src: &str) -> SourceFile {
        let all = lex(src);
        let code: Vec<Token> = all
            .iter()
            .filter(|t| !matches!(t.tok, Tok::Comment(_) | Tok::DocComment { .. }))
            .cloned()
            .collect();
        let allows = scan_allows(&all);
        let test_regions = scan_test_regions(&code);
        SourceFile {
            path: path.into(),
            all,
            code,
            allows,
            test_regions,
        }
    }

    /// True if `line` falls inside a `#[cfg(test)]` module or a
    /// `#[test]` function.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// True if a `lint:allow(rule)` pragma covers `line` — the pragma
    /// suppresses findings on its own line and the line below, so both
    /// trailing and preceding-line placements work.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || l + 1 == line))
    }
}

/// Extract `lint:allow(R1)` / `lint:allow(R2, R3)` pragmas from
/// ordinary comments.
fn scan_allows(tokens: &[Token]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for t in tokens {
        let Tok::Comment(text) = &t.tok else { continue };
        let Some(at) = text.find("lint:allow(") else {
            continue;
        };
        let rest = &text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        for rule in rest[..close].split(',') {
            out.push((t.line, rule.trim().to_string()));
        }
    }
    out
}

/// Find `#[cfg(test)] mod … { … }` and `#[test] fn … { … }` spans by
/// brace matching on the code-token stream. The heuristic: an
/// attribute group `#[…]` whose tokens include the identifier `test`
/// marks the next item; the item's body is the first `{` after it,
/// matched to its closing `}`.
fn scan_test_regions(code: &[Token]) -> Vec<(u32, u32)> {
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].tok != Tok::Punct('#')
            || code.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('['))
        {
            i += 1;
            continue;
        }
        // Scan the attribute group for `test`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut has_test = false;
        while j < code.len() && depth > 0 {
            match &code[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(name) if name == "test" => has_test = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test {
            i = j;
            continue;
        }
        // Find the item's opening brace. Stop at `;` (e.g. an
        // annotated `mod foo;` — nothing to span).
        let start_line = code[i].line;
        let mut k = j;
        while k < code.len() && code[k].tok != Tok::Punct('{') && code[k].tok != Tok::Punct(';') {
            k += 1;
        }
        if k >= code.len() || code[k].tok == Tok::Punct(';') {
            i = k + 1;
            continue;
        }
        let mut braces = 0usize;
        while k < code.len() {
            match &code[k].tok {
                Tok::Punct('{') => braces += 1,
                Tok::Punct('}') => {
                    braces -= 1;
                    if braces == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let end_line = code.get(k).map_or(u32::MAX, |t| t.line);
        regions.push((start_line, end_line));
        i = k + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "pub fn real() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(4));
        assert!(f.in_test_code(6));
    }

    #[test]
    fn braces_in_strings_do_not_confuse_regions() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}{{{\";\n    fn t() {}\n}\npub fn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn allow_pragma_covers_its_line_and_the_next() {
        let src = "// lint:allow(R2)\nlet m = HashMap::new(); // lint:allow(R9)\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allowed("R2", 1));
        assert!(f.allowed("R2", 2));
        assert!(!f.allowed("R2", 3));
        assert!(f.allowed("R9", 2));
        assert!(!f.allowed("R1", 2));
    }

    #[test]
    fn multi_rule_pragma() {
        let f = SourceFile::parse("x.rs", "// lint:allow(R2, R3)\nx\n");
        assert!(f.allowed("R2", 2));
        assert!(f.allowed("R3", 2));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        // `#[cfg(not(test))]` still contains the ident `test`; the
        // conservative heuristic treats it as test-gated, which only
        // ever *relaxes* the lint. Document the choice.
        let src = "#[cfg(feature = \"x\")]\npub fn gated() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test_code(2));
    }
}
