//! Shared ratchet-baseline machinery.
//!
//! R4 (unwrap budget) and R8 (panic reachability) both gate on a
//! checked-in per-file count file that may only shrink: the gate
//! fails when a file *exceeds* its baseline, and when a file improves
//! the baseline must be re-written so the gain is locked in. This
//! module holds the format and comparison, parameterised by rule id.
//!
//! Format: `<count> <path>` per line; `#` starts a comment;
//! zero-count files are omitted (absence means budget 0).

use crate::diag::Diagnostic;
use std::collections::BTreeMap;

/// Parse a baseline file.
pub fn parse(src: &str) -> Result<BTreeMap<String, u32>, String> {
    let mut map = BTreeMap::new();
    for (i, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, path) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("baseline line {}: expected `<count> <path>`", i + 1))?;
        let count: u32 = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
        map.insert(path.trim().to_string(), count);
    }
    Ok(map)
}

/// Render per-file counts under a `#`-comment header.
pub fn render(header: &str, counts: &BTreeMap<String, u32>) -> String {
    let mut out = String::new();
    for line in header.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    for (path, n) in counts {
        if *n > 0 {
            out.push_str(&format!("{n} {path}\n"));
        }
    }
    out
}

/// Compare measured counts against the baseline for `rule`, emitting
/// over-budget and stale-budget errors. `what` names the counted
/// thing in messages (e.g. "unwrap/expect calls").
pub fn compare(
    rule: &'static str,
    what: &str,
    measured: &BTreeMap<String, u32>,
    baseline: &BTreeMap<String, u32>,
    baseline_path: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for (path, &n) in measured {
        let budget = baseline.get(path).copied().unwrap_or(0);
        if n > budget {
            diags.push(Diagnostic::error(
                path,
                0,
                rule,
                format!(
                    "{n} {what} in non-test code, budget is {budget}; \
                     handle the error or shrink elsewhere first"
                ),
            ));
        } else if n < budget {
            diags.push(Diagnostic::error(
                baseline_path,
                0,
                rule,
                format!(
                    "stale budget for {path}: baseline says {budget}, code has {n}; \
                     re-run with --write-baseline to lock in the improvement"
                ),
            ));
        }
    }
    for path in baseline.keys() {
        if !measured.contains_key(path) {
            diags.push(Diagnostic::error(
                baseline_path,
                0,
                rule,
                format!("baseline entry for missing file {path}; re-run --write-baseline"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_omits_zero_counts() {
        let mut m = BTreeMap::new();
        m.insert("a.rs".to_string(), 3u32);
        m.insert("b.rs".to_string(), 0u32);
        let rendered = render("hdr line 1\nhdr line 2", &m);
        assert!(rendered.starts_with("# hdr line 1\n# hdr line 2\n"));
        let parsed = parse(&rendered).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed["a.rs"], 3);
    }

    #[test]
    fn over_and_under_budget_both_fail() {
        let measured: BTreeMap<String, u32> =
            [("a.rs".to_string(), 5u32), ("b.rs".to_string(), 1u32)].into();
        let baseline: BTreeMap<String, u32> =
            [("a.rs".to_string(), 3u32), ("b.rs".to_string(), 2u32)].into();
        let mut diags = Vec::new();
        compare(
            "R8",
            "panic sites",
            &measured,
            &baseline,
            "lint/p.txt",
            &mut diags,
        );
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.contains("budget is 3"));
        assert!(diags[1].message.contains("stale budget"));
        assert!(diags.iter().all(|d| d.rule == "R8"));
    }

    #[test]
    fn missing_file_entry_fails() {
        let measured: BTreeMap<String, u32> = BTreeMap::new();
        let baseline: BTreeMap<String, u32> = [("gone.rs".to_string(), 1u32)].into();
        let mut diags = Vec::new();
        compare(
            "R8",
            "panic sites",
            &measured,
            &baseline,
            "lint/p.txt",
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("missing file"));
    }
}
