//! Command-line driver for the lint gate.
//!
//! ```text
//! palu-lint [--root <dir>]          # run all rules, exit 1 on errors
//! palu-lint --write-baseline        # regenerate the R4 budget file
//! palu-lint --rules                 # list the registry
//! ```

use palu_lint::{has_errors, run_all, write_r4_baseline, LintConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = String::from(".");
    let mut write_baseline = false;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = dir,
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => write_baseline = true,
            "--rules" => list_rules = true,
            "--help" | "-h" => {
                eprintln!("usage: palu-lint [--root <dir>] [--write-baseline] [--rules]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for r in palu_lint::rules::REGISTRY {
            println!("{:<4} {:<20} {}", r.id, r.name, r.description);
        }
        return ExitCode::SUCCESS;
    }

    let cfg = LintConfig::new(&root);
    if write_baseline {
        return match write_r4_baseline(&cfg) {
            Ok(path) => {
                println!("wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("palu-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match run_all(&cfg) {
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            if has_errors(&diags) {
                eprintln!("palu-lint: {} finding(s)", diags.len());
                ExitCode::FAILURE
            } else {
                println!(
                    "palu-lint: clean ({} rules)",
                    palu_lint::rules::REGISTRY.len()
                );
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("palu-lint: {e}");
            ExitCode::from(2)
        }
    }
}
