//! Command-line driver for the lint gate.
//!
//! ```text
//! palu-lint [--root <dir>]          # run all rules, exit 1 on errors
//! palu-lint --json                  # machine-readable report on stdout
//! palu-lint --write-baseline        # regenerate the R4 + R8 budget files
//! palu-lint --rules                 # list the registry
//! ```

use palu_lint::diag::render_json;
use palu_lint::{has_errors, r8_sites, run_all, write_baselines, LintConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = String::from(".");
    let mut write_baseline = false;
    let mut list_rules = false;
    let mut json = false;
    let mut sites = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = dir,
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => write_baseline = true,
            "--rules" => list_rules = true,
            "--json" => json = true,
            "--r8-sites" => sites = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: palu-lint [--root <dir>] [--json] [--write-baseline] \
                     [--rules] [--r8-sites]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for r in palu_lint::rules::REGISTRY {
            println!("{:<4} {:<20} {}", r.id, r.name, r.description);
        }
        return ExitCode::SUCCESS;
    }

    let cfg = LintConfig::new(&root);
    if sites {
        return match r8_sites(&cfg) {
            Ok(sites) => {
                for s in &sites {
                    println!(
                        "{}:{}: {} in {} (reachable from {})",
                        s.file, s.line, s.what, s.in_fn, s.root
                    );
                }
                println!("{} reachable panic site(s)", sites.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("palu-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    if write_baseline {
        return match write_baselines(&cfg) {
            Ok(paths) => {
                for path in paths {
                    println!("wrote {}", path.display());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("palu-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match run_all(&cfg) {
        Ok(diags) => {
            if json {
                print!("{}", render_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
            }
            if has_errors(&diags) {
                eprintln!("palu-lint: {} finding(s)", diags.len());
                ExitCode::FAILURE
            } else {
                if !json {
                    println!(
                        "palu-lint: clean ({} rules)",
                        palu_lint::rules::REGISTRY.len()
                    );
                }
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("palu-lint: {e}");
            ExitCode::from(2)
        }
    }
}
