//! Phase-1 call graph: function items from every scanned file, with
//! conservative by-name call resolution and BFS reachability.
//!
//! Resolution policy (over-approximating by design):
//!
//! * a qualified call `Type::name(...)` resolves to fns whose
//!   enclosing impl/trait type is `Type` and whose name matches;
//!   if no such fn exists the qualifier is dropped and the call
//!   resolves by name alone (the qualifier may be a module path
//!   segment, not a type);
//! * an unqualified or method call `name(...)` / `x.name(...)`
//!   resolves to *every* fn of that name in the scanned set.
//!
//! Extra edges only ever widen the reachable set, so R8 can miss
//! nothing real — the cost is a fatter baseline, which the ratchet
//! keeps honest. Test fns are never resolution targets and never
//! roots.

use crate::items::{parse_items, FnItem};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The workspace-wide item graph.
#[derive(Debug)]
pub struct ItemGraph {
    /// Every fn item, in file order then source order.
    pub fns: Vec<FnItem>,
    /// fn name → indices into `fns` (non-test fns only).
    by_name: BTreeMap<String, Vec<usize>>,
    /// `Type::name` → indices into `fns` (non-test fns only).
    by_qual: BTreeMap<String, Vec<usize>>,
}

impl ItemGraph {
    /// Parse items out of every file and index them.
    pub fn build(files: &[SourceFile]) -> ItemGraph {
        let mut fns = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            fns.extend(parse_items(file_idx, file));
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            by_name.entry(f.name.clone()).or_default().push(idx);
            if f.qual.is_some() {
                by_qual.entry(f.qual_name()).or_default().push(idx);
            }
        }
        ItemGraph {
            fns,
            by_name,
            by_qual,
        }
    }

    /// Indices of the fns a call site may land on.
    pub fn resolve(&self, qual: Option<&str>, name: &str) -> &[usize] {
        if let Some(q) = qual {
            if let Some(hits) = self.by_qual.get(&format!("{q}::{name}")) {
                return hits;
            }
        }
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// BFS over call edges from `roots`: returns, for each reached fn
    /// index, the root index it was first reached from (roots map to
    /// themselves). Test fns are never entered.
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut origin: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if self.fns[r].in_test {
                continue;
            }
            if origin.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(at) = queue.pop_front() {
            let root = origin[&at];
            let mut next: BTreeSet<usize> = BTreeSet::new();
            for call in &self.fns[at].calls {
                next.extend(self.resolve(call.qual.as_deref(), &call.name));
            }
            for callee in next {
                if self.fns[callee].in_test {
                    continue;
                }
                if origin.insert(callee, root).is_none() {
                    queue.push_back(callee);
                }
            }
        }
        origin
    }

    /// Index of the first non-test fn with this `qual_name` in the
    /// given file (workspace-relative path), if any.
    pub fn find_in_file(&self, files: &[SourceFile], path: &str, qual_name: &str) -> Option<usize> {
        self.fns.iter().position(|f| {
            !f.in_test && f.qual_name() == qual_name && files[f.file].path.to_string_lossy() == path
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, ItemGraph) {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(*p, s)).collect();
        let g = ItemGraph::build(&files);
        (files, g)
    }

    fn idx(g: &ItemGraph, qual_name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.qual_name() == qual_name)
            .unwrap_or_else(|| panic!("no fn {qual_name}"))
    }

    #[test]
    fn qualified_call_prefers_exact_impl_match() {
        let (_, g) = graph(&[(
            "src/a.rs",
            "struct A;\nimpl A { fn go(&self) {} }\n\
             struct B;\nimpl B { fn go(&self) {} }\n\
             fn caller() { A::go(&A); }\n",
        )]);
        let caller = idx(&g, "caller");
        let reach = g.reachable(&[caller]);
        assert!(reach.contains_key(&idx(&g, "A::go")));
        assert!(!reach.contains_key(&idx(&g, "B::go")));
    }

    #[test]
    fn method_call_fans_out_by_name() {
        let (_, g) = graph(&[(
            "src/a.rs",
            "struct A;\nimpl A { fn go(&self) {} }\n\
             struct B;\nimpl B { fn go(&self) {} }\n\
             fn caller(x: &A) { x.go(); }\n",
        )]);
        let reach = g.reachable(&[idx(&g, "caller")]);
        // By-name fallback reaches both — conservative on purpose.
        assert!(reach.contains_key(&idx(&g, "A::go")));
        assert!(reach.contains_key(&idx(&g, "B::go")));
    }

    #[test]
    fn reachability_crosses_files_and_is_transitive() {
        let (_, g) = graph(&[
            ("src/a.rs", "pub fn entry() { middle(); }\n"),
            (
                "src/b.rs",
                "pub fn middle() { leaf(); }\npub fn leaf() {}\npub fn island() {}\n",
            ),
        ]);
        let reach = g.reachable(&[idx(&g, "entry")]);
        assert!(reach.contains_key(&idx(&g, "middle")));
        assert!(reach.contains_key(&idx(&g, "leaf")));
        assert!(!reach.contains_key(&idx(&g, "island")));
        // Origin tracking: everything traces back to the root.
        assert_eq!(reach[&idx(&g, "leaf")], idx(&g, "entry"));
    }

    #[test]
    fn test_fns_are_not_targets_or_roots() {
        let (_, g) = graph(&[(
            "src/a.rs",
            "pub fn entry() { helper(); }\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { forbidden(); }\n}\n\
             pub fn forbidden() {}\n",
        )]);
        let reach = g.reachable(&[idx(&g, "entry")]);
        // The only `helper` is test code: the edge dies there.
        assert!(!reach.contains_key(&idx(&g, "forbidden")));
    }

    #[test]
    fn find_in_file_matches_path_and_qual() {
        let (files, g) = graph(&[
            (
                "crates/x/src/a.rs",
                "impl P { pub fn go(&self) {} }\nstruct P;\n",
            ),
            (
                "crates/x/src/b.rs",
                "impl P { pub fn go2(&self) {} }\nstruct P;\n",
            ),
        ]);
        assert!(g
            .find_in_file(&files, "crates/x/src/a.rs", "P::go")
            .is_some());
        assert!(g
            .find_in_file(&files, "crates/x/src/a.rs", "P::go2")
            .is_none());
    }
}
