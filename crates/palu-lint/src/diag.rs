//! Diagnostics: what a rule reports and how it is rendered.

use std::fmt;
use std::path::PathBuf;

/// How bad a finding is. `Error` diagnostics fail the gate; `Warning`
/// diagnostics are printed but do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint gate.
    Error,
    /// Reported, does not fail the gate.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One finding: a rule violation anchored to a file and line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: u32,
    /// Stable rule identifier, e.g. `R1`.
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

impl Diagnostic {
    /// Build an error-severity diagnostic.
    pub fn error(
        file: impl Into<PathBuf>,
        line: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            severity: Severity::Error,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.severity,
            self.message
        )
    }
}
