//! Diagnostics: what a rule reports and how it is rendered.

use std::fmt;
use std::path::PathBuf;

/// How bad a finding is. `Error` diagnostics fail the gate; `Warning`
/// diagnostics are printed but do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint gate.
    Error,
    /// Reported, does not fail the gate.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One finding: a rule violation anchored to a file and line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: u32,
    /// Stable rule identifier, e.g. `R1`.
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

impl Diagnostic {
    /// Build an error-severity diagnostic.
    pub fn error(
        file: impl Into<PathBuf>,
        line: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            severity: Severity::Error,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.severity,
            self.message
        )
    }
}

/// Render diagnostics as a JSON report for CI artifacts:
/// `{"errors": N, "warnings": N, "findings": [{...}, ...]}`.
/// Hand-rolled (the linter is zero-dependency), stable key order.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"errors\": {errors},\n  \"warnings\": {warnings},\n  \"findings\": ["
    ));
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"severity\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file.to_string_lossy()),
            d.line,
            d.rule,
            d.severity,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_counts() {
        let diags = vec![
            Diagnostic::error("src/a.rs", 3, "R8", "bad \"quote\" and \\slash"),
            Diagnostic {
                file: "src/b.rs".into(),
                line: 0,
                rule: "R5",
                severity: Severity::Warning,
                message: "tab\there".into(),
            },
        ];
        let json = render_json(&diags);
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"warnings\": 1"));
        assert!(json.contains("bad \\\"quote\\\" and \\\\slash"));
        assert!(json.contains("tab\\there"));
    }

    #[test]
    fn empty_report_is_valid_json() {
        assert_eq!(
            render_json(&[]),
            "{\n  \"errors\": 0,\n  \"warnings\": 0,\n  \"findings\": []\n}\n"
        );
    }
}
